package cubetree

import (
	"bytes"
	"encoding/json"
	"net/http"

	"cubetree/internal/dist"
	"cubetree/internal/obs"
)

// ShardBackend adapts a Warehouse to the dist.Backend surface a shard
// worker serves: the adapter exists only to return BeginUpdate's
// *PendingUpdate as the dist.Pending interface.
func ShardBackend(w *Warehouse) dist.Backend { return shardBackend{w} }

type shardBackend struct{ *Warehouse }

func (b shardBackend) BeginUpdate(rows RowIter) (dist.Pending, error) {
	return b.Warehouse.BeginUpdate(rows)
}

func (b shardBackend) Stat() (points, bytes int64) {
	st := b.Warehouse.Stat()
	return st.Points, st.Bytes
}

// ShardCSV is the dist.CSVSource a worker uses to parse refresh deltas —
// the same CSV reader the HTTP refresh endpoint and ctload use.
func ShardCSV(csv []byte, measure string) (RowIter, error) {
	return CSVRows(bytes.NewReader(csv), measure)
}

// CoordinatorDebugMux builds the debug handler for a coordinator process:
// the observer's endpoints plus /debug/warehouse serving the coordinator's
// per-shard table (address, generation, in-flight, last error, p95 latency)
// and /debug/cluster serving the aggregated fleet view (merged worker
// metrics, generation skew, straggler and pool-occupancy tables — one
// endpoint answering "is the cluster healthy"). Either argument may be nil.
func CoordinatorDebugMux(c *dist.Coordinator, o *Observer) *http.ServeMux {
	mux := obs.DebugMux(o)
	if c != nil {
		mux.HandleFunc("/debug/warehouse", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				dist.DebugInfo
				Sparklines []obs.Sparkline `json:"sparklines,omitempty"`
			}{c.DebugInfo(), sparklineSummary(o)})
		})
		mux.HandleFunc("/debug/cluster", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(c.ClusterInfo(r.Context()))
		})
	}
	return mux
}
