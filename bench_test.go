// Benchmarks regenerating the paper's evaluation artifacts, one target per
// table and figure, plus ablations of the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Most targets report a "modelled-ms" metric: the counted page I/O priced
// with the 1998 disk model, which is the unit the paper's measurements are
// in. Wall-clock ns/op on a modern SSD is reported by the framework as
// usual.
package cubetree_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"cubetree/internal/bitmap"
	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/enc"
	"cubetree/internal/experiment"
	"cubetree/internal/greedy"
	"cubetree/internal/heapfile"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/relstore"
	"cubetree/internal/rtree"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

// benchSF keeps benchmark datasets laptop-sized (12k fact rows) while
// leaving the I/O shapes visible through deliberately small buffer pools.
const (
	benchSF   = 0.002
	benchPool = 8
	benchSeed = 1998
	benchQGen = 424242
)

var (
	benchOnce sync.Once
	benchDir  string
	benchSet  *experiment.Setup
	benchErr  error
)

// sharedSetup builds one experiment setup reused by the query benchmarks.
func sharedSetup(b *testing.B) *experiment.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "cubetree-bench-")
		if benchErr != nil {
			return
		}
		benchSet, benchErr = experiment.NewSetup(experiment.Params{
			SF:        benchSF,
			Seed:      benchSeed,
			PoolPages: benchPool,
			Replicas:  true,
			Dir:       benchDir,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSet
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchSet != nil {
		benchSet.Close()
	}
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	if concSet != nil {
		concSet.Close()
	}
	if concDir != "" {
		os.RemoveAll(concDir)
	}
	os.Exit(code)
}

var (
	concOnce sync.Once
	concDir  string
	concSet  *experiment.Setup
	concErr  error
)

// concSetup builds the setup for the concurrency benchmarks. Unlike
// sharedSetup's deliberately tiny pool (which keeps I/O shapes visible and
// stays single-shard), this one gets a pool large enough to hold the working
// set, so the buffer pool shards engage, repeated runs are hits, and the
// counted page I/O is invariant under parallelism.
func concSetup(b *testing.B) *experiment.Setup {
	b.Helper()
	concOnce.Do(func() {
		concDir, concErr = os.MkdirTemp("", "cubetree-bench-conc-")
		if concErr != nil {
			return
		}
		concSet, concErr = experiment.NewSetup(experiment.Params{
			SF:        benchSF,
			Seed:      benchSeed,
			PoolPages: 512,
			Replicas:  true,
			Dir:       concDir,
		})
	})
	if concErr != nil {
		b.Fatal(concErr)
	}
	return concSet
}

// benchViewData computes the paper's view set once per benchmark.
func benchViewData(b *testing.B, dir string) (map[string]*cube.ViewData, greedy.Selection, *tpcd.Dataset) {
	b.Helper()
	ds := tpcd.New(tpcd.Params{SF: benchSF, Seed: benchSeed})
	sel := greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	data, err := cube.Compute(dir, benchRows(ds), sel.Views, cube.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return data, sel, ds
}

type benchFactRows struct{ it *tpcd.Iterator }

func (f *benchFactRows) Next() bool                          { return f.it.Next() }
func (f *benchFactRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *benchFactRows) Measure() int64                      { return f.it.Fact().Quantity }

func benchRows(ds *tpcd.Dataset) *benchFactRows { return &benchFactRows{it: ds.FactRows()} }

func reportModelled(b *testing.B, stats pager.StatsSnapshot, perOp int) {
	ms := float64(pager.Disk1998.Cost(stats).Milliseconds())
	if perOp > 0 {
		ms /= float64(perOp)
	}
	b.ReportMetric(ms, "modelled-ms/op")
}

// --- Table 6: initial load ---------------------------------------------------

// BenchmarkTable6LoadConventional times loading the view set as heap tables
// plus per-row B-tree index builds (the paper's 11h49m side).
func BenchmarkTable6LoadConventional(b *testing.B) {
	data, sel, ds := benchViewData(b, b.TempDir())
	b.ResetTimer()
	var io pager.StatsSnapshot
	for i := 0; i < b.N; i++ {
		stats := &pager.Stats{}
		conv, err := relstore.Create(filepath.Join(b.TempDir(), "conv"), relstore.Options{
			PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, view := range sel.Views {
			if err := conv.LoadView(data[view.Key()]); err != nil {
				b.Fatal(err)
			}
		}
		for _, order := range sel.Indexes {
			if err := conv.BuildIndex(order); err != nil {
				b.Fatal(err)
			}
		}
		io = stats.Snapshot()
		conv.Remove()
	}
	reportModelled(b, io, 1)
}

// BenchmarkTable6LoadCubetrees times packing the same views (plus the two
// replica sort orders) into a Cubetree forest (the paper's 45m side).
func BenchmarkTable6LoadCubetrees(b *testing.B) {
	dir := b.TempDir()
	data, sel, ds := benchViewData(b, dir)
	top := data[lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer})]
	rep1, err := cube.Reorder(dir, top, []lattice.Attr{tpcd.AttrSupplier, tpcd.AttrCustomer, tpcd.AttrPart}, cube.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rep2, err := cube.Reorder(dir, top, []lattice.Attr{tpcd.AttrCustomer, tpcd.AttrPart, tpcd.AttrSupplier}, cube.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var sources []*cube.ViewData
	for _, view := range sel.Views {
		sources = append(sources, data[view.Key()])
	}
	sources = append(sources, rep1, rep2)
	b.ResetTimer()
	var io pager.StatsSnapshot
	for i := 0; i < b.N; i++ {
		stats := &pager.Stats{}
		f, err := core.Build(filepath.Join(b.TempDir(), "forest"), sources, core.BuildOptions{
			PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
		})
		if err != nil {
			b.Fatal(err)
		}
		io = stats.Snapshot()
		f.Remove()
	}
	reportModelled(b, io, 1)
}

// --- Storage (Section 3.2) ----------------------------------------------------

// BenchmarkStorageFootprint reports the on-disk bytes of both
// configurations as metrics (conv-bytes, cube-bytes, saving-pct).
func BenchmarkStorageFootprint(b *testing.B) {
	s := sharedSetup(b)
	for i := 0; i < b.N; i++ {
		_ = s.RunStorage()
	}
	st := s.RunStorage()
	b.ReportMetric(float64(st.ConvTotal), "conv-bytes")
	b.ReportMetric(float64(st.CubeTotal), "cube-bytes")
	b.ReportMetric(st.Saving*100, "saving-pct")
	b.ReportMetric(st.CubeLeafFrac*100, "leaf-pct")
}

// --- Figure 12/13: query performance -------------------------------------------

// BenchmarkFig12Query measures one random slice query per iteration against
// each configuration, per lattice view.
func BenchmarkFig12Query(b *testing.B) {
	s := sharedSetup(b)
	for _, node := range experiment.Nodes() {
		node := node
		b.Run("conv/"+experiment.NodeLabel(node), func(b *testing.B) {
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			mark := s.ConvStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Conv.Execute(gen.ForNode(node)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.ConvStats().Snapshot().Sub(mark), b.N)
		})
		b.Run("cube/"+experiment.NodeLabel(node), func(b *testing.B) {
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			mark := s.CubeStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Forest.Execute(gen.ForNode(node)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.CubeStats().Snapshot().Sub(mark), b.N)
		})
	}
}

// BenchmarkFig13Throughput reports end-to-end queries/sec over the full
// 27-type workload for each configuration (modelled q/s as a metric).
func BenchmarkFig13Throughput(b *testing.B) {
	s := sharedSetup(b)
	run := func(b *testing.B, exec func(workload.Query) ([]workload.Row, error), stats *pager.Stats) {
		gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
		nodes := experiment.Nodes()
		mark := stats.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exec(gen.ForNode(nodes[i%len(nodes)])); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		io := stats.Snapshot().Sub(mark)
		cost := pager.Disk1998.Cost(io)
		if cost > 0 {
			b.ReportMetric(float64(b.N)/cost.Seconds(), "modelled-q/s")
		}
	}
	b.Run("conv", func(b *testing.B) { run(b, s.Conv.Execute, s.ConvStats()) })
	b.Run("cube", func(b *testing.B) { run(b, s.Forest.Execute, s.CubeStats()) })
}

// BenchmarkFig13Concurrent is the concurrency sweep of Figure 13: the same
// mixed 27-type batch executed with 1, 2, 4, and GOMAXPROCS clients against
// each configuration, reporting wall-clock queries/sec. The pool is sized to
// the working set, so every client count reads the same pages (parallelism
// changes when pages are read, never what) and the sweep isolates lock
// contention: with the sharded pool, throughput at >=4 clients should beat
// the single-client baseline by >=2x.
func BenchmarkFig13Concurrent(b *testing.B) {
	s := concSetup(b)
	gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
	nodes := experiment.Nodes()
	var queries []workload.Query
	for i := 0; i < 64*len(nodes); i++ {
		queries = append(queries, gen.ForNode(nodes[i%len(nodes)]))
	}
	clients := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		clients = append(clients, p)
	}
	type engine struct {
		name  string
		exec  func([]workload.Query, int) ([][]workload.Row, error)
		stats *pager.Stats
	}
	for _, e := range []engine{
		{"conv", s.Conv.ExecuteBatch, s.ConvStats()},
		{"cube", s.Forest.ExecuteBatch, s.CubeStats()},
	} {
		// Warm the pool once so every client count starts from the same
		// cached state.
		if _, err := e.exec(queries, 1); err != nil {
			b.Fatal(err)
		}
		for _, c := range clients {
			b.Run(fmt.Sprintf("%s/clients=%d", e.name, c), func(b *testing.B) {
				mark := e.stats.Snapshot()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.exec(queries, c); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				io := e.stats.Snapshot().Sub(mark)
				b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "wall-q/s")
				b.ReportMetric(float64(io.Pages())/float64(b.N), "pages/op")
			})
		}
	}
}

// --- Figure 14: scalability -----------------------------------------------------

// BenchmarkFig14Scalability queries Cubetree forests built at 1x and 2x
// scale with identical batches.
func BenchmarkFig14Scalability(b *testing.B) {
	for _, mult := range []struct {
		name string
		sf   float64
	}{{"1x", benchSF}, {"2x", benchSF * 2}} {
		mult := mult
		b.Run(mult.name, func(b *testing.B) {
			s, err := experiment.NewSetup(experiment.Params{
				SF: mult.sf, Seed: benchSeed, PoolPages: benchPool,
				Replicas: true, Dir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Query with the 1x domains so both scales see identical batches.
			doms := tpcd.New(tpcd.Params{SF: benchSF, Seed: benchSeed}).Domains()
			gen := workload.NewGenerator(benchQGen, doms)
			nodes := experiment.Nodes()
			mark := s.CubeStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Forest.Execute(gen.ForNode(nodes[i%len(nodes)])); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.CubeStats().Snapshot().Sub(mark), b.N)
		})
	}
}

// --- Table 7: updates -------------------------------------------------------------

// BenchmarkTable7 compares the three refresh strategies on a 10% increment.
func BenchmarkTable7(b *testing.B) {
	dir := b.TempDir()
	data, sel, ds := benchViewData(b, dir)

	deltaOnce := func(b *testing.B) map[string]*cube.ViewData {
		inc := ds.Increment(0.1, 1)
		delta, err := cube.Compute(b.TempDir(), &benchFactRows{it: inc}, sel.Views, cube.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return delta
	}

	b.Run("incremental-conventional", func(b *testing.B) {
		delta := deltaOnce(b)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			stats := &pager.Stats{}
			conv, err := relstore.Create(filepath.Join(b.TempDir(), "conv"), relstore.Options{
				PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, view := range sel.Views {
				if err := conv.LoadView(data[view.Key()]); err != nil {
					b.Fatal(err)
				}
				if err := conv.BuildPrimary(view.Key()); err != nil {
					b.Fatal(err)
				}
			}
			mark := stats.Snapshot()
			b.StartTimer()
			for _, view := range sel.Views {
				if _, err := conv.ApplyDelta(delta[view.Key()], relstore.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, stats.Snapshot().Sub(mark), 1)
			conv.Remove()
			b.StartTimer()
		}
	})

	b.Run("recompute-conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			stats := &pager.Stats{}
			scratch := b.TempDir()
			b.StartTimer()
			merged, err := cube.Compute(scratch, &mergedBenchRows{
				a: benchRows(ds), b: &benchFactRows{it: ds.Increment(0.1, 1)},
			}, sel.Views, cube.Options{Stats: stats})
			if err != nil {
				b.Fatal(err)
			}
			conv, err := relstore.Create(filepath.Join(scratch, "conv"), relstore.Options{
				PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, view := range sel.Views {
				if err := conv.LoadView(merged[view.Key()]); err != nil {
					b.Fatal(err)
				}
			}
			for _, order := range sel.Indexes {
				if err := conv.BuildIndex(order); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, stats.Snapshot(), 1)
			conv.Remove()
			b.StartTimer()
		}
	})

	b.Run("mergepack-cubetrees", func(b *testing.B) {
		var sources []*cube.ViewData
		for _, view := range sel.Views {
			sources = append(sources, data[view.Key()])
		}
		stats := &pager.Stats{}
		forest, err := core.Build(filepath.Join(b.TempDir(), "forest"), sources, core.BuildOptions{
			PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer forest.Close()
		delta := deltaOnce(b)
		scratch := b.TempDir()
		b.ResetTimer()
		var io pager.StatsSnapshot
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mark := stats.Snapshot()
			b.StartTimer()
			deltas, err := forest.DeltasFor(scratch, delta)
			if err != nil {
				b.Fatal(err)
			}
			nf, err := forest.MergeUpdate(filepath.Join(b.TempDir(), "f2"), deltas, core.BuildOptions{Stats: stats})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			io = stats.Snapshot().Sub(mark)
			nf.Remove()
			b.StartTimer()
		}
		reportModelled(b, io, 1)
	})
}

type mergedBenchRows struct {
	a, b *benchFactRows
	inB  bool
}

func (m *mergedBenchRows) Next() bool {
	if !m.inB {
		if m.a.Next() {
			return true
		}
		m.inB = true
	}
	return m.b.Next()
}
func (m *mergedBenchRows) Value(a lattice.Attr) (int64, error) {
	if m.inB {
		return m.b.Value(a)
	}
	return m.a.Value(a)
}
func (m *mergedBenchRows) Measure() int64 {
	if m.inB {
		return m.b.Measure()
	}
	return m.a.Measure()
}

// --- Ablations ---------------------------------------------------------------------

// BenchmarkAblationMapping compares SelectMapping against one tree per view
// on bytes and query I/O.
func BenchmarkAblationMapping(b *testing.B) {
	dir := b.TempDir()
	data, sel, ds := benchViewData(b, dir)
	var sources []*cube.ViewData
	for _, view := range sel.Views {
		sources = append(sources, data[view.Key()])
	}
	for _, cfg := range []struct {
		name    string
		mapping func([]lattice.View) core.Mapping
	}{
		{"selectmapping", core.SelectMapping},
		{"per-view", core.PerViewMapping},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			views := make([]lattice.View, len(sources))
			for i, s := range sources {
				views[i] = s.View
			}
			m := cfg.mapping(views)
			stats := &pager.Stats{}
			forest, err := core.Build(filepath.Join(b.TempDir(), "f"), sources, core.BuildOptions{
				PoolPages: benchPool, Domains: ds.Domains(), Stats: stats, Mapping: &m,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer forest.Close()
			gen := workload.NewGenerator(benchQGen, ds.Domains())
			nodes := experiment.Nodes()
			mark := stats.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := forest.Execute(gen.ForNode(nodes[i%len(nodes)])); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, stats.Snapshot().Sub(mark), b.N)
			b.ReportMetric(float64(forest.TotalBytes()), "bytes")
			b.ReportMetric(float64(forest.Trees()), "trees")
		})
	}
}

// BenchmarkAblationCompression compares packing an arity-1 view compressed
// (1 stored coordinate) versus embedded uncompressed at full
// dimensionality.
func BenchmarkAblationCompression(b *testing.B) {
	const n = 50000
	build := func(b *testing.B, arity int) int64 {
		f, err := pager.Create(filepath.Join(b.TempDir(), "t.ct"), nil)
		if err != nil {
			b.Fatal(err)
		}
		pool := pager.NewPool(f, 64)
		defer pool.Close()
		bld, err := rtree.NewBuilder(pool, 3, rtree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := bld.BeginRun(arity); err != nil {
			b.Fatal(err)
		}
		coords := make([]int64, arity)
		for i := int64(1); i <= n; i++ {
			coords[0] = i
			if err := bld.Add(coords, []int64{i, 1}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bld.EndRun(); err != nil {
			b.Fatal(err)
		}
		tree, err := bld.Finish()
		if err != nil {
			b.Fatal(err)
		}
		return tree.Bytes()
	}
	b.Run("compressed-arity1", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes = build(b, 1)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("uncompressed-dim3", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes = build(b, 3)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
}

// BenchmarkAblationReplicas measures the query benefit of the top view's
// replica sort orders.
func BenchmarkAblationReplicas(b *testing.B) {
	for _, replicas := range []bool{false, true} {
		replicas := replicas
		name := "without"
		if replicas {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			s, err := experiment.NewSetup(experiment.Params{
				SF: benchSF, Seed: benchSeed, PoolPages: benchPool,
				Replicas: replicas, Dir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			node := experiment.Nodes()[0] // the replicated top view
			mark := s.CubeStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Forest.Execute(gen.ForNode(node)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.CubeStats().Snapshot().Sub(mark), b.N)
		})
	}
}

// BenchmarkAblationBufferPool sweeps the buffer pool size for the query
// workload, demonstrating the paper's buffer-hit-ratio argument for fewer
// trees.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pool := range []int{4, 16, 64, 256} {
		pool := pool
		b.Run(itoa(pool), func(b *testing.B) {
			s, err := experiment.NewSetup(experiment.Params{
				SF: benchSF, Seed: benchSeed, PoolPages: pool,
				Replicas: true, Dir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			nodes := experiment.Nodes()
			mark := s.CubeStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Forest.Execute(gen.ForNode(nodes[i%len(nodes)])); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			io := s.CubeStats().Snapshot().Sub(mark)
			reportModelled(b, io, b.N)
			if total := io.PoolHits + io.PoolMisses; total > 0 {
				b.ReportMetric(float64(io.PoolHits)/float64(total)*100, "hit-pct")
			}
		})
	}
}

// BenchmarkAblationDelta sweeps the increment size for merge-pack updates,
// showing the linear-time property.
func BenchmarkAblationDelta(b *testing.B) {
	dir := b.TempDir()
	data, sel, ds := benchViewData(b, dir)
	var sources []*cube.ViewData
	for _, view := range sel.Views {
		sources = append(sources, data[view.Key()])
	}
	for _, frac := range []float64{0.01, 0.1, 0.5} {
		frac := frac
		b.Run(fmtFrac(frac), func(b *testing.B) {
			stats := &pager.Stats{}
			forest, err := core.Build(filepath.Join(b.TempDir(), "f"), sources, core.BuildOptions{
				PoolPages: benchPool, Domains: ds.Domains(), Stats: stats,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer forest.Close()
			delta, err := cube.Compute(b.TempDir(), &benchFactRows{it: ds.Increment(frac, 1)},
				sel.Views, cube.Options{})
			if err != nil {
				b.Fatal(err)
			}
			scratch := b.TempDir()
			b.ResetTimer()
			var io pager.StatsSnapshot
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mark := stats.Snapshot()
				b.StartTimer()
				deltas, err := forest.DeltasFor(scratch, delta)
				if err != nil {
					b.Fatal(err)
				}
				nf, err := forest.MergeUpdate(filepath.Join(b.TempDir(), "f2"), deltas,
					core.BuildOptions{Stats: stats})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				io = stats.Snapshot().Sub(mark)
				nf.Remove()
				b.StartTimer()
			}
			reportModelled(b, io, 1)
		})
	}
}

// BenchmarkRangeQuery compares both configurations on bounded range
// queries, the workload Section 3.1 predicts favours Cubetrees even more
// than equality slices.
func BenchmarkRangeQuery(b *testing.B) {
	s := sharedSetup(b)
	node := experiment.Nodes()[0]
	for _, width := range []float64{0.05, 0.25} {
		width := width
		b.Run("conv/"+fmtFrac(width), func(b *testing.B) {
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			mark := s.ConvStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Conv.Execute(gen.ForNodeRanges(node, width)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.ConvStats().Snapshot().Sub(mark), b.N)
		})
		b.Run("cube/"+fmtFrac(width), func(b *testing.B) {
			gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
			mark := s.CubeStats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Forest.Execute(gen.ForNodeRanges(node, width)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportModelled(b, s.CubeStats().Snapshot().Sub(mark), b.N)
		})
	}
}

// BenchmarkAblationBitmapJoin reproduces the paper's Section 2.2 argument:
// a hierarchy query ("total per supplier for brand B") answered three ways
// — materialized Cubetree view, bitmapped join index over the fact table,
// and a plain fact scan. The materialized view should win; the bitmap
// index only preselects rows and still pays per-row fact fetches.
func BenchmarkAblationBitmapJoin(b *testing.B) {
	ds := tpcd.New(tpcd.Params{SF: benchSF, Seed: benchSeed})

	// Fact table in a heap file (row order = generation order) + bitmap
	// index on brand.
	factStats := &pager.Stats{}
	pf, err := pager.Create(filepath.Join(b.TempDir(), "fact.heap"), factStats)
	if err != nil {
		b.Fatal(err)
	}
	pool := pager.NewPool(pf, benchPool)
	defer pool.Close()
	heap, err := heapfile.Create(pool, 32) // part, supp, brand, qty
	if err != nil {
		b.Fatal(err)
	}
	bmb := bitmap.NewBuilder(int(ds.Facts))
	it := ds.FactRows()
	tuple := make([]byte, 32)
	for it.Next() {
		f := it.Fact()
		brand := tpcd.BrandOf(f.PartKey)
		enc.PutTuple(tuple, []int64{f.PartKey, f.SuppKey, brand, f.Quantity})
		if _, err := heap.Insert(tuple); err != nil {
			b.Fatal(err)
		}
		if err := bmb.Add(brand); err != nil {
			b.Fatal(err)
		}
	}
	brandIndex := bmb.Finish()
	perPage := heap.PerPage()

	// Cubetree side: materialized V{brand,suppkey}.
	view := lattice.View{Attrs: []lattice.Attr{tpcd.AttrBrand, tpcd.AttrSupplier}}
	data, err := cube.Compute(b.TempDir(), benchRows(ds), []lattice.View{view}, cube.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cubeStats := &pager.Stats{}
	forest, err := core.Build(filepath.Join(b.TempDir(), "f"), []*cube.ViewData{data[view.Key()]},
		core.BuildOptions{PoolPages: benchPool, Domains: ds.Domains(), Stats: cubeStats})
	if err != nil {
		b.Fatal(err)
	}
	defer forest.Close()

	query := func(brand int64) workload.Query {
		return workload.Query{
			Node:  []lattice.Attr{tpcd.AttrBrand, tpcd.AttrSupplier},
			Fixed: []workload.Pred{{Attr: tpcd.AttrBrand, Value: brand}},
		}
	}

	b.Run("materialized-cubetree", func(b *testing.B) {
		mark := cubeStats.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := forest.Execute(query(int64(i%tpcd.NumBrands) + 1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportModelled(b, cubeStats.Snapshot().Sub(mark), b.N)
	})

	b.Run("bitmap-join-index", func(b *testing.B) {
		mark := factStats.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			brand := int64(i%tpcd.NumBrands) + 1
			agg := workload.NewAggregator(1)
			group := make([]int64, 1)
			err := brandIndex.Lookup(brand).Iterate(func(row int) error {
				rid := heapfile.RID{Page: pager.PageID(1 + row/perPage), Slot: uint16(row % perPage)}
				tup, err := heap.Get(rid)
				if err != nil {
					return err
				}
				group[0] = enc.Field(tup, 1)
				agg.Add(group, enc.Field(tup, 3), 1)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(agg.Rows()) == 0 {
				b.Fatal("bitmap join found nothing")
			}
		}
		b.StopTimer()
		reportModelled(b, factStats.Snapshot().Sub(mark), b.N)
		b.ReportMetric(float64(brandIndex.Bytes()), "index-bytes")
	})

	b.Run("fact-scan", func(b *testing.B) {
		mark := factStats.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			brand := int64(i%tpcd.NumBrands) + 1
			agg := workload.NewAggregator(1)
			group := make([]int64, 1)
			err := heap.Scan(func(_ heapfile.RID, tup []byte) error {
				if enc.Field(tup, 2) != brand {
					return nil
				}
				group[0] = enc.Field(tup, 1)
				agg.Add(group, enc.Field(tup, 3), 1)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportModelled(b, factStats.Snapshot().Sub(mark), b.N)
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func fmtFrac(f float64) string {
	return itoa(int(f*100)) + "pct"
}
