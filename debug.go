package cubetree

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"cubetree/internal/obs"
)

// sparkMetrics is the default /debug/warehouse sparkline set: the signals an
// operator glances at first — traffic, latency, errors, pool pressure.
var sparkMetrics = []string{"query_total", "query_latency_ns", "query_errors_total", "pool_resident_frames"}

// sparklineSummary renders the recent history of the headline metrics when
// the observer has a history ring attached; nil otherwise, so the warehouse
// page shape is unchanged for processes without self-monitoring.
func sparklineSummary(o *Observer) []obs.Sparkline {
	if o == nil || o.History == nil {
		return nil
	}
	var out []obs.Sparkline
	for _, m := range sparkMetrics {
		if sp, ok := o.History.Sparkline(m, 30); ok {
			out = append(out, sp)
		}
	}
	return out
}

// DebugMux builds the debug HTTP handler: the observer's endpoints
// (/debug/metrics, /debug/traces, /debug/slow, /debug/history, /debug/slo,
// /debug/pprof/*) plus, when a warehouse is given, /debug/warehouse with the
// live generation, placements, buffer-pool occupancy, and — when a history
// ring is attached — sparkline trends of the headline metrics. Either
// argument may be nil.
func DebugMux(w *Warehouse, o *Observer) *http.ServeMux {
	mux := obs.DebugMux(o)
	if w != nil {
		mux.HandleFunc("/debug/warehouse", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				DebugInfo
				Sparklines []obs.Sparkline `json:"sparklines,omitempty"`
			}{w.DebugInfo(), sparklineSummary(o)})
		})
	}
	return mux
}

// DebugServer is a running debug HTTP server; see ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts an HTTP debug server on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) exposing the observer's metrics, traces, slow
// queries, and pprof, plus the warehouse's live state. It returns as soon as
// the listener is up; the server runs until Close. The endpoints expose
// internal state and profiling — bind to localhost unless the network is
// trusted.
func ServeDebug(addr string, w *Warehouse, o *Observer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cubetree: debug listen: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(w, o)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}
