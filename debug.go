package cubetree

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"cubetree/internal/obs"
)

// DebugMux builds the debug HTTP handler: the observer's endpoints
// (/debug/metrics, /debug/traces, /debug/slow, /debug/pprof/*) plus, when a
// warehouse is given, /debug/warehouse with the live generation, placements,
// and buffer-pool occupancy. Either argument may be nil.
func DebugMux(w *Warehouse, o *Observer) *http.ServeMux {
	mux := obs.DebugMux(o)
	if w != nil {
		mux.HandleFunc("/debug/warehouse", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(w.DebugInfo())
		})
	}
	return mux
}

// DebugServer is a running debug HTTP server; see ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the server's listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts an HTTP debug server on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) exposing the observer's metrics, traces, slow
// queries, and pprof, plus the warehouse's live state. It returns as soon as
// the listener is up; the server runs until Close. The endpoints expose
// internal state and profiling — bind to localhost unless the network is
// trusted.
func ServeDebug(addr string, w *Warehouse, o *Observer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cubetree: debug listen: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(w, o)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}
