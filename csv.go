package cubetree

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVRows adapts a CSV stream to a fact RowIter. The first record is the
// header naming the attributes; measure selects the column aggregated as
// the fact measure; every field must be an integer. This pairs with the
// dbgen tool's output:
//
//	f, _ := os.Open("facts.csv")
//	rows, _ := cubetree.CSVRows(f, "quantity")
//	w, _ := cubetree.Materialize(cfg, views, rows)
//
// Errors encountered mid-stream stop iteration and surface from Err.
func CSVRows(r io.Reader, measure string) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("cubetree: csv header: %w", err)
	}
	s := &CSVSource{r: cr, cols: map[Attr]int{}, measureCol: -1}
	for i, name := range header {
		name = strings.TrimSpace(strings.ToLower(name))
		s.cols[Attr(name)] = i
		if name == strings.ToLower(measure) {
			s.measureCol = i
		}
	}
	if s.measureCol < 0 {
		return nil, fmt.Errorf("cubetree: csv has no measure column %q", measure)
	}
	return s, nil
}

// CSVSource is a RowIter over CSV fact data; see CSVRows.
type CSVSource struct {
	r          *csv.Reader
	cols       map[Attr]int
	measureCol int
	row        []int64
	err        error
}

// Next advances to the next data record.
func (s *CSVSource) Next() bool {
	if s.err != nil {
		return false
	}
	rec, err := s.r.Read()
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	if cap(s.row) < len(rec) {
		s.row = make([]int64, len(rec))
	}
	s.row = s.row[:len(rec)]
	for i, f := range rec {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			s.err = fmt.Errorf("cubetree: csv field %d: %w", i, err)
			return false
		}
		s.row[i] = v
	}
	return true
}

// Value returns the named attribute of the current record.
func (s *CSVSource) Value(a Attr) (int64, error) {
	i, ok := s.cols[a]
	if !ok {
		return 0, fmt.Errorf("cubetree: csv has no column %q", a)
	}
	if i >= len(s.row) {
		return 0, fmt.Errorf("cubetree: short csv record (no column %q)", a)
	}
	return s.row[i], nil
}

// Measure returns the measure column of the current record.
func (s *CSVSource) Measure() int64 { return s.row[s.measureCol] }

// Err returns the first error encountered while reading, if any. Callers
// should check it after Materialize or Update returns.
func (s *CSVSource) Err() error { return s.err }

var _ RowIter = (*CSVSource)(nil)
