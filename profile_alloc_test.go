package cubetree_test

import (
	"context"
	"testing"
	"time"

	"cubetree"
)

// TestProfileOffAllocParity pins the profile-off guarantee: a query issued
// through the profiled entry point with a nil profile takes the exact same
// allocation path as the plain entry point — zero extra allocations per
// query — both uninstrumented and with a full observer attached. Profiling
// must be pay-for-what-you-use, like the rest of the observability layer.
func TestProfileOffAllocParity(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx := context.Background()
	q := cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}},
	}
	// Warm the pool so neither measurement pays first-touch page faults.
	if _, err := w.QueryCtx(ctx, q); err != nil {
		t.Fatal(err)
	}

	measure := func() (base, off float64) {
		base = testing.AllocsPerRun(200, func() {
			if _, err := w.QueryCtx(ctx, q); err != nil {
				t.Fatal(err)
			}
		})
		off = testing.AllocsPerRun(200, func() {
			if _, err := w.QueryProfiledCtx(ctx, q, nil); err != nil {
				t.Fatal(err)
			}
		})
		return base, off
	}

	base, off := measure()
	if off > base {
		t.Errorf("uninstrumented: profile-off path allocates %v/query, plain path %v", off, base)
	}

	// Slow threshold no query crosses: the observer records metrics and
	// spans but the slow log stays out of the picture, the production shape.
	w.SetObserver(cubetree.NewObserver(cubetree.ObserverOptions{SlowThreshold: time.Minute}))
	base, off = measure()
	if off > base {
		t.Errorf("observed: profile-off path allocates %v/query, plain path %v", off, base)
	}
}
