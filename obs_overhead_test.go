// BenchmarkObsOverhead quantifies what attaching an Observer costs the query
// path. Run with:
//
//	go test -bench=ObsOverhead -benchmem -count=5
//
// The "bare" variant is the uninstrumented path (nil observer, the default);
// "observed" attaches a full observer — metrics registry, tracer ring, and
// slow-query log with a threshold no query crosses — but no debug server, the
// configuration a production process pays for continuously. The bar is that
// "observed" stays within ~2% of "bare" wall clock; measured numbers are
// recorded in EXPERIMENTS.md.
package cubetree_test

import (
	"context"
	"testing"
	"time"

	"cubetree/internal/obs"
	"cubetree/internal/workload"

	"cubetree/internal/experiment"
)

func BenchmarkObsOverhead(b *testing.B) {
	s := concSetup(b)
	gen := workload.NewGenerator(benchQGen, s.Dataset.Domains())
	nodes := experiment.Nodes()
	var queries []workload.Query
	for i := 0; i < 8*len(nodes); i++ {
		queries = append(queries, gen.ForNode(nodes[i%len(nodes)]))
	}
	// Warm the pool so both variants run at full cache hits and the
	// comparison isolates CPU cost, not page I/O.
	if _, err := s.Forest.ExecuteBatch(queries, 1); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Forest.Execute(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	// profile-off drives the profiled entry point with a nil profile: the
	// bar is allocation and wall-clock parity with the plain path, since an
	// unprofiled query must not pay for the EXPLAIN-ANALYZE machinery.
	runProfileOff := func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Forest.ExecuteProfiledCtx(ctx, queries[i%len(queries)], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	runProfiled := func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var prof workload.QueryProfile
			if _, err := s.Forest.ExecuteProfiledCtx(ctx, queries[i%len(queries)], &prof); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		s.Forest.SetObserver(nil)
		run(b)
	})
	b.Run("bare-profile-off", func(b *testing.B) {
		s.Forest.SetObserver(nil)
		runProfileOff(b)
	})
	b.Run("observed", func(b *testing.B) {
		s.Forest.SetObserver(obs.New(obs.Options{SlowThreshold: time.Second}))
		run(b)
	})
	b.Run("observed-profile-off", func(b *testing.B) {
		s.Forest.SetObserver(obs.New(obs.Options{SlowThreshold: time.Second}))
		runProfileOff(b)
	})
	b.Run("observed-profiled", func(b *testing.B) {
		s.Forest.SetObserver(obs.New(obs.Options{SlowThreshold: time.Second}))
		runProfiled(b)
	})
	// Full self-monitoring: runtime collector registered, history scraper
	// running at the production cadence, SLO tracker attached. All of that
	// work happens on the scraper goroutine at snapshot time, so the bar is
	// the same as plain "observed" — identical allocs/op on the query path.
	b.Run("observed-monitored", func(b *testing.B) {
		o := obs.New(obs.Options{SlowThreshold: time.Second})
		obs.EnableRuntimeMetrics(o.Registry)
		h := o.StartHistory(obs.HistoryOptions{Interval: obs.DefaultScrapeInterval})
		defer h.Close()
		o.SetSLOs(nil)
		s.Forest.SetObserver(o)
		run(b)
	})
	s.Forest.SetObserver(nil)
}
