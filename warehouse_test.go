package cubetree_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cubetree"
)

// sliceRows is an in-memory RowIter.
type sliceRows struct {
	cols    []cubetree.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (s *sliceRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *sliceRows) Value(a cubetree.Attr) (int64, error) {
	for j, c := range s.cols {
		if c == a {
			return s.rows[s.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", a)
}
func (s *sliceRows) Measure() int64 { return s.measure[s.i-1] }

func facts() *sliceRows {
	return &sliceRows{
		cols: []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
		},
		measure: []int64{5, 7, 3, 4, 9, 2},
	}
}

func testViews() []cubetree.View {
	return []cubetree.View{
		cubetree.NewView("top", "partkey", "suppkey", "custkey"),
		cubetree.NewView("ps", "partkey", "suppkey"),
		cubetree.NewView("c", "custkey"),
		cubetree.NewView("all"),
	}
}

func testConfig(t *testing.T) cubetree.Config {
	return cubetree.Config{
		Dir:     filepath.Join(t.TempDir(), "wh"),
		Domains: map[cubetree.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 3},
	}
}

func TestMaterializeAndQuery(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	rows, err := w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 30 || rows[0].Count != 6 {
		t.Fatalf("total = %+v", rows)
	}

	rows, err = w.Query(cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("part 1 rows = %+v", rows)
	}
	if rows[0].Sum != 12 || rows[1].Sum != 2 {
		t.Fatalf("part 1 sums = %+v", rows)
	}

	st := w.Stat()
	if st.Views != 4 || st.Points == 0 || st.Bytes == 0 {
		t.Fatalf("stat = %+v", st)
	}
	if w.Generation() != 1 {
		t.Fatalf("generation = %d", w.Generation())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	q := cubetree.Query{
		Node:  []cubetree.Attr{"custkey"},
		Fixed: []cubetree.Pred{{Attr: "custkey", Value: 1}},
	}
	want, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := cubetree.Open(cfg.Dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, err := w2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Sum != want[0].Sum {
		t.Fatalf("reopened query differs: %+v vs %+v", got, want)
	}
	if len(w2.Views()) != 4 {
		t.Fatalf("views after reopen = %d", len(w2.Views()))
	}
}

func TestUpdateMergesIncrement(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	inc := &sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}, {3, 2, 2}},
		measure: []int64{10, 1},
	}
	if err := w.Update(inc); err != nil {
		t.Fatal(err)
	}
	if w.Generation() != 2 {
		t.Fatalf("generation = %d", w.Generation())
	}
	rows, err := w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 41 || rows[0].Count != 8 {
		t.Fatalf("total after update = %+v", rows)
	}
	rows, err = w.Query(cubetree.Query{
		Node: []cubetree.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []cubetree.Pred{
			{Attr: "partkey", Value: 1}, {Attr: "suppkey", Value: 1}, {Attr: "custkey", Value: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 22 {
		t.Fatalf("(1,1,1) = %+v", rows)
	}

	// The updated warehouse survives reopen.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := cubetree.Open(cfg.Dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rows, err = w2.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 41 {
		t.Fatalf("reopened total = %+v", rows)
	}
}

func TestReplicas(t *testing.T) {
	cfg := testConfig(t)
	cfg.Replicas = [][]cubetree.Attr{{"custkey", "suppkey", "partkey"}}
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st := w.Stat(); st.Views != 5 {
		t.Fatalf("views with replica = %d", st.Views)
	}
	// Updates keep replicas in sync.
	inc := &sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{2, 1, 1}},
		measure: []int64{100},
	}
	if err := w.Update(inc); err != nil {
		t.Fatal(err)
	}
	rows, err := w.Query(cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += r.Sum
	}
	if total != 107 {
		t.Fatalf("part 2 total = %d (%+v)", total, rows)
	}
}

func TestExtraMeasuresMinMax(t *testing.T) {
	cfg := testConfig(t)
	cfg.ExtraMeasures = []cubetree.Agg{cubetree.AggMin, cubetree.AggMax}
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Schema(); len(got) != 4 || got[2] != cubetree.AggMin || got[3] != cubetree.AggMax {
		t.Fatalf("schema = %v", got)
	}

	// Per-part measures: part 1 has quantities 5,7,2 -> min 2, max 7.
	rows, err := w.Query(cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mn, mx int64 = 1 << 60, -1
	for _, r := range rows {
		if len(r.Extra) != 2 {
			t.Fatalf("row without extras: %+v", r)
		}
		if r.Extra[0] < mn {
			mn = r.Extra[0]
		}
		if r.Extra[1] > mx {
			mx = r.Extra[1]
		}
	}
	if mn != 2 || mx != 7 {
		t.Fatalf("part 1 min/max = %d/%d, want 2/7", mn, mx)
	}

	// Grand total with extras: min over all = 2, max = 9.
	rows, err = w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Extra[0] != 2 || rows[0].Extra[1] != 9 {
		t.Fatalf("total extras = %v", rows[0].Extra)
	}

	// Updates fold min/max too: a new quantity 100 raises the max, and a
	// quantity 1 lowers the min.
	if err := w.Update(&sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{2, 1, 1}, {3, 1, 3}},
		measure: []int64{100, 1},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err = w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Extra[0] != 1 || rows[0].Extra[1] != 100 {
		t.Fatalf("total extras after update = %v", rows[0].Extra)
	}

	// Extras survive reopen.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := cubetree.Open(cfg.Dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Schema(); len(got) != 4 {
		t.Fatalf("reopened schema = %v", got)
	}
	rows, err = w2.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Extra[1] != 100 {
		t.Fatalf("reopened extras = %v", rows[0].Extra)
	}
}

func TestQueriesConcurrentWithUpdate(t *testing.T) {
	// Queries keep returning consistent snapshots while updates swap
	// forest generations underneath. Run with -race.
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := w.Query(cubetree.Query{})
				if err != nil {
					errCh <- err
					return
				}
				// The total only grows as updates land; it must always be a
				// valid snapshot (>= the initial 30).
				if len(rows) != 1 || rows[0].Sum < 30 {
					errCh <- fmt.Errorf("inconsistent snapshot: %+v", rows)
					return
				}
			}
		}()
	}
	for day := 0; day < 5; day++ {
		inc := &sliceRows{
			cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
			rows:    [][]int64{{1, 1, 1}},
			measure: []int64{int64(day + 1)},
		}
		if err := w.Update(inc); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	rows, err := w.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 30+1+2+3+4+5 {
		t.Fatalf("final sum = %d", rows[0].Sum)
	}
	if w.Generation() != 6 {
		t.Fatalf("generation = %d", w.Generation())
	}
}

func TestExtraMeasuresValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.ExtraMeasures = []cubetree.Agg{cubetree.AggSum}
	if _, err := cubetree.Materialize(cfg, testViews(), facts()); err == nil {
		t.Fatal("duplicate sum measure accepted")
	}
}

func TestCrashedUpdateLeavesOldGenerationIntact(t *testing.T) {
	// A crash between building the next generation and switching the
	// catalog must not hurt the current generation: the catalog is written
	// atomically and still points at the old forest.
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate crash debris: a half-written next generation directory.
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "gen-000002"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, "gen-000002", "tree0.ct"),
		make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := cubetree.Open(cfg.Dir, nil)
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	defer w2.Close()
	if w2.Generation() != 1 {
		t.Fatalf("generation = %d", w2.Generation())
	}
	rows, err := w2.Query(cubetree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 30 {
		t.Fatalf("total = %+v", rows)
	}
	// And a subsequent update still succeeds, overwriting the debris.
	if err := w2.Update(&sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}},
		measure: []int64{1},
	}); err != nil {
		t.Fatal(err)
	}
	if w2.Generation() != 2 {
		t.Fatalf("generation after recovery update = %d", w2.Generation())
	}
}

func TestVerify(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := w.Update(&sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{2, 2, 2}},
		measure: []int64{1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
}

func TestRemove(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.Dir); !os.IsNotExist(err) {
		t.Fatalf("directory survives Remove: %v", err)
	}
}

func TestQuerySQL(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	headers, rows, err := w.QuerySQL(
		"SELECT suppkey, sum(quantity), count(*), avg(quantity) FROM sales WHERE partkey = 1 GROUP BY suppkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 4 || headers[0] != "suppkey" {
		t.Fatalf("headers = %v", headers)
	}
	// part 1: supp 1 -> 12/2 rows, supp 2 -> 2/1.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "1" || rows[0][1] != "12" || rows[0][2] != "2" || rows[0][3] != "6.00" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if rows[1][0] != "2" || rows[1][1] != "2" {
		t.Fatalf("row 1 = %v", rows[1])
	}

	// BETWEEN maps to a range predicate.
	_, rows, err = w.QuerySQL("SELECT sum(quantity) FROM sales WHERE partkey BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	// parts 1,2 in ranges; rows grouped by partkey implicitly: 2 rows.
	var total int64
	for _, r := range rows {
		var v int64
		fmt.Sscan(r[0], &v)
		total += v
	}
	if total != 21 { // 5+7+2 (part1) + 3+4 (part2)
		t.Fatalf("between total = %d (%v)", total, rows)
	}

	if _, _, err := w.QuerySQL("SELECT nonsense FROM t"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	// MIN requires extra measures.
	if _, _, err := w.QuerySQL("SELECT min(quantity) FROM sales"); err == nil {
		t.Fatal("min over default schema accepted")
	}
}

func TestExplain(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	plan, err := w.ExplainSQL("SELECT sum(quantity) FROM sales WHERE custkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	// The custkey query must plan onto the dedicated custkey view (named
	// "c" in testViews).
	if want := "c{custkey}"; !strings.Contains(plan, want) {
		t.Fatalf("plan %q does not mention %s", plan, want)
	}
}

func TestMaterializeValidation(t *testing.T) {
	if _, err := cubetree.Materialize(cubetree.Config{}, testViews(), facts()); err == nil {
		t.Fatal("missing Dir accepted")
	}
	if _, err := cubetree.Materialize(testConfig(t), nil, facts()); err == nil {
		t.Fatal("no views accepted")
	}
	cfg := testConfig(t)
	cfg.Replicas = [][]cubetree.Attr{{"bogus"}}
	if _, err := cubetree.Materialize(cfg, testViews(), facts()); err == nil {
		t.Fatal("bogus replica accepted")
	}
}
