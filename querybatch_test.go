package cubetree_test

import (
	"context"
	"errors"
	"testing"

	"cubetree"
	"cubetree/internal/workload"
)

// batchQueries is a mixed query set spanning several lattice nodes, used by
// the QueryBatch tests.
func batchQueries() []cubetree.Query {
	return []cubetree.Query{
		{}, // super-aggregate
		{Node: []cubetree.Attr{"partkey", "suppkey"}},
		{Node: []cubetree.Attr{"partkey", "suppkey"},
			Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}}},
		{Node: []cubetree.Attr{"custkey"},
			Fixed: []cubetree.Pred{{Attr: "custkey", Value: 3}}},
		{Node: []cubetree.Attr{"partkey", "suppkey", "custkey"},
			Fixed: []cubetree.Pred{
				{Attr: "partkey", Value: 1}, {Attr: "suppkey", Value: 1}, {Attr: "custkey", Value: 1}}},
		{Node: []cubetree.Attr{"partkey", "suppkey", "custkey"},
			Fixed: []cubetree.Pred{{Attr: "suppkey", Value: 2}}},
	}
}

// TestQueryBatchSerialParallelAgree pins the executor equivalence: a
// parallel batch must return exactly the rows the serial loop returns.
func TestQueryBatchSerialParallelAgree(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	queries := batchQueries()
	serial, err := w.QueryBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := w.QueryBatch(queries, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range queries {
			if !workload.EqualRows(got[i], serial[i]) {
				t.Fatalf("parallelism %d: query %d (%s) differs from serial", par, i, queries[i])
			}
		}
	}
}

// TestQueryBatchOldOrNewDuringUpdate drives concurrent QueryBatch calls
// against a live Update and asserts every single query's answer is exactly
// the old generation's or the new generation's — never a mix, never a torn
// read. Run with -race.
func TestQueryBatchOldOrNewDuringUpdate(t *testing.T) {
	cfg := testConfig(t)
	w, err := cubetree.Materialize(cfg, testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	queries := batchQueries()
	oldRes, err := w.QueryBatch(queries, 1)
	if err != nil {
		t.Fatal(err)
	}

	// The delta touches partkey 1 / suppkey 1 / custkey 1, so most query
	// answers change between the generations.
	inc := &sliceRows{
		cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}, {3, 2, 2}},
		measure: []int64{100, 7},
	}
	done := make(chan error, 1)
	go func() { done <- w.Update(inc) }()

	var batches [][][]cubetree.Row
loop:
	for {
		res, err := w.QueryBatch(queries, 4)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, res)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break loop
		default:
		}
	}

	newRes, err := w.QueryBatch(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if workload.EqualRows(newRes[0], oldRes[0]) {
		t.Fatal("update did not change the super-aggregate; the test would assert nothing")
	}
	for b, batch := range batches {
		for i, rows := range batch {
			if !workload.EqualRows(rows, oldRes[i]) && !workload.EqualRows(rows, newRes[i]) {
				t.Fatalf("batch %d query %d (%s): answer matches neither generation: %+v",
					b, i, queries[i], rows)
			}
		}
	}
	if w.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", w.Generation())
	}
}

// TestQueryCtxCancellation pins the context plumbing added for the server:
// a cancelled context must stop query execution and surface ctx.Err, both
// for single queries and batches.
func TestQueryCtxCancellation(t *testing.T) {
	w, err := cubetree.Materialize(testConfig(t), testViews(), facts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.QueryCtx(ctx, cubetree.Query{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx with cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := w.QueryBatchCtx(ctx, batchQueries(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatchCtx with cancelled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := w.QuerySQLCtx(ctx, "SELECT sum(quantity) FROM facts"); !errors.Is(err, context.Canceled) {
		t.Fatalf("QuerySQLCtx with cancelled ctx = %v, want context.Canceled", err)
	}

	// A live context still works through the same paths.
	rows, err := w.QueryCtx(context.Background(), cubetree.Query{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("QueryCtx = %v, %v", rows, err)
	}
}
