// Package cubetree implements the Cubetree storage organization for ROLAP
// aggregate views (Kotidis & Roussopoulos, SIGMOD 1998): materialized
// group-by views stored in a small forest of packed, compressed R-trees
// that combine storage and indexing in one structure, answer slice queries
// with R-tree searches, and are refreshed by merge-packing sorted deltas
// with purely sequential I/O.
//
// The top-level API is the Warehouse: point Materialize at a fact-row
// stream and a set of views, then Query it and Update it with increments.
//
//	views := []cubetree.View{
//		cubetree.NewView("top", "partkey", "suppkey", "custkey"),
//		cubetree.NewView("ps", "partkey", "suppkey"),
//		cubetree.NewView("c", "custkey"),
//		cubetree.NewView("all"),
//	}
//	w, err := cubetree.Materialize(cfg, views, rows)
//	rows, err := w.Query(cubetree.Query{
//		Node:  []cubetree.Attr{"partkey", "suppkey"},
//		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 17}},
//	})
//
// The internal packages expose the full machinery: the packed R-tree
// (internal/rtree), the SelectMapping algorithm and forest (internal/core),
// the sort-based cube computation (internal/cube), the conventional
// relational baseline (internal/relstore), the GHRU greedy view/index
// selection (internal/greedy), and the paper's full experiment suite
// (internal/experiment).
package cubetree

import (
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// Attr names a grouping attribute of the fact stream. Attribute values are
// strictly positive int64 keys.
type Attr = lattice.Attr

// View is an aggregate view definition: a projection list over fact
// attributes. The attribute order is the view's coordinate mapping inside
// its Cubetree (and therefore its physical sort order).
type View = lattice.View

// NewView builds a view definition; a view with no attributes is the
// super-aggregate over the whole fact stream.
func NewView(name string, attrs ...Attr) View { return lattice.NewView(name, attrs...) }

// Query is a slice query: group the measure by Node's attributes, with
// equality predicates on a subset of them.
type Query = workload.Query

// Pred is an equality predicate within a Query.
type Pred = workload.Pred

// Row is one query result row: the node attribute values plus SUM and
// COUNT of the measure (AVG via Row.Avg).
type Row = workload.Row

// QueryProfile is the EXPLAIN-ANALYZE-style breakdown filled by
// Warehouse.QueryProfiledCtx (and, with per-shard detail, by a distributed
// coordinator's profiled queries).
type QueryProfile = workload.QueryProfile

// RowIter streams fact rows into Materialize and Update. Implementations
// must answer Value for every attribute named by the warehouse's views.
type RowIter = cube.RowIter

// Hierarchy declares that one attribute is a function of another (brand =
// f(partkey), year = f(monthkey)); declared hierarchies let roll-up views
// derive from finer materialized views instead of re-reading the fact
// stream. Because the mapping is a Go function it is not persisted: after
// Open, call Warehouse.UseHierarchies again before Update to keep the
// optimization (results are identical either way).
type Hierarchy = cube.Hierarchy

// Agg identifies an aggregate measure stored per point. SUM and COUNT are
// always present (so AVG is always derivable); AggMin and AggMax can be
// added via Config.ExtraMeasures — the paper's "multiple aggregation
// functions for each point" extension.
type Agg = lattice.Agg

// Aggregate measure identifiers.
const (
	AggSum   = lattice.AggSum
	AggCount = lattice.AggCount
	AggMin   = lattice.AggMin
	AggMax   = lattice.AggMax
)

// Stats counts page-level I/O. Attach one via Config to observe the
// sequential/random I/O profile of a warehouse.
type Stats = pager.Stats

// CostModel prices counted I/O; see Disk1998 for the paper's testbed.
type CostModel = pager.CostModel

// Disk1998 approximates the 1998 disk of the paper's evaluation; SSD2020 a
// modern NVMe device. Use with Stats snapshots to compare storage designs
// the way the paper measures them.
var (
	Disk1998 = pager.Disk1998
	SSD2020  = pager.SSD2020
)

// Version identifies this release of the library.
const Version = "1.0.0"

// Config controls warehouse construction.
type Config struct {
	// Dir is the warehouse directory (created if missing).
	Dir string
	// Domains gives the number of distinct values per attribute; the query
	// planner uses it for selectivity estimates. Optional but recommended.
	Domains map[Attr]int64
	// Replicas lists extra sort orders to materialize; each must be a
	// permutation of some selected view's attributes. Replicas trade space
	// for making more predicate combinations contiguous on disk.
	Replicas [][]Attr
	// PoolPages is the buffer pool capacity per Cubetree (default 256
	// pages of 8 KiB).
	PoolPages int
	// ExhaustionWait bounds how long a query blocked on a fully pinned
	// buffer pool waits for a frame before failing with
	// pager.ErrPoolExhausted (default 200ms). The returned error carries
	// the waited duration, so an admission layer can translate exhaustion
	// into an honest Retry-After.
	ExhaustionWait time.Duration
	// MemLimit bounds the external sorter's memory during materialization
	// and updates (default 16 MiB).
	MemLimit int
	// ExtraMeasures adds measures beyond SUM and COUNT to every stored
	// point (AggMin and/or AggMax). Query results expose them via
	// Row.Extra in this order.
	ExtraMeasures []Agg
	// Hierarchies declares attribute dependencies used to derive roll-up
	// views from finer ones during materialization and updates.
	Hierarchies []Hierarchy
	// Workers bounds how many views are sorted and derived concurrently
	// during Materialize and Update (default 1).
	Workers int
	// Stats receives page I/O accounting. Optional.
	Stats *Stats
	// Obs attaches an observability sink (metrics, traces, slow-query log)
	// to the warehouse; see NewObserver and ServeDebug. Optional: when nil,
	// the query and refresh paths stay entirely uninstrumented.
	Obs *Observer
	// PackFormat selects the leaf page layout of every Cubetree:
	// PackFormatV1 stores row-major fixed-width tuples, PackFormatV2 (the
	// default) stores column-major leaves with delta/bit-packed coordinates
	// and per-leaf zone maps. Files of either format remain readable
	// regardless of this setting; it only affects what new builds and
	// refreshes write.
	PackFormat int
}

// Leaf pack formats for Config.PackFormat.
const (
	// PackFormatDefault lets the library choose (currently PackFormatV2).
	PackFormatDefault = 0
	// PackFormatV1 is the row-major fixed-width leaf layout.
	PackFormatV1 = 1
	// PackFormatV2 is the column-major compressed leaf layout.
	PackFormatV2 = 2
)
