package cubetree

import (
	"cubetree/internal/core"
	"cubetree/internal/obs"
)

// ViewAnalytics is one view placement's storage shape and attributed
// workload traffic; see Warehouse.ViewAnalytics.
type ViewAnalytics = core.ViewAnalytics

// Observer is the observability sink a process attaches to a warehouse (or
// any engine): a metrics registry with lock-free counters, gauges, and
// latency histograms; a tracer keeping a ring of recent span trees; and a
// slow-query log. Attach one with Config.Obs or Warehouse.SetObserver, then
// expose it with ServeDebug. A nil *Observer disables all instrumentation at
// zero cost.
type Observer = obs.Observer

// ObserverOptions configures NewObserver.
type ObserverOptions = obs.Options

// NewObserver creates an observer with every sink attached: a registry
// pre-populated with the query-path metrics, a tracer, and a slow-query log.
func NewObserver(opts ObserverOptions) *Observer { return obs.New(opts) }
