package cubetree

import (
	"runtime"
	"strconv"

	"cubetree/internal/core"
	"cubetree/internal/dist"
	"cubetree/internal/obs"
)

// ViewAnalytics is one view placement's storage shape and attributed
// workload traffic; see Warehouse.ViewAnalytics.
type ViewAnalytics = core.ViewAnalytics

// Observer is the observability sink a process attaches to a warehouse (or
// any engine): a metrics registry with lock-free counters, gauges, and
// latency histograms; a tracer keeping a ring of recent span trees; and a
// slow-query log. Attach one with Config.Obs or Warehouse.SetObserver, then
// expose it with ServeDebug. A nil *Observer disables all instrumentation at
// zero cost.
type Observer = obs.Observer

// ObserverOptions configures NewObserver.
type ObserverOptions = obs.Options

// NewObserver creates an observer with every sink attached: a registry
// pre-populated with the query-path metrics, a tracer, and a slow-query log.
// The registry also carries the process identity (build_info with the Go
// version, default pack format, and wire protocol version; process start
// time and uptime) and the go_* runtime collector (heap, GC pauses,
// goroutines, scheduler latency) — all evaluated lazily at snapshot time, so
// they cost nothing on query hot paths.
func NewObserver(opts ObserverOptions) *Observer {
	o := obs.New(opts)
	obs.EnableRuntimeMetrics(o.Registry)
	obs.RegisterBuildInfo(o.Registry, obs.BuildInfo{
		GoVersion:    runtime.Version(),
		PackFormat:   packFormatLabel(PackFormatDefault),
		WireProtocol: strconv.Itoa(dist.Version),
	})
	return o
}

// packFormatLabel names a Config.PackFormat value for the build_info gauge.
func packFormatLabel(f int) string {
	switch f {
	case PackFormatV1:
		return "v1"
	default: // PackFormatDefault resolves to the current default, V2
		return "v2"
	}
}
