package cubetree

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// Warehouse is a set of materialized aggregate views stored as a forest of
// Cubetrees. It is built once with Materialize, queried concurrently with
// Query, and refreshed in bulk with Update, which merge-packs a sorted
// delta into a fresh forest generation and atomically switches over —
// exactly the paper's Figure 15 refresh cycle.
type Warehouse struct {
	cfg    Config
	views  []View
	schema lattice.Schema

	// mu guards forest and generation: queries take the read lock, and
	// Update holds the write lock only for the generation switch, so
	// queries keep flowing against the old forest while the new one is
	// merge-packed — the paper's zero-query-downtime refresh.
	mu         sync.RWMutex
	forest     *core.Forest
	generation int

	// refresh tracks the merge-pack phase of an in-flight Update so the
	// registry's progress/ETA gauges can report it; nil when idle.
	refresh atomic.Pointer[refreshProgress]

	obs *obs.Observer
}

// refreshProgress is a snapshot of one refresh's merge-pack phase: progress
// is the fraction of ExpectedPages written (sequential writes since
// StartWrites), and the ETA extrapolates the observed write rate. Expected
// page counts come from the merge-pack arithmetic — the old forest's pages
// scaled by the delta's relative size — so the estimate is coarse but derived
// from real layout, not wall-clock guessing.
type refreshProgress struct {
	Start         time.Time
	StartWrites   uint64
	ExpectedPages uint64
}

// fraction returns completed ∈ [0,1] given the current write counter.
func (rp *refreshProgress) fraction(writes uint64) float64 {
	if rp.ExpectedPages == 0 {
		return 0
	}
	done := float64(writes-rp.StartWrites) / float64(rp.ExpectedPages)
	if done > 1 {
		done = 1
	}
	return done
}

// etaNanos estimates the remaining merge-pack time from the write rate so
// far; 0 until there is signal.
func (rp *refreshProgress) etaNanos(writes uint64, now time.Time) int64 {
	done := rp.fraction(writes)
	elapsed := now.Sub(rp.Start)
	if done <= 0 || elapsed <= 0 {
		return 0
	}
	total := time.Duration(float64(elapsed) / done)
	if total <= elapsed {
		return 0
	}
	return int64(total - elapsed)
}

// SetObserver attaches an observability sink to the warehouse: queries are
// counted, timed, and slow-logged; refreshes are traced phase by phase; and
// the registry gains generation and buffer-pool occupancy gauges plus the
// warehouse's I/O counters. Pass nil to detach. Attach before serving
// queries; the call is not synchronized with in-flight ones.
func (w *Warehouse) SetObserver(o *obs.Observer) {
	w.obs = o
	w.mu.RLock()
	forest := w.forest
	w.mu.RUnlock()
	if forest != nil {
		forest.SetObserver(o)
	}
	if o == nil {
		return
	}
	if w.cfg.Stats != nil {
		o.Registry.AttachStats(w.cfg.Stats)
	}
	o.Registry.GaugeFunc("generation", func() int64 { return int64(w.Generation()) })
	pools := func(fn func(pager.PoolInfo) int64) int64 {
		w.mu.RLock()
		defer w.mu.RUnlock()
		var n int64
		for _, pi := range w.forest.PoolInfos() {
			n += fn(pi)
		}
		return n
	}
	o.Registry.GaugeFunc("pool_capacity_frames", func() int64 {
		return pools(func(pi pager.PoolInfo) int64 { return int64(pi.Capacity) })
	})
	o.Registry.GaugeFunc("pool_resident_frames", func() int64 {
		return pools(func(pi pager.PoolInfo) int64 { return int64(pi.Frames) })
	})
	o.Registry.GaugeFunc("pool_pinned_frames", func() int64 {
		return pools(func(pi pager.PoolInfo) int64 { return int64(pi.Pinned) })
	})
	// Refresh progress: 0/1 activity flag, merge-pack progress in permille
	// (integer gauges can't carry a fraction), and an ETA extrapolated from
	// the sequential-write rate against the expected page count.
	o.Registry.GaugeFunc("refresh_active", func() int64 {
		if w.refresh.Load() != nil {
			return 1
		}
		return 0
	})
	o.Registry.GaugeFunc("refresh_progress_permille", func() int64 {
		rp := w.refresh.Load()
		if rp == nil || w.cfg.Stats == nil {
			return 0
		}
		return int64(rp.fraction(w.cfg.Stats.SeqWrites()) * 1000)
	})
	o.Registry.GaugeFunc("refresh_eta_ns", func() int64 {
		rp := w.refresh.Load()
		if rp == nil || w.cfg.Stats == nil {
			return 0
		}
		return rp.etaNanos(w.cfg.Stats.SeqWrites(), time.Now())
	})
}

// Observer returns the attached observability sink, or nil.
func (w *Warehouse) Observer() *obs.Observer { return w.obs }

// Schema returns the measure schema stored per aggregate point: SUM,
// COUNT, then Config.ExtraMeasures in order.
func (w *Warehouse) Schema() []Agg { return append([]Agg(nil), w.schema...) }

// warehouse.json records the warehouse-level catalog.
const warehouseCatalog = "warehouse.json"

type warehouseJSON struct {
	Generation int              `json:"generation"`
	Views      []viewJSON       `json:"views"`
	Replicas   [][]string       `json:"replicas,omitempty"`
	Domains    map[string]int64 `json:"domains,omitempty"`
	Schema     []string         `json:"schema,omitempty"`
	PoolPages  int              `json:"pool_pages,omitempty"`
}

type viewJSON struct {
	Name  string   `json:"name,omitempty"`
	Attrs []string `json:"attrs"`
}

// Materialize computes the given views from one pass over rows (plus
// derivations between views, each computed from its smallest parent) and
// bulk-loads them into a Cubetree forest under cfg.Dir. The view set is
// mapped to the minimal forest by the paper's SelectMapping algorithm.
func Materialize(cfg Config, views []View, rows RowIter) (*Warehouse, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("cubetree: no views to materialize")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cubetree: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Warehouse{cfg: cfg, views: append([]View(nil), views...), generation: 1}
	schema, err := lattice.NewSchema(cfg.ExtraMeasures...)
	if err != nil {
		return nil, err
	}
	w.schema = schema

	// Clear debris a crashed earlier attempt may have left: Materialize
	// must succeed over a stale scratch or generation directory.
	scratch := filepath.Join(cfg.Dir, "scratch")
	os.RemoveAll(scratch)
	os.RemoveAll(w.genDir())

	o := cfg.Obs
	tr := o.StartTrace("materialize")
	defer tr.End()

	computeSp := tr.Child("compute")
	data, err := cube.Compute(scratch, rows, w.views, cube.Options{
		MemLimit:    cfg.MemLimit,
		Stats:       cfg.Stats,
		Schema:      schema,
		Hierarchies: cfg.Hierarchies,
		Workers:     cfg.Workers,
		Span:        computeSp,
	})
	o.ObservePhase("materialize_compute", computeSp)
	if err != nil {
		tr.SetStr("error", err.Error())
		return nil, err
	}
	defer removeAll(data, scratch)

	sources, err := w.sources(data, scratch)
	if err != nil {
		tr.SetStr("error", err.Error())
		return nil, err
	}
	buildSp := tr.Child("merge-pack")
	forest, err := core.Build(w.genDir(), sources, core.BuildOptions{
		PoolPages:      cfg.PoolPages,
		ExhaustionWait: cfg.ExhaustionWait,
		Domains:        cfg.Domains,
		Stats:          cfg.Stats,
		Workers:        cfg.Workers,
		Span:           buildSp,
		PackFormat:     cfg.PackFormat,
	})
	o.ObservePhase("materialize_build", buildSp)
	if err != nil {
		tr.SetStr("error", err.Error())
		pager.RemoveAll(w.genDir())
		return nil, err
	}
	w.forest = forest
	swapSp := tr.Child("swap")
	defer o.ObservePhase("materialize_swap", swapSp)
	if err := w.writeCatalog(w.generation); err != nil {
		forest.Close()
		// The rename inside the atomic catalog write may have committed
		// before the failure (e.g. the directory fsync failed). Only when
		// the catalog is known gone is the generation safe to delete;
		// otherwise leave it for Open to serve or sweep.
		if pager.RemoveAll(filepath.Join(cfg.Dir, warehouseCatalog)) == nil {
			pager.RemoveAll(w.genDir())
		}
		tr.SetStr("error", err.Error())
		return nil, err
	}
	w.SetObserver(o)
	return w, nil
}

// sources assembles the forest build inputs: every view's data plus the
// configured replica sort orders.
func (w *Warehouse) sources(data map[string]*cube.ViewData, scratch string) ([]*cube.ViewData, error) {
	sources := make([]*cube.ViewData, 0, len(w.views)+len(w.cfg.Replicas))
	for _, view := range w.views {
		vd, ok := data[view.Key()]
		if !ok {
			return nil, fmt.Errorf("cubetree: view %s not computed", view)
		}
		sources = append(sources, vd)
	}
	for _, order := range w.cfg.Replicas {
		base, ok := data[lattice.CanonKey(order)]
		if !ok {
			return nil, fmt.Errorf("cubetree: replica %v does not match a selected view", order)
		}
		rep, err := cube.Reorder(scratch, base, order, cube.Options{Stats: w.cfg.Stats})
		if err != nil {
			return nil, err
		}
		sources = append(sources, rep)
	}
	return sources, nil
}

func (w *Warehouse) genDir() string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("gen-%06d", w.generation))
}

func (w *Warehouse) writeCatalog(generation int) error {
	cat := warehouseJSON{
		Generation: generation,
		Domains:    map[string]int64{},
		Schema:     w.schema.Strings(),
		PoolPages:  w.cfg.PoolPages,
	}
	for a, d := range w.cfg.Domains {
		cat.Domains[string(a)] = d
	}
	for _, v := range w.views {
		vj := viewJSON{Name: v.Name}
		for _, a := range v.Attrs {
			vj.Attrs = append(vj.Attrs, string(a))
		}
		cat.Views = append(cat.Views, vj)
	}
	for _, order := range w.cfg.Replicas {
		var oo []string
		for _, a := range order {
			oo = append(oo, string(a))
		}
		cat.Replicas = append(cat.Replicas, oo)
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	return pager.WriteFileAtomic(filepath.Join(w.cfg.Dir, warehouseCatalog), data, 0o644)
}

// Open loads an existing warehouse from dir. stats may be nil.
//
// Open performs crash recovery before serving: generation and scratch
// directories not referenced by the catalog — debris of a Materialize or
// Update killed mid-flight — are deleted, and the referenced generation is
// verified to exist with well-formed tree headers. Because the catalog swap
// is atomic, the referenced generation is always complete: Open serves
// exactly the state of the last committed refresh.
func Open(dir string, stats *Stats) (*Warehouse, error) {
	raw, err := os.ReadFile(filepath.Join(dir, warehouseCatalog))
	if err != nil {
		return nil, fmt.Errorf("cubetree: open warehouse: %w", err)
	}
	var cat warehouseJSON
	if err := json.Unmarshal(raw, &cat); err != nil {
		return nil, fmt.Errorf("cubetree: parse warehouse catalog: %w", err)
	}
	sweepStale(dir, cat.Generation, stats)
	cfg := Config{Dir: dir, PoolPages: cat.PoolPages, Stats: stats,
		Domains: map[Attr]int64{}}
	for a, d := range cat.Domains {
		cfg.Domains[Attr(a)] = d
	}
	for _, oo := range cat.Replicas {
		order := make([]Attr, len(oo))
		for i, a := range oo {
			order[i] = Attr(a)
		}
		cfg.Replicas = append(cfg.Replicas, order)
	}
	schema, err := lattice.ParseSchema(cat.Schema)
	if err != nil {
		return nil, fmt.Errorf("cubetree: %w", err)
	}
	cfg.ExtraMeasures = schema.Extras()
	w := &Warehouse{cfg: cfg, schema: schema, generation: cat.Generation}
	for _, vj := range cat.Views {
		attrs := make([]Attr, len(vj.Attrs))
		for i, a := range vj.Attrs {
			attrs[i] = Attr(a)
		}
		w.views = append(w.views, View{Name: vj.Name, Attrs: attrs})
	}
	forest, err := core.Open(w.genDir(), stats)
	if err != nil {
		return nil, err
	}
	w.forest = forest
	return w, nil
}

// sweepStale is the recovery sweep: it deletes generation directories other
// than the committed one, scratch state, and atomic-write temp files — all
// debris only a crash can leave behind. Removal is best-effort; anything
// that survives is retried on the next Open. Removals are counted in
// stats.StaleRemoved.
func sweepStale(dir string, generation int, stats *Stats) {
	keep := fmt.Sprintf("gen-%06d", generation)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var removed uint64
	for _, e := range entries {
		name := e.Name()
		stale := filepath.Join(dir, name)
		switch {
		case name == keep:
		case e.IsDir() && (name == "scratch" || strings.HasPrefix(name, "gen-")):
			if os.RemoveAll(stale) == nil {
				removed++
			}
		case !e.IsDir() && strings.Contains(name, ".tmp-"):
			if os.Remove(stale) == nil {
				removed++
			}
		}
	}
	if stats != nil && removed > 0 {
		stats.AddStaleRemoved(removed)
	}
}

// Views returns the warehouse's view definitions.
func (w *Warehouse) Views() []View { return append([]View(nil), w.views...) }

// SetExhaustionWait retunes how long a query blocked on a fully pinned
// buffer pool waits before failing with pager.ErrPoolExhausted; d <= 0
// restores the 200ms default. Useful after Open, where the tuning is not
// part of the persisted catalog; it carries over refreshes.
func (w *Warehouse) SetExhaustionWait(d time.Duration) {
	w.mu.Lock()
	w.cfg.ExhaustionWait = d
	forest := w.forest
	w.mu.Unlock()
	forest.SetExhaustionWait(d)
}

// UseHierarchies re-declares attribute hierarchies after Open (hierarchy
// mapping functions are not persisted in the catalog). It affects only the
// efficiency of subsequent Updates, never results.
func (w *Warehouse) UseHierarchies(hs ...Hierarchy) {
	w.cfg.Hierarchies = append([]Hierarchy(nil), hs...)
}

// Domains returns the attribute domain sizes recorded at materialization.
func (w *Warehouse) Domains() map[Attr]int64 {
	out := make(map[Attr]int64, len(w.cfg.Domains))
	for a, d := range w.cfg.Domains {
		out[a] = d
	}
	return out
}

// Generation returns the current forest generation (1 after Materialize,
// +1 per Update).
func (w *Warehouse) Generation() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.generation
}

// Query answers a slice query from the best-placed view or replica. It is
// safe for concurrent use, including while an Update is in progress.
func (w *Warehouse) Query(q Query) ([]Row, error) {
	return w.QueryCtx(context.Background(), q)
}

// QueryCtx is Query under a context: when ctx is cancelled or past its
// deadline, an in-flight leaf scan stops within a bounded number of points
// and the context's error is returned. Servers use it to enforce
// per-request timeouts that actually stop the work.
func (w *Warehouse) QueryCtx(ctx context.Context, q Query) ([]Row, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.forest.ExecuteCtx(ctx, q)
}

// QueryProfiledCtx is QueryCtx, additionally filling prof with an
// EXPLAIN-ANALYZE-style breakdown of the execution (view routed, points
// scanned, zone-map leaf pages skipped vs read, pool hit/miss delta, wall
// time). A nil prof is exactly QueryCtx: the profile-off path takes the same
// branches and allocates nothing extra.
func (w *Warehouse) QueryProfiledCtx(ctx context.Context, q Query, prof *QueryProfile) ([]Row, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.forest.ExecuteProfiledCtx(ctx, q, prof)
}

// queryEngine adapts Warehouse's per-query locking to workload.Engine so
// QueryBatch can reuse the shared worker pool.
type queryEngine struct{ w *Warehouse }

func (e queryEngine) Execute(q Query) ([]Row, error) { return e.w.Query(q) }

func (e queryEngine) ExecuteCtx(ctx context.Context, q Query) ([]Row, error) {
	return e.w.QueryCtx(ctx, q)
}

// QueryBatch answers qs with up to parallelism concurrent workers (<= 1
// means serial) and returns one result slice per query, in query order.
// Each query acquires the generation read lock independently, so a batch
// may straddle a concurrent Update: every individual query sees exactly one
// committed generation, but different queries of the batch may see
// different ones — the same guarantee concurrent single Queries have.
// Serial and parallel batches return identical results for a fixed
// generation; the first error is returned after in-flight queries drain.
func (w *Warehouse) QueryBatch(qs []Query, parallelism int) ([][]Row, error) {
	return w.QueryBatchCtx(context.Background(), qs, parallelism)
}

// QueryBatchCtx is QueryBatch under a context: queries not yet started when
// ctx is done are never dispatched, in-flight scans are abandoned, and the
// context's error is returned.
func (w *Warehouse) QueryBatchCtx(ctx context.Context, qs []Query, parallelism int) ([][]Row, error) {
	if w.obs != nil {
		return workload.ExecuteBatchObservedCtx(ctx, queryEngine{w}, qs, parallelism, w.obs.Inflight, w.obs.Batches)
	}
	return workload.ExecuteBatchCtx(ctx, queryEngine{w}, qs, parallelism)
}

// Update applies an increment: the delta of every view is computed from
// rows with the same sort pipeline used at load, then merge-packed with the
// current forest into a new generation. On success the warehouse switches
// to the new generation and removes the old one. Queries may run
// concurrently with an Update (they see the old generation until the
// switch); concurrent Updates are not supported.
func (w *Warehouse) Update(rows RowIter) error {
	p, err := w.BeginUpdate(rows)
	if err != nil {
		return err
	}
	return p.Commit()
}

// PendingUpdate is a refresh that has been fully prepared — the delta
// sorted and merge-packed into the next generation's forest on disk — but
// not yet committed. Queries keep flowing against the old generation until
// Commit, which is cheap (a catalog rename plus an in-memory pointer swap);
// Abort discards the prepared generation and leaves the warehouse exactly
// as it was. Splitting the refresh this way lets a coordinator run the long
// prepare phase on every shard in parallel and then commit all shards
// inside one brief query-blocking window, so no scatter ever observes a mix
// of generations. Exactly one of Commit or Abort must be called; a
// PendingUpdate is not safe for concurrent use with another BeginUpdate on
// the same warehouse.
type PendingUpdate struct {
	w      *Warehouse
	next   *core.Forest
	oldGen int
	newGen int
	newDir string
	tr     *obs.Span
	o      *obs.Observer
	mu     sync.Mutex
	done   bool
}

// BeginUpdate runs the prepare phase of Update: delta sort, reorder, and
// merge-pack into the next generation directory. On success the returned
// PendingUpdate holds the built-but-uncommitted forest; on failure nothing
// changed and the half-built generation has been removed.
func (w *Warehouse) BeginUpdate(rows RowIter) (*PendingUpdate, error) {
	o := w.obs
	tr := o.StartTrace("refresh")
	fail := func(err error) (*PendingUpdate, error) {
		tr.SetStr("error", err.Error())
		tr.End()
		return nil, err
	}

	scratch := filepath.Join(w.cfg.Dir, "scratch")
	sortSp := tr.Child("delta-sort")
	perView, err := cube.Compute(scratch, rows, w.views, cube.Options{
		MemLimit:    w.cfg.MemLimit,
		Stats:       w.cfg.Stats,
		Schema:      w.schema,
		Hierarchies: w.cfg.Hierarchies,
		Workers:     w.cfg.Workers,
		Span:        sortSp,
	})
	o.ObservePhase("refresh_sort", sortSp)
	if err != nil {
		return fail(err)
	}
	defer removeAll(perView, scratch)

	w.mu.RLock()
	oldForest, oldGen := w.forest, w.generation
	w.mu.RUnlock()

	reorderSp := tr.Child("delta-reorder")
	deltas, err := oldForest.DeltasFor(scratch, perView)
	o.ObservePhase("refresh_reorder", reorderSp)
	if err != nil {
		return fail(err)
	}
	newGen := oldGen + 1
	newDir := filepath.Join(w.cfg.Dir, fmt.Sprintf("gen-%06d", newGen))
	mergeSp := tr.Child("merge-pack")
	w.refresh.Store(newRefreshProgress(oldForest, deltas, w.cfg.Stats))
	defer w.refresh.Store(nil)
	next, err := oldForest.MergeUpdate(newDir, deltas, core.BuildOptions{
		PoolPages:      w.cfg.PoolPages,
		ExhaustionWait: w.cfg.ExhaustionWait,
		Domains:        w.cfg.Domains,
		Stats:          w.cfg.Stats,
		Span:           mergeSp,
		PackFormat:     w.cfg.PackFormat,
	})
	o.ObservePhase("refresh_merge", mergeSp)
	if err != nil {
		pager.RemoveAll(newDir) // don't leak the half-built generation
		return fail(err)
	}
	next.SetObserver(o)
	return &PendingUpdate{
		w: w, next: next, oldGen: oldGen, newGen: newGen, newDir: newDir,
		tr: tr, o: o,
	}, nil
}

// Generation returns the generation number the pending update will commit.
func (p *PendingUpdate) Generation() int { return p.newGen }

// Commit makes the prepared generation authoritative: the catalog rename is
// the commit point, then the in-memory forest is swapped and the old
// generation removed. On failure the old generation stays authoritative on
// disk and in memory, and the prepared one is discarded.
func (p *PendingUpdate) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return fmt.Errorf("cubetree: pending update already committed or aborted")
	}
	p.done = true
	w := p.w
	defer p.tr.End()
	swapSp := p.tr.Child("swap")
	if err := w.writeCatalog(p.newGen); err != nil {
		p.next.Close()
		// The rename may have committed generation newGen before the
		// failure. Put the old catalog back; only once it is authoritative
		// again is the new generation safe to delete. If the restore also
		// fails, keep both generations — Open serves whichever the on-disk
		// catalog names and sweeps the other.
		if w.writeCatalog(p.oldGen) == nil {
			pager.RemoveAll(p.newDir)
		}
		p.o.ObservePhase("refresh_swap", swapSp)
		p.tr.SetStr("error", err.Error())
		return err
	}
	w.mu.Lock()
	oldForest := w.forest
	w.forest = p.next
	w.generation = p.newGen
	w.mu.Unlock()
	p.o.ObservePhase("refresh_swap", swapSp)
	p.tr.SetInt("generation", int64(p.newGen))
	oldForest.Remove()
	return nil
}

// Abort discards the prepared generation. It is a no-op after Commit or a
// previous Abort.
func (p *PendingUpdate) Abort() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil
	}
	p.done = true
	p.tr.SetStr("outcome", "aborted")
	p.tr.End()
	p.next.Close()
	return pager.RemoveAll(p.newDir)
}

// newRefreshProgress sizes the merge-pack about to run: the new generation
// rewrites every page of the old forest plus roughly proportional room for
// the delta points, all as sequential writes on cfg.Stats.
func newRefreshProgress(old *core.Forest, deltas map[string]*cube.ViewData, stats *pager.Stats) *refreshProgress {
	rp := &refreshProgress{Start: time.Now()}
	if stats != nil {
		rp.StartWrites = stats.SeqWrites()
	}
	expected := float64(old.TotalPages())
	if oldPoints := old.Points(); oldPoints > 0 {
		var deltaRows int64
		for _, vd := range deltas {
			deltaRows += vd.Rows
		}
		expected *= 1 + float64(deltaRows)/float64(oldPoints)
	}
	rp.ExpectedPages = uint64(expected)
	return rp
}

// Stat summarizes the warehouse's physical layout.
type Stat struct {
	// Trees is the number of Cubetrees in the forest.
	Trees int
	// Views counts placements, including replicas.
	Views int
	// Points is the number of stored aggregate tuples.
	Points int64
	// Bytes is the total on-disk size.
	Bytes int64
	// LeafFraction is the share of pages that are compressed leaves.
	LeafFraction float64
}

// Stat reports the warehouse's physical layout.
func (w *Warehouse) Stat() Stat {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := Stat{
		Trees:  w.forest.Trees(),
		Views:  len(w.forest.Placements()),
		Points: w.forest.Points(),
		Bytes:  w.forest.TotalBytes(),
	}
	if tp := w.forest.TotalPages(); tp > 0 {
		s.LeafFraction = float64(w.forest.LeafPages()) / float64(tp)
	}
	return s
}

// DebugInfo is the live warehouse state served at /debug/warehouse: the
// committed generation, the view placements, point/byte totals, buffer-pool
// occupancy per tree (with per-shard detail), and the per-view I/O heatmap —
// each leaf run's extent and the page-read traffic attributed to it, in
// placement order, so a renderer can draw the forest's leaf space with hot
// runs highlighted.
type DebugInfo struct {
	Generation   int                  `json:"generation"`
	Trees        int                  `json:"trees"`
	Views        []string             `json:"views"`
	Placements   []string             `json:"placements"`
	Points       int64                `json:"points"`
	Bytes        int64                `json:"bytes"`
	LeafFraction float64              `json:"leaf_fraction"`
	Pools        []pager.PoolInfo     `json:"pools"`
	ViewIO       []core.ViewAnalytics `json:"view_io,omitempty"`
}

// DebugInfo reports the warehouse's live state for the debug endpoint.
func (w *Warehouse) DebugInfo() DebugInfo {
	w.mu.RLock()
	defer w.mu.RUnlock()
	d := DebugInfo{
		Generation: w.generation,
		Trees:      w.forest.Trees(),
		Points:     w.forest.Points(),
		Bytes:      w.forest.TotalBytes(),
		Pools:      w.forest.PoolInfos(),
	}
	if tp := w.forest.TotalPages(); tp > 0 {
		d.LeafFraction = float64(w.forest.LeafPages()) / float64(tp)
	}
	for _, v := range w.views {
		d.Views = append(d.Views, v.String())
	}
	for _, p := range w.forest.Placements() {
		d.Placements = append(d.Placements, fmt.Sprintf("%s @ tree%d", p.View, p.Tree))
	}
	d.ViewIO = w.forest.ViewAnalytics()
	return d
}

// ViewAnalytics reports per-view storage and workload analytics: each
// placement's leaf-run shape (pages, points, compression ratio) plus the
// query and page-read traffic attributed to it since the observer was
// attached. Storage fields are always populated; traffic counters need
// SetObserver.
func (w *Warehouse) ViewAnalytics() []ViewAnalytics {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.forest.ViewAnalytics()
}

// Close flushes and closes the forest.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.forest.Close()
}

// Verify checks the structural invariants of the whole forest (packing
// order, MBR containment, counts, catalog consistency). It reads every
// page, so it is intended for integrity checks, not hot paths.
func (w *Warehouse) Verify() error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.forest.Validate()
}

// Remove closes the warehouse and deletes its directory.
func (w *Warehouse) Remove() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.forest.Close()
	return os.RemoveAll(w.cfg.Dir)
}

// removeAll deletes computed view data and the scratch directory. The
// scratch removal goes through the pager's fault layer so a simulated crash
// leaves the debris for the recovery sweep, as a real one would.
func removeAll(data map[string]*cube.ViewData, scratch string) {
	for _, vd := range data {
		vd.Remove()
	}
	pager.RemoveAll(scratch)
}
