// Quickstart: materialize three aggregate views of a small sales fact
// table into a Cubetree warehouse, query it, and apply a bulk update.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cubetree"
)

// sales is an in-memory fact stream: (product, region) -> quantity.
type sales struct {
	rows [][3]int64 // product, region, quantity
	i    int
}

func (s *sales) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *sales) Value(a cubetree.Attr) (int64, error) {
	r := s.rows[s.i-1]
	switch a {
	case "product":
		return r[0], nil
	case "region":
		return r[1], nil
	}
	return 0, fmt.Errorf("unknown attribute %q", a)
}
func (s *sales) Measure() int64 { return s.rows[s.i-1][2] }

func main() {
	dir, err := os.MkdirTemp("", "cubetree-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	views := []cubetree.View{
		cubetree.NewView("by-product-region", "product", "region"),
		cubetree.NewView("by-product", "product"),
		cubetree.NewView("total"),
	}
	data := &sales{rows: [][3]int64{
		{1, 1, 10}, {1, 2, 5}, {2, 1, 7}, {2, 2, 3}, {3, 1, 12}, {1, 1, 4},
	}}

	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     dir,
		Domains: map[cubetree.Attr]int64{"product": 3, "region": 2},
	}, views, data)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	st := w.Stat()
	fmt.Printf("warehouse: %d cubetrees, %d views, %d points, %d bytes\n",
		st.Trees, st.Views, st.Points, st.Bytes)

	// Total sales per region of product 1.
	rows, err := w.Query(cubetree.Query{
		Node:  []cubetree.Attr{"product", "region"},
		Fixed: []cubetree.Pred{{Attr: "product", Value: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sales of product 1 by region:")
	for _, r := range rows {
		fmt.Printf("  region %d: sum=%d count=%d avg=%.1f\n", r.Group[1], r.Sum, r.Count, r.Avg())
	}

	// Bulk update: one more day of sales, merge-packed into a new
	// forest generation.
	if err := w.Update(&sales{rows: [][3]int64{{1, 1, 100}, {3, 2, 9}}}); err != nil {
		log.Fatal(err)
	}
	rows, err = w.Query(cubetree.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grand total after update (generation %d): sum=%d count=%d\n",
		w.Generation(), rows[0].Sum, rows[0].Count)
}
