// Warehouse runs the paper's full TPC-D pipeline at laptop scale: generate
// the dataset, take the paper's greedy view/index selection, load BOTH
// storage organizations, fire the same random slice-query batch at each,
// and report storage and throughput side by side.
//
//	go run ./examples/warehouse [-sf 0.005]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"cubetree"

	"cubetree/internal/cube"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/relstore"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-D scale factor")
	queries := flag.Int("queries", 50, "random queries per configuration")
	flag.Parse()

	dir, err := os.MkdirTemp("", "cubetree-warehouse-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: 1998})
	sel := greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	fmt.Printf("TPC-D at SF=%.4g: %d facts, %d parts, %d suppliers, %d customers\n",
		*sf, ds.Facts, ds.Parts, ds.Suppliers, ds.Customers)
	fmt.Printf("materialized set V: %d views; index set I: %d indexes (paper's selection)\n\n",
		len(sel.Views), len(sel.Indexes))

	// --- Cubetree warehouse -------------------------------------------------
	cubeStats := &cubetree.Stats{}
	start := time.Now()
	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     filepath.Join(dir, "wh"),
		Domains: ds.Domains(),
		Replicas: [][]cubetree.Attr{
			{tpcd.AttrSupplier, tpcd.AttrCustomer, tpcd.AttrPart},
			{tpcd.AttrCustomer, tpcd.AttrPart, tpcd.AttrSupplier},
		},
		Stats: cubeStats,
	}, sel.Views, &factRows{it: ds.FactRows()})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	st := w.Stat()
	fmt.Printf("cubetrees:    loaded in %v (%d trees, %d placements, %.1f MB)\n",
		time.Since(start).Round(time.Millisecond), st.Trees, st.Views, float64(st.Bytes)/(1<<20))

	// --- Conventional configuration -----------------------------------------
	convStats := &pager.Stats{}
	start = time.Now()
	conv, err := relstore.Create(filepath.Join(dir, "conv"), relstore.Options{
		Domains: ds.Domains(),
		Stats:   convStats,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer conv.Close()
	data, err := cube.Compute(filepath.Join(dir, "scratch"), &factRows{it: ds.FactRows()},
		sel.Views, cube.Options{Stats: convStats})
	if err != nil {
		log.Fatal(err)
	}
	for _, view := range sel.Views {
		if err := conv.LoadView(data[view.Key()]); err != nil {
			log.Fatal(err)
		}
	}
	for _, order := range sel.Indexes {
		if err := conv.BuildIndex(order); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("conventional: loaded in %v (%d tables + %d indexes, %.1f MB)\n\n",
		time.Since(start).Round(time.Millisecond), len(sel.Views), len(sel.Indexes),
		float64(conv.TotalBytes())/(1<<20))

	// --- Identical query batch against both ----------------------------------
	nodes := [][]lattice.Attr{
		{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer},
		{tpcd.AttrPart, tpcd.AttrCustomer},
		{tpcd.AttrCustomer},
	}
	for _, node := range nodes {
		genA := workload.NewGenerator(7, ds.Domains())
		genB := workload.NewGenerator(7, ds.Domains())

		markC := cubeStats.Snapshot()
		start = time.Now()
		for i := 0; i < *queries; i++ {
			if _, err := w.Query(genA.ForNode(node)); err != nil {
				log.Fatal(err)
			}
		}
		cubeWall := time.Since(start)
		cubeIO := cubeStats.Snapshot().Sub(markC)

		markV := convStats.Snapshot()
		start = time.Now()
		for i := 0; i < *queries; i++ {
			if _, err := conv.Execute(genB.ForNode(node)); err != nil {
				log.Fatal(err)
			}
		}
		convWall := time.Since(start)
		convIO := convStats.Snapshot().Sub(markV)

		label := ""
		for i, a := range node {
			if i > 0 {
				label += ","
			}
			label += string(a)
		}
		fmt.Printf("%d queries on {%s}:\n", *queries, label)
		fmt.Printf("  cubetrees:    wall %8v  modelled-1998 %8v\n",
			cubeWall.Round(time.Microsecond), pager.Disk1998.Cost(cubeIO).Round(time.Millisecond))
		fmt.Printf("  conventional: wall %8v  modelled-1998 %8v\n",
			convWall.Round(time.Microsecond), pager.Disk1998.Cost(convIO).Round(time.Millisecond))
	}
}
