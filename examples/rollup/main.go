// Rollup demonstrates the paper's hierarchy discussion (Section 2.1) and
// its V2-style views ("group by part.type"): views are materialized at
// several levels of the part and time hierarchies, and the program
// drills down from yearly totals per brand to monthly detail, then rolls
// back up — each step answered by the most specific materialized view.
//
//	go run ./examples/rollup
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cubetree"

	"cubetree/internal/lattice"
	"cubetree/internal/tpcd"
)

type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	flag.Parse()

	dir, err := os.MkdirTemp("", "cubetree-rollup-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: 7})
	// Views along the hierarchies brand -> part and year -> month. The
	// paper's V2 is the type-level view; V3/V4 mix hierarchy levels with
	// keys.
	views := []cubetree.View{
		cubetree.NewView("by-part", tpcd.AttrPart),
		cubetree.NewView("detail", tpcd.AttrBrand, tpcd.AttrYear, tpcd.AttrMonth),
		cubetree.NewView("by-brand-year", tpcd.AttrBrand, tpcd.AttrYear),
		cubetree.NewView("by-type", tpcd.AttrType), // the paper's V2
		cubetree.NewView("by-year", tpcd.AttrYear),
	}
	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     dir,
		Domains: ds.Domains(),
		// Declared hierarchies let by-type and the brand level derive from
		// finer views instead of re-reading the fact stream.
		Hierarchies: []cubetree.Hierarchy{
			{From: tpcd.AttrPart, To: tpcd.AttrBrand, Map: tpcd.BrandOf},
			{From: tpcd.AttrPart, To: tpcd.AttrType, Map: tpcd.TypeOf},
		},
	}, views, &factRows{it: ds.FactRows()})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	st := w.Stat()
	fmt.Printf("%d facts -> %d hierarchy views (%d points) in %d cubetrees\n\n",
		ds.Facts, st.Views, st.Points, st.Trees)

	// Roll-up: total sales per year.
	rows, err := w.Query(cubetree.Query{Node: []cubetree.Attr{tpcd.AttrYear}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sales per year (view by-year):")
	var bestYear, bestSum int64
	for _, r := range rows {
		fmt.Printf("  %d: %d\n", tpcd.FirstYear+int(r.Group[0])-1, r.Sum)
		if r.Sum > bestSum {
			bestYear, bestSum = r.Group[0], r.Sum
		}
	}

	// Drill-down: the best year per brand.
	rows, err = w.Query(cubetree.Query{
		Node:  []cubetree.Attr{tpcd.AttrBrand, tpcd.AttrYear},
		Fixed: []cubetree.Pred{{Attr: tpcd.AttrYear, Value: bestYear}},
	})
	if err != nil {
		log.Fatal(err)
	}
	var bestBrand, brandSum int64
	for _, r := range rows {
		if r.Sum > brandSum {
			bestBrand, brandSum = r.Group[0], r.Sum
		}
	}
	fmt.Printf("\ndrill-down into %d: top brand is %s with %d units (view by-brand-year, %d brands)\n",
		tpcd.FirstYear+int(bestYear)-1, tpcd.BrandName(bestBrand), brandSum, len(rows))

	// Deeper: that brand's monthly profile in the best year.
	rows, err = w.Query(cubetree.Query{
		Node: []cubetree.Attr{tpcd.AttrBrand, tpcd.AttrYear, tpcd.AttrMonth},
		Fixed: []cubetree.Pred{
			{Attr: tpcd.AttrBrand, Value: bestBrand},
			{Attr: tpcd.AttrYear, Value: bestYear},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monthly detail for %s in %d (view detail):\n",
		tpcd.BrandName(bestBrand), tpcd.FirstYear+int(bestYear)-1)
	for _, r := range rows {
		fmt.Printf("  month %2d: %5d (avg %.1f)\n", r.Group[2], r.Sum, r.Avg())
	}

	// Roll up to the type level (the paper's V2).
	rows, err = w.Query(cubetree.Query{
		Node:  []cubetree.Attr{tpcd.AttrType},
		Fixed: []cubetree.Pred{{Attr: tpcd.AttrType, Value: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(rows) == 1 {
		fmt.Printf("\nroll-up to part type %q: %d units across %d order lines (view by-type)\n",
			tpcd.TypeName(1), rows[0].Sum, rows[0].Count)
	}
}
