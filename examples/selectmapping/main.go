// Selectmapping reproduces the paper's Section 2.4 worked example end to
// end: the nine views of Figure 6 are grouped by arity and mapped onto
// three Cubetrees by the SelectMapping algorithm (Figure 7); then views V8
// and V9 are packed into R3{x,y} with fan-out 3 and the program prints the
// sorted points of Tables 2 and 4 and the leaf contents of Figure 8.
//
//	go run ./examples/selectmapping
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cubetree/internal/core"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/rtree"
)

func main() {
	// Figure 6's view set (attribute lists; aggregate functions omitted).
	views := []lattice.View{
		lattice.NewView("V1", "brand"),
		lattice.NewView("V2", "suppkey", "partkey"),
		lattice.NewView("V3", "brand", "suppkey", "custkey", "month"),
		lattice.NewView("V4", "partkey", "suppkey", "custkey", "year"),
		lattice.NewView("V5", "partkey", "custkey", "year"),
		lattice.NewView("V6", "custkey"),
		lattice.NewView("V7", "custkey", "partkey"),
		lattice.NewView("V8", "partkey"),
		lattice.NewView("V9", "suppkey", "custkey"),
	}
	mapping := core.SelectMapping(views)
	if err := mapping.Validate(views); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 7: Cubetree selection")
	for t, spec := range mapping.Trees {
		fmt.Printf("  R%d (dim %d):", t+1, spec.Dim)
		for _, vi := range spec.Views {
			fmt.Printf(" %s", views[vi])
		}
		fmt.Println()
	}

	// Tables 1 and 3: the raw data of V8 and V9.
	v8 := []struct{ partkey, sum int64 }{
		{4, 15}, {2, 84}, {3, 67}, {1, 102}, {6, 42}, {5, 24},
	}
	v9 := []struct{ suppkey, custkey, sum int64 }{
		{3, 1, 2}, {1, 1, 24}, {1, 3, 11}, {3, 3, 17}, {2, 1, 6},
	}

	// Pack R3{x,y} with fan-out 3, as Figure 8 draws it.
	dir, err := os.MkdirTemp("", "selectmapping-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pf, err := pager.Create(filepath.Join(dir, "r3.ct"), nil)
	if err != nil {
		log.Fatal(err)
	}
	pool := pager.NewPool(pf, 64)
	defer pool.Close()
	b, err := rtree.NewBuilder(pool, 2, rtree.Options{Measures: 2, Fanout: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Table 2: V8 sorted points.
	fmt.Println("\nTable 2: sorted points for V8 (point -> content)")
	pts8 := [][]int64{}
	for _, r := range v8 {
		pts8 = append(pts8, []int64{r.partkey, r.sum})
	}
	sortByFirst(pts8)
	if err := b.BeginRun(1); err != nil {
		log.Fatal(err)
	}
	for _, p := range pts8 {
		fmt.Printf("  {%d,0} -> %d\n", p[0], p[1])
		if err := b.Add([]int64{p[0]}, []int64{p[1], 1}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		log.Fatal(err)
	}

	// Table 4: V9 sorted points in (y, x) order.
	fmt.Println("\nTable 4: sorted points (y,x) for V9 (point -> content)")
	pts9 := [][]int64{}
	for _, r := range v9 {
		pts9 = append(pts9, []int64{r.suppkey, r.custkey, r.sum})
	}
	sortPack2(pts9)
	if err := b.BeginRun(2); err != nil {
		log.Fatal(err)
	}
	for _, p := range pts9 {
		fmt.Printf("  {%d,%d} -> %d\n", p[0], p[1], p[2])
		if err := b.Add([]int64{p[0], p[1]}, []int64{p[2], 1}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		log.Fatal(err)
	}

	tree, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}

	// Figure 8: the leaf contents of R3.
	fmt.Printf("\nFigure 8: content of Cubetree R3 (height %d, %d leaves)\n",
		tree.Height(), tree.LeafPages())
	for _, run := range tree.Runs() {
		fmt.Printf("  run (arity %d):\n", run.Arity)
		it := tree.RunIterator(run)
		for {
			coords, measures, err := it.Next()
			if rtree.Done(err) {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			if run.Arity == 1 {
				fmt.Printf("    (%d,0,%d)\n", coords[0], measures[0])
			} else {
				fmt.Printf("    (%d,%d,%d)\n", coords[0], coords[1], measures[0])
			}
		}
		it.Close()
	}

	// The paper's two example queries against the shared index space.
	fmt.Println("\nqueries:")
	var total int64
	tree.Search([]int64{4, 0}, []int64{4, 0}, func(_, m []int64) error {
		total = m[0]
		return nil
	})
	fmt.Printf("  V8 partkey=4         -> %d (Table 1: 15)\n", total)
	total = 0
	tree.Search([]int64{1, 3}, []int64{1 << 40, 3}, func(_, m []int64) error {
		total += m[0]
		return nil
	})
	fmt.Printf("  V9 custkey=3 (sum)   -> %d (Table 3: 11+17=28)\n", total)
}

func sortByFirst(pts [][]int64) {
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[j][0] < pts[i][0] {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
}

func sortPack2(pts [][]int64) {
	less := func(a, b []int64) bool {
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[0] < b[0]
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if less(pts[j], pts[i]) {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
}
