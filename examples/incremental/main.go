// Incremental demonstrates the paper's bulk incremental update cycle
// (Figure 15): a Cubetree warehouse absorbs a week of daily 10% increments
// by merge-packing each day's sorted delta into a fresh forest generation,
// and the program tracks how the refresh stays linear and sequential while
// a per-tuple baseline degrades.
//
//	go run ./examples/incremental [-sf 0.002] [-days 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"cubetree"

	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/tpcd"
)

type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	days := flag.Int("days", 7, "number of daily increments")
	flag.Parse()

	dir, err := os.MkdirTemp("", "cubetree-incremental-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds := tpcd.New(tpcd.Params{SF: *sf, Seed: 42})
	views := []cubetree.View{
		cubetree.NewView("top", tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer),
		cubetree.NewView("ps", tpcd.AttrPart, tpcd.AttrSupplier),
		cubetree.NewView("c", tpcd.AttrCustomer),
		cubetree.NewView("all"),
	}

	stats := &cubetree.Stats{}
	w, err := cubetree.Materialize(cubetree.Config{
		Dir:     filepath.Join(dir, "wh"),
		Domains: ds.Domains(),
		Stats:   stats,
	}, views, &factRows{it: ds.FactRows()})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	st := w.Stat()
	fmt.Printf("initial load: %d facts -> %d points, %.2f MB\n\n",
		ds.Facts, st.Points, float64(st.Bytes)/(1<<20))
	fmt.Printf("%4s %10s %12s %12s %14s %10s\n",
		"day", "delta", "wall", "modelled", "seq/rand IO", "points")

	for day := 1; day <= *days; day++ {
		inc := ds.Increment(0.1, uint64(day))
		deltaRows := inc.Remaining()
		mark := stats.Snapshot()
		start := time.Now()
		if err := w.Update(&factRows{it: inc}); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		io := stats.Snapshot().Sub(mark)
		seq := io.SeqReads + io.SeqWrites
		rand := io.RandReads + io.RandWrites
		st := w.Stat()
		fmt.Printf("%4d %10d %12v %12v %7d/%-6d %10d\n",
			day, deltaRows, wall.Round(time.Millisecond),
			pager.Disk1998.Cost(io).Round(time.Millisecond), seq, rand, st.Points)
	}

	rows, err := w.Query(cubetree.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d merges (generation %d): total sum=%d over %d base rows\n",
		*days, w.Generation(), rows[0].Sum, rows[0].Count)
	fmt.Println("note the seq/rand I/O split: merge-packing is almost entirely sequential,")
	fmt.Println("which is why the paper's refresh fits a small down-time window.")
}
