package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// Pending is a prepared-but-uncommitted refresh on a shard's warehouse;
// *cubetree.PendingUpdate satisfies it.
type Pending interface {
	Generation() int
	Commit() error
	Abort() error
}

// Backend is the warehouse surface a Worker serves. *cubetree.Warehouse
// provides everything except BeginUpdate's interface return type; wrap it
// in a small adapter (see cmd/cubetreed) rather than importing the root
// package here.
type Backend interface {
	QueryCtx(ctx context.Context, q workload.Query) ([]workload.Row, error)
	// QueryProfiledCtx is QueryCtx additionally filling prof with the
	// shard-local EXPLAIN-ANALYZE breakdown; a nil prof must behave exactly
	// like QueryCtx.
	QueryProfiledCtx(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error)
	QueryBatchCtx(ctx context.Context, qs []workload.Query, parallelism int) ([][]workload.Row, error)
	Generation() int
	Views() []lattice.View
	Domains() map[lattice.Attr]int64
	Schema() []lattice.Agg
	BeginUpdate(rows cube.RowIter) (Pending, error)
	// Stat reports stored points and on-disk bytes for the stats frame.
	Stat() (points, bytes int64)
}

// CSVSource builds a cube.RowIter from a CSV document; the worker uses it
// to parse refresh deltas. It is a constructor hook so the root package's
// CSV reader can be injected without an import cycle.
type CSVSource func(csv []byte, measure string) (cube.RowIter, error)

// Worker serves one shard's warehouse over the wire protocol: one
// goroutine per connection, one request in flight per connection. Refresh
// frames (prepare/commit/abort) are serialized across connections; queries
// run concurrently, against the old generation until a commit lands.
type Worker struct {
	backend Backend
	csv     CSVSource
	o       *obs.Observer

	requests *obs.CounterVec
	errs     *obs.Counter

	mu      sync.Mutex // guards conns, pending, ln
	conns   map[net.Conn]struct{}
	pending Pending
	ln      net.Listener

	refreshMu sync.Mutex // serializes prepare/commit/abort
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// NewWorker creates a worker over backend. csv parses refresh deltas
// (pass the root package's CSV reader). o may be nil.
func NewWorker(backend Backend, csv CSVSource, o *obs.Observer) *Worker {
	w := &Worker{backend: backend, csv: csv, o: o, conns: map[net.Conn]struct{}{}}
	if o != nil {
		w.requests = o.Registry.CounterVec("dist_worker_requests_total", "type")
		w.errs = o.Registry.Counter("dist_worker_errors_total")
	}
	return w
}

// Serve accepts connections on ln until Close; it returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed.Load() {
		w.mu.Unlock()
		ln.Close()
		return nil
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if w.closed.Load() {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed.Load() {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.handleConn(conn)
	}
}

// Close stops the worker: in-flight frames are cut off by closing their
// connections, and a pending (uncommitted) refresh is aborted so its
// generation directory does not linger until the next Open's sweep.
func (w *Worker) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	w.mu.Lock()
	if w.ln != nil {
		w.ln.Close()
	}
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	w.refreshMu.Lock()
	defer w.refreshMu.Unlock()
	w.mu.Lock()
	pending := w.pending
	w.pending = nil
	w.mu.Unlock()
	if pending != nil {
		return pending.Abort()
	}
	return nil
}

func (w *Worker) handleConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		f, err := DecodeFrame(br)
		if err != nil {
			return // EOF, peer reset, or protocol violation: drop the conn
		}
		w.requests.With(f.Type.String()).Inc()
		reply, err := w.dispatch(f)
		if err != nil {
			w.errs.Inc()
			reply = w.errorFrame(f.ID, err)
		}
		if err := EncodeFrame(bw, reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// wireError carries a typed protocol error from a handler to the reply
// writer.
type wireError struct {
	code         string
	retryable    bool
	retryAfterMS int64
	err          error
}

func (e *wireError) Error() string { return e.err.Error() }
func (e *wireError) Unwrap() error { return e.err }

func (w *Worker) errorFrame(id uint64, err error) Frame {
	p := errorPayload{Code: ErrCodeQuery, Msg: err.Error()}
	var we *wireError
	if errors.As(err, &we) {
		p.Code, p.Retryable, p.RetryAfterMS = we.code, we.retryable, we.retryAfterMS
	} else {
		var ex *pager.ExhaustedError
		if errors.As(err, &ex) {
			// The shard's buffer pool is transiently full; the coordinator
			// may retry after backing off.
			p.Code, p.Retryable, p.RetryAfterMS = ErrCodeOverloaded, true, 50
		}
	}
	f, merr := marshalFrame(FrameError, id, p)
	if merr != nil {
		f = Frame{Type: FrameError, ID: id}
	}
	return f
}

func badRequest(err error) error {
	return &wireError{code: ErrCodeBadRequest, err: err}
}

func (w *Worker) dispatch(f Frame) (Frame, error) {
	switch f.Type {
	case FrameQuery:
		var p queryPayload
		if err := unmarshalFrame(f, &p); err != nil {
			return Frame{}, badRequest(err)
		}
		// The coordinator's trace ID rides the payload into this shard's
		// context, so the engine tags its spans (and slow-log entries) with
		// it and /debug/traces here can be filtered to the same request.
		ctx := obs.WithTraceID(context.Background(), p.TraceID)
		var prof *workload.QueryProfile
		var rows []workload.Row
		var err error
		if p.Profile {
			prof = &workload.QueryProfile{TraceID: p.TraceID}
			rows, err = w.backend.QueryProfiledCtx(ctx, p.Query, prof)
		} else {
			rows, err = w.backend.QueryCtx(ctx, p.Query)
		}
		if err != nil {
			return Frame{}, err
		}
		return marshalFrame(FrameRows, f.ID, rowsPayload{
			Generation: w.backend.Generation(), Rows: rows, Profile: prof})
	case FrameQueryBatch:
		var p queryBatchPayload
		if err := unmarshalFrame(f, &p); err != nil {
			return Frame{}, badRequest(err)
		}
		ctx := obs.WithTraceID(context.Background(), p.TraceID)
		results, err := w.backend.QueryBatchCtx(ctx, p.Queries, p.Parallelism)
		if err != nil {
			return Frame{}, err
		}
		return marshalFrame(FrameRowsBatch, f.ID, rowsBatchPayload{
			Generation: w.backend.Generation(), Results: results})
	case FrameRefreshPrepare:
		var p refreshPreparePayload
		if err := unmarshalFrame(f, &p); err != nil {
			return Frame{}, badRequest(err)
		}
		return w.prepare(f.ID, p)
	case FrameRefreshCommit:
		var p refreshCommitPayload
		if err := unmarshalFrame(f, &p); err != nil {
			return Frame{}, badRequest(err)
		}
		return w.commit(f.ID, p.Generation)
	case FrameRefreshAbort:
		w.refreshMu.Lock()
		defer w.refreshMu.Unlock()
		w.mu.Lock()
		pending := w.pending
		w.pending = nil
		w.mu.Unlock()
		if pending != nil {
			if err := pending.Abort(); err != nil {
				return Frame{}, &wireError{code: ErrCodeRefresh, err: err}
			}
		}
		return marshalFrame(FrameRefreshAck, f.ID, refreshAckPayload{
			Generation: w.backend.Generation()})
	case FrameStats:
		views := w.backend.Views()
		wviews := make([]wireView, len(views))
		for i, v := range views {
			wv := wireView{Name: v.Name}
			for _, a := range v.Attrs {
				wv.Attrs = append(wv.Attrs, string(a))
			}
			wviews[i] = wv
		}
		domains := map[string]int64{}
		for a, d := range w.backend.Domains() {
			domains[string(a)] = d
		}
		points, size := w.backend.Stat()
		return marshalFrame(FrameStatsReply, f.ID, statsReplyPayload{
			Generation: w.backend.Generation(),
			Views:      wviews,
			Domains:    domains,
			Schema:     lattice.Schema(w.backend.Schema()).Strings(),
			Points:     points,
			Bytes:      size,
		})
	case FrameHealth:
		return marshalFrame(FrameHealthReply, f.ID, healthReplyPayload{
			Generation: w.backend.Generation()})
	case FrameMetrics:
		var snap obs.Snapshot
		if w.o != nil {
			snap = w.o.Registry.Snapshot()
		}
		return marshalFrame(FrameMetricsReply, f.ID, metricsReplyPayload{
			Generation: w.backend.Generation(), Metrics: snap})
	default:
		return Frame{}, badRequest(fmt.Errorf("dist: unexpected request frame %s", f.Type))
	}
}

// prepare merge-packs the shard's delta into a pending generation. A
// re-prepare supersedes any earlier pending refresh (the coordinator is
// retrying from the top), and an empty delta is acked as a no-op at the
// current generation.
func (w *Worker) prepare(id uint64, p refreshPreparePayload) (Frame, error) {
	w.refreshMu.Lock()
	defer w.refreshMu.Unlock()
	w.mu.Lock()
	stale := w.pending
	w.pending = nil
	w.mu.Unlock()
	if stale != nil {
		stale.Abort()
	}
	if !csvHasRows(p.CSV) {
		return marshalFrame(FrameRefreshPrepared, id, refreshPreparedPayload{
			Generation: w.backend.Generation(), NoOp: true})
	}
	src, err := w.csv(p.CSV, p.Measure)
	if err != nil {
		return Frame{}, badRequest(err)
	}
	pending, err := w.backend.BeginUpdate(src)
	if err != nil {
		return Frame{}, &wireError{code: ErrCodeRefresh, err: err}
	}
	w.mu.Lock()
	w.pending = pending
	w.mu.Unlock()
	return marshalFrame(FrameRefreshPrepared, id, refreshPreparedPayload{
		Generation: pending.Generation()})
}

// commit switches to the pending generation. Committing the current
// generation with nothing pending re-acks — that makes commit retries after
// a lost ack, and commits of no-op prepares, idempotent. Any other
// generation is a coordinator/worker divergence and is rejected as
// non-retryable.
func (w *Worker) commit(id uint64, gen int) (Frame, error) {
	w.refreshMu.Lock()
	defer w.refreshMu.Unlock()
	w.mu.Lock()
	pending := w.pending
	w.mu.Unlock()
	switch {
	case pending != nil && pending.Generation() == gen:
		if err := pending.Commit(); err != nil {
			return Frame{}, &wireError{code: ErrCodeRefresh, err: err}
		}
		w.mu.Lock()
		w.pending = nil
		w.mu.Unlock()
	case pending == nil && w.backend.Generation() == gen:
		// Already committed (or a no-op prepare): ack again.
	default:
		have := w.backend.Generation()
		if pending != nil {
			have = pending.Generation()
		}
		return Frame{}, &wireError{code: ErrCodeBadGeneration,
			err: fmt.Errorf("dist: commit generation %d, shard has %d", gen, have)}
	}
	return marshalFrame(FrameRefreshAck, id, refreshAckPayload{
		Generation: w.backend.Generation()})
}

// csvHasRows reports whether a CSV document has any data row after the
// header line.
func csvHasRows(csv []byte) bool {
	i := bytes.IndexByte(csv, '\n')
	return i >= 0 && len(bytes.TrimSpace(csv[i+1:])) > 0
}
