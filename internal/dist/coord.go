package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/workload"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Shards lists the worker addresses; order fixes shard indexes.
	Shards []string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// Retries is the number of times a transiently failed request (connect
	// refused, broken conn, shard overloaded) is retried per shard before
	// the failure surfaces as a *ShardError (default 4).
	Retries int
	// CommitRetries is the larger budget for commit frames: by commit time
	// every shard has the new generation on disk, so stragglers are worth
	// chasing much harder than queries (default 10).
	CommitRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// RequestTimeout bounds one request attempt's network I/O when the
	// caller's context has no deadline, so a hung worker can never hang a
	// scatter (default 30s). Refresh prepares, which legitimately run long,
	// use PrepareTimeout instead.
	RequestTimeout time.Duration
	// PrepareTimeout bounds a refresh prepare attempt (default 10m).
	PrepareTimeout time.Duration
	// Obs attaches the dist_* metric families; may be nil.
	Obs *obs.Observer
}

func (cfg *CoordinatorConfig) setDefaults() {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 4
	}
	if cfg.CommitRetries <= 0 {
		cfg.CommitRetries = 10
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.PrepareTimeout <= 0 {
		cfg.PrepareTimeout = 10 * time.Minute
	}
}

// ShardError is a structured failure of one shard: which address, how many
// attempts were made, and how long a client should wait before retrying the
// whole request. The HTTP front door maps it to a 503 with a Retry-After
// hint, so worker loss surfaces as a typed, retryable error — never a hang
// or a silently partial result.
type ShardError struct {
	Addr       string
	Code       string
	Attempts   int
	RetryAfter time.Duration
	Err        error
}

func (e *ShardError) Error() string {
	code := e.Code
	if code == "" {
		code = "unavailable"
	}
	return fmt.Sprintf("dist: shard %s %s after %d attempt(s): %v (retry after %s)",
		e.Addr, code, e.Attempts, e.Err, e.RetryAfter)
}

func (e *ShardError) Unwrap() error { return e.Err }

// shardConn is one pooled connection to a worker.
type shardConn struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint64
}

func (sc *shardConn) close() { sc.c.Close() }

// do performs one request/reply exchange under the deadline.
func (sc *shardConn) do(req Frame, deadline time.Time) (Frame, error) {
	sc.nextID++
	req.ID = sc.nextID
	if err := sc.c.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	if err := EncodeFrame(sc.bw, req); err != nil {
		return Frame{}, err
	}
	if err := sc.bw.Flush(); err != nil {
		return Frame{}, err
	}
	reply, err := DecodeFrame(sc.br)
	if err != nil {
		return Frame{}, err
	}
	if reply.ID != req.ID {
		return Frame{}, fmt.Errorf("dist: reply id %d for request %d", reply.ID, req.ID)
	}
	return reply, nil
}

// shard is the coordinator's live state for one worker.
type shard struct {
	addr       string
	generation atomic.Int64
	inflight   atomic.Int64
	lastErr    atomic.Pointer[string]
	latency    *obs.Histogram

	mu   sync.Mutex
	idle []*shardConn
}

func (sh *shard) get(dialTimeout time.Duration) (*shardConn, error) {
	sh.mu.Lock()
	if n := len(sh.idle); n > 0 {
		sc := sh.idle[n-1]
		sh.idle = sh.idle[:n-1]
		sh.mu.Unlock()
		return sc, nil
	}
	sh.mu.Unlock()
	c, err := net.DialTimeout("tcp", sh.addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &shardConn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}, nil
}

func (sh *shard) put(sc *shardConn) {
	sc.c.SetDeadline(time.Time{})
	sh.mu.Lock()
	sh.idle = append(sh.idle, sc)
	sh.mu.Unlock()
}

func (sh *shard) closeIdle() {
	sh.mu.Lock()
	idle := sh.idle
	sh.idle = nil
	sh.mu.Unlock()
	for _, sc := range idle {
		sc.close()
	}
}

func (sh *shard) noteError(err error) {
	msg := err.Error()
	sh.lastErr.Store(&msg)
}

// Coordinator scatters queries across shards and folds the partial
// aggregates; it satisfies the same store surface as a local warehouse, so
// the existing HTTP front door serves a cluster unchanged.
type Coordinator struct {
	cfg    CoordinatorConfig
	shards []*shard

	views   []lattice.View
	domains map[lattice.Attr]int64
	attrs   []lattice.Attr
	schema  lattice.Schema

	// qmu orders scatters against refresh commits: every query holds the
	// read lock for its whole scatter, and the commit fan-out holds the
	// write lock. The prepare phase — the long part — runs outside the
	// lock, so queries only ever block for the brief commit window, and no
	// scatter can observe some shards before a commit and others after:
	// results are old-or-new, never mixed.
	qmu sync.RWMutex

	m coordMetrics
}

type coordMetrics struct {
	scatters   *obs.Counter
	mixed      *obs.Counter
	retries    *obs.CounterVec
	errors     *obs.CounterVec
	inflight   *obs.GaugeVec
	stragglers *obs.Gauge
	refreshes  *obs.Counter
	commitNS   *obs.Histogram
	prepareNS  *obs.Histogram
	latency    *obs.HistogramVec
}

// NewCoordinator connects to every shard, retrieves and cross-checks their
// catalogs (views, domains, and measure schema must agree), and returns a
// query-ready coordinator. Connection failures are retried with backoff, so
// workers may still be coming up.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.setDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("dist: no shards configured")
	}
	c := &Coordinator{cfg: cfg}
	var reg *obs.Registry
	if cfg.Obs != nil {
		reg = cfg.Obs.Registry
	}
	c.m = coordMetrics{
		scatters:   reg.Counter("dist_scatters_total"),
		mixed:      reg.Counter("dist_mixed_generation_total"),
		retries:    reg.CounterVec("dist_shard_retries_total", "shard"),
		errors:     reg.CounterVec("dist_shard_errors_total", "shard"),
		inflight:   reg.GaugeVec("dist_shard_inflight", "shard"),
		stragglers: reg.Gauge("dist_straggler_shards"),
		refreshes:  reg.Counter("dist_refresh_total"),
		commitNS:   reg.Histogram("dist_refresh_commit_ns"),
		prepareNS:  reg.Histogram("dist_refresh_prepare_ns"),
		latency:    reg.HistogramVec("dist_shard_latency_ns", "shard"),
	}
	for _, addr := range cfg.Shards {
		sh := &shard{addr: addr}
		if sh.latency = c.m.latency.With(addr); sh.latency == nil {
			sh.latency = &obs.Histogram{}
		}
		c.shards = append(c.shards, sh)
	}
	reg.Gauge("dist_fanout_shards").Set(int64(len(c.shards)))
	reg.GaugeFunc("dist_generation", func() int64 { return int64(c.Generation()) })

	for i, sh := range c.shards {
		req, err := marshalFrame(FrameStats, 0, struct{}{})
		if err != nil {
			return nil, err
		}
		reply, _, err := c.roundTrip(context.Background(), sh, req, FrameStatsReply,
			cfg.Retries, cfg.RequestTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		var sp statsReplyPayload
		if err := unmarshalFrame(reply, &sp); err != nil {
			c.Close()
			return nil, err
		}
		if err := c.adoptStats(i, sh, sp); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// adoptStats records shard 0's catalog as the cluster's and verifies every
// other shard matches it.
func (c *Coordinator) adoptStats(i int, sh *shard, sp statsReplyPayload) error {
	sh.generation.Store(int64(sp.Generation))
	schema, err := lattice.ParseSchema(sp.Schema)
	if err != nil {
		return fmt.Errorf("dist: shard %s: %w", sh.addr, err)
	}
	var views []lattice.View
	for _, wv := range sp.Views {
		v := lattice.View{Name: wv.Name}
		for _, a := range wv.Attrs {
			v.Attrs = append(v.Attrs, lattice.Attr(a))
		}
		views = append(views, v)
	}
	domains := make(map[lattice.Attr]int64, len(sp.Domains))
	for a, d := range sp.Domains {
		domains[lattice.Attr(a)] = d
	}
	if i == 0 {
		c.schema, c.views, c.domains = schema, views, domains
		c.attrs = SortedAttrs(domains)
		return nil
	}
	if !schema.Equal(c.schema) {
		return fmt.Errorf("dist: shard %s schema %v differs from %v", sh.addr, schema.Strings(), c.schema.Strings())
	}
	if keysOf(views) != keysOf(c.views) {
		return fmt.Errorf("dist: shard %s view set differs", sh.addr)
	}
	if len(domains) != len(c.domains) {
		return fmt.Errorf("dist: shard %s domain set differs", sh.addr)
	}
	for a, d := range c.domains {
		if domains[a] != d {
			return fmt.Errorf("dist: shard %s domain %s=%d differs from %d", sh.addr, a, domains[a], d)
		}
	}
	return nil
}

func keysOf(views []lattice.View) string {
	keys := make([]string, len(views))
	for i, v := range views {
		keys[i] = v.Key()
	}
	sort.Strings(keys)
	var out string
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

// Close drops every pooled connection. In-flight requests fail and are not
// retried usefully afterwards; Close is for shutdown.
func (c *Coordinator) Close() error {
	for _, sh := range c.shards {
		sh.closeIdle()
	}
	return nil
}

// roundTrip performs one request against one shard, retrying transient
// failures (connect errors, broken connections, retryable worker errors)
// with exponential backoff up to budget retries. Permanent worker errors
// and exhausted budgets return a *ShardError. The second return is the
// number of attempts made, for per-shard profile/trace detail (it matches
// ShardError.Attempts on failure).
func (c *Coordinator) roundTrip(ctx context.Context, sh *shard, req Frame, want FrameType, budget int, attemptTimeout time.Duration) (Frame, int, error) {
	backoff := c.cfg.RetryBackoff
	fail := func(attempts int, code string, err error) (Frame, int, error) {
		c.m.errors.With(sh.addr).Inc()
		sh.noteError(err)
		return Frame{}, attempts, &ShardError{Addr: sh.addr, Code: code, Attempts: attempts,
			RetryAfter: backoff, Err: err}
	}
	var lastErr error
	for attempt := 0; attempt <= budget; attempt++ {
		if attempt > 0 {
			c.m.retries.With(sh.addr).Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return fail(attempt, "", context.Cause(ctx))
			}
			backoff *= 2
		}
		if ctx.Err() != nil {
			return fail(attempt, "", context.Cause(ctx))
		}
		sc, err := sh.get(c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		deadline, ok := ctx.Deadline()
		if !ok {
			deadline = time.Now().Add(attemptTimeout)
		}
		reply, err := sc.do(req, deadline)
		if err != nil {
			sc.close()
			lastErr = err
			continue
		}
		if reply.Type == FrameError {
			var ep errorPayload
			if err := unmarshalFrame(reply, &ep); err != nil {
				sc.close()
				lastErr = err
				continue
			}
			sh.put(sc)
			if ep.Retryable {
				lastErr = fmt.Errorf("shard busy: %s (%s)", ep.Msg, ep.Code)
				if wait := time.Duration(ep.RetryAfterMS) * time.Millisecond; wait > backoff {
					backoff = wait
				}
				continue
			}
			return fail(attempt+1, ep.Code, errors.New(ep.Msg))
		}
		if reply.Type != want {
			sc.close()
			return fail(attempt+1, ErrCodeBadRequest,
				fmt.Errorf("dist: shard answered %s, want %s", reply.Type, want))
		}
		sh.put(sc)
		sh.lastErr.Store(nil)
		return reply, attempt + 1, nil
	}
	return fail(budget+1, "", lastErr)
}

// scatter runs fn against every shard concurrently, records per-shard
// latency, and updates the straggler gauge. It returns each leg's elapsed
// wall time (indexed like c.shards, for profile/trace stitching) and the
// first shard error, if any.
func (c *Coordinator) scatter(fn func(i int, sh *shard) error) ([]time.Duration, error) {
	c.m.scatters.Inc()
	n := len(c.shards)
	errs := make([]error, n)
	elapsed := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.inflight.Add(1)
			c.m.inflight.With(sh.addr).Set(float64(sh.inflight.Load()))
			start := time.Now()
			errs[i] = fn(i, sh)
			elapsed[i] = time.Since(start)
			sh.latency.Observe(elapsed[i].Nanoseconds())
			sh.inflight.Add(-1)
			c.m.inflight.With(sh.addr).Set(float64(sh.inflight.Load()))
		}(i, sh)
	}
	wg.Wait()
	c.observeStragglers(elapsed)
	for _, err := range errs {
		if err != nil {
			return elapsed, err
		}
	}
	return elapsed, nil
}

// stragglerAt reports whether leg i of a scatter was a straggler: more than
// twice the fastest leg's time and at least 5ms absolute (to ignore noise on
// tiny scatters). The same rule feeds the dist_straggler_shards gauge and the
// per-shard profile/trace verdicts, so the three always agree.
func stragglerAt(elapsed []time.Duration, i int) bool {
	fastest := time.Duration(-1)
	for _, d := range elapsed {
		if d > 0 && (fastest < 0 || d < fastest) {
			fastest = d
		}
	}
	return fastest > 0 && elapsed[i] > 2*fastest && elapsed[i] > 5*time.Millisecond
}

// observeStragglers counts straggler legs (per the stragglerAt rule) into the
// dist_straggler_shards gauge.
func (c *Coordinator) observeStragglers(elapsed []time.Duration) {
	var n int64
	for i := range elapsed {
		if stragglerAt(elapsed, i) {
			n++
		}
	}
	c.m.stragglers.Set(n)
}

// noteMixed checks that every shard answered a scatter at the same relative
// refresh epoch. Shards advance in lockstep (every refresh touches all of
// them), so differing generations within one scatter would mean the
// commit-window exclusion failed; the counter exists to make that
// invariant observable.
func (c *Coordinator) noteMixed(gens []int) {
	for _, g := range gens[1:] {
		if g != gens[0] {
			c.m.mixed.Inc()
			return
		}
	}
}

// Generation returns the coordinator's logical generation: the sum of the
// last-known shard generations. It is monotonic and advances whenever any
// shard commits, which is what cache invalidation needs.
func (c *Coordinator) Generation() int {
	var sum int64
	for _, sh := range c.shards {
		sum += sh.generation.Load()
	}
	return int(sum)
}

// Views returns the cluster's view definitions.
func (c *Coordinator) Views() []lattice.View { return append([]lattice.View(nil), c.views...) }

// Domains returns the attribute domain sizes.
func (c *Coordinator) Domains() map[lattice.Attr]int64 {
	out := make(map[lattice.Attr]int64, len(c.domains))
	for a, d := range c.domains {
		out[a] = d
	}
	return out
}

// Schema returns the cluster's measure schema.
func (c *Coordinator) Schema() []lattice.Agg { return append([]lattice.Agg(nil), c.schema...) }

// QueryCtx scatters one slice query to every shard and folds the partial
// aggregates into the same rows a single-process warehouse would return.
// When an observer is attached, the scatter is recorded as a root span with
// one child per shard leg (addr, attempts, generation, rows, wall time,
// straggler verdict), tagged with the trace ID carried by ctx — the
// coordinator-side half of a stitched distributed trace.
func (c *Coordinator) QueryCtx(ctx context.Context, q workload.Query) ([]workload.Row, error) {
	return c.queryScatter(ctx, q, nil)
}

// QueryProfiledCtx is QueryCtx additionally filling prof: the top-level scan
// counters are fleet-wide sums of the per-shard worker profiles, and
// prof.Shards carries each shard's round-trip detail (attempts, latency,
// straggler verdict) plus its worker-side breakdown. A nil prof is exactly
// QueryCtx. Workers predating the profile protocol field answer without a
// profile; their ShardProfile entry then has a nil Profile and the sums
// cover only the shards that reported.
func (c *Coordinator) QueryProfiledCtx(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error) {
	return c.queryScatter(ctx, q, prof)
}

// queryScatter is the shared scatter-gather behind QueryCtx and
// QueryProfiledCtx. The per-leg bookkeeping slices (attempts, worker
// profiles, child spans) are allocated only when a span or profile will
// consume them, so the untraced, unprofiled path does no extra work.
func (c *Coordinator) queryScatter(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error) {
	c.qmu.RLock()
	defer c.qmu.RUnlock()
	start := time.Now()
	tid := obs.TraceIDFrom(ctx)
	var sp *obs.Span
	if o := c.cfg.Obs; o != nil {
		sp = o.Tracer.StartRootShort("dist_query")
		sp.SetTraceID(tid)
		sp.SetStringer("query", q)
		if prof != nil {
			o.ProfiledQueries.Inc()
		}
	}
	n := len(c.shards)
	parts := make([][]workload.Row, n)
	gens := make([]int, n)
	var attempts []int
	var profs []*workload.QueryProfile
	var legs []*obs.Span
	if sp != nil || prof != nil {
		attempts = make([]int, n)
	}
	if prof != nil {
		profs = make([]*workload.QueryProfile, n)
	}
	if sp != nil {
		legs = make([]*obs.Span, n)
	}
	req, err := marshalFrame(FrameQuery, 0, queryPayload{Query: q, TraceID: tid, Profile: prof != nil})
	if err != nil {
		sp.End()
		return nil, err
	}
	elapsed, err := c.scatter(func(i int, sh *shard) error {
		var leg *obs.Span
		if sp != nil {
			leg = sp.Child("shard")
			leg.SetStr("addr", sh.addr)
			legs[i] = leg
		}
		reply, att, rerr := c.roundTrip(ctx, sh, req, FrameRows, c.cfg.Retries, c.cfg.RequestTimeout)
		if attempts != nil {
			attempts[i] = att
		}
		leg.SetInt("attempts", int64(att))
		if rerr != nil {
			leg.SetStr("error", rerr.Error())
			leg.End()
			return rerr
		}
		var rp rowsPayload
		if uerr := unmarshalFrame(reply, &rp); uerr != nil {
			leg.SetStr("error", uerr.Error())
			leg.End()
			return uerr
		}
		parts[i], gens[i] = rp.Rows, rp.Generation
		if profs != nil {
			profs[i] = rp.Profile
		}
		sh.generation.Store(int64(rp.Generation))
		leg.SetInt("generation", int64(rp.Generation))
		leg.SetInt("rows", int64(len(rp.Rows)))
		if rp.Profile != nil {
			leg.SetInt("points_scanned", rp.Profile.PointsScanned)
			leg.SetInt("leaf_pages_read", rp.Profile.LeafPagesRead)
			leg.SetInt("leaf_pages_skipped", rp.Profile.LeafPagesSkipped)
		}
		leg.End()
		return nil
	})
	// Stitch the straggler verdicts (known only once every leg finished) and
	// the per-shard profile detail, even when a leg failed: a partial profile
	// of a failed scatter is still diagnostic.
	for i := range legs {
		if stragglerAt(elapsed, i) {
			legs[i].SetInt("straggler", 1)
		}
	}
	if prof != nil {
		prof.TraceID = tid
		for i, sh := range c.shards {
			prof.AddShard(workload.ShardProfile{
				Addr:       sh.addr,
				Attempts:   attempts[i],
				DurationNS: elapsed[i].Nanoseconds(),
				Generation: gens[i],
				Straggler:  stragglerAt(elapsed, i),
				Profile:    profs[i],
			})
		}
	}
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		if prof != nil {
			prof.DurationNS = int64(time.Since(start))
		}
		return nil, err
	}
	c.noteMixed(gens)
	rows := workload.MergePartials(c.schema, parts)
	sp.SetInt("rows", int64(len(rows)))
	sp.End()
	if prof != nil {
		prof.RowsReturned = int64(len(rows))
		prof.DurationNS = int64(time.Since(start))
	}
	return rows, nil
}

// QueryBatchCtx scatters a whole batch to every shard in one frame each
// (amortizing the round trip) and folds results per query. parallelism is
// forwarded to the workers as their batch execution parallelism.
func (c *Coordinator) QueryBatchCtx(ctx context.Context, qs []workload.Query, parallelism int) ([][]workload.Row, error) {
	c.qmu.RLock()
	defer c.qmu.RUnlock()
	tid := obs.TraceIDFrom(ctx)
	var sp *obs.Span
	if o := c.cfg.Obs; o != nil {
		sp = o.Tracer.StartRootShort("dist_query_batch")
		sp.SetTraceID(tid)
		sp.SetInt("queries", int64(len(qs)))
	}
	parts := make([][][]workload.Row, len(c.shards))
	gens := make([]int, len(c.shards))
	req, err := marshalFrame(FrameQueryBatch, 0, queryBatchPayload{Queries: qs, Parallelism: parallelism, TraceID: tid})
	if err != nil {
		sp.End()
		return nil, err
	}
	_, err = c.scatter(func(i int, sh *shard) error {
		var leg *obs.Span
		if sp != nil {
			leg = sp.Child("shard")
			leg.SetStr("addr", sh.addr)
		}
		reply, att, rerr := c.roundTrip(ctx, sh, req, FrameRowsBatch, c.cfg.Retries, c.cfg.RequestTimeout)
		leg.SetInt("attempts", int64(att))
		defer leg.End()
		if rerr != nil {
			leg.SetStr("error", rerr.Error())
			return rerr
		}
		var rp rowsBatchPayload
		if uerr := unmarshalFrame(reply, &rp); uerr != nil {
			leg.SetStr("error", uerr.Error())
			return uerr
		}
		if len(rp.Results) != len(qs) {
			return fmt.Errorf("dist: shard %s answered %d results for %d queries", sh.addr, len(rp.Results), len(qs))
		}
		parts[i], gens[i] = rp.Results, rp.Generation
		sh.generation.Store(int64(rp.Generation))
		leg.SetInt("generation", int64(rp.Generation))
		return nil
	})
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.End()
	c.noteMixed(gens)
	merged := make([][]workload.Row, len(qs))
	perQuery := make([][]workload.Row, len(c.shards))
	for k := range qs {
		for i := range c.shards {
			perQuery[i] = parts[i][k]
		}
		merged[k] = workload.MergePartials(c.schema, perQuery)
	}
	return merged, nil
}

// Update distributes a refresh: the delta is hash-partitioned into
// per-shard CSV documents, every shard merge-packs its slice into a pending
// generation concurrently (queries keep flowing), and once every shard has
// prepared, all shards are committed inside one brief query-blocking
// window. The logical generation advances only when every shard has acked
// its swap; commit stragglers are retried hard with backoff.
//
// If a prepare fails, every prepared shard is aborted and nothing changes.
// If a commit fails even after retries, shards may be left on different
// generations — queries remain correct (each shard serves a committed
// generation and the fold is per-group), but the all-at-once epoch guarantee
// is degraded until the next successful refresh realigns the shards; the
// error reports which shard lagged.
func (c *Coordinator) Update(rows cube.RowIter) error {
	c.m.refreshes.Inc()
	csvs, err := Partition(rows, c.attrs, len(c.shards))
	if err != nil {
		return err
	}

	// Phase 1: prepare on every shard in parallel, queries unblocked.
	prepStart := time.Now()
	gens := make([]int, len(c.shards))
	_, err = c.scatter(func(i int, sh *shard) error {
		req, err := marshalFrame(FrameRefreshPrepare, 0, refreshPreparePayload{
			CSV: csvs[i], Measure: PartitionMeasure})
		if err != nil {
			return err
		}
		reply, _, err := c.roundTrip(context.Background(), sh, req, FrameRefreshPrepared,
			c.cfg.Retries, c.cfg.PrepareTimeout)
		if err != nil {
			return err
		}
		var pp refreshPreparedPayload
		if err := unmarshalFrame(reply, &pp); err != nil {
			return err
		}
		gens[i] = pp.Generation
		return nil
	})
	c.m.prepareNS.Observe(time.Since(prepStart).Nanoseconds())
	if err != nil {
		c.abortAll()
		return err
	}

	// Phase 2: commit every shard inside the query-blocking window. The
	// window is short — each commit is a catalog rename plus a pointer swap.
	commitStart := time.Now()
	c.qmu.Lock()
	defer c.qmu.Unlock()
	_, err = c.scatter(func(i int, sh *shard) error {
		req, err := marshalFrame(FrameRefreshCommit, 0, refreshCommitPayload{Generation: gens[i]})
		if err != nil {
			return err
		}
		reply, _, err := c.roundTrip(context.Background(), sh, req, FrameRefreshAck,
			c.cfg.CommitRetries, c.cfg.RequestTimeout)
		if err != nil {
			return err
		}
		var ack refreshAckPayload
		if err := unmarshalFrame(reply, &ack); err != nil {
			return err
		}
		sh.generation.Store(int64(ack.Generation))
		return nil
	})
	c.m.commitNS.Observe(time.Since(commitStart).Nanoseconds())
	if err != nil {
		return fmt.Errorf("dist: refresh commit incomplete, shards may be on mixed generations until the next refresh: %w", err)
	}
	return nil
}

// abortAll best-effort discards pending refreshes on every shard.
func (c *Coordinator) abortAll() {
	c.scatter(func(i int, sh *shard) error {
		req, err := marshalFrame(FrameRefreshAbort, 0, struct{}{})
		if err != nil {
			return err
		}
		c.roundTrip(context.Background(), sh, req, FrameRefreshAck, 1, c.cfg.RequestTimeout)
		return nil
	})
}

// metricsRequestRetries deliberately under-budgets the debug scrape: a dead
// (or pre-metrics) worker should surface quickly as a per-shard error on
// /debug/cluster, not stall the whole page behind the full query retry loop.
const metricsRequestRetries = 1

// ShardDebug is one row of the coordinator's /debug/warehouse shard table.
type ShardDebug struct {
	Addr         string `json:"addr"`
	Generation   int    `json:"generation"`
	InFlight     int64  `json:"in_flight"`
	LastError    string `json:"last_error,omitempty"`
	P95LatencyNS int64  `json:"p95_latency_ns"`
}

// DebugInfo is the coordinator's live state for the debug endpoint.
type DebugInfo struct {
	Generation int          `json:"generation"`
	Views      []string     `json:"views"`
	Shards     []ShardDebug `json:"shards"`
}

// DebugInfo reports per-shard address, last-known generation, in-flight
// scatter legs, last error, and p95 latency.
func (c *Coordinator) DebugInfo() DebugInfo {
	d := DebugInfo{Generation: c.Generation()}
	for _, v := range c.views {
		d.Views = append(d.Views, v.String())
	}
	for _, sh := range c.shards {
		sd := ShardDebug{
			Addr:         sh.addr,
			Generation:   int(sh.generation.Load()),
			InFlight:     sh.inflight.Load(),
			P95LatencyNS: sh.latency.Snapshot().P95,
		}
		if msg := sh.lastErr.Load(); msg != nil {
			sd.LastError = *msg
		}
		d.Shards = append(d.Shards, sd)
	}
	return d
}
