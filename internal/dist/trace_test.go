package dist_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/obs"
	"cubetree/internal/workload"
)

// traceDomains are wide enough that each shard's views span several leaf
// pages, so zone-map pruning has something to skip.
var traceDomains = map[cubetree.Attr]int64{"partkey": 200, "suppkey": 100, "custkey": 50}

// traceFacts generates n deterministic facts over traceDomains.
func traceFacts(n int, seed uint64) *memRows {
	s := &memRows{cols: []cubetree.Attr{"partkey", "suppkey", "custkey"}}
	state := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for i := 0; i < n; i++ {
		s.rows = append(s.rows, []int64{
			int64(next()%200) + 1, int64(next()%100) + 1, int64(next()%50) + 1,
		})
		s.measure = append(s.measure, int64(next()%1000))
	}
	return s
}

// observedCluster is an n-shard live cluster where every process — the
// coordinator and each worker — has its own observer, the shape needed to
// follow one trace ID across all of them.
type observedCluster struct {
	coord     *dist.Coordinator
	coordObs  *obs.Observer
	workerObs []*obs.Observer
	addrs     []string
}

func startObservedCluster(t *testing.T, n int, facts *memRows) *observedCluster {
	t.Helper()
	dir := t.TempDir()
	cl := &observedCluster{coordObs: obs.New(obs.Options{})}
	shardFacts := *facts
	docs, err := dist.Partition(&shardFacts, testAttrs, n)
	if err != nil {
		t.Fatal(err)
	}
	var workers []*dist.Worker
	var whs []*cubetree.Warehouse
	for i, doc := range docs {
		src, err := cubetree.CSVRows(bytes.NewReader(doc), dist.PartitionMeasure)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := cubetree.Materialize(cubetree.Config{
			Dir:     filepath.Join(dir, fmt.Sprintf("shard%d", i)),
			Domains: traceDomains,
		}, clusterViews(), src)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		whs = append(whs, wh)
		wo := obs.New(obs.Options{})
		wh.SetObserver(wo)
		cl.workerObs = append(cl.workerObs, wo)
		wk := dist.NewWorker(cubetree.ShardBackend(wh), cubetree.ShardCSV, wo)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go wk.Serve(ln)
		workers = append(workers, wk)
		cl.addrs = append(cl.addrs, ln.Addr().String())
	}
	cl.coord, err = dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       cl.addrs,
		Retries:      3,
		RetryBackoff: 10 * time.Millisecond,
		Obs:          cl.coordObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.coord.Close()
		for _, wk := range workers {
			wk.Close()
		}
		for _, wh := range whs {
			wh.Close()
		}
	})
	return cl
}

// findTrace returns the spans in snaps tagged with the trace ID.
func findTrace(snaps []obs.SpanSnapshot, tid string) []obs.SpanSnapshot {
	var out []obs.SpanSnapshot
	for _, s := range snaps {
		if s.TraceID == tid {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceIDEndToEndAcrossCluster is the tentpole acceptance check for
// tracing: one trace ID set on the coordinator's context must appear in the
// span snapshots of the coordinator AND of every worker — the same query,
// followed across three processes.
func TestTraceIDEndToEndAcrossCluster(t *testing.T) {
	cl := startObservedCluster(t, 2, traceFacts(8000, 3))
	tid := obs.NewTraceID()
	ctx := obs.WithTraceID(context.Background(), tid)
	q := cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "suppkey", Value: 5}},
	}
	if _, err := cl.coord.QueryCtx(ctx, q); err != nil {
		t.Fatal(err)
	}

	roots := findTrace(cl.coordObs.Tracer.Snapshot(), tid)
	if len(roots) != 1 || roots[0].Name != "dist_query" {
		t.Fatalf("coordinator trace %s = %+v, want one dist_query root", tid, roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("stitched root has %d shard legs, want 2", len(roots[0].Children))
	}
	seenAddr := map[string]bool{}
	for _, leg := range roots[0].Children {
		if leg.Name != "shard" {
			t.Fatalf("leg name = %q, want shard", leg.Name)
		}
		addr, _ := leg.Attrs["addr"].(string)
		seenAddr[addr] = true
		if att, _ := leg.Attrs["attempts"].(int64); att < 1 {
			t.Fatalf("leg %s attempts = %v", addr, leg.Attrs["attempts"])
		}
	}
	for _, addr := range cl.addrs {
		if !seenAddr[addr] {
			t.Fatalf("no shard leg for %s in root span (got %v)", addr, seenAddr)
		}
	}
	for i, wo := range cl.workerObs {
		spans := findTrace(wo.Tracer.Snapshot(), tid)
		if len(spans) == 0 {
			t.Fatalf("worker %d has no span tagged with trace %s", i, tid)
		}
	}
}

// TestProfiledDistributedQuery checks the EXPLAIN-ANALYZE path across the
// cluster: fleet-wide sums equal the per-shard parts, every shard reports
// nonzero zone-map and scan activity on a populated warehouse, and the
// per-shard timings are consistent with the stitched root span.
func TestProfiledDistributedQuery(t *testing.T) {
	cl := startObservedCluster(t, 2, traceFacts(8000, 7))
	tid := obs.NewTraceID()
	ctx := obs.WithTraceID(context.Background(), tid)
	q := cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "suppkey", Value: 9}},
	}
	prof := &workload.QueryProfile{}
	rows, err := cl.coord.QueryProfiledCtx(ctx, q, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("profiled query returned no rows; pick a predicate the facts hit")
	}
	if prof.TraceID != tid {
		t.Fatalf("profile trace id = %q, want %q", prof.TraceID, tid)
	}
	if prof.RowsReturned != int64(len(rows)) {
		t.Fatalf("profile rows = %d, returned %d", prof.RowsReturned, len(rows))
	}
	if len(prof.Shards) != 2 {
		t.Fatalf("profile has %d shards, want 2", len(prof.Shards))
	}

	var sum workload.QueryProfile
	for _, sh := range prof.Shards {
		if sh.Profile == nil {
			t.Fatalf("shard %s returned no worker profile", sh.Addr)
		}
		if sh.Attempts < 1 || sh.DurationNS <= 0 || sh.Generation != 1 {
			t.Fatalf("shard %s round-trip detail = %+v", sh.Addr, sh)
		}
		if sh.Profile.PointsScanned <= 0 {
			t.Fatalf("shard %s scanned no points", sh.Addr)
		}
		if sh.Profile.LeafPagesRead <= 0 || sh.Profile.LeafPagesSkipped <= 0 {
			t.Fatalf("shard %s leaf read/skip = %d/%d, want both nonzero",
				sh.Addr, sh.Profile.LeafPagesRead, sh.Profile.LeafPagesSkipped)
		}
		if sh.Profile.PoolHits+sh.Profile.PoolMisses <= 0 {
			t.Fatalf("shard %s pool delta = %d/%d", sh.Addr, sh.Profile.PoolHits, sh.Profile.PoolMisses)
		}
		sum.PointsScanned += sh.Profile.PointsScanned
		sum.LeafPagesRead += sh.Profile.LeafPagesRead
		sum.LeafPagesSkipped += sh.Profile.LeafPagesSkipped
		sum.PoolHits += sh.Profile.PoolHits
		sum.PoolMisses += sh.Profile.PoolMisses
	}
	if prof.PointsScanned != sum.PointsScanned ||
		prof.LeafPagesRead != sum.LeafPagesRead ||
		prof.LeafPagesSkipped != sum.LeafPagesSkipped ||
		prof.PoolHits != sum.PoolHits ||
		prof.PoolMisses != sum.PoolMisses {
		t.Fatalf("fleet sums %+v disagree with per-shard parts %+v", *prof, sum)
	}

	// Timing consistency with the stitched root span: the scatter runs legs
	// in parallel, so each leg's wall time is bounded by the root's, and the
	// profile's own duration covers its slowest leg.
	roots := findTrace(cl.coordObs.Tracer.Snapshot(), tid)
	if len(roots) != 1 {
		t.Fatalf("coordinator has %d spans for trace %s, want 1", len(roots), tid)
	}
	root := roots[0]
	for _, sh := range prof.Shards {
		if sh.DurationNS > root.DurationNS {
			t.Fatalf("shard %s leg %dns exceeds root span %dns", sh.Addr, sh.DurationNS, root.DurationNS)
		}
		if sh.DurationNS > prof.DurationNS {
			t.Fatalf("shard %s leg %dns exceeds profile duration %dns", sh.Addr, sh.DurationNS, prof.DurationNS)
		}
	}
	for _, leg := range root.Children {
		if leg.DurationNS > root.DurationNS {
			t.Fatalf("leg span %dns exceeds root span %dns", leg.DurationNS, root.DurationNS)
		}
		if _, ok := leg.Attrs["points_scanned"]; !ok {
			t.Fatalf("leg span missing points_scanned attr: %v", leg.Attrs)
		}
	}
}

// TestClusterInfoScrape covers the /debug/cluster aggregation in-process:
// both shards answer the metrics scrape, the fleet merge sums their
// counters, the generation table shows zero skew, and the pool occupancy
// gauges come through.
func TestClusterInfoScrape(t *testing.T) {
	cl := startObservedCluster(t, 2, traceFacts(4000, 5))
	ctx := context.Background()
	// Drive some traffic so worker counters are nonzero.
	for i := 0; i < 3; i++ {
		if _, err := cl.coord.QueryCtx(ctx, cubetree.Query{Node: []cubetree.Attr{"custkey"}}); err != nil {
			t.Fatal(err)
		}
	}
	info := cl.coord.ClusterInfo(ctx)
	if len(info.Shards) != 2 {
		t.Fatalf("cluster info has %d shards, want 2", len(info.Shards))
	}
	for _, sh := range info.Shards {
		if sh.Error != "" {
			t.Fatalf("shard %s scrape error: %s", sh.Addr, sh.Error)
		}
		if sh.Generation != 1 || sh.Metrics == nil {
			t.Fatalf("shard row = %+v", sh)
		}
		if sh.PoolCapacityFrames <= 0 || sh.PoolResidentFrames <= 0 {
			t.Fatalf("shard %s pool gauges = resident %d / capacity %d",
				sh.Addr, sh.PoolResidentFrames, sh.PoolCapacityFrames)
		}
		if sh.Metrics.Counters["query_total"] == 0 {
			t.Fatalf("shard %s reports no queries", sh.Addr)
		}
	}
	if info.GenerationMin != 1 || info.GenerationMax != 1 || info.GenerationSkew != 0 {
		t.Fatalf("generation table = min %d max %d skew %d",
			info.GenerationMin, info.GenerationMax, info.GenerationSkew)
	}
	var workerSum uint64
	for _, sh := range info.Shards {
		workerSum += sh.Metrics.Counters["query_total"]
	}
	if got := info.Fleet.Counters["query_total"]; got != workerSum {
		t.Fatalf("fleet query_total = %d, per-shard sum = %d", got, workerSum)
	}
}

// TestOldProtocolWorkerAnswersQueries pins the compatibility contract for
// the fields added after protocol v1 shipped: a worker that has never heard
// of trace_id or profile — simulated here by a stub speaking the original
// payload shapes with plain JSON decoding — still answers a profiled,
// traced query. The coordinator gets rows, and that shard's profile entry
// simply has no worker-side breakdown.
func TestOldProtocolWorkerAnswersQueries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					f, err := dist.DecodeFrame(conn)
					if err != nil {
						return
					}
					var reply dist.Frame
					switch f.Type {
					case dist.FrameStats:
						reply = dist.Frame{Type: dist.FrameStatsReply, ID: f.ID, Payload: []byte(
							`{"generation":1,"views":[{"name":"all","attrs":[]}],"domains":{},"schema":["sum","count"],"points":1,"bytes":64}`)}
					case dist.FrameHealth:
						reply = dist.Frame{Type: dist.FrameHealthReply, ID: f.ID, Payload: []byte(`{"generation":1}`)}
					case dist.FrameQuery:
						// An old worker decodes with plain json.Unmarshal, so the
						// new trace_id/profile fields are silently ignored; its
						// reply has no profile field at all.
						reply = dist.Frame{Type: dist.FrameRows, ID: f.ID, Payload: []byte(
							`{"generation":1,"rows":[{"Group":[],"Sum":42,"Count":2}]}`)}
					default:
						// Unknown frame types make an old worker drop the
						// connection — FrameMetrics lands here by design.
						return
					}
					if err := dist.EncodeFrame(conn, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       []string{ln.Addr().String()},
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx := obs.WithTraceID(context.Background(), obs.NewTraceID())
	prof := &workload.QueryProfile{}
	rows, err := coord.QueryProfiledCtx(ctx, cubetree.Query{}, prof)
	if err != nil {
		t.Fatalf("profiled query against old worker: %v", err)
	}
	if len(rows) != 1 || rows[0].Sum != 42 || rows[0].Count != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if len(prof.Shards) != 1 {
		t.Fatalf("profile shards = %+v", prof.Shards)
	}
	if prof.Shards[0].Profile != nil {
		t.Fatal("old worker cannot have produced a worker-side profile")
	}
	if prof.PointsScanned != 0 {
		t.Fatalf("fleet sums counted a shard that reported nothing: %+v", *prof)
	}

	// The metrics scrape against an old worker fails per-shard without
	// failing the endpoint.
	info := coord.ClusterInfo(ctx)
	if len(info.Shards) != 1 || info.Shards[0].Error == "" {
		t.Fatalf("cluster info vs old worker = %+v", info.Shards)
	}
}
