package dist

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
)

// ShardOf assigns a fact to one of n shards by FNV-1a over its key values
// in a fixed attribute order. Any assignment would produce correct query
// results — the measures are distributive and the coordinator folds partial
// aggregates per group — so the hash is purely a load-balance choice, and
// the initial load and later deltas need not even agree on it. They do
// anyway (both go through this function) so shards stay balanced as
// refreshes accumulate.
func ShardOf(vals []int64, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vals {
		u := uint64(v)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (u >> shift) & 0xff
			h *= prime64
		}
	}
	return int(h % uint64(n))
}

// SortedAttrs returns the attribute names of a domain map in the canonical
// sorted order used for hashing and CSV rendering.
func SortedAttrs(domains map[lattice.Attr]int64) []lattice.Attr {
	attrs := make([]lattice.Attr, 0, len(domains))
	for a := range domains {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	return attrs
}

// PartitionMeasure is the measure column name in partitioned CSV documents.
const PartitionMeasure = "m"

// Partition splits a fact stream into n per-shard CSV documents: a header
// row naming attrs plus the measure column, then each fact rendered on the
// shard ShardOf picked from its attribute values in attrs order. Shards
// with no facts still get a header-only document, so every worker sees a
// (possibly empty) delta. The same renderer feeds initial loads and refresh
// deltas, keeping both sides of the hash consistent.
func Partition(rows cube.RowIter, attrs []lattice.Attr, n int) ([][]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: partition into %d shards", n)
	}
	var header bytes.Buffer
	for _, a := range attrs {
		header.WriteString(string(a))
		header.WriteByte(',')
	}
	header.WriteString(PartitionMeasure)
	header.WriteByte('\n')

	out := make([]*bytes.Buffer, n)
	for i := range out {
		out[i] = bytes.NewBuffer(nil)
		out[i].Write(header.Bytes())
	}
	vals := make([]int64, len(attrs))
	var line []byte
	for rows.Next() {
		for i, a := range attrs {
			v, err := rows.Value(a)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		line = line[:0]
		for _, v := range vals {
			line = strconv.AppendInt(line, v, 10)
			line = append(line, ',')
		}
		line = strconv.AppendInt(line, rows.Measure(), 10)
		line = append(line, '\n')
		out[ShardOf(vals, n)].Write(line)
	}
	if ec, ok := rows.(interface{ Err() error }); ok {
		if err := ec.Err(); err != nil {
			return nil, err
		}
	}
	docs := make([][]byte, n)
	for i, b := range out {
		docs[i] = b.Bytes()
	}
	return docs, nil
}
