package dist_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/obs"
)

// fakeShard is a scripted worker speaking raw wire frames: it answers stats,
// health, and query frames with canned payloads, and either answers the
// metrics scrape with a prepared snapshot or — like a pre-metrics worker —
// drops the connection on the unknown frame type.
type fakeShard struct {
	ln         net.Listener
	generation int
	metrics    *obs.Snapshot // nil: drop the connection on FrameMetrics
}

func startFakeShard(t *testing.T, generation int, metrics *obs.Snapshot) *fakeShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeShard{ln: ln, generation: generation, metrics: metrics}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go fs.serve(conn)
		}
	}()
	return fs
}

func (fs *fakeShard) serve(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := dist.DecodeFrame(conn)
		if err != nil {
			return
		}
		var reply dist.Frame
		switch f.Type {
		case dist.FrameStats:
			reply = dist.Frame{Type: dist.FrameStatsReply, ID: f.ID, Payload: []byte(fmt.Sprintf(
				`{"generation":%d,"views":[{"name":"all","attrs":[]}],"domains":{},"schema":["sum","count"],"points":1,"bytes":64}`,
				fs.generation))}
		case dist.FrameHealth:
			reply = dist.Frame{Type: dist.FrameHealthReply, ID: f.ID, Payload: []byte(fmt.Sprintf(
				`{"generation":%d}`, fs.generation))}
		case dist.FrameQuery:
			reply = dist.Frame{Type: dist.FrameRows, ID: f.ID, Payload: []byte(fmt.Sprintf(
				`{"generation":%d,"rows":[{"Group":[],"Sum":7,"Count":1}]}`, fs.generation))}
		case dist.FrameMetrics:
			if fs.metrics == nil {
				return // pre-metrics worker: unknown frame drops the connection
			}
			body, err := json.Marshal(struct {
				Generation int          `json:"generation"`
				Metrics    obs.Snapshot `json:"metrics"`
			}{fs.generation, *fs.metrics})
			if err != nil {
				return
			}
			reply = dist.Frame{Type: dist.FrameMetricsReply, ID: f.ID, Payload: body}
		default:
			return
		}
		if err := dist.EncodeFrame(conn, reply); err != nil {
			return
		}
	}
}

func fakeCoordinator(t *testing.T, shards ...*fakeShard) *dist.Coordinator {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, fs := range shards {
		addrs[i] = fs.ln.Addr().String()
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       addrs,
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// snapshotWithHistogram builds a worker snapshot whose query_latency_ns
// carries n observations of value v (all in one log2 bucket).
func snapshotWithHistogram(n int, v int64, queries uint64) *obs.Snapshot {
	var h obs.Histogram
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
	return &obs.Snapshot{
		TakenUnixNS: time.Now().UnixNano(),
		Counters:    map[string]uint64{"query_total": queries},
		Gauges:      map[string]int64{"pool_resident_frames": 8},
		Histograms:  map[string]obs.HistogramSnapshot{"query_latency_ns": h.Snapshot()},
	}
}

// The fleet histogram merge with disjoint buckets: one shard all-fast, one
// shard all-slow. The merged distribution must hold both populations with
// exact counts and percentiles spanning the gap.
func TestClusterInfoHistogramMergeDisjointBuckets(t *testing.T) {
	fast := startFakeShard(t, 1, snapshotWithHistogram(100, 1000, 100))
	slow := startFakeShard(t, 1, snapshotWithHistogram(100, 50_000_000, 100))
	coord := fakeCoordinator(t, fast, slow)

	info := coord.ClusterInfo(context.Background())
	m, ok := info.Fleet.Histograms["query_latency_ns"]
	if !ok {
		t.Fatalf("fleet histograms = %+v", info.Fleet.Histograms)
	}
	if m.Count != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count)
	}
	if m.Min != 1000 || m.Max != 50_000_000 {
		t.Fatalf("merged min/max = %d/%d", m.Min, m.Max)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("merged buckets = %+v (want the two disjoint source buckets)", m.Buckets)
	}
	// Half the observations are fast: p50 stays in the fast bucket, p99 must
	// land in the slow one.
	if m.P50 >= 2048 {
		t.Fatalf("merged p50 = %d, want inside the fast bucket", m.P50)
	}
	if m.P99 < 33_554_432 {
		t.Fatalf("merged p99 = %d, want inside the slow bucket", m.P99)
	}
	if got := info.Fleet.Counters["query_total"]; got != 200 {
		t.Fatalf("fleet query_total = %d", got)
	}
}

// A worker that answers queries but fails the metrics scrape: its row carries
// the error, the fleet merge covers only the healthy shard, and the query
// path keeps working against both shards throughout.
func TestClusterInfoPartialScrape(t *testing.T) {
	healthy := startFakeShard(t, 1, snapshotWithHistogram(10, 1000, 10))
	mute := startFakeShard(t, 1, nil) // answers queries, drops FrameMetrics
	coord := fakeCoordinator(t, healthy, mute)
	ctx := context.Background()

	// Queries scatter to both shards and succeed.
	rows, err := coord.QueryCtx(ctx, cubetree.Query{})
	if err != nil {
		t.Fatalf("query against mixed fleet: %v", err)
	}
	if len(rows) != 1 || rows[0].Sum != 14 { // 7 from each shard, merged
		t.Fatalf("rows = %+v", rows)
	}

	info := coord.ClusterInfo(ctx)
	var okRows, errRows int
	for _, sh := range info.Shards {
		if sh.Error == "" {
			okRows++
			if sh.Metrics == nil {
				t.Fatalf("healthy shard %s has no metrics", sh.Addr)
			}
		} else {
			errRows++
			if sh.Metrics != nil {
				t.Fatalf("failed shard %s still carries metrics", sh.Addr)
			}
		}
	}
	if okRows != 1 || errRows != 1 {
		t.Fatalf("scrape rows ok=%d err=%d, want 1/1", okRows, errRows)
	}
	// Fleet totals reflect only the shard that answered.
	if got := info.Fleet.Counters["query_total"]; got != 10 {
		t.Fatalf("fleet query_total = %d, want 10 (healthy shard only)", got)
	}
	if got := info.Fleet.Histograms["query_latency_ns"].Count; got != 10 {
		t.Fatalf("fleet histogram count = %d, want 10", got)
	}
}

// Generation skew: a shard one generation behind must widen the min/max
// spread, and the logical generation remains the sum.
func TestClusterInfoGenerationSkew(t *testing.T) {
	ahead := startFakeShard(t, 2, snapshotWithHistogram(1, 1000, 1))
	behind := startFakeShard(t, 1, snapshotWithHistogram(1, 1000, 1))
	coord := fakeCoordinator(t, ahead, behind)

	info := coord.ClusterInfo(context.Background())
	if info.GenerationMin != 1 || info.GenerationMax != 2 || info.GenerationSkew != 1 {
		t.Fatalf("generation spread = min %d max %d skew %d, want 1/2/1",
			info.GenerationMin, info.GenerationMax, info.GenerationSkew)
	}
	if info.Generation != 3 {
		t.Fatalf("logical generation = %d, want 3 (sum of shards)", info.Generation)
	}
}

// FleetSnapshot folds the scrape into one obs.Snapshot suitable as a history
// source: worker counters and histograms summed, scrape coverage gauges set.
func TestFleetSnapshot(t *testing.T) {
	a := startFakeShard(t, 1, snapshotWithHistogram(50, 1000, 50))
	b := startFakeShard(t, 1, snapshotWithHistogram(50, 1_000_000, 50))
	coord := fakeCoordinator(t, a, b)

	snap := coord.FleetSnapshot(context.Background())
	if snap.TakenUnixNS == 0 {
		t.Fatal("fleet snapshot not timestamped")
	}
	if got := snap.Counters["query_total"]; got != 100 {
		t.Fatalf("fleet query_total = %d, want 100", got)
	}
	if got := snap.Histograms["query_latency_ns"].Count; got != 100 {
		t.Fatalf("fleet latency count = %d, want 100", got)
	}
	if snap.Gauges["dist_scraped_shards"] != 2 || snap.Gauges["dist_shards"] != 2 {
		t.Fatalf("scrape coverage gauges = %+v", snap.Gauges)
	}

	// With one shard failing the scrape, coverage narrows but the snapshot
	// still stands.
	mute := startFakeShard(t, 1, nil)
	coord2 := fakeCoordinator(t, a, mute)
	snap = coord2.FleetSnapshot(context.Background())
	if snap.Counters["query_total"] != 50 {
		t.Fatalf("partial fleet query_total = %d, want 50", snap.Counters["query_total"])
	}
	if snap.Gauges["dist_scraped_shards"] != 1 || snap.Gauges["dist_shards"] != 2 {
		t.Fatalf("partial coverage gauges = %+v", snap.Gauges)
	}
}
