package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHealth, ID: 1},
		{Type: FrameQuery, ID: 42, Payload: []byte(`{"query":{}}`)},
		{Type: FrameError, ID: 1 << 60, Payload: bytes.Repeat([]byte{0xab}, 200_000)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %v/%d/%dB, want %v/%d/%dB",
				got.Type, got.ID, len(got.Payload), want.Type, want.ID, len(want.Payload))
		}
	}
	if _, err := DecodeFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		EncodeFrame(&buf, Frame{Type: FrameHealth, ID: 7, Payload: []byte("{}")})
		return buf.Bytes()
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"zero type", func(b []byte) []byte { b[5] = 0; return b }, "frame type"},
		{"unknown type", func(b []byte) []byte { b[5] = byte(frameTypeMax) + 1; return b }, "frame type"},
		{"oversized length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[14:18], MaxFramePayload+1)
			return b
		}, "frame limit"},
		{"truncated payload", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[14:18], 10_000)
			return b
		}, "short frame payload"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeFrame(bytes.NewReader(tc.mutate(valid())))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDecodeFrameNoOverAllocate checks that a header declaring a huge
// payload on a short stream fails without allocating the declared size.
func TestDecodeFrameNoOverAllocate(t *testing.T) {
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = byte(FrameQuery)
	binary.BigEndian.PutUint32(hdr[14:18], MaxFramePayload) // 256 MiB claimed
	input := append(hdr[:], make([]byte, 1024)...)          // 1 KiB delivered

	allocs := testing.AllocsPerRun(10, func() {
		DecodeFrame(bytes.NewReader(input))
	})
	// The growth loop should stop at the first short read: well under ten
	// allocations, none of them 256 MiB. (An over-allocating decoder would
	// OOM the fuzzer long before this assertion fires.)
	if allocs > 10 {
		t.Fatalf("decode of truncated frame did %v allocs", allocs)
	}
}

// FuzzDecodeFrame drives the decoder with arbitrary bytes: it must never
// panic or over-allocate, and whatever it accepts must re-encode to the
// bytes it consumed.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	EncodeFrame(&seed, Frame{Type: FrameQuery, ID: 3, Payload: []byte(`{"query":{"Node":["a"]}}`)})
	f.Add(seed.Bytes())
	EncodeFrame(&seed, Frame{Type: FrameError, ID: 0})
	f.Add(seed.Bytes())
	f.Add([]byte("CTDW garbage"))
	f.Add(make([]byte, headerLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := DecodeFrame(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode mismatch: %x vs %x", out.Bytes(), data[:consumed])
		}
	})
}
