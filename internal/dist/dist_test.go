package dist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/workload"
)

// memRows is an in-memory fact iterator.
type memRows struct {
	cols    []cubetree.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (s *memRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *memRows) Value(a cubetree.Attr) (int64, error) {
	for j, c := range s.cols {
		if c == a {
			return s.rows[s.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", a)
}
func (s *memRows) Measure() int64 { return s.measure[s.i-1] }

var testAttrs = []cubetree.Attr{"custkey", "partkey", "suppkey"}

var testDomains = map[cubetree.Attr]int64{"partkey": 12, "suppkey": 8, "custkey": 10}

// synthFacts generates n deterministic facts over the test domains.
func synthFacts(n int, seed uint64) *memRows {
	s := &memRows{cols: []cubetree.Attr{"partkey", "suppkey", "custkey"}}
	state := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for i := 0; i < n; i++ {
		s.rows = append(s.rows, []int64{
			int64(next()%12) + 1, int64(next()%8) + 1, int64(next()%10) + 1,
		})
		s.measure = append(s.measure, int64(next()%1000)-200)
	}
	return s
}

func clusterViews() []cubetree.View {
	return []cubetree.View{
		cubetree.NewView("top", "partkey", "suppkey", "custkey"),
		cubetree.NewView("ps", "partkey", "suppkey"),
		cubetree.NewView("c", "custkey"),
		cubetree.NewView("all"),
	}
}

// cluster is a single-process reference warehouse plus an n-shard live
// cluster over real TCP, built from the same facts.
type cluster struct {
	single  *cubetree.Warehouse
	coord   *dist.Coordinator
	workers []*dist.Worker
	whs     []*cubetree.Warehouse
	addrs   []string
}

func startCluster(t *testing.T, n int, facts *memRows, o *obs.Observer) *cluster {
	t.Helper()
	dir := t.TempDir()
	cfgFor := func(sub string) cubetree.Config {
		return cubetree.Config{
			Dir:           filepath.Join(dir, sub),
			Domains:       testDomains,
			ExtraMeasures: []cubetree.Agg{lattice.AggMin, lattice.AggMax},
		}
	}
	cl := &cluster{}
	var err error
	allFacts := *facts
	cl.single, err = cubetree.Materialize(cfgFor("single"), clusterViews(), &allFacts)
	if err != nil {
		t.Fatal(err)
	}
	shardFacts := *facts
	docs, err := dist.Partition(&shardFacts, testAttrs, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		src, err := cubetree.CSVRows(bytes.NewReader(doc), dist.PartitionMeasure)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := cubetree.Materialize(cfgFor(fmt.Sprintf("shard%d", i)), clusterViews(), src)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		cl.whs = append(cl.whs, wh)
		wk := dist.NewWorker(cubetree.ShardBackend(wh), cubetree.ShardCSV, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go wk.Serve(ln)
		cl.workers = append(cl.workers, wk)
		cl.addrs = append(cl.addrs, ln.Addr().String())
	}
	cl.coord, err = dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       cl.addrs,
		Retries:      3,
		RetryBackoff: 10 * time.Millisecond,
		Obs:          o,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.coord.Close()
		for _, wk := range cl.workers {
			wk.Close()
		}
		cl.single.Close()
		for _, wh := range cl.whs {
			wh.Close()
		}
	})
	return cl
}

// testQueries builds a mixed batch over every node: random equality slices,
// range slices, and the bare group-by of each node.
func testQueries(perNode int) []cubetree.Query {
	gen := workload.NewGenerator(99, map[lattice.Attr]int64(testDomains))
	nodes := [][]lattice.Attr{
		{"partkey", "suppkey", "custkey"},
		{"partkey", "suppkey"},
		{"custkey"},
		{},
	}
	var qs []cubetree.Query
	for _, node := range nodes {
		qs = append(qs, cubetree.Query{Node: append([]lattice.Attr(nil), node...)})
		for i := 0; i < perNode; i++ {
			if i%3 == 2 {
				qs = append(qs, gen.ForNodeRanges(node, 0.4))
			} else {
				qs = append(qs, gen.ForNode(node))
			}
		}
	}
	return qs
}

// TestClusterEquivalence is the acceptance check: the same query batch
// against a 3-shard cluster and a single-process warehouse over the same
// facts returns identical sorted rows, including the MIN/MAX/COUNT
// measures, both one query at a time and as a scattered batch.
func TestClusterEquivalence(t *testing.T) {
	cl := startCluster(t, 3, synthFacts(600, 1), nil)
	qs := testQueries(12)
	ctx := context.Background()
	for i, q := range qs {
		want, err := cl.single.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("query %d single: %v", i, err)
		}
		got, err := cl.coord.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("query %d dist: %v", i, err)
		}
		if !workload.EqualRows(got, want) {
			t.Fatalf("query %d %v:\n dist   %v\n single %v", i, q, got, want)
		}
	}
	wantBatch, err := cl.single.QueryBatchCtx(ctx, qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := cl.coord.QueryBatchCtx(ctx, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !workload.EqualRows(gotBatch[i], wantBatch[i]) {
			t.Fatalf("batch query %d: dist %v, single %v", i, gotBatch[i], wantBatch[i])
		}
	}
}

// TestClusterRefresh checks the distributed refresh end to end: results
// after a fanned-out Update match a single-process Update over the same
// delta, the logical generation advances once per shard, and queries racing
// the refresh observe the old totals or the new totals — never a mix of
// shard generations (the mixed-generation counter stays zero).
func TestClusterRefresh(t *testing.T) {
	o := obs.New(obs.Options{})
	cl := startCluster(t, 3, synthFacts(600, 1), o)
	ctx := context.Background()
	probes := []cubetree.Query{
		{Node: []lattice.Attr{}},
		{Node: []lattice.Attr{"partkey", "suppkey"}, Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}}},
	}
	var olds, news [][]workload.Row
	for _, q := range probes {
		rows, err := cl.coord.QueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		olds = append(olds, rows)
	}
	genBefore := cl.coord.Generation()

	delta := synthFacts(250, 7)
	singleDelta := *delta
	if err := cl.single.Update(&singleDelta); err != nil {
		t.Fatal(err)
	}
	for _, q := range probes {
		rows, err := cl.single.QueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		news = append(news, rows)
	}

	done := make(chan error, 1)
	distDelta := *delta
	go func() { done <- cl.coord.Update(&distDelta) }()
	// Race probes against the refresh: every answer must be exactly the old
	// result or exactly the new one.
	for racing := true; racing; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			racing = false
		default:
			for i, q := range probes {
				rows, err := cl.coord.QueryCtx(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if !workload.EqualRows(rows, olds[i]) && !workload.EqualRows(rows, news[i]) {
					t.Fatalf("mid-refresh probe %d saw a mixed-generation result:\n got %v\n old %v\n new %v",
						i, rows, olds[i], news[i])
				}
			}
		}
	}

	for i, q := range probes {
		rows, err := cl.coord.QueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !workload.EqualRows(rows, news[i]) {
			t.Fatalf("post-refresh probe %d: dist %v, single %v", i, rows, news[i])
		}
	}
	if got := cl.coord.Generation(); got != genBefore+3 {
		t.Fatalf("logical generation = %d, want %d (one bump per shard)", got, genBefore+3)
	}
	if n := o.Registry.Snapshot().Counters["dist_mixed_generation_total"]; n != 0 {
		t.Fatalf("saw %d mixed-generation scatters", n)
	}
	// A second refresh exercises commit idempotency paths from a clean slate.
	delta2 := synthFacts(50, 13)
	singleDelta2 := *delta2
	if err := cl.single.Update(&singleDelta2); err != nil {
		t.Fatal(err)
	}
	distDelta2 := *delta2
	if err := cl.coord.Update(&distDelta2); err != nil {
		t.Fatal(err)
	}
	want, err := cl.single.QueryCtx(ctx, probes[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.coord.QueryCtx(ctx, probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if !workload.EqualRows(got, want) {
		t.Fatalf("after second refresh: dist %v, single %v", got, want)
	}
}

// TestWorkerLoss kills one worker and checks that a query fails fast with a
// structured *ShardError naming the dead shard and carrying a retry hint —
// no hang, no silently partial result.
func TestWorkerLoss(t *testing.T) {
	cl := startCluster(t, 2, synthFacts(300, 3), nil)
	if err := cl.workers[1].Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := cl.coord.QueryCtx(context.Background(), cubetree.Query{Node: []lattice.Attr{}})
	elapsed := time.Since(start)
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *dist.ShardError", err)
	}
	if se.Addr != cl.addrs[1] {
		t.Fatalf("ShardError.Addr = %s, want %s", se.Addr, cl.addrs[1])
	}
	if se.Attempts != 4 { // Retries=3 plus the initial attempt
		t.Fatalf("ShardError.Attempts = %d, want 4", se.Attempts)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("ShardError.RetryAfter = %v, want a positive hint", se.RetryAfter)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("worker-loss query took %v, want fast structured failure", elapsed)
	}
	// The surviving shard keeps answering once the dead one is removed from
	// the debug table's perspective; DebugInfo must name the failure.
	d := cl.coord.DebugInfo()
	if len(d.Shards) != 2 || d.Shards[1].LastError == "" {
		t.Fatalf("debug info missing shard error: %+v", d)
	}
}

// TestConnectBackoff starts a worker only after the coordinator begins
// dialing: the transient connect failures must be absorbed by retry with
// backoff rather than surfacing.
func TestConnectBackoff(t *testing.T) {
	facts := synthFacts(200, 5)
	dir := t.TempDir()
	cfg := cubetree.Config{Dir: filepath.Join(dir, "wh"), Domains: testDomains}
	docs, err := dist.Partition(facts, testAttrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cubetree.CSVRows(bytes.NewReader(docs[0]), dist.PartitionMeasure)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := cubetree.Materialize(cfg, clusterViews(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()

	// Reserve an address, release it, and only re-listen after a delay; the
	// coordinator's first dials get connection-refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	wk := dist.NewWorker(cubetree.ShardBackend(wh), cubetree.ShardCSV, nil)
	defer wk.Close()
	go func() {
		time.Sleep(250 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		wk.Serve(ln2)
	}()

	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Shards:       []string{addr},
		Retries:      8,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("coordinator did not ride out connect failures: %v", err)
	}
	defer coord.Close()
	rows, err := coord.QueryCtx(context.Background(), cubetree.Query{Node: []lattice.Attr{}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("query after backoff = %v, %v", rows, err)
	}
}
