package dist_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/server"
)

// TestClusterDaemonWorkerLoss is the process-level integration: build the
// real cubetreed binary, boot two -worker processes and one -shards
// coordinator, storm the coordinator with queries over HTTP, SIGTERM one
// worker mid-storm, and assert that every response is either a good 200 or
// a structured error envelope (503 shard_unavailable with a retry hint) —
// never a bare 500, never torn JSON — and that the coordinator itself
// drains cleanly afterwards.
func TestClusterDaemonWorkerLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon; skipped in -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM semantics are POSIX-only")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}

	dir := t.TempDir()
	facts := synthFacts(400, 11)
	docs, err := dist.Partition(facts, testAttrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	shardDirs := make([]string, 2)
	for i, doc := range docs {
		shardDirs[i] = filepath.Join(dir, fmt.Sprintf("shard%d", i))
		src, err := cubetree.ShardCSV(doc, dist.PartitionMeasure)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := cubetree.Materialize(
			cubetree.Config{Dir: shardDirs[i], Domains: testDomains},
			clusterViews(), src)
		if err != nil {
			t.Fatal(err)
		}
		if err := wh.Close(); err != nil {
			t.Fatal(err)
		}
	}

	bin := filepath.Join(dir, "cubetreed")
	build := exec.Command("go", "build", "-race", "-o", bin, "cubetree/cmd/cubetreed")
	if out, err := build.CombinedOutput(); err != nil {
		t.Logf("race build unavailable (%v), building without -race:\n%s", err, out)
		build = exec.Command("go", "build", "-o", bin, "cubetree/cmd/cubetreed")
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build cubetreed: %v\n%s", err, out)
		}
	}

	type proc struct {
		cmd  *exec.Cmd
		tail func() string
	}
	var procs []proc
	start := func(needle string, args ...string) (string, *exec.Cmd) {
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addr, tail := scrapeAddr(t, stderr, needle)
		procs = append(procs, proc{cmd, tail})
		return addr, cmd
	}
	defer func() {
		for _, p := range procs {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}()

	w0, _ := start("worker serving", "-worker", "-dir", shardDirs[0], "-addr", "127.0.0.1:0")
	w1, worker1 := start("worker serving", "-worker", "-dir", shardDirs[1], "-addr", "127.0.0.1:0")
	// -cache=-1: the storm repeats three statements, and a warm result cache
	// would keep answering them after the worker dies without ever
	// scattering; the point here is to hit the degraded shard.
	coordAddr, coordinator := start("coordinator serving",
		"-shards", w0+","+w1, "-addr", "127.0.0.1:0", "-drain-grace", "20s", "-cache", "-1")
	base := "http://" + coordAddr

	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := client.Get(base + "/readyz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never became ready:\n%s", procs[2].tail())
		}
		time.Sleep(10 * time.Millisecond)
	}

	type outcome struct {
		status int
		err    error
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
		stop     atomic.Bool
	)
	sqls := []string{
		"SELECT sum(quantity), count(*) FROM facts",
		"SELECT partkey, sum(quantity) FROM facts GROUP BY partkey",
		"SELECT custkey, count(*) FROM facts WHERE custkey = 3 GROUP BY custkey",
	}
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				res, err := client.Post(base+"/query", "text/plain",
					strings.NewReader(sqls[(i+c)%len(sqls)]))
				if err != nil {
					mu.Lock()
					outcomes = append(outcomes, outcome{err: err})
					mu.Unlock()
					time.Sleep(5 * time.Millisecond)
					continue
				}
				body, rerr := io.ReadAll(res.Body)
				res.Body.Close()
				o := outcome{status: res.StatusCode}
				if rerr != nil {
					o.err = fmt.Errorf("truncated response: %w", rerr)
				} else if res.StatusCode == http.StatusOK {
					var resp server.QueryResponse
					if jerr := json.Unmarshal(body, &resp); jerr != nil || len(resp.Results) != 1 {
						o.err = fmt.Errorf("torn 200 body: %v %q", jerr, body)
					}
				} else {
					var envelope server.ErrorResponse
					if jerr := json.Unmarshal(body, &envelope); jerr != nil || envelope.Error.Code == "" {
						o.err = fmt.Errorf("unstructured %d body: %q", res.StatusCode, body)
					} else if res.StatusCode == http.StatusServiceUnavailable &&
						envelope.Error.Code == server.CodeShardDown && envelope.Error.RetryAfterMS <= 0 {
						o.err = fmt.Errorf("shard_unavailable without retry hint: %q", body)
					}
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}
		}(c)
	}

	// Establish traffic, then kill one worker mid-storm and keep storming
	// against the degraded cluster.
	time.Sleep(400 * time.Millisecond)
	if err := worker1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := worker1.Wait(); err != nil {
		t.Errorf("worker exited non-zero after SIGTERM: %v\n%s", err, procs[1].tail())
	}
	time.Sleep(600 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	var ok200, shed503, other4xx int
	for _, o := range outcomes {
		switch {
		case o.err != nil && o.status == 0:
			t.Fatalf("transport error against live coordinator: %v", o.err)
		case o.err != nil:
			t.Fatalf("bad response: status %d: %v", o.status, o.err)
		case o.status == http.StatusOK:
			ok200++
		case o.status == http.StatusServiceUnavailable:
			shed503++
		case o.status == http.StatusInternalServerError:
			t.Fatalf("coordinator answered a bare 500 after worker loss")
		case o.status >= 400 && o.status < 500:
			other4xx++
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	t.Logf("storm outcomes: %d ok, %d structured 503, %d 4xx", ok200, shed503, other4xx)
	if ok200 == 0 {
		t.Fatal("storm completed no queries; the test exercised nothing")
	}
	if shed503 == 0 {
		t.Fatal("no structured shard_unavailable errors after killing a worker")
	}

	// The coordinator itself must still drain cleanly.
	if err := coordinator.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- coordinator.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("coordinator exited non-zero after SIGTERM: %v\n%s", err, procs[2].tail())
		}
	case <-time.After(30 * time.Second):
		t.Error("coordinator did not exit within 30s of SIGTERM")
	}
}

// scrapeAddr reads a daemon's stderr until a line containing needle, and
// returns the host:port after its " on " marker (stripping any http://
// scheme) plus a closure yielding the log seen so far.
func scrapeAddr(t *testing.T, stderr io.Reader, needle string) (string, func() string) {
	t.Helper()
	var (
		mu    sync.Mutex
		lines []string
	)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
			if i := strings.Index(line, " on "); i >= 0 && strings.Contains(line, needle) {
				addr := strings.TrimPrefix(line[i+len(" on "):], "http://")
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	tail := func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}
	select {
	case addr := <-addrCh:
		return addr, tail
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never logged %q:\n%s", needle, tail())
		return "", tail
	}
}
