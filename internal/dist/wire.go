// Package dist distributes a cubetree forest across worker processes: a
// coordinator hash-partitions the fact key space over N workers, each
// owning a full view set materialized from its slice of the facts, scatters
// every slice query to all shards in parallel, and folds the partial
// aggregates back together with the lattice.Schema fold. Because every
// stored measure is distributive (SUM/COUNT add, MIN/MAX take extremes),
// the merged result is identical to a single-process warehouse over the
// union of the facts, regardless of how rows were assigned to shards.
//
// Refresh fans out per-shard CSV deltas in two phases: every worker
// merge-packs its delta into a pending generation concurrently (queries
// keep flowing against the old generations), then the coordinator commits
// all shards inside one brief query-blocking window, so a scatter observes
// either every shard's old generation or every shard's new one — never a
// mix.
//
// Workers speak a versioned length-prefixed binary protocol over TCP; see
// docs/DISTRIBUTED.md for the framing, commit sequence, and failure matrix.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"cubetree/internal/obs"
	"cubetree/internal/workload"
)

const (
	// Magic opens every frame: "CTDW" (CubeTree Distributed Wire).
	Magic = 0x43544457
	// Version is the protocol version carried in every frame header.
	Version = 1
	// headerLen is the fixed frame header size: magic u32, version u8,
	// type u8, request id u64, payload length u32, all big-endian.
	headerLen = 18
	// MaxFramePayload bounds a frame's declared payload length; a header
	// claiming more is a protocol error, closing the connection.
	MaxFramePayload = 256 << 20
)

// FrameType tags a frame's payload shape.
type FrameType uint8

const (
	// FrameQuery carries one slice query; answered by FrameRows.
	FrameQuery FrameType = iota + 1
	// FrameRows is the partial result of one query at one shard.
	FrameRows
	// FrameQueryBatch carries a whole query batch; answered by
	// FrameRowsBatch. Batching amortizes the per-frame round trip when the
	// coordinator executes many queries at once.
	FrameQueryBatch
	// FrameRowsBatch is the per-query partial results of a batch.
	FrameRowsBatch
	// FrameRefreshPrepare ships a shard's CSV delta; the worker sorts and
	// merge-packs it into a pending generation and answers
	// FrameRefreshPrepared without switching.
	FrameRefreshPrepare
	// FrameRefreshPrepared acks a prepare with the pending generation.
	FrameRefreshPrepared
	// FrameRefreshCommit asks the worker to switch to the named pending
	// generation; answered by FrameRefreshAck. Committing an
	// already-committed generation re-acks, so commit retries are safe.
	FrameRefreshCommit
	// FrameRefreshAbort discards the pending generation, if any.
	FrameRefreshAbort
	// FrameRefreshAck acks a commit or abort with the current generation.
	FrameRefreshAck
	// FrameStats requests the shard's catalog summary; answered by
	// FrameStatsReply.
	FrameStats
	// FrameStatsReply carries generation, views, domains, schema and sizes.
	FrameStatsReply
	// FrameHealth is a liveness probe; answered by FrameHealthReply.
	FrameHealth
	// FrameHealthReply carries the shard's current generation.
	FrameHealthReply
	// FrameError is the failure reply to any request frame.
	FrameError
	// FrameMetrics requests the shard's observability snapshot (metrics
	// registry plus warehouse sizes) for /debug/cluster; answered by
	// FrameMetricsReply. Added after protocol v1 shipped: a pre-metrics
	// worker rejects the unknown type and drops the connection, which the
	// coordinator surfaces as a per-shard scrape error on the debug endpoint
	// — the query path never sends this frame, so old workers keep serving.
	FrameMetrics
	// FrameMetricsReply carries the shard's metric snapshot.
	FrameMetricsReply

	frameTypeMax = FrameMetricsReply
)

var frameNames = map[FrameType]string{
	FrameQuery: "query", FrameRows: "rows",
	FrameQueryBatch: "queryBatch", FrameRowsBatch: "rowsBatch",
	FrameRefreshPrepare: "refreshPrepare", FrameRefreshPrepared: "refreshPrepared",
	FrameRefreshCommit: "refreshCommit", FrameRefreshAbort: "refreshAbort",
	FrameRefreshAck: "refreshAck", FrameStats: "stats", FrameStatsReply: "statsReply",
	FrameHealth: "health", FrameHealthReply: "healthReply", FrameError: "error",
	FrameMetrics: "metrics", FrameMetricsReply: "metricsReply",
}

func (t FrameType) String() string {
	if n, ok := frameNames[t]; ok {
		return n
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame is one decoded protocol frame. ID correlates a reply with its
// request; each connection carries one request at a time, but the ID check
// still catches desynchronized streams.
type Frame struct {
	Type    FrameType
	ID      uint64
	Payload []byte
}

// EncodeFrame writes one frame to w.
func EncodeFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("dist: payload %d exceeds frame limit %d", len(f.Payload), MaxFramePayload)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[6:14], f.ID)
	binary.BigEndian.PutUint32(hdr[14:18], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// DecodeFrame reads one frame from r. Header violations (bad magic, unknown
// version or type, oversized length) return an error without consuming the
// payload; the connection is then unusable and must be closed. A clean EOF
// between frames returns io.EOF.
func DecodeFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if m := binary.BigEndian.Uint32(hdr[0:4]); m != Magic {
		return Frame{}, fmt.Errorf("dist: bad magic 0x%08x", m)
	}
	if hdr[4] != Version {
		return Frame{}, fmt.Errorf("dist: unsupported protocol version %d", hdr[4])
	}
	t := FrameType(hdr[5])
	if t == 0 || t > frameTypeMax {
		return Frame{}, fmt.Errorf("dist: unknown frame type %d", hdr[5])
	}
	n := binary.BigEndian.Uint32(hdr[14:18])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("dist: payload length %d exceeds frame limit %d", n, MaxFramePayload)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return Frame{}, fmt.Errorf("dist: short frame payload: %w", err)
	}
	return Frame{Type: t, ID: binary.BigEndian.Uint64(hdr[6:14]), Payload: payload}, nil
}

// readPayload reads exactly n bytes without trusting n for the initial
// allocation: the buffer grows in bounded steps as bytes actually arrive,
// so a header declaring a huge length on a truncated or hostile stream
// cannot balloon memory beyond what was really sent.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		if cap(buf)-len(buf) < m {
			grown := make([]byte, len(buf), min(n, 2*(len(buf)+m)))
			copy(grown, buf)
			buf = grown
		}
		start := len(buf)
		buf = buf[:start+m]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// marshalFrame builds a frame with a JSON payload.
func marshalFrame(t FrameType, id uint64, v any) (Frame, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Type: t, ID: id, Payload: payload}, nil
}

// unmarshalFrame decodes a frame's JSON payload into v.
func unmarshalFrame(f Frame, v any) error {
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("dist: bad %s payload: %w", f.Type, err)
	}
	return nil
}

// Error codes carried in errorPayload.Code.
const (
	// ErrCodeQuery marks a query execution failure on the shard.
	ErrCodeQuery = "query_failed"
	// ErrCodeRefresh marks a refresh phase failure on the shard.
	ErrCodeRefresh = "refresh_failed"
	// ErrCodeBadGeneration marks a commit naming neither the pending nor
	// the current generation — coordinator and worker have diverged.
	ErrCodeBadGeneration = "bad_generation"
	// ErrCodeBadRequest marks an undecodable or malformed request payload.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeOverloaded marks a transiently unservable request (e.g. the
	// shard's buffer pool is exhausted); the coordinator may retry.
	ErrCodeOverloaded = "overloaded"
)

// queryPayload is FrameQuery's body. TraceID and Profile were added after
// protocol v1 shipped; payloads are decoded with plain json.Unmarshal on both
// sides, so a pre-tracing worker ignores the extra fields and still answers
// (its reply simply lacks the profile), and a new worker treats their absence
// as untraced/unprofiled. This field-level versioning is why the header
// version byte did not need to change.
type queryPayload struct {
	Query   workload.Query `json:"query"`
	TraceID string         `json:"trace_id,omitempty"`
	Profile bool           `json:"profile,omitempty"`
}

// rowsPayload is FrameRows's body: the shard's partial rows and the
// generation they were computed against. Profile carries the worker-side
// EXPLAIN-ANALYZE breakdown when the request asked for one (absent from
// pre-tracing workers, which the coordinator tolerates).
type rowsPayload struct {
	Generation int                    `json:"generation"`
	Rows       []workload.Row         `json:"rows"`
	Profile    *workload.QueryProfile `json:"profile,omitempty"`
}

// queryBatchPayload is FrameQueryBatch's body. Parallelism bounds the
// worker-side execution parallelism (<= 1 means serial). TraceID tags the
// worker-side spans of every query in the batch (same compatibility story as
// queryPayload); batches are never profiled — a profiled statement is sent
// as an individual FrameQuery instead.
type queryBatchPayload struct {
	Queries     []workload.Query `json:"queries"`
	Parallelism int              `json:"parallelism"`
	TraceID     string           `json:"trace_id,omitempty"`
}

// rowsBatchPayload is FrameRowsBatch's body, one partial result slice per
// query in request order.
type rowsBatchPayload struct {
	Generation int              `json:"generation"`
	Results    [][]workload.Row `json:"results"`
}

// refreshPreparePayload is FrameRefreshPrepare's body: the shard's slice of
// the delta as a CSV document (header row naming attributes plus the
// measure column).
type refreshPreparePayload struct {
	CSV     []byte `json:"csv"`
	Measure string `json:"measure"`
}

// refreshPreparedPayload is FrameRefreshPrepared's body. NoOp marks an
// empty delta: nothing was prepared and Generation is the shard's current
// one, which a later commit of that generation simply re-acks.
type refreshPreparedPayload struct {
	Generation int  `json:"generation"`
	NoOp       bool `json:"no_op,omitempty"`
}

// refreshCommitPayload is FrameRefreshCommit's body.
type refreshCommitPayload struct {
	Generation int `json:"generation"`
}

// refreshAckPayload is FrameRefreshAck's body.
type refreshAckPayload struct {
	Generation int `json:"generation"`
}

// wireView is a view definition on the wire.
type wireView struct {
	Name  string   `json:"name,omitempty"`
	Attrs []string `json:"attrs"`
}

// statsReplyPayload is FrameStatsReply's body: enough of the shard's
// catalog for the coordinator to stand in for a local warehouse.
type statsReplyPayload struct {
	Generation int              `json:"generation"`
	Views      []wireView       `json:"views"`
	Domains    map[string]int64 `json:"domains"`
	Schema     []string         `json:"schema"`
	Points     int64            `json:"points"`
	Bytes      int64            `json:"bytes"`
}

// healthReplyPayload is FrameHealthReply's body.
type healthReplyPayload struct {
	Generation int `json:"generation"`
}

// metricsReplyPayload is FrameMetricsReply's body: the worker's full metric
// registry snapshot (counters, gauges — including the pool occupancy gauges —
// histograms, labeled families, attached page I/O) plus its generation, the
// raw material for the coordinator's /debug/cluster aggregation.
type metricsReplyPayload struct {
	Generation int          `json:"generation"`
	Metrics    obs.Snapshot `json:"metrics"`
}

// errorPayload is FrameError's body. Retryable tells the coordinator the
// failure is transient (retry the same shard after RetryAfterMS); otherwise
// the request is surfaced to the caller as a structured shard error.
type errorPayload struct {
	Code         string `json:"code"`
	Msg          string `json:"msg"`
	Retryable    bool   `json:"retryable,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}
