package dist

import (
	"context"
	"time"

	"cubetree/internal/obs"
)

// ClusterShard is one row of /debug/cluster's per-shard table: the scrape
// outcome, the shard's generation, its live scatter state on the coordinator
// side (in-flight legs, p95 latency, scrape-straggler verdict), its buffer
// pool occupancy, and the full worker metric snapshot the numbers came from.
type ClusterShard struct {
	Addr       string `json:"addr"`
	Generation int    `json:"generation"`
	// ScrapeNS is this shard's metrics round-trip wall time; Straggler marks
	// it a straggler relative to its siblings by the same 2×-fastest rule the
	// query path uses.
	ScrapeNS  int64  `json:"scrape_ns"`
	Straggler bool   `json:"straggler,omitempty"`
	Error     string `json:"error,omitempty"` // scrape failure (worker down or pre-metrics protocol)

	InFlight     int64 `json:"in_flight"`
	P95LatencyNS int64 `json:"p95_latency_ns"`

	// Pool occupancy, lifted out of the worker's gauges for the table view.
	PoolResidentFrames int64 `json:"pool_resident_frames"`
	PoolPinnedFrames   int64 `json:"pool_pinned_frames"`
	PoolCapacityFrames int64 `json:"pool_capacity_frames"`

	// Metrics is the worker's full registry snapshot (nil when the scrape
	// failed). Labeled families live only here — they have no meaningful
	// cross-shard sum, so the fleet merge does not attempt one.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// FleetMetrics is the cross-shard merge of the scraped snapshots: counters
// and gauges summed over every shard that answered, histograms merged
// bucket-by-bucket. Sums are the right fold for the first two — counters are
// monotone event counts and the gauges of interest (pool frames, inflight,
// points) are extensive quantities — and every obs.Histogram shares the same
// log2 bucket grid, so merged percentiles are exact at bucket granularity.
type FleetMetrics struct {
	Counters   map[string]uint64                `json:"counters"`
	Gauges     map[string]int64                 `json:"gauges"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// ClusterInfo is /debug/cluster's body: one endpoint answering "is the
// cluster healthy" — merged fleet metrics, the generation spread (skew > 0
// means a refresh commit left shards on different epochs), and the per-shard
// straggler/pool table.
type ClusterInfo struct {
	Generation int `json:"generation"` // logical (sum of shard generations)
	// Generation spread across the shards that answered the scrape. Shards
	// advance in lockstep, so Skew is normally 0; a persistent nonzero skew
	// means a refresh commit failed partway and the next refresh has not yet
	// realigned the fleet.
	GenerationMin  int `json:"generation_min"`
	GenerationMax  int `json:"generation_max"`
	GenerationSkew int `json:"generation_skew"`

	Shards []ClusterShard `json:"shards"`
	Fleet  FleetMetrics   `json:"fleet"`
}

// ClusterInfo scrapes every worker's metric snapshot in one scatter and
// aggregates the fleet view. Per-shard failures (a worker that is down, or
// one predating the metrics frame) are recorded in that shard's Error field
// rather than failing the whole scrape: a partially-visible cluster is
// exactly when the endpoint matters most.
func (c *Coordinator) ClusterInfo(ctx context.Context) ClusterInfo {
	n := len(c.shards)
	rows := make([]ClusterShard, n)
	payloads := make([]*metricsReplyPayload, n)
	elapsed, _ := c.scatter(func(i int, sh *shard) error {
		req, err := marshalFrame(FrameMetrics, 0, struct{}{})
		if err != nil {
			rows[i].Error = err.Error()
			return nil // recorded per shard; never fail the scrape
		}
		reply, _, err := c.roundTrip(ctx, sh, req, FrameMetricsReply,
			metricsRequestRetries, c.cfg.RequestTimeout)
		if err != nil {
			rows[i].Error = err.Error()
			return nil
		}
		var mp metricsReplyPayload
		if err := unmarshalFrame(reply, &mp); err != nil {
			rows[i].Error = err.Error()
			return nil
		}
		payloads[i] = &mp
		sh.generation.Store(int64(mp.Generation))
		return nil
	})

	info := ClusterInfo{
		Fleet: FleetMetrics{
			Counters:   map[string]uint64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]obs.HistogramSnapshot{},
		},
	}
	first := true
	for i, sh := range c.shards {
		row := &rows[i]
		row.Addr = sh.addr
		row.Generation = int(sh.generation.Load())
		row.ScrapeNS = elapsed[i].Nanoseconds()
		row.Straggler = stragglerAt(elapsed, i)
		row.InFlight = sh.inflight.Load()
		row.P95LatencyNS = sh.latency.Snapshot().P95
		if mp := payloads[i]; mp != nil {
			row.Metrics = &mp.Metrics
			row.PoolResidentFrames = mp.Metrics.Gauges["pool_resident_frames"]
			row.PoolPinnedFrames = mp.Metrics.Gauges["pool_pinned_frames"]
			row.PoolCapacityFrames = mp.Metrics.Gauges["pool_capacity_frames"]
			for name, v := range mp.Metrics.Counters {
				info.Fleet.Counters[name] += v
			}
			for name, v := range mp.Metrics.Gauges {
				info.Fleet.Gauges[name] += v
			}
			for name, h := range mp.Metrics.Histograms {
				info.Fleet.Histograms[name] = obs.MergeHistogramSnapshots(info.Fleet.Histograms[name], h)
			}
			if first || mp.Generation < info.GenerationMin {
				info.GenerationMin = mp.Generation
			}
			if first || mp.Generation > info.GenerationMax {
				info.GenerationMax = mp.Generation
			}
			first = false
		}
	}
	info.Generation = c.Generation()
	info.GenerationSkew = info.GenerationMax - info.GenerationMin
	info.Shards = rows
	return info
}

// FleetSnapshot folds one ClusterInfo scrape into a single obs.Snapshot: the
// coordinator's own registry (dist_* families, server-side counters) plus
// every worker's counters, gauges, and histograms summed or bucket-merged on
// top. Names shared by coordinator and workers add together — every metric in
// play is an extensive quantity, so the sum reads as "the whole fleet did
// this much". This is the Source a coordinator hands its history ring: the
// time-series and SLO views then describe the cluster, not one process, and
// the rollup rides the same metrics/metricsReply wire frames /debug/cluster
// uses, so pre-metrics workers degrade to a per-shard scrape error rather
// than an invisible gap. The dist_scraped_shards gauge records how many
// shards actually answered each sample.
func (c *Coordinator) FleetSnapshot(ctx context.Context) obs.Snapshot {
	info := c.ClusterInfo(ctx)
	var snap obs.Snapshot
	if o := c.cfg.Obs; o != nil {
		snap = o.Registry.Snapshot()
	}
	if snap.TakenUnixNS == 0 {
		snap.TakenUnixNS = time.Now().UnixNano()
	}
	if snap.Counters == nil {
		snap.Counters = map[string]uint64{}
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]int64{}
	}
	if snap.Histograms == nil {
		snap.Histograms = map[string]obs.HistogramSnapshot{}
	}
	for name, v := range info.Fleet.Counters {
		snap.Counters[name] += v
	}
	for name, v := range info.Fleet.Gauges {
		snap.Gauges[name] += v
	}
	for name, h := range info.Fleet.Histograms {
		snap.Histograms[name] = obs.MergeHistogramSnapshots(snap.Histograms[name], h)
	}
	scraped := 0
	for _, sh := range info.Shards {
		if sh.Error == "" {
			scraped++
		}
	}
	snap.Gauges["dist_scraped_shards"] = int64(scraped)
	snap.Gauges["dist_shards"] = int64(len(info.Shards))
	return snap
}
