// Package tpcd generates a deterministic, scale-free imitation of the TPC-D
// benchmark's DBGEN output restricted to the schema the paper uses: a fact
// table with part, supplier and customer foreign keys and a quantity
// measure, plus the dimension attributes (brand, type, container, nation,
// month, year) needed for hierarchy views like the paper's V2 ("group by
// part.type").
//
// Cardinalities follow TPC-D's 1 GB ratios — 200,000 parts, 10,000
// suppliers, 150,000 customers and 6,001,215 lineitems at scale factor 1 —
// and the part/supplier correlation follows DBGEN's PARTSUPP rule (each
// part is supplied by exactly four suppliers at deterministic offsets).
// That correlation matters: it makes the {partkey,suppkey} view an order of
// magnitude smaller than the fact table, which is why the paper's greedy
// selection materializes it while skipping {partkey,custkey} and
// {suppkey,custkey}.
package tpcd

import (
	"fmt"

	"cubetree/internal/lattice"
)

// Attribute names shared with the lattice and experiments.
const (
	AttrPart       lattice.Attr = "partkey"
	AttrSupplier   lattice.Attr = "suppkey"
	AttrCustomer   lattice.Attr = "custkey"
	AttrBrand      lattice.Attr = "brand"
	AttrType       lattice.Attr = "type"
	AttrMonth      lattice.Attr = "month"
	AttrYear       lattice.Attr = "year"
	AttrSuppNation lattice.Attr = "suppnation"
	AttrCustNation lattice.Attr = "custnation"
	AttrSegment    lattice.Attr = "segment"
)

// TPC-D 1 GB base cardinalities.
const (
	baseParts     = 200000
	baseSuppliers = 10000
	baseCustomers = 150000
	baseFacts     = 6001215

	// suppliersPerPart follows DBGEN's PARTSUPP degree.
	suppliersPerPart = 4

	// NumBrands and NumTypes follow TPC-D's part attribute domains.
	NumBrands = 25
	NumTypes  = 150

	// Years covered by order dates (TPC-D spans 1992-1998).
	FirstYear = 1992
	NumYears  = 7
)

// Params configures a dataset.
type Params struct {
	// SF is the scale factor relative to the TPC-D 1 GB database. The
	// experiments run at small fractions (e.g. 0.01).
	SF float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// Dataset describes one generated database instance.
type Dataset struct {
	Params
	Parts     int64
	Suppliers int64
	Customers int64
	Facts     int64
}

// New derives the dataset cardinalities for p. Minimums keep tiny scale
// factors usable in tests.
func New(p Params) *Dataset {
	if p.SF <= 0 {
		p.SF = 0.001
	}
	d := &Dataset{
		Params:    p,
		Parts:     scaled(baseParts, p.SF, 20),
		Suppliers: scaled(baseSuppliers, p.SF, 5),
		Customers: scaled(baseCustomers, p.SF, 20),
		Facts:     scaled(baseFacts, p.SF, 100),
	}
	return d
}

func scaled(base int64, sf float64, min int64) int64 {
	n := int64(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

// Domains returns the domain sizes of every attribute this generator can
// emit, for lattice construction.
func (d *Dataset) Domains() map[lattice.Attr]int64 {
	return map[lattice.Attr]int64{
		AttrPart:       d.Parts,
		AttrSupplier:   d.Suppliers,
		AttrCustomer:   d.Customers,
		AttrBrand:      NumBrands,
		AttrType:       NumTypes,
		AttrMonth:      12,
		AttrYear:       NumYears,
		AttrSuppNation: NumNations,
		AttrCustNation: NumNations,
		AttrSegment:    NumSegments,
	}
}

// Fact is one fact table row. Key values are 1-based, as the Cubetree
// mapping requires strictly positive coordinates.
type Fact struct {
	PartKey  int64
	SuppKey  int64
	CustKey  int64
	Month    int64 // 1..12
	Year     int64 // 1..NumYears (offset from FirstYear)
	Quantity int64 // 1..50
}

// SupplierFor returns supplier i (0..3) of part, following DBGEN's PARTSUPP
// formula.
func (d *Dataset) SupplierFor(part, i int64) int64 {
	s := d.Suppliers
	return (part+i*(s/suppliersPerPart+(part-1)/s))%s + 1
}

// BrandOf returns the brand code (1..NumBrands) of a part, a deterministic
// function so that hierarchy views can be derived from partkey.
func BrandOf(part int64) int64 { return int64(mix(uint64(part)^0xb7a2d)%NumBrands) + 1 }

// TypeOf returns the type code (1..NumTypes) of a part.
func TypeOf(part int64) int64 { return int64(mix(uint64(part)^0x7e9c1)%NumTypes) + 1 }

// Iterator streams fact rows deterministically.
type Iterator struct {
	d     *Dataset
	rng   rng
	i     int64
	n     int64
	fact  Fact
	valid bool
}

// FactRows returns an iterator over all Facts of the dataset. Iterators
// with the same parameters yield identical streams.
func (d *Dataset) FactRows() *Iterator {
	return &Iterator{d: d, rng: newRNG(d.Seed ^ 0x9e3779b97f4a7c15), n: d.Facts}
}

// Increment returns an iterator over an update batch of frac*|F| new fact
// rows (the paper uses 10%), drawn from the same key domains but a distinct
// random stream per generation number.
func (d *Dataset) Increment(frac float64, generation uint64) *Iterator {
	n := int64(float64(d.Facts) * frac)
	if n < 1 {
		n = 1
	}
	return &Iterator{d: d, rng: newRNG(d.Seed ^ (0x6a09e667f3bcc909 + generation*0x3243f6a8885a308d)), n: n}
}

// Remaining returns how many rows the iterator has left.
func (it *Iterator) Remaining() int64 { return it.n - it.i }

// Next advances the iterator, reporting whether a row is available.
func (it *Iterator) Next() bool {
	if it.i >= it.n {
		it.valid = false
		return false
	}
	it.i++
	part := int64(it.rng.next()%uint64(it.d.Parts)) + 1
	sup := it.d.SupplierFor(part, int64(it.rng.next()%suppliersPerPart))
	cust := int64(it.rng.next()%uint64(it.d.Customers)) + 1
	month := int64(it.rng.next()%12) + 1
	year := int64(it.rng.next()%NumYears) + 1
	qty := int64(it.rng.next()%50) + 1
	it.fact = Fact{PartKey: part, SuppKey: sup, CustKey: cust, Month: month, Year: year, Quantity: qty}
	it.valid = true
	return true
}

// Fact returns the current row; valid after a true Next.
func (it *Iterator) Fact() Fact { return it.fact }

// Value returns the value of the named attribute on the current row,
// including hierarchy attributes derived from partkey.
func (it *Iterator) Value(attr lattice.Attr) (int64, error) {
	if !it.valid {
		return 0, fmt.Errorf("tpcd: Value before Next")
	}
	switch attr {
	case AttrPart:
		return it.fact.PartKey, nil
	case AttrSupplier:
		return it.fact.SuppKey, nil
	case AttrCustomer:
		return it.fact.CustKey, nil
	case AttrBrand:
		return BrandOf(it.fact.PartKey), nil
	case AttrType:
		return TypeOf(it.fact.PartKey), nil
	case AttrMonth:
		return it.fact.Month, nil
	case AttrYear:
		return it.fact.Year, nil
	case AttrSuppNation:
		return NationOf(it.fact.SuppKey), nil
	case AttrCustNation:
		return NationOf(it.fact.CustKey), nil
	case AttrSegment:
		return SegmentOf(it.fact.CustKey), nil
	default:
		return 0, fmt.Errorf("tpcd: unknown attribute %q", attr)
	}
}

// rng is splitmix64: tiny, fast and deterministic across platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng { return rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
