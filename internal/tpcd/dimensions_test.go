package tpcd

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPartRowDeterministicAndConsistent(t *testing.T) {
	d := New(Params{SF: 0.001, Seed: 1})
	for k := int64(1); k <= 100; k++ {
		a, b := d.PartRow(k), d.PartRow(k)
		if a != b {
			t.Fatalf("part row %d not deterministic", k)
		}
		// Codes must agree with the fact-side hierarchy functions.
		if a.Brand != BrandOf(k) || a.Type != TypeOf(k) {
			t.Fatalf("part %d codes inconsistent with BrandOf/TypeOf", k)
		}
		if a.Size < 1 || a.Size > 50 {
			t.Fatalf("part %d size %d", k, a.Size)
		}
		if a.Container == "" || a.BrandName == "" || a.TypeName == "" {
			t.Fatalf("part %d has empty strings: %+v", k, a)
		}
	}
}

func TestBrandAndTypeNames(t *testing.T) {
	if got := BrandName(1); got != "Brand#11" {
		t.Fatalf("BrandName(1) = %q", got)
	}
	if got := BrandName(NumBrands); got != "Brand#55" {
		t.Fatalf("BrandName(%d) = %q", NumBrands, got)
	}
	seen := map[string]bool{}
	for c := int64(1); c <= NumTypes; c++ {
		n := TypeName(c)
		if len(strings.Fields(n)) != 3 {
			t.Fatalf("type name %q not three syllables", n)
		}
		seen[n] = true
	}
	if len(seen) != NumTypes {
		t.Fatalf("only %d distinct type names of %d", len(seen), NumTypes)
	}
}

func TestSupplierAndCustomerRows(t *testing.T) {
	d := New(Params{SF: 0.001, Seed: 1})
	s := d.SupplierRow(7)
	if s.Nation != NationOf(7) || s.Nation < 1 || s.Nation > NumNations {
		t.Fatalf("supplier nation %d", s.Nation)
	}
	if !strings.HasPrefix(s.Name, "Supplier#") {
		t.Fatalf("supplier name %q", s.Name)
	}
	c := d.CustomerRow(7)
	if c.Segment == "" || c.Nation < 1 || c.Nation > NumNations {
		t.Fatalf("customer row %+v", c)
	}
	// Phone numbers carry the nation as country code.
	if !strings.HasPrefix(s.Phone, "1") && !strings.HasPrefix(s.Phone, "2") && !strings.HasPrefix(s.Phone, "3") {
		t.Fatalf("phone %q", s.Phone)
	}
}

func TestHierarchyCodesQuick(t *testing.T) {
	f := func(k uint32) bool {
		key := int64(k%1000000) + 1
		n := NationOf(key)
		s := SegmentOf(key)
		return n >= 1 && n <= NumNations && s >= 1 && s <= NumSegments &&
			n == NationOf(key) && s == SegmentOf(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyAttrsOnFactStream(t *testing.T) {
	d := New(Params{SF: 0.001, Seed: 2})
	it := d.FactRows()
	it.Next()
	f := it.Fact()
	sn, err := it.Value(AttrSuppNation)
	if err != nil || sn != NationOf(f.SuppKey) {
		t.Fatalf("suppnation = %d, %v", sn, err)
	}
	cn, err := it.Value(AttrCustNation)
	if err != nil || cn != NationOf(f.CustKey) {
		t.Fatalf("custnation = %d, %v", cn, err)
	}
	seg, err := it.Value(AttrSegment)
	if err != nil || seg != SegmentOf(f.CustKey) {
		t.Fatalf("segment = %d, %v", seg, err)
	}
}
