package tpcd

import "fmt"

// Dimension rows, generated deterministically from keys in the style of
// DBGEN. They give the star schema its descriptive side for examples and
// hierarchy (drill-down / roll-up) queries; the grouping codes (brand,
// type, container, nation) are the same deterministic functions the fact
// iterator exposes, so a view grouped by "brand" joins consistently.

// Part is one row of the part dimension.
type Part struct {
	PartKey   int64
	Name      string
	Brand     int64 // 1..NumBrands
	BrandName string
	Type      int64 // 1..NumTypes
	TypeName  string
	Size      int64 // 1..50
	Container string
}

// NumContainers is the domain of the part container attribute.
const NumContainers = 40

var containerNames = [...]string{
	"SM CASE", "SM BOX", "SM BAG", "SM JAR", "SM PKG", "SM PACK", "SM CAN", "SM DRUM",
	"LG CASE", "LG BOX", "LG BAG", "LG JAR", "LG PKG", "LG PACK", "LG CAN", "LG DRUM",
	"MED CASE", "MED BOX", "MED BAG", "MED JAR", "MED PKG", "MED PACK", "MED CAN", "MED DRUM",
	"JUMBO CASE", "JUMBO BOX", "JUMBO BAG", "JUMBO JAR", "JUMBO PKG", "JUMBO PACK", "JUMBO CAN", "JUMBO DRUM",
	"WRAP CASE", "WRAP BOX", "WRAP BAG", "WRAP JAR", "WRAP PKG", "WRAP PACK", "WRAP CAN", "WRAP DRUM",
}

var typeSyllables1 = [...]string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllables2 = [...]string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllables3 = [...]string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

// TypeName renders a type code as DBGEN's three-syllable type string.
func TypeName(code int64) string {
	c := code - 1
	return typeSyllables1[c%6] + " " + typeSyllables2[(c/6)%5] + " " + typeSyllables3[(c/30)%5]
}

// BrandName renders a brand code as DBGEN's Brand#MN string.
func BrandName(code int64) string {
	c := code - 1
	return fmt.Sprintf("Brand#%d%d", c/5+1, c%5+1)
}

// PartRow returns part dimension row k (1-based).
func (d *Dataset) PartRow(k int64) Part {
	brand := BrandOf(k)
	typ := TypeOf(k)
	return Part{
		PartKey:   k,
		Name:      fmt.Sprintf("part %d", k),
		Brand:     brand,
		BrandName: BrandName(brand),
		Type:      typ,
		TypeName:  TypeName(typ),
		Size:      int64(mix(uint64(k)^0x51a3)%50) + 1,
		Container: containerNames[mix(uint64(k)^0xc0fe)%NumContainers],
	}
}

// Supplier is one row of the supplier dimension.
type Supplier struct {
	SuppKey int64
	Name    string
	Nation  int64 // 1..25
	Phone   string
}

// SupplierRow returns supplier dimension row k (1-based).
func (d *Dataset) SupplierRow(k int64) Supplier {
	nation := NationOf(k)
	return Supplier{
		SuppKey: k,
		Name:    fmt.Sprintf("Supplier#%09d", k),
		Nation:  nation,
		Phone:   phone(nation, uint64(k)^0xf00d),
	}
}

// Customer is one row of the customer dimension.
type Customer struct {
	CustKey int64
	Name    string
	Nation  int64 // 1..25
	Phone   string
	Segment string
}

// NumNations and NumSegments follow TPC-D's domains.
const (
	NumNations  = 25
	NumSegments = 5
)

var segmentNames = [...]string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// NationOf returns the nation code (1..NumNations) of a supplier or
// customer key, a deterministic function usable as a hierarchy attribute.
func NationOf(key int64) int64 { return int64(mix(uint64(key)^0x4a71)%NumNations) + 1 }

// SegmentOf returns the market segment code (1..NumSegments) of a customer.
func SegmentOf(key int64) int64 { return int64(mix(uint64(key)^0x9d2c)%NumSegments) + 1 }

// CustomerRow returns customer dimension row k (1-based).
func (d *Dataset) CustomerRow(k int64) Customer {
	nation := NationOf(k)
	return Customer{
		CustKey: k,
		Name:    fmt.Sprintf("Customer#%09d", k),
		Nation:  nation,
		Phone:   phone(nation, uint64(k)^0xbeef),
		Segment: segmentNames[SegmentOf(k)-1],
	}
}

// phone builds a TPC-D style phone number with the nation as country code.
func phone(nation int64, salt uint64) string {
	h := mix(salt)
	return fmt.Sprintf("%d-%03d-%03d-%04d", nation+10,
		h%900+100, (h/1000)%900+100, (h/1000000)%10000)
}
