package tpcd

import (
	"testing"
	"testing/quick"

	"cubetree/internal/lattice"
)

func TestDeterminism(t *testing.T) {
	d := New(Params{SF: 0.001, Seed: 42})
	a, b := d.FactRows(), d.FactRows()
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams desynchronized")
		}
		if a.Fact() != b.Fact() {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Fact(), b.Fact())
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(Params{SF: 0.001, Seed: 1}).FactRows()
	b := New(Params{SF: 0.001, Seed: 2}).FactRows()
	same := true
	for i := 0; i < 100; i++ {
		a.Next()
		b.Next()
		if a.Fact() != b.Fact() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCardinalityAndRanges(t *testing.T) {
	d := New(Params{SF: 0.01, Seed: 7})
	if d.Facts != 60012 {
		t.Fatalf("Facts = %d, want 60012", d.Facts)
	}
	if d.Parts != 2000 || d.Suppliers != 100 || d.Customers != 1500 {
		t.Fatalf("dims = %d/%d/%d", d.Parts, d.Suppliers, d.Customers)
	}
	it := d.FactRows()
	n := int64(0)
	for it.Next() {
		f := it.Fact()
		if f.PartKey < 1 || f.PartKey > d.Parts {
			t.Fatalf("partkey %d out of range", f.PartKey)
		}
		if f.SuppKey < 1 || f.SuppKey > d.Suppliers {
			t.Fatalf("suppkey %d out of range", f.SuppKey)
		}
		if f.CustKey < 1 || f.CustKey > d.Customers {
			t.Fatalf("custkey %d out of range", f.CustKey)
		}
		if f.Quantity < 1 || f.Quantity > 50 {
			t.Fatalf("quantity %d out of range", f.Quantity)
		}
		if f.Month < 1 || f.Month > 12 || f.Year < 1 || f.Year > NumYears {
			t.Fatalf("date out of range: %+v", f)
		}
		n++
	}
	if n != d.Facts {
		t.Fatalf("iterated %d rows, want %d", n, d.Facts)
	}
}

func TestPartSuppCorrelation(t *testing.T) {
	// Each part must pair with at most suppliersPerPart suppliers, making
	// |{part,supp}| ~ 4x parts rather than ~|F| — the property that drives
	// the paper's view selection.
	d := New(Params{SF: 0.01, Seed: 3})
	pairs := map[[2]int64]bool{}
	perPart := map[int64]map[int64]bool{}
	it := d.FactRows()
	for it.Next() {
		f := it.Fact()
		pairs[[2]int64{f.PartKey, f.SuppKey}] = true
		if perPart[f.PartKey] == nil {
			perPart[f.PartKey] = map[int64]bool{}
		}
		perPart[f.PartKey][f.SuppKey] = true
	}
	for p, sups := range perPart {
		if len(sups) > 4 {
			t.Fatalf("part %d has %d suppliers", p, len(sups))
		}
	}
	if int64(len(pairs)) > 4*d.Parts {
		t.Fatalf("|ps| = %d > 4*parts = %d", len(pairs), 4*d.Parts)
	}
	if int64(len(pairs)) < d.Parts {
		t.Fatalf("|ps| = %d suspiciously small", len(pairs))
	}
}

func TestIncrementDisjointStream(t *testing.T) {
	d := New(Params{SF: 0.005, Seed: 9})
	inc := d.Increment(0.1, 1)
	want := int64(float64(d.Facts) * 0.1)
	var n int64
	for inc.Next() {
		f := inc.Fact()
		if f.PartKey < 1 || f.PartKey > d.Parts {
			t.Fatalf("increment key out of range")
		}
		n++
	}
	if n != want {
		t.Fatalf("increment rows = %d, want %d", n, want)
	}
	// Different generations differ.
	a, b := d.Increment(0.1, 1), d.Increment(0.1, 2)
	a.Next()
	b.Next()
	if a.Fact() == b.Fact() {
		t.Fatal("increment generations identical")
	}
}

func TestHierarchyFunctionsStable(t *testing.T) {
	f := func(part uint32) bool {
		p := int64(part%1000000) + 1
		b1, b2 := BrandOf(p), BrandOf(p)
		ty := TypeOf(p)
		return b1 == b2 && b1 >= 1 && b1 <= NumBrands && ty >= 1 && ty <= NumTypes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueAccessor(t *testing.T) {
	d := New(Params{SF: 0.001, Seed: 5})
	it := d.FactRows()
	if _, err := it.Value(AttrPart); err == nil {
		t.Fatal("Value before Next accepted")
	}
	it.Next()
	f := it.Fact()
	cases := map[lattice.Attr]int64{
		AttrPart:     f.PartKey,
		AttrSupplier: f.SuppKey,
		AttrCustomer: f.CustKey,
		AttrBrand:    BrandOf(f.PartKey),
		AttrType:     TypeOf(f.PartKey),
		AttrMonth:    f.Month,
		AttrYear:     f.Year,
	}
	for a, want := range cases {
		got, err := it.Value(a)
		if err != nil || got != want {
			t.Fatalf("Value(%s) = %d, %v; want %d", a, got, err, want)
		}
	}
	if _, err := it.Value("bogus"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestDomains(t *testing.T) {
	d := New(Params{SF: 0.01})
	dom := d.Domains()
	if dom[AttrPart] != d.Parts || dom[AttrBrand] != NumBrands || dom[AttrMonth] != 12 {
		t.Fatalf("domains = %v", dom)
	}
}

func TestMinimumScale(t *testing.T) {
	d := New(Params{SF: 0})
	if d.Facts < 100 || d.Parts < 20 {
		t.Fatalf("minimum scale too small: %+v", d)
	}
}
