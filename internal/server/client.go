package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"cubetree/internal/workload"
)

// Client is a retrying HTTP client for cubetreed. Shed responses (429 and
// 503) are retried with backoff, honoring the server's Retry-After when it
// is shorter than the next backoff step — the server's estimate of when
// capacity returns is better than a blind schedule. 4xx client errors are
// never retried; they would fail identically forever.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8347".
	Base string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 4).
	MaxRetries int
	// Backoff is the initial retry delay, doubled each attempt
	// (default 100ms).
	Backoff time.Duration
	// OnRetry, when set, observes each retry (attempt is 1-based).
	OnRetry func(attempt int, status int, wait time.Duration)
}

// APIError is a structured error response from the server.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

func (c *Client) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Client) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.Backoff
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Query executes one sqlish statement and returns its result.
func (c *Client) Query(ctx context.Context, sql string) (*StatementResult, error) {
	resp, err := c.QueryBatch(ctx, []string{sql})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("server: expected 1 result, got %d", len(resp.Results))
	}
	return &resp.Results[0], nil
}

// QueryBatch executes statements as one request and returns the full
// response envelope (results in statement order, plus the generation they
// came from).
func (c *Client) QueryBatch(ctx context.Context, sqls []string) (*QueryResponse, error) {
	return c.QueryWith(ctx, sqls, QueryOpts{})
}

// QueryOpts are per-request options for QueryWith.
type QueryOpts struct {
	// Profile asks the server for an EXPLAIN-ANALYZE-style execution
	// profile per statement (leaf pages read/skipped, points scanned,
	// pool deltas, cache disposition, per-shard detail on a coordinator).
	Profile bool
	// TraceID sets the outbound X-Trace-Id header so this request joins
	// an existing trace; empty lets the server mint one. The server's
	// choice comes back in QueryResponse.TraceID.
	TraceID string
}

// QueryWith executes statements as one request with per-request options.
func (c *Client) QueryWith(ctx context.Context, sqls []string, opts QueryOpts) (*QueryResponse, error) {
	body, err := json.Marshal(QueryRequest{Batch: sqls, Profile: opts.Profile})
	if err != nil {
		return nil, err
	}
	raw, err := c.do(ctx, http.MethodPost, "/query", "application/json", body, opts.TraceID)
	if err != nil {
		return nil, err
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("server: bad response body: %v", err)
	}
	if len(resp.Results) != len(sqls) {
		return nil, fmt.Errorf("server: expected %d results, got %d", len(sqls), len(resp.Results))
	}
	return &resp, nil
}

// Views fetches the warehouse description.
func (c *Client) Views(ctx context.Context) (*ViewsResponse, error) {
	raw, err := c.do(ctx, http.MethodGet, "/views", "", nil, "")
	if err != nil {
		return nil, err
	}
	var resp ViewsResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("server: bad response body: %v", err)
	}
	return &resp, nil
}

// Refresh streams a CSV delta to /admin/refresh. Refreshes are not retried:
// the request body is consumed and a conflict (another refresh running) is
// a caller decision, not a transient fault.
func (c *Client) Refresh(ctx context.Context, csv io.Reader, measure string) (*RefreshResponse, error) {
	url := c.Base + "/admin/refresh"
	if measure != "" {
		url += "?measure=" + measure
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, csv)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	raw, err := readResponse(res)
	if err != nil {
		return nil, err
	}
	var resp RefreshResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("server: bad response body: %v", err)
	}
	return &resp, nil
}

// do issues one request with retries on shed responses and transport
// errors. A non-empty traceID rides along as X-Trace-Id on every attempt,
// so retries of one logical request share one trace.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, traceID string) ([]byte, error) {
	var lastErr error
	wait := c.backoff()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		res, err := c.httpClient().Do(req)
		var status int
		var retryAfter time.Duration
		if err != nil {
			lastErr = err // transport error: server restarting, listener draining
		} else {
			raw, rerr := readResponse(res)
			var apiErr *APIError
			if rerr == nil {
				return raw, nil
			}
			if !asAPIError(rerr, &apiErr) || !retryable(apiErr.Status) {
				return nil, rerr
			}
			lastErr, status, retryAfter = rerr, apiErr.Status, apiErr.RetryAfter
		}
		if attempt >= c.retries() {
			return nil, lastErr
		}
		sleep := wait
		if retryAfter > 0 && retryAfter < sleep {
			sleep = retryAfter
		}
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, status, sleep)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		wait *= 2
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

func asAPIError(err error, out **APIError) bool {
	if e, ok := err.(*APIError); ok {
		*out = e
		return true
	}
	return false
}

// readResponse drains one response, turning non-2xx statuses into *APIError
// (decoding the structured body when the server sent one).
func readResponse(res *http.Response) ([]byte, error) {
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	if res.StatusCode >= 200 && res.StatusCode < 300 {
		return raw, nil
	}
	apiErr := &APIError{Status: res.StatusCode, Code: CodeInternal, Message: strings.TrimSpace(string(raw))}
	var envelope ErrorResponse
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
		apiErr.RetryAfter = time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond
	}
	if apiErr.RetryAfter == 0 {
		if secs, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return raw, apiErr
}

// SQLFor renders a slice query as sqlish text, so tools that think in
// workload.Query terms (the bench driver, the query shell) can speak to the
// server without a second wire format. The rendering round-trips through
// sqlish.Parse back to an equivalent query.
func SQLFor(q workload.Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for _, a := range q.Node {
		b.WriteString(string(a))
		b.WriteString(", ")
	}
	b.WriteString("sum(m)")
	if len(q.Node) == 0 {
		b.WriteString(", count(*)")
	}
	b.WriteString(" FROM facts")
	if len(q.Fixed) > 0 || len(q.Ranges) > 0 {
		b.WriteString(" WHERE ")
		preds := make([]string, 0, len(q.Fixed)+len(q.Ranges))
		for _, p := range q.Fixed {
			preds = append(preds, fmt.Sprintf("%s = %d", p.Attr, p.Value))
		}
		for _, r := range q.Ranges {
			preds = append(preds, fmt.Sprintf("%s BETWEEN %d AND %d", r.Attr, r.Lo, r.Hi))
		}
		sort.Strings(preds)
		b.WriteString(strings.Join(preds, " AND "))
	}
	if len(q.Node) > 0 {
		b.WriteString(" GROUP BY ")
		for i, a := range q.Node {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(string(a))
		}
	}
	return b.String()
}
