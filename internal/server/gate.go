package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by acquire when the wait queue is at capacity:
// admitting the request would make queueing unbounded, so it is shed
// immediately.
var errQueueFull = errors.New("server: admission queue full")

// errQueueTimeout is returned when a queued request's wait bound expires
// before a slot frees up: the server is saturated and holding the client
// longer would just move the timeout downstream.
var errQueueTimeout = errors.New("server: admission wait expired")

// gate is the admission controller: a semaphore of execution slots plus a
// bounded, deadline-aware wait queue. Requests that cannot get a slot
// immediately wait at most queueWait while at most maxQueue of them are
// parked; everything beyond that is shed so memory and tail latency stay
// bounded no matter the offered load.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims one execution slot, waiting up to queueWait in the bounded
// queue. On success it returns the release func and the time spent queued;
// on failure the error is errQueueFull, errQueueTimeout, or the context's
// error (client gone while queued).
func (g *gate) acquire(ctx context.Context, queueWait time.Duration) (release func(), waited time.Duration, err error) {
	select {
	case g.slots <- struct{}{}:
		return g.release, 0, nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return nil, 0, errQueueFull
	}
	defer g.queued.Add(-1)
	start := time.Now()
	timer := time.NewTimer(queueWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, time.Since(start), nil
	case <-timer.C:
		return nil, time.Since(start), errQueueTimeout
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// depth reports how many requests are parked in the queue right now.
func (g *gate) depth() int64 { return g.queued.Load() }

// inUse reports how many execution slots are currently claimed.
func (g *gate) inUse() int64 { return int64(len(g.slots)) }
