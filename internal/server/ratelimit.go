package server

import (
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter. Each client key (the
// remote IP) owns a bucket of capacity burst refilled at rate tokens/sec;
// a request costs one token. Buckets are created on first sight and pruned
// once they are both full and stale, so the map stays proportional to the
// set of recently active clients.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// pruneAbove bounds the bucket map: past this many clients, a take() sweeps
// out buckets idle long enough to have refilled completely.
const pruneAbove = 4096

func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil // nil limiter = unlimited; take() is nil-safe
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// take spends one token from key's bucket. When the bucket is empty it
// reports false plus the time until one token refills — the honest
// Retry-After for this client.
func (l *limiter) take(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= pruneAbove {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked drops buckets idle long enough to be full again — their state
// is indistinguishable from a fresh bucket, so forgetting them is free.
func (l *limiter) pruneLocked(now time.Time) {
	fullAfter := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) > fullAfter {
			delete(l.buckets, k)
		}
	}
}
