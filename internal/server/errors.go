package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Error codes returned in the structured error body. Clients branch on the
// code, not the message.
const (
	CodeBadRequest    = "bad_request"       // malformed request envelope
	CodeBadSQL        = "bad_sql"           // SQL failed to parse or validate
	CodeUnknownView   = "unknown_view"      // no materialized view covers the query
	CodeBodyTooLarge  = "body_too_large"    // request body over the configured limit
	CodeRateLimited   = "rate_limited"      // per-client token bucket empty
	CodeOverloaded    = "overloaded"        // admission queue full or wait expired
	CodePoolExhausted = "pool_exhausted"    // buffer pool had no frame within its wait bound
	CodeDraining      = "draining"          // server is draining and accepts no new work
	CodeDeadline      = "deadline"          // per-request timeout expired mid-query
	CodeCanceled      = "canceled"          // client went away mid-query
	CodeRefreshBusy   = "refresh_busy"      // another refresh is in flight
	CodeShardDown     = "shard_unavailable" // a cluster shard failed after retries
	CodeInternal      = "internal"          // bug: panic or unclassified failure
	CodeNotFound      = "not_found"         // unknown endpoint
	CodeMethod        = "method"            // wrong HTTP method
)

// ErrorBody is the structured error every non-2xx response carries.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header for clients that prefer
	// the body; 0 means the request is not worth retrying as-is.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the JSON envelope of an error.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// writeError emits one structured error response. retryAfter > 0 also sets
// the Retry-After header (whole seconds, rounded up, minimum 1) so shed
// clients back off honestly instead of hammering.
func writeError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorBody{
		Code:         code,
		Message:      message,
		RetryAfterMS: retryAfter.Milliseconds(),
	}})
}
