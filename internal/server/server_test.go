package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// fakeStore is a controllable Store: it can block until released, fail with
// a chosen error, or panic, so admission, timeout, shed, and recovery paths
// can be driven deterministically without a real warehouse.
type fakeStore struct {
	block    chan struct{} // non-nil: QueryCtx waits for close(block) or ctx
	err      error
	panicOn  bool
	gen      atomic.Int64
	updates  chan struct{} // non-nil: Update waits for one receive
	updating atomic.Bool
	queries  atomic.Int64
}

func (f *fakeStore) QueryCtx(ctx context.Context, q workload.Query) ([]workload.Row, error) {
	f.queries.Add(1)
	if f.panicOn {
		panic("fake store exploded")
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return []workload.Row{{Group: make([]int64, len(q.Node)), Sum: 42, Count: 2}}, nil
}

func (f *fakeStore) QueryBatchCtx(ctx context.Context, qs []workload.Query, _ int) ([][]workload.Row, error) {
	out := make([][]workload.Row, len(qs))
	for i, q := range qs {
		rows, err := f.QueryCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

func (f *fakeStore) Generation() int { return int(f.gen.Load()) + 1 }
func (f *fakeStore) Views() []lattice.View {
	return []lattice.View{{Name: "top", Attrs: []lattice.Attr{"partkey"}}}
}
func (f *fakeStore) Domains() map[lattice.Attr]int64 {
	return map[lattice.Attr]int64{"partkey": 3}
}
func (f *fakeStore) Schema() []lattice.Agg { return lattice.DefaultSchema() }
func (f *fakeStore) Update(rows cube.RowIter) error {
	if f.updates != nil {
		f.updating.Store(true)
		<-f.updates
	}
	for rows.Next() {
	}
	f.gen.Add(1)
	return nil
}

func newTestServer(t *testing.T, store Store, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Store = store
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery posts body to /query and decodes the response, returning the
// status, the decoded error envelope (zero when 200), and the raw body.
func postQuery(t *testing.T, base, body string) (int, ErrorResponse, []byte, http.Header) {
	t.Helper()
	res, err := http.Post(base+"/query", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var envelope ErrorResponse
	if res.StatusCode != http.StatusOK {
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Fatalf("status %d body is not structured JSON: %v\n%s", res.StatusCode, err, raw)
		}
	}
	return res.StatusCode, envelope, raw, res.Header
}

func TestQueryHappyPath(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	status, _, raw, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM facts")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Rows) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if got := resp.Results[0].Rows[0][0]; got != "42" {
		t.Fatalf("sum = %q, want 42", got)
	}
}

func TestQueryJSONEnvelopeBatch(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	body := `{"batch": ["SELECT sum(q) FROM f", "SELECT count(*) FROM f"]}`
	status, _, raw, _ := postQuery(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 results, got %+v", resp)
	}
}

func TestMalformedSQLIs400(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	for _, sql := range []string{
		"SELEC sum(q) FROM f",
		"SELECT FROM f",
		"SELECT median(q) FROM f",
		"SELECT sum(q) FROM f WHERE a BETWEEN 5",
		`{"sql": "not sql at all"}`,
	} {
		status, envelope, _, _ := postQuery(t, ts.URL, sql)
		if status != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", sql, status)
		}
		if envelope.Error.Code != CodeBadSQL {
			t.Errorf("%q: code = %q, want %q", sql, envelope.Error.Code, CodeBadSQL)
		}
	}
}

func TestBadEnvelopeIs400(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	cases := []string{
		"",
		"   ",
		`{"sql": "SELECT sum(q) FROM f"`, /* truncated */
		`{"sql": "a", "batch": ["b"]}`,
		`{"nope": 1}`,
		`{"batch": []}`,
		`{"sql": "SELECT sum(q) FROM f"} trailing`,
		`{"timeout_ms": -5, "sql": "SELECT sum(q) FROM f"}`,
	}
	for _, body := range cases {
		status, envelope, _, _ := postQuery(t, ts.URL, body)
		if status != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", body, status)
		}
		if envelope.Error.Code != CodeBadRequest {
			t.Errorf("%q: code = %q, want %q", body, envelope.Error.Code, CodeBadRequest)
		}
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{MaxBodyBytes: 64})
	status, envelope, _, _ := postQuery(t, ts.URL, strings.Repeat("x", 1024))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", status)
	}
	if envelope.Error.Code != CodeBodyTooLarge {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeBodyTooLarge)
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	res, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", res.StatusCode)
	}
	var envelope ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&envelope); err != nil {
		t.Fatalf("404 body is not structured JSON: %v", err)
	}
	if envelope.Error.Code != CodeNotFound {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeNotFound)
	}
}

func TestShedWhenSaturated(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	s, ts := newTestServer(t, store, Config{MaxInFlight: 1, MaxQueue: -1, QueueWait: time.Second})

	firstDone := make(chan int, 1)
	go func() {
		status, _, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
		firstDone <- status
	}()
	waitFor(t, func() bool { return s.gate.inUse() == 1 })

	status, envelope, _, hdr := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", status)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeOverloaded)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if envelope.Error.RetryAfterMS <= 0 {
		t.Fatal("shed response missing retry_after_ms")
	}

	close(store.block)
	if got := <-firstDone; got != http.StatusOK {
		t.Fatalf("first (admitted) request = %d, want 200", got)
	}
}

func TestQueueWaitExpiresTo429(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	defer close(store.block)
	s, ts := newTestServer(t, store, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond})

	go postQuietly(ts.URL) // occupies the slot
	waitFor(t, func() bool { return s.gate.inUse() == 1 })

	start := time.Now()
	status, envelope, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusTooManyRequests {
		t.Fatalf("queued status = %d, want 429", status)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeOverloaded)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after %v; the request should have waited out the queue bound", waited)
	}
}

func TestRateLimited429(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{RatePerSec: 0.5, RateBurst: 1})
	status, _, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusOK {
		t.Fatalf("first request = %d, want 200", status)
	}
	status, envelope, _, hdr := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", status)
	}
	if envelope.Error.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeRateLimited)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("rate-limited response missing Retry-After")
	}
}

func TestPanicRecoveryIs500JSON(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{panicOn: true}, Config{})
	status, envelope, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	if envelope.Error.Code != CodeInternal {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeInternal)
	}
	// The server must keep serving after a panic.
	status, _, _, _ = postQuery(t, ts.URL, "SELEC")
	if status != http.StatusBadRequest {
		t.Fatalf("post-panic request = %d, want 400", status)
	}
}

func TestRequestTimeoutIs504(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	defer close(store.block)
	_, ts := newTestServer(t, store, Config{RequestTimeout: 25 * time.Millisecond})
	status, envelope, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if envelope.Error.Code != CodeDeadline {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeDeadline)
	}
}

func TestPerRequestTimeoutLowersServerTimeout(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	defer close(store.block)
	_, ts := newTestServer(t, store, Config{RequestTimeout: time.Hour})
	start := time.Now()
	status, _, _, _ := postQuery(t, ts.URL, `{"sql": "SELECT sum(q) FROM f", "timeout_ms": 25}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; timeout_ms was ignored", elapsed)
	}
}

func TestPoolExhaustedIs503WithRetryAfter(t *testing.T) {
	store := &fakeStore{err: &pager.ExhaustedError{Wait: 200 * time.Millisecond}}
	_, ts := newTestServer(t, store, Config{})
	status, envelope, _, hdr := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if envelope.Error.Code != CodePoolExhausted {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodePoolExhausted)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want rounded-up 1s from the pool's 200ms wait", hdr.Get("Retry-After"))
	}
	if envelope.Error.RetryAfterMS != 200 {
		t.Fatalf("retry_after_ms = %d, want the pool's exact 200ms", envelope.Error.RetryAfterMS)
	}
}

func TestDrainShedsNewWorkAndWaitsForInflight(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	s, ts := newTestServer(t, store, Config{})

	inflightDone := make(chan int, 1)
	go func() {
		status, _, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
		inflightDone <- status
	}()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, func() bool { return s.Draining() })

	// New queries are shed while the admitted one is still running.
	status, envelope, _, _ := postQuery(t, ts.URL, "SELECT sum(q) FROM f")
	if status != http.StatusServiceUnavailable || envelope.Error.Code != CodeDraining {
		t.Fatalf("during drain: status %d code %q, want 503 %q", status, envelope.Error.Code, CodeDraining)
	}
	res, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	// Liveness stays 200 through a drain, and the structured body says the
	// process is alive-but-draining.
	var hs HealthStatus
	if err := json.NewDecoder(res.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", res.StatusCode)
	}
	if hs.Status != "ok" || !hs.Draining {
		t.Fatalf("/healthz during drain = %+v, want ok+draining", hs)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(store.block)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := <-inflightDone; got != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", got)
	}
}

func TestDrainDeadline(t *testing.T) {
	store := &fakeStore{block: make(chan struct{})}
	s, ts := newTestServer(t, store, Config{})
	go postQuietly(ts.URL)
	waitFor(t, func() bool { return s.inflight.Load() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil despite a stuck request")
	}
	close(store.block)
}

func TestRefreshBusyIs409(t *testing.T) {
	store := &fakeStore{updates: make(chan struct{})}
	_, ts := newTestServer(t, store, Config{})

	first := make(chan int, 1)
	go func() {
		res, err := http.Post(ts.URL+"/admin/refresh", "text/csv",
			strings.NewReader("partkey,quantity\n1,5\n"))
		if err != nil {
			first <- 0
			return
		}
		res.Body.Close()
		first <- res.StatusCode
	}()
	waitFor(t, func() bool { return store.updating.Load() })

	res, err := http.Post(ts.URL+"/admin/refresh?measure=quantity", "text/csv",
		strings.NewReader("partkey,quantity\n2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var envelope ErrorResponse
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent refresh = %d, want 409", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&envelope); err != nil || envelope.Error.Code != CodeRefreshBusy {
		t.Fatalf("409 body: %v %+v", err, envelope)
	}

	store.updates <- struct{}{}
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first refresh = %d, want 200", got)
	}
}

func TestRefreshBadCSVIs400(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	res, err := http.Post(ts.URL+"/admin/refresh?measure=quantity", "text/csv",
		strings.NewReader("partkey,price\n1,5\n")) // no quantity column
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("refresh without measure column = %d, want 400", res.StatusCode)
	}
}

func TestViewsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	res, err := http.Get(ts.URL + "/views")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp ViewsResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 || len(resp.Views) != 1 || resp.Views[0].Name != "top" {
		t.Fatalf("views = %+v", resp)
	}
	if resp.Domains["partkey"] != 3 {
		t.Fatalf("domains = %+v", resp.Domains)
	}
}

func TestCacheHitOnRepeatAndInvalidationOnRefresh(t *testing.T) {
	store := &fakeStore{}
	_, ts := newTestServer(t, store, Config{})
	sql := "SELECT sum(q) FROM f"

	decode := func() QueryResponse {
		t.Helper()
		status, _, raw, _ := postQuery(t, ts.URL, sql)
		if status != http.StatusOK {
			t.Fatalf("status = %d: %s", status, raw)
		}
		var resp QueryResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if r := decode(); r.Results[0].Cached {
		t.Fatal("first execution claims to be cached")
	}
	if r := decode(); !r.Results[0].Cached {
		t.Fatal("repeat of an identical statement missed the cache")
	}
	// Equivalent spelling shares the cache entry.
	sql = "select SUM(q) from f"
	if r := decode(); !r.Results[0].Cached {
		t.Fatal("case-variant spelling of the same statement missed the cache")
	}

	before := store.queries.Load()
	store.gen.Add(1) // a refresh swapped the generation
	sql = "SELECT sum(q) FROM f"
	r := decode()
	if r.Results[0].Cached {
		t.Fatal("post-refresh request served a stale generation's cache entry")
	}
	if store.queries.Load() == before {
		t.Fatal("post-refresh request did not reach the store")
	}
	if r.Generation != 2 {
		t.Fatalf("generation = %d, want 2", r.Generation)
	}
}

// postQuietly issues a query ignoring the outcome — for goroutines that
// only need to occupy a slot, where t.Fatal would be illegal.
func postQuietly(base string) {
	res, err := http.Post(base+"/query", "text/plain",
		strings.NewReader("SELECT sum(q) FROM f"))
	if err == nil {
		res.Body.Close()
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
