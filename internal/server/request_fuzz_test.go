package server

import (
	"strings"
	"testing"
	"unicode/utf8"

	"cubetree/internal/sqlish"
)

// FuzzDecodeRequest hammers the /query body decoder (and, for bodies that
// decode, the SQL parser behind it): whatever the bytes, the pipeline must
// return a value or an error — never panic — and an accepted request must
// carry at least one non-empty statement within the batch bound.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Raw SQL forms.
		"SELECT sum(quantity) FROM facts",
		"SELECT partkey, sum(q) FROM f WHERE suppkey = 3 GROUP BY partkey",
		"SELECT sum(q) FROM f WHERE partkey BETWEEN 1 AND 5 LIMIT 10",
		"SELEC nonsense",
		"",
		"   \t\n  ",
		// JSON envelope forms, valid and broken.
		`{"sql": "SELECT sum(q) FROM f"}`,
		`{"sql": "SELECT sum(q) FROM f", "timeout_ms": 250}`,
		`{"batch": ["SELECT sum(q) FROM f", "SELECT count(*) FROM f"]}`,
		`{"batch": []}`,
		`{"batch": [""]}`,
		`{"sql": "a", "batch": ["b"]}`,
		`{"unknown_field": true}`,
		`{"sql": "SELECT sum(q) FROM f"} trailing garbage`,
		`{"sql": "SELECT sum(q) FROM f"`,
		`{"timeout_ms": -1, "sql": "x"}`,
		`{"timeout_ms": 9223372036854775807, "sql": "x"}`,
		`{`,
		`{}`,
		"{\"sql\": \"SELECT sum(q) FROM f\xff\"}",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeQueryRequest(body)
		if err != nil {
			if req != nil {
				t.Fatal("decode returned both a request and an error")
			}
			return
		}
		stmts := req.statements()
		if len(stmts) == 0 {
			t.Fatalf("accepted request with no statements: %q", body)
		}
		if len(stmts) > maxBatchStatements {
			t.Fatalf("accepted batch of %d statements past the bound", len(stmts))
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout: %d", req.TimeoutMS)
		}
		for _, sql := range stmts {
			if strings.TrimSpace(sql) == "" && len(stmts) > 1 {
				t.Fatalf("accepted blank batch statement: %q", body)
			}
			// The parser downstream must fail cleanly, never panic, on
			// whatever the decoder let through.
			st, err := sqlish.Parse(sql)
			if err == nil && st == nil {
				t.Fatal("sqlish.Parse returned nil statement and nil error")
			}
			_ = utf8.ValidString(sql)
		}
	})
}
