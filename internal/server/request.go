package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"cubetree/internal/workload"
)

// maxBatchStatements bounds one request's batch so a single client cannot
// monopolize the executor with an enormous batch that passes admission as
// one request.
const maxBatchStatements = 256

// QueryRequest is the /query request envelope. Exactly one of SQL or Batch
// must be set. A request whose body is not a JSON object is treated as raw
// SQL text, so `curl -d 'SELECT ...' /query` works without JSON quoting.
type QueryRequest struct {
	// SQL is a single statement in the sqlish dialect.
	SQL string `json:"sql,omitempty"`
	// Batch lists statements executed as one admission unit; results come
	// back in order.
	Batch []string `json:"batch,omitempty"`
	// TimeoutMS optionally lowers the server's per-request timeout for
	// this request; it can never raise it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Profile requests an EXPLAIN-ANALYZE-style execution profile per
	// statement: leaf pages read vs skipped by zone maps, points scanned,
	// buffer-pool hit/miss deltas, result-cache disposition, and — against
	// a coordinator — per-shard latency/retry/straggler detail.
	Profile bool `json:"profile,omitempty"`
}

// statements returns the request's statements, normalizing the two forms.
func (q *QueryRequest) statements() []string {
	if q.SQL != "" {
		return []string{q.SQL}
	}
	return q.Batch
}

// decodeQueryRequest parses a /query body. JSON object bodies use the
// QueryRequest envelope with unknown fields rejected (a typo'd field name
// silently ignored would be a debugging trap); anything else is taken as
// raw SQL text. Errors are client errors: the caller maps them to 400.
func decodeQueryRequest(body []byte) (*QueryRequest, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty request body (send SQL text or a JSON {\"sql\": ...} envelope)")
	}
	if trimmed[0] != '{' {
		return &QueryRequest{SQL: string(trimmed)}, nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad JSON envelope: %v", err)
	}
	// Trailing garbage after the object would silently vanish otherwise.
	if dec.More() {
		return nil, fmt.Errorf("bad JSON envelope: trailing data after object")
	}
	if req.SQL != "" && len(req.Batch) > 0 {
		return nil, fmt.Errorf("set either sql or batch, not both")
	}
	if req.SQL == "" && len(req.Batch) == 0 {
		return nil, fmt.Errorf("empty request: set sql or batch")
	}
	for i, s := range req.Batch {
		if strings.TrimSpace(s) == "" {
			return nil, fmt.Errorf("batch[%d] is empty", i)
		}
	}
	if len(req.Batch) > maxBatchStatements {
		return nil, fmt.Errorf("batch of %d statements exceeds the limit of %d", len(req.Batch), maxBatchStatements)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms")
	}
	return &req, nil
}

// StatementResult is one statement's answer.
type StatementResult struct {
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	// Cached marks an answer served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Profile is the execution profile, present only when the request set
	// "profile": true. Cache hits carry a profile whose Cache field is
	// "hit" and whose scan counters are zero (nothing executed).
	Profile *workload.QueryProfile `json:"profile,omitempty"`
}

// QueryResponse is the /query response envelope. Results are in statement
// order. Generation is the forest generation the answers came from, so a
// client can detect refreshes between requests.
type QueryResponse struct {
	Generation int               `json:"generation"`
	Results    []StatementResult `json:"results"`
	// TraceID is the request's distributed trace ID — the inbound
	// X-Trace-Id header if the client sent one, otherwise generated at
	// this front door. Filter any process's /debug/traces by it.
	TraceID string `json:"trace_id,omitempty"`
}

// ViewDef is one materialized view in the /views listing.
type ViewDef struct {
	Name  string   `json:"name,omitempty"`
	Attrs []string `json:"attrs"`
}

// ViewsResponse describes the warehouse to clients: enough for a load
// generator to synthesize valid queries without out-of-band configuration.
type ViewsResponse struct {
	Generation int              `json:"generation"`
	Views      []ViewDef        `json:"views"`
	Domains    map[string]int64 `json:"domains,omitempty"`
	Measures   []string         `json:"measures,omitempty"`
}

// RefreshResponse is the /admin/refresh success envelope.
type RefreshResponse struct {
	Generation int   `json:"generation"`
	Rows       int64 `json:"rows"`
}
