package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached statement result. The generation is part
// of the key, so the warehouse's atomic generation swap invalidates every
// cached answer for free: post-refresh requests compute keys under the new
// generation and miss, while stale entries age out of the LRU.
type cacheKey struct {
	generation int
	statement  string // canonical form: projection + query + limit
}

// resultCache is a mutex-guarded LRU of formatted statement results. Values
// are stored immutable and shared; callers must not mutate what get returns.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *StatementResult
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil // nil cache = caching disabled; methods are nil-safe
	}
	return &resultCache{max: max, ll: list.New(), m: map[cacheKey]*list.Element{}}
}

func (c *resultCache) get(k cacheKey) (*StatementResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(k cacheKey, res *StatementResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, res: res})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of resident entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
