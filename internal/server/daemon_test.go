package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cubetree"
)

// TestDaemonSIGTERMDrains is the end-to-end integration: build the real
// cubetreed binary, boot it on a scratch warehouse, storm it with
// concurrent queries, SIGTERM it mid-flight, and assert that every
// response the daemon produced is well-formed (200, or a structured
// draining 503 — never a 500, never torn JSON), that the process exits
// cleanly within its grace period, and that no new connections are
// accepted afterwards.
func TestDaemonSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon; skipped in -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM semantics are POSIX-only")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}

	dir := t.TempDir()
	whDir := filepath.Join(dir, "wh")
	w, err := cubetree.Materialize(
		cubetree.Config{Dir: whDir, Domains: map[cubetree.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 3}},
		[]cubetree.View{
			cubetree.NewView("top", "partkey", "suppkey", "custkey"),
			cubetree.NewView("ps", "partkey", "suppkey"),
			cubetree.NewView("all"),
		},
		&wtRows{
			cols:    []cubetree.Attr{"partkey", "suppkey", "custkey"},
			rows:    [][]int64{{1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}},
			measure: []int64{5, 3, 4, 9},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "cubetreed")
	build := exec.Command("go", "build", "-race", "-o", bin, "cubetree/cmd/cubetreed")
	if out, err := build.CombinedOutput(); err != nil {
		// -race needs cgo/libc support; fall back to a plain build.
		t.Logf("race build unavailable (%v), building without -race:\n%s", err, out)
		build = exec.Command("go", "build", "-o", bin, "cubetree/cmd/cubetreed")
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build cubetreed: %v\n%s", err, out)
		}
	}

	daemon := exec.Command(bin, "-dir", whDir, "-addr", "127.0.0.1:0", "-drain-grace", "20s")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The daemon logs its bound address; scrape it so -addr :0 works.
	base, logTail := awaitServing(t, stderr)
	t.Logf("daemon at %s", base)

	client := &http.Client{Timeout: 10 * time.Second}
	waitHealthy(t, client, base)

	type outcome struct {
		status int
		err    error
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
		stop     atomic.Bool
	)
	sqls := []string{
		"SELECT sum(quantity), count(*) FROM facts",
		"SELECT partkey, sum(quantity) FROM facts GROUP BY partkey",
		"SELECT partkey, suppkey, sum(quantity) FROM facts WHERE partkey = 2 GROUP BY partkey, suppkey",
	}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				res, err := client.Post(base+"/query", "text/plain",
					strings.NewReader(sqls[(i+c)%len(sqls)]))
				if err != nil {
					mu.Lock()
					outcomes = append(outcomes, outcome{err: err})
					mu.Unlock()
					time.Sleep(5 * time.Millisecond) // daemon is gone; stop hammering
					continue
				}
				body, rerr := io.ReadAll(res.Body)
				res.Body.Close()
				o := outcome{status: res.StatusCode}
				if rerr != nil {
					o.err = fmt.Errorf("truncated response: %w", rerr)
				} else if res.StatusCode == http.StatusOK {
					var resp QueryResponse
					if jerr := json.Unmarshal(body, &resp); jerr != nil || len(resp.Results) != 1 {
						o.err = fmt.Errorf("torn 200 body: %v %q", jerr, body)
					}
				} else {
					var envelope ErrorResponse
					if jerr := json.Unmarshal(body, &envelope); jerr != nil || envelope.Error.Code == "" {
						o.err = fmt.Errorf("unstructured %d body: %q", res.StatusCode, body)
					}
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}
		}(c)
	}

	// Let the storm establish in-flight traffic, then SIGTERM mid-flight.
	time.Sleep(300 * time.Millisecond)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("daemon exited non-zero after SIGTERM: %v\n%s", err, logTail())
		}
	case <-time.After(30 * time.Second):
		t.Error("daemon did not exit within 30s of SIGTERM")
		daemon.Process.Kill()
		<-exited
	}
	stop.Store(true)
	wg.Wait()

	var ok200, drained503, transport int
	for _, o := range outcomes {
		switch {
		case o.err != nil && o.status == 0:
			transport++ // connection refused/reset once the listener closed
		case o.err != nil:
			t.Fatalf("bad response: status %d: %v", o.status, o.err)
		case o.status == http.StatusOK:
			ok200++
		case o.status == http.StatusServiceUnavailable:
			drained503++
		case o.status == http.StatusInternalServerError:
			t.Fatalf("daemon answered 500 under load + SIGTERM")
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	t.Logf("storm outcomes: %d ok, %d shed-draining, %d post-exit transport errors", ok200, drained503, transport)
	if ok200 == 0 {
		t.Fatal("storm completed no queries; the test exercised nothing")
	}

	// The daemon is gone: new connections must be refused.
	if conn, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), time.Second); err == nil {
		conn.Close()
		t.Fatal("daemon still accepting connections after drain + exit")
	}
}

// awaitServing scrapes the daemon's bound address from its log output and
// returns it plus a closure that yields the log lines seen so far.
func awaitServing(t *testing.T, stderr io.Reader) (string, func() string) {
	t.Helper()
	var (
		mu    sync.Mutex
		lines []string
	)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
			if i := strings.Index(line, "on http://"); i >= 0 && strings.Contains(line, "serving") {
				addr := line[i+len("on http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- "http://" + addr:
				default:
				}
			}
		}
	}()
	logTail := func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}
	select {
	case base := <-addrCh:
		return base, logTail
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never logged its address:\n%s", logTail())
		return "", logTail
	}
}

func waitHealthy(t *testing.T, client *http.Client, base string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for ctx.Err() == nil {
		res, err := client.Get(base + "/readyz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}
