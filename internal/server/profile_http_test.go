package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"cubetree"
)

// profileWarehouse builds a warehouse whose views span many leaf pages, so a
// profiled query reports nonzero zone-map skips — the tiny testWarehouse
// fits each view on a single leaf and would make the counters vacuous.
func profileWarehouse(t *testing.T) *cubetree.Warehouse {
	t.Helper()
	src := &wtRows{cols: []cubetree.Attr{"partkey", "suppkey", "custkey"}}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for i := 0; i < 6000; i++ {
		src.rows = append(src.rows, []int64{
			int64(next()%200) + 1, int64(next()%100) + 1, int64(next()%50) + 1,
		})
		src.measure = append(src.measure, int64(next()%1000))
	}
	w, err := cubetree.Materialize(
		cubetree.Config{
			Dir:     filepath.Join(t.TempDir(), "wh"),
			Domains: map[cubetree.Attr]int64{"partkey": 200, "suppkey": 100, "custkey": 50},
		},
		[]cubetree.View{
			cubetree.NewView("top", "partkey", "suppkey", "custkey"),
			cubetree.NewView("ps", "partkey", "suppkey"),
			cubetree.NewView("c", "custkey"),
			cubetree.NewView("all"),
		},
		src,
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// postJSON posts a JSON envelope to /query with an optional X-Trace-Id
// header and decodes the success response.
func postJSON(t *testing.T, base, body, traceID string) (*QueryResponse, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", res.StatusCode, raw)
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return &resp, res.Header
}

// TestProfiledQueryOverHTTP walks the EXPLAIN-ANALYZE contract end to end at
// the front door: an inbound trace ID is honored and echoed, a profiled miss
// carries nonzero scan/zone-map/pool counters and is kept out of the result
// cache, and a profiled repeat of a cached statement reports the cache hit
// instead of fabricating scan work.
func TestProfiledQueryOverHTTP(t *testing.T) {
	w := profileWarehouse(t)
	_, ts := newTestServer(t, w, Config{})
	const (
		sql = `SELECT partkey, sum(quantity) FROM facts WHERE suppkey = 5 GROUP BY partkey`
		tid = "cafef00dcafef00dcafef00dcafef00d"
	)
	envelope := fmt.Sprintf(`{"sql": %q, "profile": true}`, sql)

	resp, hdr := postJSON(t, ts.URL, envelope, tid)
	if hdr.Get("X-Trace-Id") != tid || resp.TraceID != tid {
		t.Fatalf("trace id not honored: header %q, body %q, want %q", hdr.Get("X-Trace-Id"), resp.TraceID, tid)
	}
	res := resp.Results[0]
	if res.Cached {
		t.Fatal("first profiled query claims a cache hit")
	}
	p := res.Profile
	if p == nil {
		t.Fatal("profiled query returned no profile")
	}
	if p.Cache != "miss" || p.TraceID != tid {
		t.Fatalf("profile = %+v, want cache miss tagged %s", p, tid)
	}
	if p.PointsScanned <= 0 || p.LeafPagesRead <= 0 || p.LeafPagesSkipped <= 0 {
		t.Fatalf("scan counters = points %d, read %d, skipped %d — all must be nonzero on this warehouse",
			p.PointsScanned, p.LeafPagesRead, p.LeafPagesSkipped)
	}
	if p.PoolHits+p.PoolMisses <= 0 {
		t.Fatalf("pool delta = %d hits / %d misses", p.PoolHits, p.PoolMisses)
	}
	if p.RowsReturned != int64(len(res.Rows)) {
		t.Fatalf("profile rows = %d, result rows = %d", p.RowsReturned, len(res.Rows))
	}
	if p.DurationNS <= 0 {
		t.Fatalf("profile duration = %d", p.DurationNS)
	}

	// Profiled answers bypass the cache on the write side: the next
	// unprofiled run must be a miss, and only its result populates the cache.
	plain := fmt.Sprintf(`{"sql": %q}`, sql)
	resp, _ = postJSON(t, ts.URL, plain, "")
	if resp.Results[0].Cached {
		t.Fatal("profiled execution leaked into the result cache")
	}
	resp, _ = postJSON(t, ts.URL, plain, "")
	if !resp.Results[0].Cached {
		t.Fatal("second unprofiled run should hit the cache")
	}

	// A profiled repeat reports the cache disposition instead of scan work.
	resp, _ = postJSON(t, ts.URL, envelope, tid)
	res = resp.Results[0]
	if !res.Cached || res.Profile == nil || res.Profile.Cache != "hit" {
		t.Fatalf("profiled repeat = cached %v, profile %+v, want a reported cache hit", res.Cached, res.Profile)
	}
	if res.Profile.PointsScanned != 0 {
		t.Fatalf("cache hit claims %d points scanned", res.Profile.PointsScanned)
	}
}

// TestProfileMintsTraceID: with no inbound X-Trace-Id, a profiled request
// gets a fresh trace ID so the profile can be correlated with /debug/traces.
func TestProfileMintsTraceID(t *testing.T) {
	w := profileWarehouse(t)
	_, ts := newTestServer(t, w, Config{})
	resp, hdr := postJSON(t, ts.URL, `{"sql": "SELECT sum(quantity) FROM facts", "profile": true}`, "")
	if len(resp.TraceID) != 32 {
		t.Fatalf("minted trace id = %q, want 32 hex chars", resp.TraceID)
	}
	if hdr.Get("X-Trace-Id") != resp.TraceID {
		t.Fatalf("header trace %q != body trace %q", hdr.Get("X-Trace-Id"), resp.TraceID)
	}
	if p := resp.Results[0].Profile; p == nil || p.TraceID != resp.TraceID {
		t.Fatalf("profile = %+v, want trace %s", resp.Results[0].Profile, resp.TraceID)
	}
}

// TestUnprofiledResponseStaysBare: without profile or an observer, the
// response carries neither a trace ID nor a profile — the feature costs
// nothing when unused.
func TestUnprofiledResponseStaysBare(t *testing.T) {
	w := profileWarehouse(t)
	_, ts := newTestServer(t, w, Config{})
	resp, hdr := postJSON(t, ts.URL, `{"sql": "SELECT sum(quantity) FROM facts"}`, "")
	if resp.TraceID != "" || hdr.Get("X-Trace-Id") != "" {
		t.Fatalf("unprofiled response minted trace %q / header %q", resp.TraceID, hdr.Get("X-Trace-Id"))
	}
	if resp.Results[0].Profile != nil {
		t.Fatalf("unprofiled response carries profile %+v", resp.Results[0].Profile)
	}
}

// TestProfileOnPlainStore: a Store that does not implement ProfiledStore
// (an older or remote backend) still answers profile:true requests — the
// flag degrades to a normal query with no profile attached.
func TestProfileOnPlainStore(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{})
	resp, _ := postJSON(t, ts.URL, `{"sql": "SELECT sum(q) FROM facts", "profile": true}`, "")
	if len(resp.Results) != 1 || len(resp.Results[0].Rows) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Results[0].Profile != nil {
		t.Fatalf("plain store produced a profile: %+v", resp.Results[0].Profile)
	}
	if resp.TraceID == "" {
		t.Fatal("profiled request should still get a trace id for correlation")
	}
}
