package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"cubetree/internal/obs"
)

func getHealth(t *testing.T, url string) (int, HealthStatus) {
	t.Helper()
	res, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var hs HealthStatus
	if err := json.NewDecoder(res.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, hs
}

// /healthz without an SLO tracker: structured ok body, generation included.
func TestHealthzStructuredBody(t *testing.T) {
	store := &fakeStore{}
	store.gen.Store(7)
	_, ts := newTestServer(t, store, Config{})
	code, hs := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if hs.Status != "ok" || hs.Generation != store.Generation() || len(hs.Violations) != 0 {
		t.Fatalf("health = %+v (store generation %d)", hs, store.Generation())
	}
}

// sloTrackerWith builds a two-sample history carrying n query observations of
// latency v between the samples, wrapped in a default-objective tracker.
func sloTrackerWith(n int, v time.Duration) *obs.SLOTracker {
	reg := obs.NewRegistry()
	hist := reg.Histogram("query_latency_ns")
	total := reg.Counter("query_total")
	h := obs.NewHistory(obs.HistoryOptions{Source: reg.Snapshot, Interval: time.Second, Capacity: 8})
	h.Sample()
	for i := 0; i < n; i++ {
		hist.ObserveDuration(v)
		total.Inc()
	}
	h.Sample()
	return obs.NewSLOTracker(h, nil)
}

// A healthy SLO tracker leaves /healthz at "ok"; a burning one degrades the
// body to "degraded" with the violated objectives — and the code stays 200,
// because liveness must not flap with latency.
func TestHealthzDegradesOnSLOBurn(t *testing.T) {
	_, ts := newTestServer(t, &fakeStore{}, Config{SLO: sloTrackerWith(500, time.Millisecond)})
	code, hs := getHealth(t, ts.URL)
	if code != http.StatusOK || hs.Status != "ok" {
		t.Fatalf("healthy tracker: code %d health %+v", code, hs)
	}

	_, ts = newTestServer(t, &fakeStore{}, Config{SLO: sloTrackerWith(500, 500*time.Millisecond)})
	code, hs = getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("degraded /healthz code = %d, must stay 200", code)
	}
	if hs.Status != "degraded" || len(hs.Violations) == 0 {
		t.Fatalf("health = %+v, want degraded with violations", hs)
	}
	found := false
	for _, v := range hs.Violations {
		if v == "query-p99-latency" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want query-p99-latency", hs.Violations)
	}
}
