// Package server is the production front door over a Cubetree warehouse: an
// HTTP API that accepts the internal/sqlish dialect and is robust by
// construction. Every request passes, in order, a draining check, a
// per-client token-bucket rate limit, a body-size limit, the SQL parser,
// and a semaphore-gated admission queue with a bounded deadline-aware wait;
// admitted queries run under a per-request timeout whose cancellation
// actually stops the leaf scan. Results are cached keyed on (generation,
// normalized statement), so the warehouse's atomic generation swap
// invalidates the cache for free. Shedding is explicit: 429 or 503 with an
// honest Retry-After, never an unbounded queue, never a panic escaping as a
// torn response.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubetree"
	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/dist"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/sqlish"
	"cubetree/internal/workload"
)

// Store is the warehouse surface the server needs; *cubetree.Warehouse
// implements it. Tests substitute fakes with controllable latency.
type Store interface {
	QueryCtx(ctx context.Context, q workload.Query) ([]workload.Row, error)
	QueryBatchCtx(ctx context.Context, qs []workload.Query, parallelism int) ([][]workload.Row, error)
	Generation() int
	Views() []lattice.View
	Domains() map[lattice.Attr]int64
	Schema() []lattice.Agg
	Update(rows cube.RowIter) error
}

// ProfiledStore is the optional Store extension that can fill an
// EXPLAIN-ANALYZE-style execution profile. *cubetree.Warehouse and
// *dist.Coordinator both implement it; a Store that does not (such as a
// test fake) still works — profiled requests just answer without the
// breakdown.
type ProfiledStore interface {
	QueryProfiledCtx(ctx context.Context, q workload.Query, prof *workload.QueryProfile) ([]workload.Row, error)
}

// HealthStatus is /healthz's body. The endpoint always answers 200 — it is
// liveness — but the body distinguishes a healthy process from one burning
// an SLO ("degraded", with the violated objective names).
type HealthStatus struct {
	Status     string   `json:"status"` // "ok" | "degraded"
	Generation int      `json:"generation"`
	Draining   bool     `json:"draining,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// Config tunes the server. The zero value of every field has a production
// default; only Store is required.
type Config struct {
	// Store is the warehouse being served. Required.
	Store Store

	// MaxInFlight caps concurrently executing requests (default 16).
	MaxInFlight int
	// MaxQueue caps requests parked waiting for a slot (default
	// 4*MaxInFlight). Arrivals beyond slots+queue are shed with 429.
	MaxQueue int
	// QueueWait bounds how long one request waits for a slot before being
	// shed with 429 (default 1s).
	QueueWait time.Duration
	// RequestTimeout bounds one request's execution after admission
	// (default 10s). A request's timeout_ms can lower it, never raise it.
	RequestTimeout time.Duration
	// RatePerSec is the per-client token refill rate; 0 disables rate
	// limiting. RateBurst is the bucket size (default 2*RatePerSec, min 1).
	RatePerSec float64
	RateBurst  int
	// MaxBodyBytes caps a /query body (default 1 MiB); larger bodies get
	// 413. MaxRefreshBytes caps an /admin/refresh body (default 1 GiB).
	MaxBodyBytes    int64
	MaxRefreshBytes int64
	// CacheEntries caps the result cache (default 1024); negative disables
	// caching.
	CacheEntries int
	// BatchParallelism is the worker count for one request's statement
	// batch (default 4, capped by MaxInFlight intent: batches share the
	// single admission slot they were granted).
	BatchParallelism int

	// Obs, when set, registers the server_* metric families on its
	// registry and counts every admission decision. Optional.
	Obs *obs.Observer
	// SLO, when set, feeds /healthz: burning objectives degrade the health
	// body to {"status":"degraded","violations":[...]} while keeping the
	// 200 code — /healthz is liveness, and a process serving slow queries
	// is alive. Optional.
	SLO *obs.SLOTracker
	// Debug, when set, is mounted at /debug/ so one port serves queries,
	// the debug endpoints, and Prometheus exposition. Optional.
	Debug http.Handler
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = int(2 * cfg.RatePerSec)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxRefreshBytes <= 0 {
		cfg.MaxRefreshBytes = 1 << 30
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.BatchParallelism <= 0 {
		cfg.BatchParallelism = 4
	}
	return cfg
}

// metrics are the server_* families; every field is nil (and so a no-op)
// when no observer is configured.
type metrics struct {
	requests    *obs.Counter
	admitted    *obs.Counter
	shed        *obs.CounterVec
	queueWait   *obs.Histogram
	latency     *obs.Histogram
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	panics      *obs.Counter
	inflight    *obs.Gauge
	refreshes   *obs.Counter
}

// Server is the hardened HTTP front door; see the package comment for the
// request lifecycle. Create with New, serve Handler(), stop with Drain.
type Server struct {
	cfg     Config
	store   Store
	gate    *gate
	limiter *limiter
	cache   *resultCache
	mux     *http.ServeMux
	m       metrics

	// draining rejects new work; inflight counts admitted-or-deciding
	// requests so Drain can wait for exactly the work the server accepted.
	draining atomic.Bool
	inflight atomic.Int64

	// refreshMu serializes refreshes: the engine supports one Update at a
	// time (queries keep flowing against the old generation).
	refreshMu sync.Mutex
}

// New builds a Server from cfg. It panics if cfg.Store is nil — that is a
// wiring bug, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: Config.Store is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		gate:    newGate(cfg.MaxInFlight, cfg.MaxQueue),
		limiter: newLimiter(cfg.RatePerSec, cfg.RateBurst),
		cache:   newResultCache(cfg.CacheEntries),
	}
	if o := cfg.Obs; o != nil {
		r := o.Registry
		s.m = metrics{
			requests:    r.Counter("server_requests_total"),
			admitted:    r.Counter("server_admitted_total"),
			shed:        r.CounterVec("server_shed_total", "reason"),
			queueWait:   r.Histogram("server_queue_wait_ns"),
			latency:     r.Histogram("server_request_latency_ns"),
			cacheHits:   r.Counter("server_cache_hits_total"),
			cacheMisses: r.Counter("server_cache_misses_total"),
			panics:      r.Counter("server_panics_total"),
			inflight:    r.Gauge("server_inflight"),
			refreshes:   r.Counter("server_refresh_total"),
		}
		r.GaugeFunc("server_queue_depth", s.gate.depth)
		r.GaugeFunc("server_slots_in_use", s.gate.inUse)
		r.GaugeFunc("server_cache_entries", func() int64 { return int64(s.cache.len()) })
		r.GaugeFunc("server_draining", func() int64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.recovered(s.handleQuery))
	mux.HandleFunc("/views", s.recovered(s.handleViews))
	mux.HandleFunc("/admin/refresh", s.recovered(s.handleRefresh))
	// /healthz is liveness with content: always 200 (a process burning its
	// latency budget is degraded, not dead — restarting it would only make
	// things worse), but the body is structured so monitors can assert on
	// status and surface the burning objectives.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := HealthStatus{Status: "ok", Generation: s.store.Generation(), Draining: s.draining.Load()}
		if v := s.cfg.SLO.Violations(); len(v) > 0 {
			st.Status = "degraded"
			st.Violations = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ready"}` + "\n"))
	})
	if cfg.Debug != nil {
		mux.Handle("/debug/", cfg.Debug)
	}
	mux.HandleFunc("/", s.recovered(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no endpoint %s", r.URL.Path), 0)
	}))
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain switches the server to draining — /query and /admin/refresh shed
// with 503, /readyz reports not-ready so load balancers stop routing here —
// and waits until every already-accepted request has completed or ctx
// expires. Drain is idempotent; the daemon calls it on SIGTERM before
// shutting the listener down, and a refresh orchestrator can use the same
// mechanism to quiesce writers.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// recovered wraps a handler with panic recovery: a panicking request is
// counted and answered with a structured 500 instead of tearing down the
// connection (or, under http.Server, killing nothing but still losing the
// response).
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Inc()
				writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("panic: %v", v), 0)
			}
		}()
		h(w, r)
	}
}

// begin registers one unit of accepted work for Drain accounting. It
// increments before checking the drain flag, so Drain can never observe a
// zero counter while a request that passed the check is still untracked;
// ok=false means the server is draining and the request must be shed.
func (s *Server) begin() (end func(), ok bool) {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Add(-1)
		return nil, false
	}
	return func() { s.inflight.Add(-1) }, true
}

// clientKey extracts the rate-limit key: the remote IP without the port, so
// one misbehaving host shares a bucket across its connections.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethod, "POST the SQL (raw text or JSON envelope) to /query", 0)
		return
	}
	end, ok := s.begin()
	if !ok {
		s.m.shed.With("draining").Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", time.Second)
		return
	}
	defer end()
	start := time.Now()
	defer func() { s.m.latency.ObserveDuration(time.Since(start)) }()

	if ok, retry := s.limiter.take(clientKey(r), start); !ok {
		s.m.shed.With("rate").Inc()
		writeError(w, http.StatusTooManyRequests, CodeRateLimited,
			"per-client rate limit exceeded", retry)
		return
	}

	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
		return
	}
	req, err := decodeQueryRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}

	// Trace context: honor the caller's X-Trace-Id so a trace started
	// upstream threads through here; otherwise mint one at this front door
	// when anything downstream will record it (an observer is attached) or
	// the caller asked for a profile. The ID is echoed in the response
	// header and body so the caller can filter /debug/traces on any
	// process that touched the request.
	tid := strings.TrimSpace(r.Header.Get("X-Trace-Id"))
	if tid == "" && (s.cfg.Obs != nil || req.Profile) {
		tid = obs.NewTraceID()
	}
	if tid != "" {
		w.Header().Set("X-Trace-Id", tid)
	}

	stmts := make([]*sqlish.Statement, len(req.statements()))
	keys := make([]string, len(stmts))
	for i, sql := range req.statements() {
		st, err := sqlish.Parse(sql)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSQL, err.Error(), 0)
			return
		}
		stmts[i] = st
		keys[i] = canonicalStatement(st)
	}

	// Admission: one slot per request, however many statements it carries;
	// the bounded wait keeps a saturated server's queue from growing
	// without limit.
	release, waited, err := s.gate.acquire(r.Context(), s.cfg.QueueWait)
	s.m.queueWait.ObserveDuration(waited)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.m.shed.With("queue_full").Inc()
			writeError(w, http.StatusTooManyRequests, CodeOverloaded,
				"admission queue full", s.cfg.QueueWait)
		case errors.Is(err, errQueueTimeout):
			s.m.shed.With("queue_timeout").Inc()
			writeError(w, http.StatusTooManyRequests, CodeOverloaded,
				fmt.Sprintf("no execution slot within %v", s.cfg.QueueWait), s.cfg.QueueWait)
		default: // client hung up while queued
			s.m.shed.With("client_gone").Inc()
		}
		return
	}
	defer release()
	s.m.admitted.Inc()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx = obs.WithTraceID(ctx, tid)

	resp, err := s.executeStatements(ctx, stmts, keys, req.Profile, tid)
	if err != nil {
		status, code, retry := s.mapQueryError(ctx, err)
		if status == 0 {
			return // client gone; nobody is listening for a response
		}
		writeError(w, status, code, err.Error(), retry)
		return
	}
	writeJSON(w, resp)
}

// executeStatements answers each parsed statement, consulting the result
// cache first. Cache keys carry the generation read before execution; a
// refresh landing mid-request flips the generation, in which case results
// are returned but not cached (each individual answer is still exactly one
// generation's, the library QueryBatch guarantee).
//
// When profile is set and the store implements ProfiledStore, cache misses
// execute one at a time through QueryProfiledCtx — a profile describes one
// statement's scan, so profiled requests trade batch parallelism for the
// breakdown — and the results are not cached (a cached answer's profile
// would describe a scan that never happened for the next caller). Cache
// hits under profiling report disposition "hit" with zero scan counters.
func (s *Server) executeStatements(ctx context.Context, stmts []*sqlish.Statement, keys []string, profile bool, tid string) (*QueryResponse, error) {
	gen := s.store.Generation()
	schema := lattice.Schema(s.store.Schema())
	resp := &QueryResponse{Generation: gen, Results: make([]StatementResult, len(stmts)), TraceID: tid}

	var missIdx []int
	for i, key := range keys {
		if res, ok := s.cache.get(cacheKey{generation: gen, statement: key}); ok {
			s.m.cacheHits.Inc()
			resp.Results[i] = *res
			resp.Results[i].Cached = true
			if profile {
				resp.Results[i].Profile = &workload.QueryProfile{Cache: "hit", TraceID: tid}
			}
			continue
		}
		s.m.cacheMisses.Inc()
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return resp, nil
	}

	ps, canProfile := s.store.(ProfiledStore)
	profiled := profile && canProfile

	var rowSets [][]workload.Row
	var profs []*workload.QueryProfile
	switch {
	case profiled:
		rowSets = make([][]workload.Row, len(missIdx))
		profs = make([]*workload.QueryProfile, len(missIdx))
		for j, i := range missIdx {
			prof := &workload.QueryProfile{TraceID: tid, Cache: "miss"}
			rows, err := ps.QueryProfiledCtx(ctx, stmts[i].Query, prof)
			if err != nil {
				return nil, err
			}
			rowSets[j] = rows
			profs[j] = prof
		}
	case len(missIdx) == 1:
		rows, err := s.store.QueryCtx(ctx, stmts[missIdx[0]].Query)
		if err != nil {
			return nil, err
		}
		rowSets = [][]workload.Row{rows}
	default:
		qs := make([]workload.Query, len(missIdx))
		for j, i := range missIdx {
			qs[j] = stmts[i].Query
		}
		var err error
		rowSets, err = s.store.QueryBatchCtx(ctx, qs, s.cfg.BatchParallelism)
		if err != nil {
			return nil, err
		}
	}

	cacheable := !profiled && s.store.Generation() == gen
	for j, i := range missIdx {
		headers, rows, err := stmts[i].Format(rowSets[j], schema)
		if err != nil {
			return nil, err
		}
		if rows == nil {
			rows = [][]string{} // JSON [] beats null for empty results
		}
		res := StatementResult{Headers: headers, Rows: rows}
		if profs != nil {
			res.Profile = profs[j]
		}
		resp.Results[i] = res
		if cacheable {
			s.cache.put(cacheKey{generation: gen, statement: keys[i]}, &res)
		}
	}
	return resp, nil
}

// mapQueryError classifies an execution error into a structured response.
// status 0 means the client is gone and no response should be written.
func (s *Server) mapQueryError(ctx context.Context, err error) (status int, code string, retryAfter time.Duration) {
	var ex *pager.ExhaustedError
	var se *dist.ShardError
	switch {
	case errors.As(err, &ex):
		// The pool's wait bound already passed without a frame freeing up;
		// retrying sooner than another full bound would likely re-fail.
		s.m.shed.With("pool_exhausted").Inc()
		return http.StatusServiceUnavailable, CodePoolExhausted, ex.Wait
	case errors.Is(err, pager.ErrPoolExhausted):
		s.m.shed.With("pool_exhausted").Inc()
		return http.StatusServiceUnavailable, CodePoolExhausted, pager.DefaultExhaustionWait
	case errors.Is(err, core.ErrNoPlacement):
		return http.StatusBadRequest, CodeUnknownView, 0
	case errors.As(err, &se):
		// A shard stayed unreachable through the coordinator's own retry
		// budget; the whole request is retryable once the worker returns.
		s.m.shed.With("shard_unavailable").Inc()
		retryAfter = se.RetryAfter
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
		return http.StatusServiceUnavailable, CodeShardDown, retryAfter
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline, 0
	case errors.Is(err, context.Canceled):
		if ctx.Err() != nil {
			return 0, "", 0 // request context cancelled: client disconnected
		}
		return http.StatusServiceUnavailable, CodeCanceled, 0
	default:
		return http.StatusInternalServerError, CodeInternal, 0
	}
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethod, "GET /views", 0)
		return
	}
	resp := ViewsResponse{
		Generation: s.store.Generation(),
		Domains:    map[string]int64{},
	}
	for _, v := range s.store.Views() {
		vd := ViewDef{Name: v.Name, Attrs: []string{}}
		for _, a := range v.Attrs {
			vd.Attrs = append(vd.Attrs, string(a))
		}
		resp.Views = append(resp.Views, vd)
	}
	for a, d := range s.store.Domains() {
		resp.Domains[string(a)] = d
	}
	resp.Measures = lattice.Schema(s.store.Schema()).Strings()
	writeJSON(w, resp)
}

// handleRefresh applies a CSV delta (the dbgen/ctupdate format: header row
// naming attributes, ?measure= picking the measure column) as one warehouse
// Update. One refresh runs at a time; queries keep flowing against the old
// generation until the atomic swap, which also invalidates the result
// cache by construction.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethod, "POST CSV fact rows to /admin/refresh", 0)
		return
	}
	end, ok := s.begin()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 0)
		return
	}
	defer end()
	if !s.refreshMu.TryLock() {
		writeError(w, http.StatusConflict, CodeRefreshBusy, "another refresh is in flight", 0)
		return
	}
	defer s.refreshMu.Unlock()

	measure := r.URL.Query().Get("measure")
	if measure == "" {
		measure = "quantity"
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRefreshBytes)
	src, err := cubetree.CSVRows(r.Body, measure)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	counted := &countedRows{inner: src}
	if err := s.store.Update(counted); err != nil {
		if src.Err() != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad CSV delta: %v", src.Err()), 0)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return
	}
	if err := src.Err(); err != nil {
		// The iterator failed mid-stream and the engine treated it as EOF;
		// the refresh that committed is from a truncated delta. Surface it.
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("bad CSV delta: %v", err), 0)
		return
	}
	s.m.refreshes.Inc()
	writeJSON(w, RefreshResponse{Generation: s.store.Generation(), Rows: counted.n})
}

// countedRows counts fact rows as they stream through, for the refresh
// response.
type countedRows struct {
	inner cube.RowIter
	n     int64
}

func (c *countedRows) Next() bool {
	if c.inner.Next() {
		c.n++
		return true
	}
	return false
}
func (c *countedRows) Value(a lattice.Attr) (int64, error) { return c.inner.Value(a) }
func (c *countedRows) Measure() int64                      { return c.inner.Measure() }

// canonicalStatement renders a parsed statement into its cache-key form:
// projection labels, the canonical query string, and the limit. Two SQL
// spellings that parse identically (case, whitespace, clause order slack)
// share one key.
func canonicalStatement(st *sqlish.Statement) string {
	var b strings.Builder
	for i, c := range st.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Label)
	}
	b.WriteByte('|')
	b.WriteString(st.Query.String())
	if st.HasLimit {
		b.WriteString("|limit=")
		b.WriteString(strconv.Itoa(st.Limit))
	}
	return b.String()
}

// readBody reads at most max bytes of r's body; an over-limit body is the
// only error surfaced (client disconnects mid-body produce a best-effort
// empty read that fails SQL parsing downstream).
func readBody(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, max)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSON renders one success response. The value is encoded to a buffer
// first so an encoding failure cannot emit half a body after a 200.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}
