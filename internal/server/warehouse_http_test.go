package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cubetree"
)

// wtRows is a slice-backed fact iterator for building test warehouses.
type wtRows struct {
	cols    []cubetree.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (s *wtRows) Next() bool { s.i++; return s.i <= len(s.rows) }
func (s *wtRows) Value(a cubetree.Attr) (int64, error) {
	for j, c := range s.cols {
		if c == a {
			return s.rows[s.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", a)
}
func (s *wtRows) Measure() int64 { return s.measure[s.i-1] }

func testWarehouse(t *testing.T) *cubetree.Warehouse {
	t.Helper()
	w, err := cubetree.Materialize(
		cubetree.Config{
			Dir:     filepath.Join(t.TempDir(), "wh"),
			Domains: map[cubetree.Attr]int64{"partkey": 3, "suppkey": 2, "custkey": 3},
		},
		[]cubetree.View{
			cubetree.NewView("top", "partkey", "suppkey", "custkey"),
			cubetree.NewView("ps", "partkey", "suppkey"),
			cubetree.NewView("c", "custkey"),
			cubetree.NewView("all"),
		},
		&wtRows{
			cols: []cubetree.Attr{"partkey", "suppkey", "custkey"},
			rows: [][]int64{
				{1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
			},
			measure: []int64{5, 7, 3, 4, 9, 2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestWarehouseOverHTTP(t *testing.T) {
	w := testWarehouse(t)
	_, ts := newTestServer(t, w, Config{})

	status, _, raw, _ := postQuery(t, ts.URL, "SELECT sum(quantity), count(*) FROM facts")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, raw)
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0].Rows
	if len(got) != 1 || got[0][0] != "30" || got[0][1] != "6" {
		t.Fatalf("super-aggregate over HTTP = %+v, want [[30 6]]", got)
	}
}

func TestUnknownViewIs4xxNever500(t *testing.T) {
	w := testWarehouse(t)
	_, ts := newTestServer(t, w, Config{})
	// "region" exists in no materialized view, so no placement covers the
	// query; the server must classify that as the client's mistake.
	status, envelope, _, _ := postQuery(t, ts.URL,
		"SELECT region, sum(quantity) FROM facts GROUP BY region")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if envelope.Error.Code != CodeUnknownView {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeUnknownView)
	}
}

// TestHTTPOldOrNewDuringRefresh extends the engine's old-or-new generation
// guarantee to the HTTP layer: a query storm racing /admin/refresh must only
// ever observe whole old-generation or whole new-generation answers — the
// result cache in particular must never leak a stale generation's rows
// under a fresh response. Run with -race.
func TestHTTPOldOrNewDuringRefresh(t *testing.T) {
	w := testWarehouse(t)
	_, ts := newTestServer(t, w, Config{MaxInFlight: 8})

	sqls := []string{
		"SELECT sum(quantity), count(*) FROM facts",
		"SELECT partkey, suppkey, sum(quantity) FROM facts GROUP BY partkey, suppkey",
		"SELECT custkey, sum(quantity) FROM facts WHERE custkey = 1 GROUP BY custkey",
	}
	fetch := func(sql string) (int, StatementResult) {
		status, _, raw, _ := postQuery(t, ts.URL, sql)
		if status != http.StatusOK {
			t.Errorf("storm query failed: %d %s", status, raw)
			return 0, StatementResult{}
		}
		var resp QueryResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Error(err)
			return 0, StatementResult{}
		}
		return resp.Generation, resp.Results[0]
	}

	old := make([]StatementResult, len(sqls))
	for i, sql := range sqls {
		_, old[i] = fetch(sql)
	}

	// The delta changes partkey 1 / suppkey 1 / custkey 1 and adds a new
	// custkey-2 fact, so all three answers differ between generations.
	refreshDone := make(chan int, 1)
	go func() {
		res, err := http.Post(ts.URL+"/admin/refresh?measure=quantity", "text/csv",
			strings.NewReader("partkey,suppkey,custkey,quantity\n1,1,1,100\n3,2,2,7\n"))
		if err != nil {
			refreshDone <- 0
			return
		}
		res.Body.Close()
		refreshDone <- res.StatusCode
	}()

	type obs struct {
		sqlIdx int
		gen    int
		res    StatementResult
	}
	var (
		mu       sync.Mutex
		observed []obs
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				idx := (i + c) % len(sqls)
				gen, res := fetch(sqls[idx])
				if gen == 0 {
					return
				}
				mu.Lock()
				observed = append(observed, obs{sqlIdx: idx, gen: gen, res: res})
				mu.Unlock()
			}
		}(c)
	}
	if got := <-refreshDone; got != http.StatusOK {
		stop.Store(true)
		wg.Wait()
		t.Fatalf("refresh = %d, want 200", got)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	now := make([]StatementResult, len(sqls))
	for i, sql := range sqls {
		_, now[i] = fetch(sql)
	}
	for i := range sqls {
		if reflect.DeepEqual(old[i].Rows, now[i].Rows) {
			t.Fatalf("refresh did not change the answer to %q; the race would assert nothing", sqls[i])
		}
	}
	for _, o := range observed {
		oldMatch := reflect.DeepEqual(o.res.Rows, old[o.sqlIdx].Rows)
		newMatch := reflect.DeepEqual(o.res.Rows, now[o.sqlIdx].Rows)
		if !oldMatch && !newMatch {
			t.Fatalf("query %q (gen %d) observed rows matching neither generation: %+v",
				sqls[o.sqlIdx], o.gen, o.res.Rows)
		}
		// A response stamped with the new generation must carry new rows —
		// anything else means the cache leaked across the swap.
		if o.gen > 1 && !newMatch {
			t.Fatalf("query %q stamped generation %d but returned old rows %+v",
				sqls[o.sqlIdx], o.gen, o.res.Rows)
		}
	}
	if len(observed) == 0 {
		t.Fatal("storm observed nothing; the race exercised no requests")
	}
}

func TestClientRetriesShedResponses(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, "try later", 10*time.Millisecond)
			return
		}
		writeJSON(w, QueryResponse{Generation: 1, Results: []StatementResult{{Headers: []string{"sum(q)"}, Rows: [][]string{{"30"}}}}})
	}))
	defer ts.Close()

	var retries []time.Duration
	c := &Client{
		Base:    ts.URL,
		Backoff: 5 * time.Millisecond,
		OnRetry: func(_, status int, wait time.Duration) {
			if status != http.StatusTooManyRequests {
				t.Errorf("retry status = %d, want 429", status)
			}
			retries = append(retries, wait)
		},
	}
	res, err := c.Query(context.Background(), "SELECT sum(q) FROM f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "30" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if len(retries) != 2 {
		t.Fatalf("retries = %d, want 2", len(retries))
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadSQL, "nope", 0)
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL, Backoff: time.Millisecond}
	_, err := c.Query(context.Background(), "SELEC")
	if err == nil {
		t.Fatal("want error")
	}
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest || apiErr.Code != CodeBadSQL {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 400: %d calls", calls.Load())
	}
}

func TestClientHonorsRetryAfterFromBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable, CodePoolExhausted, "pool", 200*time.Millisecond)
	}))
	defer ts.Close()
	var waits []time.Duration
	c := &Client{
		Base:       ts.URL,
		Backoff:    time.Second, // backoff longer than Retry-After: server's hint must win
		MaxRetries: 1,
		OnRetry:    func(_, _ int, wait time.Duration) { waits = append(waits, wait) },
	}
	_, err := c.Query(context.Background(), "SELECT sum(q) FROM f")
	if err == nil {
		t.Fatal("want terminal 503")
	}
	if len(waits) != 1 || waits[0] != 200*time.Millisecond {
		t.Fatalf("waits = %v, want [200ms] from the structured body", waits)
	}
}

func TestSQLForRoundTrips(t *testing.T) {
	w := testWarehouse(t)
	_, ts := newTestServer(t, w, Config{})
	q := cubetree.Query{
		Node:  []cubetree.Attr{"partkey", "suppkey"},
		Fixed: []cubetree.Pred{{Attr: "partkey", Value: 1}},
	}
	direct, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Client{Base: ts.URL}).Query(context.Background(), SQLFor(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(direct) {
		t.Fatalf("HTTP rows = %d, direct rows = %d", len(res.Rows), len(direct))
	}
	for i, r := range direct {
		if res.Rows[i][len(res.Rows[i])-1] != fmt.Sprint(r.Sum) {
			t.Fatalf("row %d: HTTP %v vs direct sum %d", i, res.Rows[i], r.Sum)
		}
	}
}
