package relstore

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

func v(attrs ...lattice.Attr) lattice.View { return lattice.View{Attrs: attrs} }

type memRows struct {
	cols    []lattice.Attr
	rows    [][]int64
	measure []int64
	i       int
}

func (m *memRows) Next() bool { m.i++; return m.i <= len(m.rows) }
func (m *memRows) Value(attr lattice.Attr) (int64, error) {
	for j, c := range m.cols {
		if c == attr {
			return m.rows[m.i-1][j], nil
		}
	}
	return 0, fmt.Errorf("no column %q", attr)
}
func (m *memRows) Measure() int64 { return m.measure[m.i-1] }

func testFacts() *memRows {
	return &memRows{
		cols: []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows: [][]int64{
			{1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {2, 2, 3}, {3, 1, 3}, {1, 2, 2},
			{4, 2, 1}, {4, 1, 2}, {2, 2, 2}, {1, 2, 3},
		},
		measure: []int64{5, 7, 3, 4, 9, 2, 8, 1, 6, 10},
	}
}

var testViews = []lattice.View{
	v("partkey", "suppkey", "custkey"),
	v("partkey", "suppkey"),
	v("custkey"),
	v(),
}

var testDomains = map[lattice.Attr]int64{"partkey": 4, "suppkey": 2, "custkey": 3}

func buildConfig(t *testing.T, withIndexes bool) (*Config, map[string]*cube.ViewData) {
	t.Helper()
	data, err := cube.Compute(t.TempDir(), testFacts(), testViews, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Create(filepath.Join(t.TempDir(), "conv"), Options{Domains: testDomains})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, view := range testViews {
		if err := c.LoadView(data[view.Key()]); err != nil {
			t.Fatal(err)
		}
	}
	if withIndexes {
		for _, order := range [][]lattice.Attr{
			{"custkey", "suppkey", "partkey"},
			{"partkey", "custkey", "suppkey"},
			{"suppkey", "partkey", "custkey"},
		} {
			if err := c.BuildIndex(order); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c, data
}

func TestLoadAndScanQuery(t *testing.T) {
	c, data := buildConfig(t, false)
	mv, ok := c.View("custkey,partkey,suppkey")
	if !ok {
		t.Fatal("top view missing")
	}
	if mv.heap.Count() != data["custkey,partkey,suppkey"].Rows {
		t.Fatalf("heap rows = %d", mv.heap.Count())
	}
	rows, err := c.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 55 || rows[0].Count != 10 {
		t.Fatalf("none = %+v", rows)
	}
	rows, err = c.Execute(workload.Query{
		Node:  []lattice.Attr{"custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 23 {
		t.Fatalf("custkey=3 = %+v", rows)
	}
}

func TestDuplicateLoadRejected(t *testing.T) {
	c, data := buildConfig(t, false)
	if err := c.LoadView(data["custkey"]); err == nil {
		t.Fatal("duplicate load accepted")
	}
}

// bigFacts returns a deterministic fact table large enough that an index
// probe genuinely beats a table scan, as at the paper's scale.
func bigFacts(n int) *memRows {
	m := &memRows{cols: []lattice.Attr{"partkey", "suppkey", "custkey"}}
	state := uint64(12345)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33)%mod + 1
	}
	for i := 0; i < n; i++ {
		m.rows = append(m.rows, []int64{next(2000), next(100), next(5000)})
		m.measure = append(m.measure, next(50))
	}
	return m
}

var bigDomains = map[lattice.Attr]int64{"partkey": 2000, "suppkey": 100, "custkey": 5000}

func TestIndexPlanAndExecution(t *testing.T) {
	data, err := cube.Compute(t.TempDir(), bigFacts(20000), testViews, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Create(filepath.Join(t.TempDir(), "conv"), Options{Domains: bigDomains})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, view := range testViews {
		if err := c.LoadView(data[view.Key()]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BuildIndex([]lattice.Attr{"custkey", "suppkey", "partkey"}); err != nil {
		t.Fatal(err)
	}
	q := workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 1}},
	}
	plan, err := c.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Index == nil || plan.Index.Order[0] != "custkey" {
		t.Fatalf("planner did not pick the custkey-leading index: %+v", plan)
	}
	// Index execution agrees with a forced scan.
	indexed, _, err := c.executeIndex(plan.MatView, plan.Index, plan.PrefixLen, plan.RangeExtended, q)
	if err != nil {
		t.Fatal(err)
	}
	scanned, _, err := c.executeScan(plan.MatView, q)
	if err != nil {
		t.Fatal(err)
	}
	if !workload.EqualRows(indexed, scanned) {
		t.Fatal("index and scan disagree")
	}
	if len(indexed) == 0 {
		t.Fatal("no results")
	}
}

func TestIndexAndScanAgree(t *testing.T) {
	ci, _ := buildConfig(t, true)
	cs, _ := buildConfig(t, false)
	gen := workload.NewGenerator(3, testDomains)
	nodes := [][]lattice.Attr{
		{"partkey", "suppkey", "custkey"},
		{"partkey", "suppkey"},
		{"custkey"},
	}
	for _, node := range nodes {
		for i := 0; i < 25; i++ {
			q := gen.ForNode(node)
			a, err := ci.Execute(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			b, err := cs.Execute(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if !workload.EqualRows(a, b) {
				t.Fatalf("%s: indexed %+v vs scan %+v", q, a, b)
			}
		}
	}
}

func TestApplyDeltaUpdatesAndInserts(t *testing.T) {
	c, _ := buildConfig(t, true)
	for _, view := range testViews {
		if err := c.BuildPrimary(view.Key()); err != nil {
			t.Fatal(err)
		}
	}
	deltaFacts := &memRows{
		cols:    []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}, {4, 2, 3}},
		measure: []int64{5, 1},
	}
	perView, err := cube.Compute(t.TempDir(), deltaFacts, testViews, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, view := range testViews {
		rep, err := c.ApplyDelta(perView[view.Key()], Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TimedOut {
			t.Fatal("unexpected timeout")
		}
		if view.Arity() == 3 && (rep.Updated != 1 || rep.Inserted != 1) {
			t.Fatalf("top view report = %+v", rep)
		}
		if view.Arity() == 0 && rep.Updated != 1 {
			t.Fatalf("none view report = %+v", rep)
		}
	}
	rows, err := c.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Sum != 61 || rows[0].Count != 12 {
		t.Fatalf("total after delta = %+v", rows)
	}
	// Updated point.
	rows, _ = c.Execute(workload.Query{
		Node: []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{
			{Attr: "partkey", Value: 1}, {Attr: "suppkey", Value: 1}, {Attr: "custkey", Value: 1},
		},
	})
	if len(rows) != 1 || rows[0].Sum != 17 {
		t.Fatalf("(1,1,1) = %+v", rows)
	}
	// Inserted point is also visible through the indexes.
	rows, _ = c.Execute(workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey", "custkey"},
		Fixed: []workload.Pred{{Attr: "custkey", Value: 3}},
	})
	var total int64
	for _, r := range rows {
		total += r.Sum
	}
	if total != 24 { // 4 + 9 + 10 + 1
		t.Fatalf("custkey=3 total = %d (%+v)", total, rows)
	}
}

func TestApplyDeltaRequiresPrimary(t *testing.T) {
	c, _ := buildConfig(t, false)
	vd, err := cube.WriteTuples(t.TempDir(), v("custkey"), [][]int64{{1, 1, 1}}, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyDelta(vd, Budget{}); err == nil {
		t.Fatal("delta without primary index accepted")
	}
}

func TestApplyDeltaBudgetTimesOut(t *testing.T) {
	// A tiny buffer pool forces real page traffic so the modelled deadline
	// can actually expire.
	data, err := cube.Compute(t.TempDir(), testFacts(), testViews, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Create(filepath.Join(t.TempDir(), "conv"), Options{Domains: testDomains, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, view := range testViews {
		if err := c.LoadView(data[view.Key()]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.BuildPrimary("custkey,partkey,suppkey"); err != nil {
		t.Fatal(err)
	}
	// A big delta with an impossible budget must time out.
	var tuples [][]int64
	for i := int64(1); i <= 2000; i++ {
		tuples = append(tuples, []int64{i + 10, 1, 1, 1, 1})
	}
	vd, err := cube.WriteTuples(t.TempDir(), testViews[0], tuples, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.ApplyDelta(vd, Budget{
		Model:      pager.Disk1998,
		Deadline:   time.Millisecond,
		CheckEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut {
		t.Fatal("expected timeout")
	}
	if rep.Applied >= 2000 {
		t.Fatalf("applied all %d tuples despite budget", rep.Applied)
	}
}

func TestStorageAccounting(t *testing.T) {
	c, _ := buildConfig(t, true)
	if c.TableBytes() <= 0 || c.IndexBytes() <= 0 {
		t.Fatalf("bytes: tables=%d indexes=%d", c.TableBytes(), c.IndexBytes())
	}
	if c.TotalBytes() != c.TableBytes()+c.IndexBytes() {
		t.Fatal("byte accounting inconsistent")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	c, _ := buildConfig(t, true)
	if err := c.BuildPrimary("custkey,partkey,suppkey"); err != nil {
		t.Fatal(err)
	}
	dir := c.Dir()
	q := workload.Query{
		Node:  []lattice.Attr{"partkey", "suppkey"},
		Fixed: []workload.Pred{{Attr: "partkey", Value: 1}},
	}
	want, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !workload.EqualRows(got, want) {
		t.Fatalf("reopened results differ")
	}
	mv, _ := c2.View("custkey,partkey,suppkey")
	if mv.primary == nil || len(mv.indexes) != 3 {
		t.Fatalf("reopened structures missing: primary=%v indexes=%d", mv.primary != nil, len(mv.indexes))
	}
}

func TestBuildIndexRequiresView(t *testing.T) {
	c, _ := buildConfig(t, false)
	if err := c.BuildIndex([]lattice.Attr{"partkey", "custkey"}); err == nil {
		t.Fatal("index on unmaterialized view accepted")
	}
}
