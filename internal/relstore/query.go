package relstore

import (
	"fmt"
	"math"
	"time"

	"cubetree/internal/enc"
	"cubetree/internal/heapfile"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/workload"
)

// Execute answers a slice query against the conventional configuration,
// implementing workload.Engine.
//
// Planning mirrors the paper's Section 3.3 calibration: every materialized
// view covering the query's node is considered, with either a full table
// scan or an index whose leading attributes are all fixed by the query.
// Notably, a bigger view with a well-matched index routinely beats a
// smaller view without one — the paper's Q1 example where
// V{partkey,suppkey,custkey} plus I{partkey,suppkey,custkey} outruns
// V{partkey,suppkey}.
func (c *Config) Execute(q workload.Query) ([]workload.Row, error) {
	if c.obs != nil {
		return c.executeObserved(q)
	}
	rows, _, _, err := c.execute(q)
	return rows, err
}

// execute plans and runs q, also returning the chosen view and the number of
// view tuples the chosen access path examined.
func (c *Config) execute(q workload.Query) ([]workload.Row, int64, *MatView, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, nil, err
	}
	plan, err := c.plan(q)
	if err != nil {
		return nil, 0, nil, err
	}
	if plan.Index != nil {
		rows, scanned, err := c.executeIndex(plan.MatView, plan.Index, plan.PrefixLen, plan.RangeExtended, q)
		return rows, scanned, plan.MatView, err
	}
	rows, scanned, err := c.executeScan(plan.MatView, q)
	return rows, scanned, plan.MatView, err
}

// executeObserved is Execute with the observer attached; it mirrors the
// Cubetree engine's instrumentation so both configurations report comparable
// metrics (query counts, latency percentiles, slow queries with I/O deltas).
func (c *Config) executeObserved(q workload.Query) ([]workload.Row, error) {
	o := c.obs
	start := time.Now()
	before := c.opts.Stats.Snapshot()
	o.Queries.Inc()
	rows, scanned, mv, err := c.execute(q)
	dur := time.Since(start)
	if err != nil {
		o.QueryErrors.Inc()
	}
	o.PointsScanned.Add(uint64(scanned))
	o.QueryLatency.ObserveDuration(dur)
	if mv != nil && c.viewMetrics != nil {
		if vm := c.viewMetrics[mv.View.Key()]; vm != nil {
			vm.hits.Inc()
			vm.scanned.Add(uint64(scanned))
			vm.rows.Add(uint64(len(rows)))
		}
	}
	if o.Slow.Admits(dur) {
		view := ""
		if mv != nil {
			view = mv.View.String()
		}
		o.SlowQueries.Inc()
		o.Slow.Record(obs.SlowQuery{
			Time:     time.Now(),
			Query:    q.String(),
			View:     view,
			Duration: dur,
			Scanned:  scanned,
			Rows:     len(rows),
			IO:       c.opts.Stats.Snapshot().Sub(before),
		})
	}
	return rows, err
}

// PlanChoice describes the planner's decision for a query.
type PlanChoice struct {
	MatView *MatView
	// Index is nil for a table scan.
	Index *Index
	// PrefixLen is the number of leading index attributes bound by
	// equality predicates.
	PrefixLen int
	// RangeExtended reports whether the attribute after the prefix is
	// bounded by a range predicate.
	RangeExtended bool
	// EstPages is the estimated page cost.
	EstPages float64
}

// Plan exposes the planner's choice without executing, for tests and
// experiment reports.
func (c *Config) Plan(q workload.Query) (PlanChoice, error) {
	if err := q.Validate(); err != nil {
		return PlanChoice{}, err
	}
	return c.plan(q)
}

// randSeqRatio weights a random page access against a sequential one when
// comparing a full scan to an index probe, approximating a 1998 disk.
const randSeqRatio = 11

func (c *Config) plan(q workload.Query) (PlanChoice, error) {
	best := PlanChoice{EstPages: math.MaxFloat64}
	for _, key := range c.order {
		mv := c.views[key]
		if !mv.View.Covers(q.Node) {
			continue
		}
		// Table scan: sequential pages.
		scan := float64(mv.heap.Pages())
		if scan < best.EstPages {
			best = PlanChoice{MatView: mv, EstPages: scan}
		}
		// Index scans: usable prefix = leading index attrs fixed by q,
		// optionally extended by one trailing range predicate.
		for _, ix := range mv.indexes {
			prefix := 0
			sel := 1.0
			for _, a := range ix.Order {
				if _, ok := q.FixedValue(a); !ok {
					break
				}
				prefix++
				if dom := float64(c.domains[a]); dom > 1 {
					sel /= dom
				}
			}
			rangeExt := false
			if prefix < len(ix.Order) {
				if r, ok := q.RangeFor(ix.Order[prefix]); ok {
					rangeExt = true
					if dom := float64(c.domains[ix.Order[prefix]]); dom > 1 {
						width := float64(r.Hi-r.Lo) + 1
						if width > dom {
							width = dom
						}
						sel *= width / dom
					}
				}
			}
			if prefix == 0 && !rangeExt {
				continue
			}
			// Matching entries each cost ~1 random heap fetch, plus the
			// B-tree descent; random pages are weighted against the
			// sequential pages of a scan.
			matches := float64(mv.heap.Count()) * sel
			if matches < 1 {
				matches = 1
			}
			cost := (matches + float64(ix.tree.Height())) * randSeqRatio
			if cost < best.EstPages {
				best = PlanChoice{MatView: mv, Index: ix, PrefixLen: prefix,
					RangeExtended: rangeExt, EstPages: cost}
			}
		}
	}
	if best.MatView == nil {
		return PlanChoice{}, fmt.Errorf("relstore: no view covers %s", q)
	}
	return best, nil
}

// tupleFilter applies a query's equality and range predicates to encoded
// view tuples.
type tupleFilter struct {
	pos []int
	lo  []int64
	hi  []int64
}

// newTupleFilter resolves q's predicates against the view's tuple layout.
func newTupleFilter(q workload.Query, attrs []lattice.Attr) (tupleFilter, error) {
	var f tupleFilter
	add := func(attr lattice.Attr, lo, hi int64) error {
		at, err := attrPositions([]lattice.Attr{attr}, attrs)
		if err != nil {
			return err
		}
		f.pos = append(f.pos, at[0])
		f.lo = append(f.lo, lo)
		f.hi = append(f.hi, hi)
		return nil
	}
	for _, p := range q.Fixed {
		if err := add(p.Attr, p.Value, p.Value); err != nil {
			return f, err
		}
	}
	for _, r := range q.Ranges {
		if err := add(r.Attr, r.Lo, r.Hi); err != nil {
			return f, err
		}
	}
	return f, nil
}

// match reports whether the encoded tuple satisfies every predicate.
func (f tupleFilter) match(tuple []byte) bool {
	for i, p := range f.pos {
		v := enc.Field(tuple, p)
		if v < f.lo[i] || v > f.hi[i] {
			return false
		}
	}
	return true
}

// executeScan answers q by scanning the view's heap table. It also returns
// the number of heap tuples examined.
func (c *Config) executeScan(mv *MatView, q workload.Query) ([]workload.Row, int64, error) {
	nodePos, err := attrPositions(q.Node, mv.View.Attrs)
	if err != nil {
		return nil, 0, err
	}
	filter, err := newTupleFilter(q, mv.View.Attrs)
	if err != nil {
		return nil, 0, err
	}
	arity := mv.View.Arity()
	agg := workload.NewSchemaAggregator(len(q.Node), c.opts.Schema)
	group := make([]int64, len(q.Node))
	measures := make([]int64, c.opts.Schema.Len())
	var scanned int64
	err = mv.heap.Scan(func(_ heapfile.RID, tuple []byte) error {
		scanned++
		if !filter.match(tuple) {
			return nil
		}
		for i, p := range nodePos {
			group[i] = enc.Field(tuple, p)
		}
		for i := range measures {
			measures[i] = enc.Field(tuple, arity+i)
		}
		agg.AddMeasures(group, measures)
		return nil
	})
	if err != nil {
		return nil, scanned, err
	}
	return agg.Rows(), scanned, nil
}

// executeIndex answers q via a bounded index scan: equality values bind a
// key prefix, an optional range predicate bounds the next key column, and
// each matching entry costs a heap fetch plus residual filtering.
func (c *Config) executeIndex(mv *MatView, ix *Index, prefixLen int, rangeExt bool, q workload.Query) ([]workload.Row, int64, error) {
	k := len(ix.Order)
	lo := make([]int64, k)
	hi := make([]int64, k)
	for i := 0; i < k; i++ {
		lo[i], hi[i] = math.MinInt64, math.MaxInt64
	}
	for i := 0; i < prefixLen; i++ {
		v, _ := q.FixedValue(ix.Order[i])
		lo[i], hi[i] = v, v
	}
	if rangeExt && prefixLen < k {
		r, _ := q.RangeFor(ix.Order[prefixLen])
		lo[prefixLen], hi[prefixLen] = r.Lo, r.Hi
	}
	nodePos, err := attrPositions(q.Node, mv.View.Attrs)
	if err != nil {
		return nil, 0, err
	}
	filter, err := newTupleFilter(q, mv.View.Attrs)
	if err != nil {
		return nil, 0, err
	}
	arity := mv.View.Arity()
	agg := workload.NewSchemaAggregator(len(q.Node), c.opts.Schema)
	group := make([]int64, len(q.Node))
	measures := make([]int64, c.opts.Schema.Len())
	var scanned int64
	err = ix.tree.ScanRange(lo, hi, func(key []int64, val int64) error {
		// Keys between the bounds can still fall outside a bounded middle
		// column; skip them before paying the heap fetch.
		for i := 0; i < k; i++ {
			if key[i] < lo[i] || key[i] > hi[i] {
				return nil
			}
		}
		tuple, err := mv.heap.Get(int64ToRID(val))
		if err != nil {
			return err
		}
		scanned++
		if !filter.match(tuple) {
			return nil
		}
		for i, p := range nodePos {
			group[i] = enc.Field(tuple, p)
		}
		for i := range measures {
			measures[i] = enc.Field(tuple, arity+i)
		}
		agg.AddMeasures(group, measures)
		return nil
	})
	if err != nil {
		return nil, scanned, err
	}
	return agg.Rows(), scanned, nil
}

// ExecuteBatch answers qs with up to parallelism concurrent workers. A
// Config's views, indexes, and heap files are read-only after Build/Open,
// so concurrent Executes contend only inside the sharded buffer pool.
func (c *Config) ExecuteBatch(qs []workload.Query, parallelism int) ([][]workload.Row, error) {
	if c.obs != nil {
		return workload.ExecuteBatchObserved(c, qs, parallelism, c.obs.Inflight, c.obs.Batches)
	}
	return workload.ExecuteBatch(c, qs, parallelism)
}

var _ workload.Engine = (*Config)(nil)
