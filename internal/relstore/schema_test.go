package relstore

import (
	"path/filepath"
	"testing"

	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

// TestExtendedSchemaRoundTrip: a conventional configuration with MIN/MAX
// extras loads, answers, survives reopen, and folds extras through
// per-tuple maintenance.
func TestExtendedSchemaRoundTrip(t *testing.T) {
	schema, err := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cube.Compute(t.TempDir(), testFacts(), testViews, cube.Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "conv")
	c, err := Create(dir, Options{Domains: testDomains, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	for _, view := range testViews {
		if err := c.LoadView(data[view.Key()]); err != nil {
			t.Fatal(err)
		}
		if err := c.BuildPrimary(view.Key()); err != nil {
			t.Fatal(err)
		}
	}

	q := workload.Query{}
	rows, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Extra) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// testFacts quantities are 5,7,3,4,9,2,8,1,6,10 -> min 1, max 10.
	if rows[0].Extra[0] != 1 || rows[0].Extra[1] != 10 {
		t.Fatalf("extras = %v", rows[0].Extra)
	}

	// Delta folds min/max in place.
	delta, err := cube.Compute(t.TempDir(), &memRows{
		cols:    []lattice.Attr{"partkey", "suppkey", "custkey"},
		rows:    [][]int64{{1, 1, 1}},
		measure: []int64{100},
	}, testViews, cube.Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	for _, view := range testViews {
		if _, err := c.ApplyDelta(delta[view.Key()], Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err = c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Extra[1] != 100 {
		t.Fatalf("max after delta = %v", rows[0].Extra)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen restores the schema.
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rows, err = c2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Extra) != 2 || rows[0].Extra[1] != 100 {
		t.Fatalf("reopened extras = %v", rows[0].Extra)
	}
}

// TestSchemaMismatchRejected: loading or updating with the wrong schema is
// an error, never silent corruption.
func TestSchemaMismatchRejected(t *testing.T) {
	schema, _ := lattice.NewSchema(lattice.AggMin)
	dataDefault, err := cube.Compute(t.TempDir(), testFacts(), testViews, cube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Create(filepath.Join(t.TempDir(), "conv"), Options{Domains: testDomains, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadView(dataDefault["custkey"]); err == nil {
		t.Fatal("default-schema view loaded into min-schema config")
	}
}
