package relstore

import (
	"fmt"
	"time"

	"cubetree/internal/cube"
	"cubetree/internal/enc"
	"cubetree/internal/heapfile"
	"cubetree/internal/pager"
)

// Budget bounds an update run by modelled I/O time, emulating the paper's
// 24-hour drop-dead deadline on a scaled-down dataset. A zero Budget means
// unlimited.
type Budget struct {
	// Model prices page transfers; used with Deadline.
	Model pager.CostModel
	// Deadline is the modelled time allowance (0 = unlimited).
	Deadline time.Duration
	// CheckEvery controls how often (in tuples) the deadline is tested.
	CheckEvery int64
}

// UpdateReport summarizes an incremental maintenance run over one view.
type UpdateReport struct {
	// Applied is the number of delta tuples processed.
	Applied int64
	// Updated counts in-place aggregate updates, Inserted new rows.
	Updated  int64
	Inserted int64
	// TimedOut is true if the budget expired before the delta was applied.
	TimedOut bool
}

// ApplyDelta incrementally maintains one materialized view: for every delta
// tuple it probes the view's primary index, updating the existing aggregate
// row in place or inserting a new row and registering it in every index.
// This is the conventional one-tuple-at-a-time refresh of Table 7 that
// fails to meet the paper's 24-hour window.
//
// The view must have a primary index (BuildPrimary), matching the paper's
// footnote that additional indexing was used to speed up this phase.
func (c *Config) ApplyDelta(vd *cube.ViewData, budget Budget) (UpdateReport, error) {
	mv, ok := c.views[vd.View.Key()]
	if !ok {
		return UpdateReport{}, fmt.Errorf("relstore: no view %s", vd.View)
	}
	if !vd.Schema.Equal(c.opts.Schema) {
		return UpdateReport{}, fmt.Errorf("relstore: delta schema %v differs from config schema %v",
			vd.Schema, c.opts.Schema)
	}
	arity := mv.View.Arity()
	if arity > 0 && mv.primary == nil {
		return UpdateReport{}, fmt.Errorf("relstore: view %s has no primary index; call BuildPrimary", mv.View)
	}
	if budget.CheckEvery <= 0 {
		budget.CheckEvery = 256
	}
	var start pager.StatsSnapshot
	if budget.Deadline > 0 {
		start = c.opts.Stats.Snapshot()
	}

	var rep UpdateReport
	key := make([]int64, arity)
	oldM := make([]int64, c.opts.Schema.Len())
	buf := make([]byte, mv.heap.TupleWidth())

	// The scalar "none" view has a single row at RID (1,0); keep a cached
	// copy of its location.
	err := vd.Iterate(func(tuple []int64) error {
		if budget.Deadline > 0 && rep.Applied%budget.CheckEvery == 0 {
			spent := budget.Model.Cost(c.opts.Stats.Snapshot().Sub(start))
			if spent > budget.Deadline {
				rep.TimedOut = true
				return errBudget
			}
		}
		copy(key, tuple[:arity])
		var ridVal int64
		var found bool
		var err error
		if arity == 0 {
			// Single-row view: the row, if present, is the first tuple.
			if mv.heap.Count() > 0 {
				ridVal = ridToInt64(firstRID())
				found = true
			}
		} else {
			ridVal, found, err = mv.primary.Get(key)
			if err != nil {
				return err
			}
		}
		if found {
			rid := int64ToRID(ridVal)
			old, err := mv.heap.Get(rid)
			if err != nil {
				return err
			}
			for i := range oldM {
				oldM[i] = enc.Field(old, arity+i)
			}
			c.opts.Schema.Fold(oldM, tuple[arity:arity+len(oldM)])
			for i, m := range oldM {
				enc.PutField(old, arity+i, m)
			}
			if err := mv.heap.Update(rid, old); err != nil {
				return err
			}
			rep.Updated++
		} else {
			enc.PutTuple(buf, tuple)
			rid, err := mv.heap.Insert(buf)
			if err != nil {
				return err
			}
			if arity > 0 {
				if _, err := mv.primary.Put(key, ridToInt64(rid)); err != nil {
					return err
				}
				for _, ix := range mv.indexes {
					ikey := make([]int64, len(ix.Order))
					pos, err := attrPositions(ix.Order, mv.View.Attrs)
					if err != nil {
						return err
					}
					for i, p := range pos {
						ikey[i] = tuple[p]
					}
					if _, err := ix.tree.Put(ikey, ridToInt64(rid)); err != nil {
						return err
					}
				}
			}
			rep.Inserted++
		}
		rep.Applied++
		return nil
	})
	if err == errBudget {
		err = nil
	}
	if err != nil {
		return rep, err
	}
	// Persist structure metadata.
	if err := mv.heap.Close(); err != nil {
		return rep, err
	}
	if mv.primary != nil {
		if err := mv.primary.Close(); err != nil {
			return rep, err
		}
	}
	for _, ix := range mv.indexes {
		if err := ix.tree.Close(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

var errBudget = fmt.Errorf("relstore: update budget exhausted")

// firstRID is the location of the first tuple in a heap file (page 1,
// slot 0), used for single-row scalar views.
func firstRID() heapfile.RID { return heapfile.RID{Page: 1, Slot: 0} }
