// Package relstore implements the paper's baseline: the conventional
// relational storage organization for materialized ROLAP views. Each view
// is a heap-file summary table; query acceleration comes from separate
// B+-tree indexes whose search keys concatenate the view's attributes in a
// chosen order (the paper's I_{a,b,c}); and incremental maintenance works
// one tuple at a time through a primary index, the access pattern whose
// random I/O the paper shows to be two orders of magnitude slower than
// Cubetree merge-packing.
package relstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"cubetree/internal/btree"
	"cubetree/internal/cube"
	"cubetree/internal/enc"
	"cubetree/internal/heapfile"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
)

// DefaultRowOverhead is the default per-row header charged to heap tuples,
// approximating a commercial row store's tuple header plus slot entry (the
// paper's baseline is Informix Universal Server tables, not raw arrays).
const DefaultRowOverhead = 12

// Options configures a conventional configuration.
type Options struct {
	// PoolPages is the buffer pool capacity per storage structure
	// (default 256).
	PoolPages int
	// Fanout caps B-tree node capacity for tests.
	Fanout int
	// Domains provides attribute domain sizes for the query planner.
	Domains map[lattice.Attr]int64
	// Stats receives all page I/O accounting. May be nil.
	Stats *pager.Stats
	// RowOverhead is the per-row header size in bytes added to every heap
	// tuple (0 = DefaultRowOverhead; negative = none).
	RowOverhead int
	// Schema selects the stored measures (default SUM, COUNT); every
	// loaded view must carry the same schema.
	Schema lattice.Schema
}

// Config is one conventional database instance: a set of materialized views
// with their indexes.
type Config struct {
	dir     string
	opts    Options
	views   map[string]*MatView // by View.Key()
	order   []string            // view keys in load order, for stable reports
	domains map[lattice.Attr]int64
	obs     *obs.Observer
	// viewMetrics holds per-view metric children keyed by View.Key();
	// non-nil only while an observer is attached (see SetObserver).
	viewMetrics map[string]*relViewMetrics
}

// relViewMetrics holds one materialized view's pre-resolved metric children.
type relViewMetrics struct {
	hits    *obs.Counter
	scanned *obs.Counter
	rows    *obs.Counter
}

// SetObserver attaches an observability sink: every subsequent Execute is
// counted, timed, and slow-logged, and rel_view_* metric families record
// per-view hits and scan volume. The families carry a rel_ prefix so a
// shared observer (as in ctbench) keeps the conventional engine's traffic
// separate from the Cubetree forest's view_* families. A nil observer (the
// default) keeps the query path uninstrumented. Attach before serving
// queries.
func (c *Config) SetObserver(o *obs.Observer) {
	c.obs = o
	if o == nil {
		c.viewMetrics = nil
		return
	}
	reg := o.Registry
	hits := reg.CounterVec("rel_view_query_hits_total", "view", "arity")
	scanned := reg.CounterVec("rel_view_tuples_scanned_total", "view", "arity")
	rows := reg.CounterVec("rel_view_rows_returned_total", "view", "arity")
	c.viewMetrics = make(map[string]*relViewMetrics, len(c.order))
	for _, key := range c.order {
		mv := c.views[key]
		view := mv.View.String()
		arity := strconv.Itoa(mv.View.Arity())
		c.viewMetrics[key] = &relViewMetrics{
			hits:    hits.With(view, arity),
			scanned: scanned.With(view, arity),
			rows:    rows.With(view, arity),
		}
	}
}

// MatView is one materialized view: a heap table, an optional primary index
// (full key in view attribute order -> RID) used by incremental updates,
// and any number of secondary indexes.
type MatView struct {
	View lattice.View

	heap     *heapfile.File
	heapPool *pager.Pool

	primary     *btree.Tree
	primaryPool *pager.Pool

	indexes []*Index
}

// Index is a secondary index over a view.
type Index struct {
	// Order is the concatenated search key: a permutation of the view's
	// attributes.
	Order []lattice.Attr

	tree *btree.Tree
	pool *pager.Pool
}

// Create initializes an empty configuration in dir.
func Create(dir string, opts Options) (*Config, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	if opts.Stats == nil {
		opts.Stats = &pager.Stats{}
	}
	switch {
	case opts.RowOverhead == 0:
		opts.RowOverhead = DefaultRowOverhead
	case opts.RowOverhead < 0:
		opts.RowOverhead = 0
	}
	if opts.Schema == nil {
		opts.Schema = lattice.DefaultSchema()
	}
	if err := opts.Schema.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: %w", err)
	}
	return &Config{
		dir:     dir,
		opts:    opts,
		views:   make(map[string]*MatView),
		domains: opts.Domains,
	}, nil
}

// Stats returns the configuration's I/O accounting sink.
func (c *Config) Stats() *pager.Stats { return c.opts.Stats }

// Dir returns the configuration's directory.
func (c *Config) Dir() string { return c.dir }

// View returns the materialized view with the given canonical key.
func (c *Config) View(key string) (*MatView, bool) {
	mv, ok := c.views[key]
	return mv, ok
}

// Views returns the materialized views in load order.
func (c *Config) Views() []*MatView {
	out := make([]*MatView, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.views[k])
	}
	return out
}

// LoadView materializes vd as a heap table, inserting its tuples in file
// order (sequential appends, as a relational bulk load would).
func (c *Config) LoadView(vd *cube.ViewData) error {
	key := vd.View.Key()
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("relstore: view %s already loaded", vd.View)
	}
	if !vd.Schema.Equal(c.opts.Schema) {
		return fmt.Errorf("relstore: view %s schema %v differs from config schema %v",
			vd.View, vd.Schema, c.opts.Schema)
	}
	pf, err := pager.Create(c.pathHeap(key), c.opts.Stats)
	if err != nil {
		return err
	}
	pool := pager.NewPool(pf, c.opts.PoolPages)
	h, err := heapfile.Create(pool, vd.Width()+c.opts.RowOverhead)
	if err != nil {
		pool.Close()
		return err
	}
	buf := make([]byte, vd.Width()+c.opts.RowOverhead)
	err = vd.Iterate(func(tuple []int64) error {
		enc.PutTuple(buf, tuple)
		_, err := h.Insert(buf)
		return err
	})
	if err != nil {
		pool.Close()
		return err
	}
	if err := h.Close(); err != nil {
		pool.Close()
		return err
	}
	mv := &MatView{View: vd.View, heap: h, heapPool: pool}
	c.views[key] = mv
	c.order = append(c.order, key)
	return c.writeCatalog()
}

// BuildIndex creates a secondary index over the view whose attribute set
// matches order, inserting one entry per heap tuple — the conventional
// index build whose cost Table 6 reports separately.
func (c *Config) BuildIndex(order []lattice.Attr) error {
	key := lattice.CanonKey(order)
	mv, ok := c.views[key]
	if !ok {
		return fmt.Errorf("relstore: no view %s for index", key)
	}
	pf, err := pager.Create(c.pathIndex(order), c.opts.Stats)
	if err != nil {
		return err
	}
	pool := pager.NewPool(pf, c.opts.PoolPages)
	t, err := btree.Create(pool, len(order), btree.Options{Fanout: c.opts.Fanout})
	if err != nil {
		pool.Close()
		return err
	}
	pos, err := attrPositions(order, mv.View.Attrs)
	if err != nil {
		pool.Close()
		return err
	}
	ikey := make([]int64, len(order))
	err = mv.heap.Scan(func(rid heapfile.RID, tuple []byte) error {
		for i, p := range pos {
			ikey[i] = enc.Field(tuple, p)
		}
		_, err := t.Put(ikey, ridToInt64(rid))
		return err
	})
	if err != nil {
		pool.Close()
		return err
	}
	if err := t.Close(); err != nil {
		pool.Close()
		return err
	}
	mv.indexes = append(mv.indexes, &Index{Order: append([]lattice.Attr(nil), order...), tree: t, pool: pool})
	return c.writeCatalog()
}

// BuildPrimary creates the primary index (view attribute order -> RID) the
// incremental update path needs — the paper's footnote 7: "we used
// additional indexing on the conventional implementation of the views to
// speed up this phase".
func (c *Config) BuildPrimary(viewKey string) error {
	mv, ok := c.views[viewKey]
	if !ok {
		return fmt.Errorf("relstore: no view %s", viewKey)
	}
	if mv.primary != nil {
		return nil
	}
	arity := mv.View.Arity()
	if arity == 0 {
		return nil // the scalar view needs no index
	}
	pf, err := pager.Create(c.pathPrimary(viewKey), c.opts.Stats)
	if err != nil {
		return err
	}
	pool := pager.NewPool(pf, c.opts.PoolPages)
	t, err := btree.Create(pool, arity, btree.Options{Fanout: c.opts.Fanout})
	if err != nil {
		pool.Close()
		return err
	}
	key := make([]int64, arity)
	err = mv.heap.Scan(func(rid heapfile.RID, tuple []byte) error {
		for i := 0; i < arity; i++ {
			key[i] = enc.Field(tuple, i)
		}
		_, err := t.Put(key, ridToInt64(rid))
		return err
	})
	if err != nil {
		pool.Close()
		return err
	}
	if err := t.Close(); err != nil {
		pool.Close()
		return err
	}
	mv.primary = t
	mv.primaryPool = pool
	return c.writeCatalog()
}

// TotalBytes returns the on-disk size of every table and index.
func (c *Config) TotalBytes() int64 {
	var n int64
	for _, mv := range c.views {
		n += int64(mv.heap.Pages()) * pager.PageSize
		if mv.primary != nil {
			n += int64(mv.primary.Pages()) * pager.PageSize
		}
		for _, ix := range mv.indexes {
			n += int64(ix.tree.Pages()) * pager.PageSize
		}
	}
	return n
}

// TableBytes returns the on-disk size of the heap tables alone.
func (c *Config) TableBytes() int64 {
	var n int64
	for _, mv := range c.views {
		n += int64(mv.heap.Pages()) * pager.PageSize
	}
	return n
}

// IndexBytes returns the on-disk size of all indexes (secondary + primary).
func (c *Config) IndexBytes() int64 { return c.TotalBytes() - c.TableBytes() }

// Close flushes and closes every structure.
func (c *Config) Close() error {
	var first error
	for _, mv := range c.views {
		if err := mv.heap.Close(); err != nil && first == nil {
			first = err
		}
		if err := mv.heapPool.Close(); err != nil && first == nil {
			first = err
		}
		if mv.primary != nil {
			if err := mv.primary.Close(); err != nil && first == nil {
				first = err
			}
			if err := mv.primaryPool.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, ix := range mv.indexes {
			if err := ix.tree.Close(); err != nil && first == nil {
				first = err
			}
			if err := ix.pool.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	c.views = make(map[string]*MatView)
	c.order = nil
	return first
}

// Remove closes the configuration and deletes its files.
func (c *Config) Remove() error {
	dir := c.dir
	c.Close()
	return os.RemoveAll(dir)
}

// --- catalog ----------------------------------------------------------------

const catalogFile = "relstore.json"

type catalogJSON struct {
	Views       []viewJSON       `json:"views"`
	Domains     map[string]int64 `json:"domains"`
	Schema      []string         `json:"schema,omitempty"`
	PoolPages   int              `json:"pool_pages"`
	Fanout      int              `json:"fanout,omitempty"`
	RowOverhead int              `json:"row_overhead,omitempty"`
}

type viewJSON struct {
	Name    string     `json:"name,omitempty"`
	Attrs   []string   `json:"attrs"`
	Primary bool       `json:"primary,omitempty"`
	Indexes [][]string `json:"indexes,omitempty"`
}

func (c *Config) writeCatalog() error {
	cat := catalogJSON{PoolPages: c.opts.PoolPages, Fanout: c.opts.Fanout,
		RowOverhead: c.opts.RowOverhead, Schema: c.opts.Schema.Strings(),
		Domains: map[string]int64{}}
	for a, d := range c.domains {
		cat.Domains[string(a)] = d
	}
	for _, k := range c.order {
		mv := c.views[k]
		vj := viewJSON{Name: mv.View.Name, Primary: mv.primary != nil}
		for _, a := range mv.View.Attrs {
			vj.Attrs = append(vj.Attrs, string(a))
		}
		for _, ix := range mv.indexes {
			var oo []string
			for _, a := range ix.Order {
				oo = append(oo, string(a))
			}
			vj.Indexes = append(vj.Indexes, oo)
		}
		cat.Views = append(cat.Views, vj)
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	return pager.WriteFileAtomic(filepath.Join(c.dir, catalogFile), data, 0o644)
}

// Open loads an existing configuration from dir.
func Open(dir string, stats *pager.Stats) (*Config, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return nil, fmt.Errorf("relstore: open: %w", err)
	}
	var cat catalogJSON
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("relstore: parse catalog: %w", err)
	}
	if stats == nil {
		stats = &pager.Stats{}
	}
	schema, err := lattice.ParseSchema(cat.Schema)
	if err != nil {
		return nil, fmt.Errorf("relstore: %w", err)
	}
	opts := Options{PoolPages: cat.PoolPages, Fanout: cat.Fanout, Stats: stats,
		Domains: map[lattice.Attr]int64{}, RowOverhead: cat.RowOverhead,
		Schema: schema}
	if opts.RowOverhead == 0 {
		opts.RowOverhead = -1 // already-applied overhead lives in the heap files
	}
	for a, d := range cat.Domains {
		opts.Domains[lattice.Attr(a)] = d
	}
	c, err := Create(dir, opts)
	if err != nil {
		return nil, err
	}
	for _, vj := range cat.Views {
		attrs := make([]lattice.Attr, len(vj.Attrs))
		for i, a := range vj.Attrs {
			attrs[i] = lattice.Attr(a)
		}
		v := lattice.View{Name: vj.Name, Attrs: attrs}
		key := v.Key()
		pf, err := pager.Open(c.pathHeap(key), stats)
		if err != nil {
			c.Close()
			return nil, err
		}
		pool := pager.NewPool(pf, opts.PoolPages)
		h, err := heapfile.Open(pool)
		if err != nil {
			pool.Close()
			c.Close()
			return nil, err
		}
		mv := &MatView{View: v, heap: h, heapPool: pool}
		if vj.Primary {
			ppf, err := pager.Open(c.pathPrimary(key), stats)
			if err != nil {
				pool.Close()
				c.Close()
				return nil, err
			}
			ppool := pager.NewPool(ppf, opts.PoolPages)
			pt, err := btree.Open(ppool)
			if err != nil {
				ppool.Close()
				pool.Close()
				c.Close()
				return nil, err
			}
			mv.primary = pt
			mv.primaryPool = ppool
		}
		for _, oo := range vj.Indexes {
			order := make([]lattice.Attr, len(oo))
			for i, a := range oo {
				order[i] = lattice.Attr(a)
			}
			ipf, err := pager.Open(c.pathIndex(order), stats)
			if err != nil {
				c.Close()
				return nil, err
			}
			ipool := pager.NewPool(ipf, opts.PoolPages)
			it, err := btree.Open(ipool)
			if err != nil {
				ipool.Close()
				c.Close()
				return nil, err
			}
			mv.indexes = append(mv.indexes, &Index{Order: order, tree: it, pool: ipool})
		}
		c.views[key] = mv
		c.order = append(c.order, key)
	}
	return c, nil
}

// --- helpers ----------------------------------------------------------------

func (c *Config) pathHeap(key string) string {
	return filepath.Join(c.dir, "view-"+sanitize(key)+".heap")
}

func (c *Config) pathPrimary(key string) string {
	return filepath.Join(c.dir, "pk-"+sanitize(key)+".bt")
}

func (c *Config) pathIndex(order []lattice.Attr) string {
	s := ""
	for i, a := range order {
		if i > 0 {
			s += "_"
		}
		s += string(a)
	}
	return filepath.Join(c.dir, "idx-"+sanitize(s)+".bt")
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// attrPositions maps each attribute of want to its position within have.
func attrPositions(want, have []lattice.Attr) ([]int, error) {
	pos := make([]int, len(want))
	for i, a := range want {
		found := -1
		for j, b := range have {
			if a == b {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("relstore: attribute %q not in %v", a, have)
		}
		pos[i] = found
	}
	return pos, nil
}

// ridToInt64 packs a RID into a B-tree payload.
func ridToInt64(rid heapfile.RID) int64 {
	return int64(uint64(rid.Page)<<16 | uint64(rid.Slot))
}

// int64ToRID unpacks a B-tree payload into a RID.
func int64ToRID(v int64) heapfile.RID {
	return heapfile.RID{Page: pager.PageID(uint64(v) >> 16), Slot: uint16(uint64(v) & 0xFFFF)}
}
