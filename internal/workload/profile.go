package workload

// QueryProfile is an EXPLAIN-ANALYZE-style breakdown of one executed query:
// where the planner routed it, what the scan touched (points, leaf pages read
// vs pruned whole by zone maps), what the buffer pool did for it, and — on a
// coordinator — how every shard contributed. It lives in workload because
// every layer that moves queries (core, dist, server) already meets here.
//
// The pool hit/miss fields are a before/after delta of the engine's shared
// pager stats; under concurrency the delta may include pages of overlapping
// queries, the same caveat the slow-query log carries.
type QueryProfile struct {
	View             string `json:"view,omitempty"` // view the planner routed to
	Tree             int    `json:"tree"`           // packed-tree index within the forest
	PointsScanned    int64  `json:"points_scanned"`
	RowsReturned     int64  `json:"rows_returned"`
	LeafPagesRead    int64  `json:"leaf_pages_read"`
	LeafPagesSkipped int64  `json:"leaf_pages_skipped"` // zone-map/arity pruned without decoding
	PoolHits         int64  `json:"pool_hits"`
	PoolMisses       int64  `json:"pool_misses"`
	DurationNS       int64  `json:"duration_ns"`

	// Cache is the HTTP result-cache disposition: "hit" (served from cache,
	// scan fields zero), "miss" (executed; profiled results are not stored,
	// so the breakdown always describes this execution), or "" when no cache
	// sits in front of the engine.
	Cache string `json:"cache,omitempty"`

	// TraceID correlates the profile with span snapshots in /debug/traces on
	// every process that touched the query.
	TraceID string `json:"trace_id,omitempty"`

	// Shards carries per-shard detail on a distributed query, in shard order.
	Shards []ShardProfile `json:"shards,omitempty"`
}

// ShardProfile is one shard's contribution to a distributed query: the
// coordinator-observed round trip (attempts, latency, straggler verdict) plus
// the worker-side breakdown it returned.
type ShardProfile struct {
	Addr       string        `json:"addr"`
	Attempts   int           `json:"attempts"`
	DurationNS int64         `json:"duration_ns"` // coordinator-observed round trip
	Generation int           `json:"generation"`
	Straggler  bool          `json:"straggler,omitempty"` // slowest-vs-fastest verdict, same rule as dist_query_stragglers_total
	Profile    *QueryProfile `json:"profile,omitempty"`   // worker-side breakdown
}

// AddShard appends one shard's detail and folds its worker-side counters into
// the coordinator totals, so the top-level scan fields of a distributed
// profile are the fleet-wide sums of their per-shard counterparts.
func (p *QueryProfile) AddShard(sp ShardProfile) {
	if wp := sp.Profile; wp != nil {
		p.PointsScanned += wp.PointsScanned
		p.LeafPagesRead += wp.LeafPagesRead
		p.LeafPagesSkipped += wp.LeafPagesSkipped
		p.PoolHits += wp.PoolHits
		p.PoolMisses += wp.PoolMisses
	}
	p.Shards = append(p.Shards, sp)
}
