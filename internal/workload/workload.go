// Package workload defines the paper's slice-query model and the uniform
// random query generator used in Section 3.3, shared by both storage
// configurations so that experiments run the identical batch against each.
//
// A slice query targets one lattice node (a group-by attribute set), fixes
// a subset of those attributes with equality predicates, and aggregates the
// measure over the remaining attributes. For a node with k attributes there
// are 2^k query types; summed over the 3-dimensional TPC-D lattice that is
// the paper's 27 types.
package workload

import (
	"fmt"
	"slices"
	"strings"

	"cubetree/internal/lattice"
)

// Pred is an equality predicate attr = Value.
type Pred struct {
	Attr  lattice.Attr
	Value int64
}

// Range is an inclusive range predicate Lo <= attr <= Hi. The paper's TPC-D
// experiment uses equality only (the attributes are foreign keys), but
// notes that bounded range queries favour the R-tree organization even
// more; Range predicates exercise that path.
type Range struct {
	Attr   lattice.Attr
	Lo, Hi int64
}

// Query is one slice query: group the measure by Node's attributes with the
// given equality and range predicates applied. Predicate attributes must
// belong to Node.
type Query struct {
	// Node is the lattice node, in a fixed attribute order that also orders
	// result rows' Group values.
	Node []lattice.Attr
	// Fixed lists the equality predicates.
	Fixed []Pred
	// Ranges lists the inclusive range predicates.
	Ranges []Range
}

// FixedValue returns the predicate value for attr, if attr is fixed.
func (q Query) FixedValue(attr lattice.Attr) (int64, bool) {
	for _, p := range q.Fixed {
		if p.Attr == attr {
			return p.Value, true
		}
	}
	return 0, false
}

// RangeFor returns the range predicate on attr, if any.
func (q Query) RangeFor(attr lattice.Attr) (Range, bool) {
	for _, r := range q.Ranges {
		if r.Attr == attr {
			return r, true
		}
	}
	return Range{}, false
}

// Validate checks that every predicate attribute belongs to the node, that
// no attribute carries both an equality and a range predicate, and that
// ranges are non-empty.
func (q Query) Validate() error {
	inNode := func(attr lattice.Attr) bool {
		for _, a := range q.Node {
			if a == attr {
				return true
			}
		}
		return false
	}
	for _, p := range q.Fixed {
		if !inNode(p.Attr) {
			return fmt.Errorf("workload: predicate on %q outside node %v", p.Attr, q.Node)
		}
	}
	for _, r := range q.Ranges {
		if !inNode(r.Attr) {
			return fmt.Errorf("workload: range on %q outside node %v", r.Attr, q.Node)
		}
		if r.Lo > r.Hi {
			return fmt.Errorf("workload: empty range on %q [%d,%d]", r.Attr, r.Lo, r.Hi)
		}
		if _, dup := q.FixedValue(r.Attr); dup {
			return fmt.Errorf("workload: %q has both equality and range predicates", r.Attr)
		}
	}
	return nil
}

// String renders the query in the paper's style, e.g.
// "Q{partkey,custkey | custkey=42}".
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("Q{")
	for i, a := range q.Node {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(a))
	}
	if len(q.Fixed) > 0 || len(q.Ranges) > 0 {
		b.WriteString(" | ")
		for i, p := range q.Fixed {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%d", p.Attr, p.Value)
		}
		for i, r := range q.Ranges {
			if i > 0 || len(q.Fixed) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s in [%d,%d]", r.Attr, r.Lo, r.Hi)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Row is one result row: the node attributes' values (fixed attributes
// carry their predicate value) plus the aggregated measures. Sum and Count
// are always present; Extra carries any additional measures (MIN, MAX) in
// the engine's schema order.
type Row struct {
	Group []int64
	Sum   int64
	Count int64
	Extra []int64
}

// Avg returns the average measure of the row.
func (r Row) Avg() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.Sum) / float64(r.Count)
}

// Engine answers slice queries; both storage configurations implement it.
type Engine interface {
	Execute(q Query) ([]Row, error)
}

// SortRows orders rows lexicographically by Group, the canonical result
// order used to compare engines.
func SortRows(rows []Row) {
	slices.SortFunc(rows, func(a, b Row) int {
		return slices.Compare(a.Group, b.Group)
	})
}

// EqualRows reports whether two sorted result sets are identical.
func EqualRows(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sum != b[i].Sum || a[i].Count != b[i].Count ||
			len(a[i].Group) != len(b[i].Group) || len(a[i].Extra) != len(b[i].Extra) {
			return false
		}
		for j := range a[i].Group {
			if a[i].Group[j] != b[i].Group[j] {
				return false
			}
		}
		for j := range a[i].Extra {
			if a[i].Extra[j] != b[i].Extra[j] {
				return false
			}
		}
	}
	return true
}

// Generator produces uniform random slice queries, mirroring the paper's
// random query generator: for a node it picks one of the node's query types
// with equal probability — excluding, as the paper does, the type with no
// selection predicate, whose huge output would dilute retrieval cost — and
// draws predicate values uniformly from the attribute domains.
type Generator struct {
	domains map[lattice.Attr]int64
	state   uint64
}

// NewGenerator creates a generator with the given attribute domains
// (maximum key value per attribute; keys are 1-based).
func NewGenerator(seed uint64, domains map[lattice.Attr]int64) *Generator {
	return &Generator{domains: domains, state: seed ^ 0x428a2f98d728ae22}
}

func (g *Generator) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ForNode generates one random query against node. For the scalar "none"
// node the only type is the super-aggregate lookup.
func (g *Generator) ForNode(node []lattice.Attr) Query {
	q := Query{Node: append([]lattice.Attr(nil), node...)}
	k := len(node)
	if k == 0 {
		return q
	}
	// Uniform non-empty subset of predicates.
	mask := g.next()%(1<<uint(k)-1) + 1
	for i, a := range node {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		dom := g.domains[a]
		if dom < 1 {
			dom = 1
		}
		q.Fixed = append(q.Fixed, Pred{Attr: a, Value: int64(g.next()%uint64(dom)) + 1})
	}
	return q
}

// ForNodeRanges generates a random slice query whose predicates are ranges
// spanning roughly width (0..1] of each chosen attribute's domain — the
// bounded range workload the paper predicts favours Cubetrees even more
// than equality slices.
func (g *Generator) ForNodeRanges(node []lattice.Attr, width float64) Query {
	q := Query{Node: append([]lattice.Attr(nil), node...)}
	k := len(node)
	if k == 0 {
		return q
	}
	if width <= 0 || width > 1 {
		width = 0.1
	}
	mask := g.next()%(1<<uint(k)-1) + 1
	for i, a := range node {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		dom := g.domains[a]
		if dom < 1 {
			dom = 1
		}
		w := int64(float64(dom) * width)
		if w < 1 {
			w = 1
		}
		lo := int64(g.next()%uint64(dom)) + 1
		hi := lo + w - 1
		if hi > dom {
			hi = dom
		}
		q.Ranges = append(q.Ranges, Range{Attr: a, Lo: lo, Hi: hi})
	}
	return q
}

// Batch generates n queries against node.
func (g *Generator) Batch(node []lattice.Attr, n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.ForNode(node)
	}
	return out
}

// QueryTypes enumerates every slice query type of a node as predicate
// attribute subsets (including the empty subset). Used by the greedy view
// selector's cost model.
func QueryTypes(node []lattice.Attr) [][]lattice.Attr {
	k := len(node)
	var out [][]lattice.Attr
	for mask := 0; mask < 1<<uint(k); mask++ {
		var fixed []lattice.Attr
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				fixed = append(fixed, node[i])
			}
		}
		out = append(out, fixed)
	}
	return out
}
