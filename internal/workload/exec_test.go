package workload

import (
	"fmt"
	"sync/atomic"
	"testing"

	"cubetree/internal/lattice"
)

// fakeEngine answers each query with a row encoding the query's first fixed
// value, and fails on a designated value.
type fakeEngine struct {
	failOn   int64
	inflight atomic.Int32
	maxSeen  atomic.Int32
}

func (e *fakeEngine) Execute(q Query) ([]Row, error) {
	cur := e.inflight.Add(1)
	defer e.inflight.Add(-1)
	for {
		max := e.maxSeen.Load()
		if cur <= max || e.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	v, _ := q.FixedValue("a")
	if v == e.failOn {
		return nil, fmt.Errorf("boom on %d", v)
	}
	return []Row{{Group: []int64{v}, Sum: v * 10, Count: 1}}, nil
}

func batchOf(n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{
			Node:  []lattice.Attr{"a"},
			Fixed: []Pred{{Attr: "a", Value: int64(i)}},
		}
	}
	return qs
}

func TestExecuteBatchOrderAndParallel(t *testing.T) {
	for _, par := range []int{0, 1, 3, 8, 100} {
		e := &fakeEngine{failOn: -1}
		qs := batchOf(25)
		res, err := ExecuteBatch(e, qs, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res) != len(qs) {
			t.Fatalf("parallelism %d: %d results for %d queries", par, len(res), len(qs))
		}
		for i, rows := range res {
			if len(rows) != 1 || rows[0].Group[0] != int64(i) || rows[0].Sum != int64(i)*10 {
				t.Fatalf("parallelism %d: result %d = %+v", par, i, rows)
			}
		}
		if par > len(qs) {
			par = len(qs)
		}
		if max := int(e.maxSeen.Load()); par > 1 && max > par {
			t.Fatalf("parallelism %d: %d queries ran concurrently", par, max)
		}
	}
}

func TestExecuteBatchError(t *testing.T) {
	e := &fakeEngine{failOn: 7}
	qs := batchOf(20)
	res, err := ExecuteBatch(e, qs, 4)
	if err == nil {
		t.Fatal("expected the query error to surface")
	}
	if err.Error() != "boom on 7" {
		t.Fatalf("err = %v", err)
	}
	if res[7] != nil {
		t.Fatalf("failed query has a result: %+v", res[7])
	}
	if res[0] == nil || res[19] == nil {
		t.Fatal("successful queries lost their results")
	}
}
