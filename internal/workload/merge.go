package workload

import "cubetree/internal/lattice"

// MergePartials folds per-shard partial aggregate rows into one canonical
// result set. Each shard contributes the rows it computed over its own
// slice of the fact stream; because every measure in a lattice.Schema is
// distributive (SUM and COUNT add, MIN and MAX take extremes), folding the
// shards' partials componentwise per group is exactly equivalent to
// aggregating the union of the underlying facts — the property that makes
// scatter-gather over a hash-partitioned forest return results identical
// to a single-process warehouse.
//
// Rows must all belong to the same query: same group width and measures in
// schema order (Sum, Count, then Extra). Groups missing from a shard simply
// contribute nothing. The result is in canonical sorted order (SortRows).
func MergePartials(schema lattice.Schema, shards [][]Row) []Row {
	width := 0
	total := 0
	for _, rows := range shards {
		total += len(rows)
		if width == 0 && len(rows) > 0 {
			width = len(rows[0].Group)
		}
	}
	if total == 0 {
		return []Row{}
	}
	agg := NewSchemaAggregator(width, schema)
	measures := make([]int64, schema.Len())
	for _, rows := range shards {
		for i := range rows {
			r := &rows[i]
			measures[0] = r.Sum
			measures[1] = r.Count
			copy(measures[2:], r.Extra)
			agg.AddMeasures(r.Group, measures)
		}
	}
	return agg.Rows()
}
