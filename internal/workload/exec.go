package workload

import (
	"sync"

	"cubetree/internal/obs"
)

// ExecuteBatch runs qs against e with up to parallelism concurrent workers
// and returns one result slice per query, in query order. parallelism < 1
// or a single-query batch degenerates to the serial loop, so serial and
// parallel execution share one code path and must agree by construction.
//
// The engine must be safe for concurrent Execute calls; both storage
// configurations are (their state is read-only pages behind the sharded
// buffer pool). The first error wins and is returned after all in-flight
// queries finish; results of failed or unstarted queries are nil.
func ExecuteBatch(e Engine, qs []Query, parallelism int) ([][]Row, error) {
	return executeBatch(e, qs, parallelism, nil)
}

// ExecuteBatchObserved is ExecuteBatch with batch-level metrics: batches
// counts completed calls and inflight tracks the queries currently executing
// (so a debug snapshot taken mid-batch shows live concurrency). Both sinks
// are nil-safe, so callers may pass whatever subset they have.
func ExecuteBatchObserved(e Engine, qs []Query, parallelism int, inflight *obs.Gauge, batches *obs.Counter) ([][]Row, error) {
	batches.Inc()
	return executeBatch(e, qs, parallelism, inflight)
}

func executeBatch(e Engine, qs []Query, parallelism int, inflight *obs.Gauge) ([][]Row, error) {
	results := make([][]Row, len(qs))
	run := func(q Query) ([]Row, error) {
		inflight.Add(1)
		rows, err := e.Execute(q)
		inflight.Add(-1)
		return rows, err
	}
	if parallelism > len(qs) {
		parallelism = len(qs)
	}
	if parallelism <= 1 {
		for i, q := range qs {
			rows, err := run(q)
			if err != nil {
				return results, err
			}
			results[i] = rows
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows, err := run(qs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				results[i] = rows
			}
		}()
	}
	for i := range qs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, firstErr
}
