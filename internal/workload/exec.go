package workload

import (
	"context"
	"sync"

	"cubetree/internal/obs"
)

// EngineCtx is implemented by engines whose execution honours cancellation:
// once ctx is done, a running query stops scanning and returns the context's
// error. ExecuteBatchCtx uses it when available; engines without it are
// still batched, but individual queries run to completion.
type EngineCtx interface {
	Engine
	ExecuteCtx(ctx context.Context, q Query) ([]Row, error)
}

// ExecuteBatch runs qs against e with up to parallelism concurrent workers
// and returns one result slice per query, in query order. parallelism < 1
// or a single-query batch degenerates to the serial loop, so serial and
// parallel execution share one code path and must agree by construction.
//
// The engine must be safe for concurrent Execute calls; both storage
// configurations are (their state is read-only pages behind the sharded
// buffer pool). The first error wins and is returned after all in-flight
// queries finish; results of failed or unstarted queries are nil.
func ExecuteBatch(e Engine, qs []Query, parallelism int) ([][]Row, error) {
	return executeBatch(context.Background(), e, qs, parallelism, nil)
}

// ExecuteBatchCtx is ExecuteBatch under a context: queries not yet started
// when ctx is done are never dispatched, and engines implementing EngineCtx
// abandon in-flight scans. The context's error is returned (taking
// precedence over individual query errors, which at that point are
// cancellations themselves).
func ExecuteBatchCtx(ctx context.Context, e Engine, qs []Query, parallelism int) ([][]Row, error) {
	return executeBatch(ctx, e, qs, parallelism, nil)
}

// ExecuteBatchObserved is ExecuteBatch with batch-level metrics: batches
// counts completed calls and inflight tracks the queries currently executing
// (so a debug snapshot taken mid-batch shows live concurrency). Both sinks
// are nil-safe, so callers may pass whatever subset they have.
func ExecuteBatchObserved(e Engine, qs []Query, parallelism int, inflight *obs.Gauge, batches *obs.Counter) ([][]Row, error) {
	batches.Inc()
	return executeBatch(context.Background(), e, qs, parallelism, inflight)
}

// ExecuteBatchObservedCtx combines ExecuteBatchCtx and ExecuteBatchObserved.
func ExecuteBatchObservedCtx(ctx context.Context, e Engine, qs []Query, parallelism int, inflight *obs.Gauge, batches *obs.Counter) ([][]Row, error) {
	batches.Inc()
	return executeBatch(ctx, e, qs, parallelism, inflight)
}

func executeBatch(ctx context.Context, e Engine, qs []Query, parallelism int, inflight *obs.Gauge) ([][]Row, error) {
	results := make([][]Row, len(qs))
	ec, hasCtx := e.(EngineCtx)
	run := func(q Query) ([]Row, error) {
		inflight.Add(1)
		defer inflight.Add(-1)
		if hasCtx {
			return ec.ExecuteCtx(ctx, q)
		}
		return e.Execute(q)
	}
	if parallelism > len(qs) {
		parallelism = len(qs)
	}
	if parallelism <= 1 {
		for i, q := range qs {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			rows, err := run(q)
			if err != nil {
				return results, err
			}
			results[i] = rows
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows, err := run(qs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				results[i] = rows
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}
