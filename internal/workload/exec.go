package workload

import "sync"

// ExecuteBatch runs qs against e with up to parallelism concurrent workers
// and returns one result slice per query, in query order. parallelism < 1
// or a single-query batch degenerates to the serial loop, so serial and
// parallel execution share one code path and must agree by construction.
//
// The engine must be safe for concurrent Execute calls; both storage
// configurations are (their state is read-only pages behind the sharded
// buffer pool). The first error wins and is returned after all in-flight
// queries finish; results of failed or unstarted queries are nil.
func ExecuteBatch(e Engine, qs []Query, parallelism int) ([][]Row, error) {
	results := make([][]Row, len(qs))
	if parallelism > len(qs) {
		parallelism = len(qs)
	}
	if parallelism <= 1 {
		for i, q := range qs {
			rows, err := e.Execute(q)
			if err != nil {
				return results, err
			}
			results[i] = rows
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows, err := e.Execute(qs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				results[i] = rows
			}
		}()
	}
	for i := range qs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, firstErr
}
