package workload

import (
	"testing"

	"cubetree/internal/lattice"
)

func fullSchema(t *testing.T) lattice.Schema {
	t.Helper()
	s, err := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMergePartialsEmpty(t *testing.T) {
	got := MergePartials(lattice.DefaultSchema(), nil)
	if len(got) != 0 {
		t.Fatalf("merge of no shards = %v, want empty", got)
	}
	got = MergePartials(lattice.DefaultSchema(), [][]Row{{}, {}, {}})
	if got == nil || len(got) != 0 {
		t.Fatalf("merge of empty shards = %v, want non-nil empty", got)
	}
}

func TestMergePartialsSingleShard(t *testing.T) {
	shard := []Row{
		{Group: []int64{2, 1}, Sum: 7, Count: 2},
		{Group: []int64{1, 3}, Sum: 4, Count: 1},
	}
	got := MergePartials(lattice.DefaultSchema(), [][]Row{shard})
	want := []Row{
		{Group: []int64{1, 3}, Sum: 4, Count: 1},
		{Group: []int64{2, 1}, Sum: 7, Count: 2},
	}
	if !EqualRows(got, want) {
		t.Fatalf("single shard merge = %v, want %v (sorted passthrough)", got, want)
	}
}

func TestMergePartialsMinMaxTies(t *testing.T) {
	schema := fullSchema(t)
	// Two shards report the same MIN for a group (a tie) and different MAX.
	a := []Row{{Group: []int64{1}, Sum: 10, Count: 2, Extra: []int64{3, 9}}}
	b := []Row{{Group: []int64{1}, Sum: 5, Count: 1, Extra: []int64{3, 12}}}
	got := MergePartials(schema, [][]Row{a, b})
	want := []Row{{Group: []int64{1}, Sum: 15, Count: 3, Extra: []int64{3, 12}}}
	if !EqualRows(got, want) {
		t.Fatalf("min/max tie merge = %v, want %v", got, want)
	}
}

func TestMergePartialsThreeShards(t *testing.T) {
	schema := fullSchema(t)
	shards := [][]Row{
		{
			{Group: []int64{1, 1}, Sum: 2, Count: 1, Extra: []int64{2, 2}},
			{Group: []int64{2, 2}, Sum: 8, Count: 3, Extra: []int64{1, 5}},
		},
		{
			{Group: []int64{1, 1}, Sum: 3, Count: 2, Extra: []int64{-1, 4}},
		},
		{
			{Group: []int64{1, 1}, Sum: 5, Count: 4, Extra: []int64{0, 1}},
			{Group: []int64{3, 1}, Sum: 1, Count: 1, Extra: []int64{1, 1}},
		},
	}
	got := MergePartials(schema, shards)
	want := []Row{
		// COUNT accumulates across all three shards: 1+2+4.
		{Group: []int64{1, 1}, Sum: 10, Count: 7, Extra: []int64{-1, 4}},
		{Group: []int64{2, 2}, Sum: 8, Count: 3, Extra: []int64{1, 5}},
		{Group: []int64{3, 1}, Sum: 1, Count: 1, Extra: []int64{1, 1}},
	}
	if !EqualRows(got, want) {
		t.Fatalf("three-shard merge = %v, want %v", got, want)
	}
}

func TestMergePartialsScalarNode(t *testing.T) {
	// The super-aggregate node has zero-width groups; every shard's single
	// row must fold into one.
	shards := [][]Row{
		{{Group: []int64{}, Sum: 3, Count: 1}},
		{{Group: []int64{}, Sum: 4, Count: 2}},
	}
	got := MergePartials(lattice.DefaultSchema(), shards)
	want := []Row{{Group: []int64{}, Sum: 7, Count: 3}}
	if !EqualRows(got, want) {
		t.Fatalf("scalar node merge = %v, want %v", got, want)
	}
}
