package workload

import "cubetree/internal/lattice"

// Aggregator folds per-point measure vectors into result rows according to
// a measure schema. Both storage configurations use it so that query
// results are canonical and directly comparable.
type Aggregator struct {
	width  int
	schema lattice.Schema
	groups map[string]*aggCell
	keyBuf []byte
}

type aggCell struct {
	group    []int64
	measures []int64
}

// NewAggregator creates an aggregator for groups of the given width with
// the default SUM/COUNT schema.
func NewAggregator(width int) *Aggregator {
	return NewSchemaAggregator(width, lattice.DefaultSchema())
}

// NewSchemaAggregator creates an aggregator folding measures per schema.
func NewSchemaAggregator(width int, schema lattice.Schema) *Aggregator {
	return &Aggregator{
		width:  width,
		schema: schema,
		groups: make(map[string]*aggCell),
		keyBuf: make([]byte, 0, width*8),
	}
}

// Add folds one SUM/COUNT observation (only valid with the default
// schema; use AddMeasures otherwise).
func (a *Aggregator) Add(group []int64, sum, count int64) {
	a.AddMeasures(group, []int64{sum, count})
}

// AddMeasures folds one observation's full measure vector, which must
// match the aggregator's schema length.
func (a *Aggregator) AddMeasures(group []int64, measures []int64) {
	a.keyBuf = a.keyBuf[:0]
	for _, v := range group {
		a.keyBuf = append(a.keyBuf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	// The direct map index with an inline []byte->string conversion lets the
	// compiler elide the string allocation, so the hot path (existing group)
	// allocates nothing; only a new group pays for its key.
	cell := a.groups[string(a.keyBuf)]
	if cell == nil {
		cell = &aggCell{
			group:    append([]int64(nil), group...),
			measures: append([]int64(nil), measures...),
		}
		a.groups[string(a.keyBuf)] = cell
		return
	}
	a.schema.Fold(cell.measures, measures)
}

// Rows returns the aggregated rows in canonical sorted order.
func (a *Aggregator) Rows() []Row {
	rows := make([]Row, 0, len(a.groups))
	for _, c := range a.groups {
		row := Row{Group: c.group, Sum: c.measures[0], Count: c.measures[1]}
		if len(c.measures) > 2 {
			row.Extra = c.measures[2:]
		}
		rows = append(rows, row)
	}
	SortRows(rows)
	return rows
}
