package workload

import (
	"testing"
	"testing/quick"

	"cubetree/internal/lattice"
)

var testDomains = map[lattice.Attr]int64{"partkey": 100, "suppkey": 10, "custkey": 50}

func TestQueryValidate(t *testing.T) {
	q := Query{Node: []lattice.Attr{"partkey", "custkey"},
		Fixed: []Pred{{Attr: "custkey", Value: 3}}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Query{Node: []lattice.Attr{"partkey"}, Fixed: []Pred{{Attr: "suppkey", Value: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("predicate outside node accepted")
	}
}

func TestFixedValue(t *testing.T) {
	q := Query{Node: []lattice.Attr{"a", "b"}, Fixed: []Pred{{Attr: "b", Value: 9}}}
	if v, ok := q.FixedValue("b"); !ok || v != 9 {
		t.Fatal("FixedValue broken")
	}
	if _, ok := q.FixedValue("a"); ok {
		t.Fatal("unfixed attr reported fixed")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Node: []lattice.Attr{"partkey", "custkey"},
		Fixed: []Pred{{Attr: "custkey", Value: 42}}}
	want := "Q{partkey,custkey | custkey=42}"
	if got := q.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestGeneratorDeterministicAndValid(t *testing.T) {
	node := []lattice.Attr{"partkey", "suppkey", "custkey"}
	a := NewGenerator(5, testDomains)
	b := NewGenerator(5, testDomains)
	for i := 0; i < 200; i++ {
		qa, qb := a.ForNode(node), b.ForNode(node)
		if qa.String() != qb.String() {
			t.Fatalf("generator not deterministic at %d", i)
		}
		if err := qa.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(qa.Fixed) == 0 {
			t.Fatal("generator produced a no-predicate query")
		}
		for _, p := range qa.Fixed {
			if p.Value < 1 || p.Value > testDomains[p.Attr] {
				t.Fatalf("predicate value %d out of domain", p.Value)
			}
		}
	}
}

func TestGeneratorCoversAllTypes(t *testing.T) {
	node := []lattice.Attr{"partkey", "suppkey", "custkey"}
	g := NewGenerator(1, testDomains)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		q := g.ForNode(node)
		mask := 0
		for bit, a := range node {
			if _, ok := q.FixedValue(a); ok {
				mask |= 1 << bit
			}
		}
		seen[mask] = true
	}
	// All 7 non-empty subsets should appear in 500 draws.
	if len(seen) != 7 {
		t.Fatalf("saw %d of 7 query types", len(seen))
	}
}

func TestGeneratorNoneNode(t *testing.T) {
	g := NewGenerator(2, testDomains)
	q := g.ForNode(nil)
	if len(q.Fixed) != 0 || len(q.Node) != 0 {
		t.Fatalf("none query = %v", q)
	}
}

func TestQueryTypesCount(t *testing.T) {
	// The paper's 27 types: sum of 2^|node| over the 8 lattice nodes.
	dims := []lattice.Attr{"partkey", "suppkey", "custkey"}
	lat, _ := lattice.New(dims, testDomains)
	total := 0
	for _, node := range lat.Nodes() {
		total += len(QueryTypes(node))
	}
	if total != 27 {
		t.Fatalf("total slice query types = %d, want 27", total)
	}
}

func TestSortAndEqualRows(t *testing.T) {
	rows := []Row{
		{Group: []int64{2, 1}, Sum: 5, Count: 1},
		{Group: []int64{1, 9}, Sum: 3, Count: 1},
		{Group: []int64{1, 2}, Sum: 4, Count: 2},
	}
	SortRows(rows)
	if rows[0].Group[0] != 1 || rows[0].Group[1] != 2 {
		t.Fatalf("sort broken: %+v", rows)
	}
	same := []Row{
		{Group: []int64{1, 2}, Sum: 4, Count: 2},
		{Group: []int64{1, 9}, Sum: 3, Count: 1},
		{Group: []int64{2, 1}, Sum: 5, Count: 1},
	}
	if !EqualRows(rows, same) {
		t.Fatal("EqualRows false negative")
	}
	same[0].Sum = 99
	if EqualRows(rows, same) {
		t.Fatal("EqualRows false positive")
	}
}

func TestRowAvg(t *testing.T) {
	r := Row{Sum: 10, Count: 4}
	if r.Avg() != 2.5 {
		t.Fatalf("Avg = %v", r.Avg())
	}
	if (Row{}).Avg() != 0 {
		t.Fatal("zero-count Avg should be 0")
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator(2)
	a.Add([]int64{1, 2}, 10, 1)
	a.Add([]int64{1, 2}, 5, 2)
	a.Add([]int64{3, 4}, 7, 1)
	rows := a.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Sum != 15 || rows[0].Count != 3 {
		t.Fatalf("group (1,2) = %+v", rows[0])
	}
}

func TestAggregatorMatchesMapQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		a := NewAggregator(1)
		want := map[int64]int64{}
		for _, r := range raw {
			g := int64(r % 7)
			a.Add([]int64{g}, int64(r), 1)
			want[g] += int64(r)
		}
		rows := a.Rows()
		if len(rows) != len(want) {
			return false
		}
		for _, row := range rows {
			if want[row.Group[0]] != row.Sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeValidation(t *testing.T) {
	q := Query{Node: []lattice.Attr{"a", "b"},
		Ranges: []Range{{Attr: "b", Lo: 2, Hi: 5}}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Query{Node: []lattice.Attr{"a"}, Ranges: []Range{{Attr: "z", Lo: 1, Hi: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("range outside node accepted")
	}
	empty := Query{Node: []lattice.Attr{"a"}, Ranges: []Range{{Attr: "a", Lo: 5, Hi: 2}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty range accepted")
	}
	dup := Query{Node: []lattice.Attr{"a"},
		Fixed:  []Pred{{Attr: "a", Value: 1}},
		Ranges: []Range{{Attr: "a", Lo: 1, Hi: 2}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("equality+range on same attr accepted")
	}
}

func TestRangeFor(t *testing.T) {
	q := Query{Node: []lattice.Attr{"a"}, Ranges: []Range{{Attr: "a", Lo: 1, Hi: 9}}}
	r, ok := q.RangeFor("a")
	if !ok || r.Lo != 1 || r.Hi != 9 {
		t.Fatalf("RangeFor = %+v, %v", r, ok)
	}
	if _, ok := q.RangeFor("b"); ok {
		t.Fatal("unknown attr reported ranged")
	}
}

func TestRangeQueryString(t *testing.T) {
	q := Query{Node: []lattice.Attr{"a", "b"},
		Fixed:  []Pred{{Attr: "a", Value: 3}},
		Ranges: []Range{{Attr: "b", Lo: 1, Hi: 5}}}
	want := "Q{a,b | a=3,b in [1,5]}"
	if got := q.String(); got != want {
		t.Fatalf("String = %q", got)
	}
}

func TestForNodeRangesQuick(t *testing.T) {
	g := NewGenerator(9, testDomains)
	node := []lattice.Attr{"partkey", "suppkey", "custkey"}
	f := func(w uint8) bool {
		width := float64(w%100+1) / 100
		q := g.ForNodeRanges(node, width)
		if err := q.Validate(); err != nil {
			return false
		}
		if len(q.Ranges) == 0 {
			return false
		}
		for _, r := range q.Ranges {
			dom := testDomains[r.Attr]
			if r.Lo < 1 || r.Hi > dom || r.Lo > r.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaAggregatorExtras(t *testing.T) {
	schema, err := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	a := NewSchemaAggregator(1, schema)
	a.AddMeasures([]int64{1}, []int64{10, 1, 10, 10})
	a.AddMeasures([]int64{1}, []int64{3, 1, 3, 3})
	rows := a.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Sum != 13 || r.Count != 2 || len(r.Extra) != 2 || r.Extra[0] != 3 || r.Extra[1] != 10 {
		t.Fatalf("row = %+v", r)
	}
}

func TestEqualRowsExtras(t *testing.T) {
	a := []Row{{Group: []int64{1}, Sum: 1, Count: 1, Extra: []int64{5}}}
	b := []Row{{Group: []int64{1}, Sum: 1, Count: 1, Extra: []int64{5}}}
	if !EqualRows(a, b) {
		t.Fatal("equal rows with extras reported different")
	}
	b[0].Extra[0] = 6
	if EqualRows(a, b) {
		t.Fatal("differing extras reported equal")
	}
	b[0].Extra = nil
	if EqualRows(a, b) {
		t.Fatal("missing extras reported equal")
	}
}

func TestBatch(t *testing.T) {
	g := NewGenerator(7, testDomains)
	qs := g.Batch([]lattice.Attr{"partkey"}, 10)
	if len(qs) != 10 {
		t.Fatalf("Batch = %d", len(qs))
	}
	for _, q := range qs {
		if len(q.Fixed) != 1 {
			t.Fatalf("1-attr node query must fix its attribute: %v", q)
		}
	}
}
