package pager

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStatsSnapshotSubAllFields(t *testing.T) {
	a := StatsSnapshot{
		SeqReads: 10, RandReads: 20, SeqWrites: 30, RandWrites: 40,
		PoolHits: 50, PoolMisses: 60,
		ChecksumsVerified: 70, ChecksumFailures: 1, PagesScrubbed: 80, StaleRemoved: 2,
		PoolWaits: 3, PoolWaitNanos: 1000,
	}
	b := StatsSnapshot{
		SeqReads: 1, RandReads: 2, SeqWrites: 3, RandWrites: 4,
		PoolHits: 5, PoolMisses: 6,
		ChecksumsVerified: 7, ChecksumFailures: 1, PagesScrubbed: 8, StaleRemoved: 1,
		PoolWaits: 1, PoolWaitNanos: 400,
	}
	d := a.Sub(b)
	want := StatsSnapshot{
		SeqReads: 9, RandReads: 18, SeqWrites: 27, RandWrites: 36,
		PoolHits: 45, PoolMisses: 54,
		ChecksumsVerified: 63, ChecksumFailures: 0, PagesScrubbed: 72, StaleRemoved: 1,
		PoolWaits: 2, PoolWaitNanos: 600,
	}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if z := a.Sub(a); z != (StatsSnapshot{}) {
		t.Fatalf("a.Sub(a) = %+v, want zero", z)
	}
	if d.PoolWaitTime() != 600*time.Nanosecond {
		t.Fatalf("PoolWaitTime = %v, want 600ns", d.PoolWaitTime())
	}
}

func TestStatsSnapshotPages(t *testing.T) {
	s := StatsSnapshot{SeqReads: 1, RandReads: 2, SeqWrites: 3, RandWrites: 4,
		PoolHits: 100, PoolMisses: 100, PagesScrubbed: 100}
	// Only the four transfer kinds count; pool and scrub counters do not.
	if got := s.Pages(); got != 10 {
		t.Fatalf("Pages = %d, want 10", got)
	}
	if got := (StatsSnapshot{}).Pages(); got != 0 {
		t.Fatalf("empty Pages = %d, want 0", got)
	}
}

func TestCostModelCost(t *testing.T) {
	m := CostModel{
		SeqRead:   1 * time.Millisecond,
		RandRead:  11 * time.Millisecond,
		SeqWrite:  2 * time.Millisecond,
		RandWrite: 12 * time.Millisecond,
	}
	s := StatsSnapshot{SeqReads: 10, RandReads: 3, SeqWrites: 5, RandWrites: 2}
	want := 10*time.Millisecond + 33*time.Millisecond + 10*time.Millisecond + 24*time.Millisecond
	if got := m.Cost(s); got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
	if got := m.Cost(StatsSnapshot{}); got != 0 {
		t.Fatalf("empty Cost = %v, want 0", got)
	}
	// The 1998 model must price a random read an order of magnitude above a
	// sequential one — that asymmetry is the paper's whole argument.
	seq := Disk1998.Cost(StatsSnapshot{SeqReads: 1})
	rand := Disk1998.Cost(StatsSnapshot{RandReads: 1})
	if rand < 10*seq {
		t.Fatalf("Disk1998 random read %v not >= 10x sequential %v", rand, seq)
	}
}

// TestPoolWaitMetrics pins the exhaustion-wait observability: a blocked
// Fetch that is rescued by an Unpin counts one wait with non-zero wait time,
// and a Fetch that times out reports the waited duration in its error.
func TestPoolWaitMetrics(t *testing.T) {
	stats := &Stats{}
	f, err := Create(filepath.Join(t.TempDir(), "t.ct"), stats)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(f, 1)
	defer p.Close()

	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	idA := fr.ID()          // capture now: the Frame object is recycled on eviction
	fr2, err := p.NewPage() // second frame cannot exist: capacity 1
	if err == nil {
		p.Unpin(fr2, false)
		t.Fatal("NewPage succeeded with every frame pinned")
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	if !strings.Contains(err.Error(), "after waiting") {
		t.Fatalf("exhaustion error %q does not report the wait duration", err)
	}
	if stats.PoolWaits() == 0 {
		t.Fatal("timed-out wait not counted in PoolWaits")
	}
	if stats.PoolWaitTime() < 100*time.Millisecond {
		t.Fatalf("PoolWaitTime = %v, want >= 100ms for a timed-out wait", stats.PoolWaitTime())
	}

	// A wait rescued by a concurrent Unpin also counts, and succeeds. The
	// waiter needs a non-resident page, so materialize a second page first
	// (NewPage B evicts A through the single frame), then re-pin A and let
	// the waiter fetch B.
	p.Unpin(fr, true)
	frB, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	idB := frB.ID()
	p.Unpin(frB, true)
	frA, err := p.Fetch(idA)
	if err != nil {
		t.Fatal(err)
	}
	waitsBefore := stats.PoolWaits()
	done := make(chan error, 1)
	go func() {
		fr2, err := p.Fetch(idB)
		if err == nil {
			p.Unpin(fr2, false)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Unpin(frA, false)
	if err := <-done; err != nil {
		t.Fatalf("rescued Fetch failed: %v", err)
	}
	if stats.PoolWaits() != waitsBefore+1 {
		t.Fatalf("PoolWaits = %d, want %d", stats.PoolWaits(), waitsBefore+1)
	}

	snap := stats.Snapshot()
	if snap.PoolWaits != stats.PoolWaits() || snap.PoolWaitNanos == 0 {
		t.Fatalf("snapshot wait fields not populated: %+v", snap)
	}
	stats.Reset()
	if stats.PoolWaits() != 0 || stats.PoolWaitTime() != 0 {
		t.Fatal("Reset did not clear wait counters")
	}
}

func TestPoolInfo(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "t.ct"), &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(f, 8, 2)
	defer p.Close()

	var pinned []*Frame
	for i := 0; i < 4; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, fr)
	}
	p.Unpin(pinned[3], false)

	info := p.Info()
	if info.Capacity != 8 {
		t.Errorf("Capacity = %d, want 8", info.Capacity)
	}
	if len(info.Shards) != 2 {
		t.Fatalf("Shards = %d, want 2", len(info.Shards))
	}
	if info.Frames != 4 || info.Pinned != 3 {
		t.Errorf("Frames/Pinned = %d/%d, want 4/3", info.Frames, info.Pinned)
	}
	var evictable int
	for _, sh := range info.Shards {
		evictable += sh.Evictable
	}
	if evictable != 1 {
		t.Errorf("Evictable = %d, want 1", evictable)
	}
}
