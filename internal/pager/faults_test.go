package pager

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// withInjector installs fi for the duration of fn and always clears it.
func withInjector(t *testing.T, fi *FaultInjector, fn func()) {
	t.Helper()
	SetFaultInjector(fi)
	defer SetFaultInjector(nil)
	fn()
}

// workload performs a small fixed sequence of injectable operations: two
// page writes, a sync, and an atomic catalog write.
func workload(dir string) []error {
	var errs []error
	f, err := Create(filepath.Join(dir, "w.pg"), nil)
	if err != nil {
		return []error{err}
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		id, _ := f.Allocate()
		buf[0] = byte(i)
		errs = append(errs, f.WritePage(id, buf))
	}
	errs = append(errs, f.Sync())
	errs = append(errs, f.Close())
	errs = append(errs, WriteFileAtomic(filepath.Join(dir, "cat.json"), []byte(`{}`), 0o644))
	return errs
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func TestFaultInjectorCountsPoints(t *testing.T) {
	fi := NewFaultInjector(FaultCrash, -1, false)
	withInjector(t, fi, func() {
		if err := firstError(workload(t.TempDir())); err != nil {
			t.Fatal(err)
		}
	})
	// 2 page writes + file sync + atomic write (write, sync, rename, dir
	// sync) = 7 injectable operations.
	if got := fi.Points(); got != 7 {
		t.Fatalf("Points = %d (%v), want 7", got, fi.Ops())
	}
	if fi.Tripped() {
		t.Fatal("counting injector tripped")
	}
}

func TestFaultCrashLatches(t *testing.T) {
	// Crash at every enumerated point; all later operations must fail and
	// exactly one point must trip.
	for k := int64(0); k < 7; k++ {
		fi := NewFaultInjector(FaultCrash, k, false)
		withInjector(t, fi, func() {
			errs := workload(t.TempDir())
			if firstError(errs) == nil {
				t.Fatalf("crash point %d: workload succeeded", k)
			}
			// Once dead, nothing later succeeds (Close of the os file is
			// outside the fault layer and may still return nil).
			var sawCrash bool
			for _, err := range errs {
				if errors.Is(err, ErrCrashed) {
					sawCrash = true
				}
			}
			if !sawCrash {
				t.Fatalf("crash point %d: no ErrCrashed in %v", k, errs)
			}
		})
		if !fi.Tripped() {
			t.Fatalf("crash point %d: never tripped", k)
		}
		if fi.Points() != k+1 {
			t.Fatalf("crash point %d: counted %d ops", k, fi.Points())
		}
	}
}

func TestFaultTransientFailsOnce(t *testing.T) {
	// A transient failure at op 1 (second page write) fails only that
	// operation; the rest of the workload proceeds.
	fi := NewFaultInjector(FaultTransient, 1, false)
	withInjector(t, fi, func() {
		errs := workload(t.TempDir())
		if !errors.Is(errs[1], ErrInjected) {
			t.Fatalf("op 1 error = %v, want ErrInjected", errs[1])
		}
		for i, err := range errs {
			if i != 1 && err != nil {
				t.Fatalf("op %d failed after transient fault: %v", i, err)
			}
		}
	})
	if fi.Points() != 7 {
		t.Fatalf("Points = %d, want 7", fi.Points())
	}
}

func TestFaultTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.pg")
	f, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	id, _ := f.Allocate()
	buf[0] = 0xAB
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Tear the overwrite of page 0: new prefix, stale rest.
	buf[0] = 0xCD
	fi := NewFaultInjector(FaultCrash, 0, true)
	withInjector(t, fi, func() {
		if err := f.WritePage(id, buf); !errors.Is(err, ErrCrashed) {
			t.Fatalf("torn write error = %v, want ErrCrashed", err)
		}
	})
	f.Close()

	g, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := make([]byte, PageSize)
	err = g.ReadPage(0, got)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of torn page = %v, want ErrChecksum", err)
	}
	// The torn prefix really reached disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xCD {
		t.Fatalf("torn prefix byte = %#x, want 0xCD", raw[0])
	}
}

func TestWriteFileAtomicSurvivesRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fail the rename of the second write (op 2: write, sync, rename).
	fi := NewFaultInjector(FaultTransient, 2, false)
	withInjector(t, fi, func() {
		if err := WriteFileAtomic(path, []byte("new"), 0o644); err == nil {
			t.Fatal("atomic write succeeded through failed rename")
		}
	})
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("content after failed swap = %q, want old", got)
	}
	// The temp file was cleaned up in-process.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory entries after failed swap: %v", entries)
	}
}
