package pager

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats accumulates page-level I/O counters. A single Stats value is shared
// by every file belonging to one storage configuration so that experiments
// can report the total I/O work of that configuration.
//
// All methods are safe for concurrent use.
type Stats struct {
	seqReads   atomic.Uint64
	randReads  atomic.Uint64
	seqWrites  atomic.Uint64
	randWrites atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64

	// Durability observability: checksum verification outcomes, offline
	// scrub progress, and recovery-sweep removals.
	checksumOK   atomic.Uint64
	checksumFail atomic.Uint64
	scrubbed     atomic.Uint64
	staleRemoved atomic.Uint64

	// Pool exhaustion waits: how often a Fetch/NewPage found every frame
	// pinned and had to wait for an Unpin, and the total time spent blocked.
	poolWaits     atomic.Uint64
	poolWaitNanos atomic.Uint64
}

func (s *Stats) recordRead(sequential bool) {
	if sequential {
		s.seqReads.Add(1)
	} else {
		s.randReads.Add(1)
	}
}

func (s *Stats) recordWrite(sequential bool) {
	if sequential {
		s.seqWrites.Add(1)
	} else {
		s.randWrites.Add(1)
	}
}

// AddSequentialReads charges n sequential page reads to the stats. It is
// used by components (such as the external sorter) that stream bytes through
// ordinary buffered files rather than the pager.
func (s *Stats) AddSequentialReads(n uint64) { s.seqReads.Add(n) }

// AddSequentialWrites charges n sequential page writes to the stats.
func (s *Stats) AddSequentialWrites(n uint64) { s.seqWrites.Add(n) }

func (s *Stats) recordPool(hit bool) {
	if hit {
		s.poolHits.Add(1)
	} else {
		s.poolMisses.Add(1)
	}
}

func (s *Stats) recordChecksum(ok bool) {
	if ok {
		s.checksumOK.Add(1)
	} else {
		s.checksumFail.Add(1)
	}
}

// AddPagesScrubbed charges n pages verified by an offline scrub (ctcheck).
func (s *Stats) AddPagesScrubbed(n uint64) { s.scrubbed.Add(n) }

// AddStaleRemoved charges n stale generation/scratch directories (or temp
// files) deleted by the recovery sweep on open.
func (s *Stats) AddStaleRemoved(n uint64) { s.staleRemoved.Add(n) }

// ChecksumsVerified returns the number of page checksums that verified
// correctly on read.
func (s *Stats) ChecksumsVerified() uint64 { return s.checksumOK.Load() }

// ChecksumFailures returns the number of page reads whose checksum did not
// match — each one is corruption that would otherwise have been served as
// wrong query results.
func (s *Stats) ChecksumFailures() uint64 { return s.checksumFail.Load() }

// PagesScrubbed returns the number of pages verified by offline scrubs.
func (s *Stats) PagesScrubbed() uint64 { return s.scrubbed.Load() }

// StaleRemoved returns the number of orphan directories and temp files
// deleted by recovery sweeps.
func (s *Stats) StaleRemoved() uint64 { return s.staleRemoved.Load() }

// SeqReads returns the number of sequential page reads.
func (s *Stats) SeqReads() uint64 { return s.seqReads.Load() }

// RandReads returns the number of random page reads.
func (s *Stats) RandReads() uint64 { return s.randReads.Load() }

// SeqWrites returns the number of sequential page writes.
func (s *Stats) SeqWrites() uint64 { return s.seqWrites.Load() }

// RandWrites returns the number of random page writes.
func (s *Stats) RandWrites() uint64 { return s.randWrites.Load() }

// Reads returns the total number of page reads.
func (s *Stats) Reads() uint64 { return s.SeqReads() + s.RandReads() }

// Writes returns the total number of page writes.
func (s *Stats) Writes() uint64 { return s.SeqWrites() + s.RandWrites() }

// PoolHits returns the number of buffer-pool hits.
func (s *Stats) PoolHits() uint64 { return s.poolHits.Load() }

// PoolMisses returns the number of buffer-pool misses.
func (s *Stats) PoolMisses() uint64 { return s.poolMisses.Load() }

// recordPoolWait charges one exhaustion-wait episode of duration d.
func (s *Stats) recordPoolWait(d time.Duration) {
	s.poolWaits.Add(1)
	if d > 0 {
		s.poolWaitNanos.Add(uint64(d))
	}
}

// PoolWaits returns how many Fetch/NewPage calls found every frame pinned
// and had to wait for a concurrent Unpin.
func (s *Stats) PoolWaits() uint64 { return s.poolWaits.Load() }

// PoolWaitTime returns the total time callers spent blocked on pool
// exhaustion.
func (s *Stats) PoolWaitTime() time.Duration { return time.Duration(s.poolWaitNanos.Load()) }

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		SeqReads:          s.SeqReads(),
		RandReads:         s.RandReads(),
		SeqWrites:         s.SeqWrites(),
		RandWrites:        s.RandWrites(),
		PoolHits:          s.PoolHits(),
		PoolMisses:        s.PoolMisses(),
		ChecksumsVerified: s.ChecksumsVerified(),
		ChecksumFailures:  s.ChecksumFailures(),
		PagesScrubbed:     s.PagesScrubbed(),
		StaleRemoved:      s.StaleRemoved(),
		PoolWaits:         s.PoolWaits(),
		PoolWaitNanos:     s.poolWaitNanos.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.seqReads.Store(0)
	s.randReads.Store(0)
	s.seqWrites.Store(0)
	s.randWrites.Store(0)
	s.poolHits.Store(0)
	s.poolMisses.Store(0)
	s.checksumOK.Store(0)
	s.checksumFail.Store(0)
	s.scrubbed.Store(0)
	s.staleRemoved.Store(0)
	s.poolWaits.Store(0)
	s.poolWaitNanos.Store(0)
}

// StatsSnapshot is an immutable copy of Stats counters.
type StatsSnapshot struct {
	SeqReads   uint64
	RandReads  uint64
	SeqWrites  uint64
	RandWrites uint64
	PoolHits   uint64
	PoolMisses uint64

	ChecksumsVerified uint64
	ChecksumFailures  uint64
	PagesScrubbed     uint64
	StaleRemoved      uint64

	PoolWaits     uint64
	PoolWaitNanos uint64
}

// PoolWaitTime returns the snapshot's total pool-exhaustion wait time.
func (s StatsSnapshot) PoolWaitTime() time.Duration { return time.Duration(s.PoolWaitNanos) }

// Sub returns the counter-wise difference s - o, i.e. the I/O performed
// between the two snapshots.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		SeqReads:          s.SeqReads - o.SeqReads,
		RandReads:         s.RandReads - o.RandReads,
		SeqWrites:         s.SeqWrites - o.SeqWrites,
		RandWrites:        s.RandWrites - o.RandWrites,
		PoolHits:          s.PoolHits - o.PoolHits,
		PoolMisses:        s.PoolMisses - o.PoolMisses,
		ChecksumsVerified: s.ChecksumsVerified - o.ChecksumsVerified,
		ChecksumFailures:  s.ChecksumFailures - o.ChecksumFailures,
		PagesScrubbed:     s.PagesScrubbed - o.PagesScrubbed,
		StaleRemoved:      s.StaleRemoved - o.StaleRemoved,
		PoolWaits:         s.PoolWaits - o.PoolWaits,
		PoolWaitNanos:     s.PoolWaitNanos - o.PoolWaitNanos,
	}
}

// Pages returns the total page transfers in the snapshot.
func (s StatsSnapshot) Pages() uint64 {
	return s.SeqReads + s.RandReads + s.SeqWrites + s.RandWrites
}

// String formats the snapshot for experiment reports.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("reads %d (%d seq, %d rand), writes %d (%d seq, %d rand), pool %d/%d hit",
		s.SeqReads+s.RandReads, s.SeqReads, s.RandReads,
		s.SeqWrites+s.RandWrites, s.SeqWrites, s.RandWrites,
		s.PoolHits, s.PoolHits+s.PoolMisses)
}

// CostModel assigns a time cost to each kind of page transfer. It is used to
// translate counted I/O into the service time a given device would need,
// letting experiments reproduce the paper's 1998 disk behaviour on modern
// hardware whose caches would otherwise hide the random/sequential gap.
type CostModel struct {
	// Name identifies the model in reports.
	Name string
	// SeqRead is the cost of one sequential page read.
	SeqRead time.Duration
	// RandRead is the cost of one random page read (seek + rotation + transfer).
	RandRead time.Duration
	// SeqWrite is the cost of one sequential page write.
	SeqWrite time.Duration
	// RandWrite is the cost of one random page write.
	RandWrite time.Duration
}

// Disk1998 approximates the disk of the paper's Ultra Sparc I testbed:
// ~10 ms average positioning time and ~8 MB/s sequential bandwidth, so an
// 8 KiB page costs ~1 ms sequentially and ~11 ms randomly.
var Disk1998 = CostModel{
	Name:      "disk-1998",
	SeqRead:   1 * time.Millisecond,
	RandRead:  11 * time.Millisecond,
	SeqWrite:  1 * time.Millisecond,
	RandWrite: 12 * time.Millisecond,
}

// SSD2020 approximates a commodity NVMe device, for contrast in reports.
var SSD2020 = CostModel{
	Name:      "ssd-2020",
	SeqRead:   4 * time.Microsecond,
	RandRead:  80 * time.Microsecond,
	SeqWrite:  8 * time.Microsecond,
	RandWrite: 100 * time.Microsecond,
}

// Cost returns the modelled service time for the I/O in the snapshot.
func (m CostModel) Cost(s StatsSnapshot) time.Duration {
	return time.Duration(s.SeqReads)*m.SeqRead +
		time.Duration(s.RandReads)*m.RandRead +
		time.Duration(s.SeqWrites)*m.SeqWrite +
		time.Duration(s.RandWrites)*m.RandWrite
}
