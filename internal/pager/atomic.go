package pager

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file and rename, so a
// crash mid-write never leaves a truncated catalog behind. The temporary
// file is fsynced before the rename and the parent directory is fsynced
// after it — without the latter the rename itself may be lost on a crash,
// un-committing a generation switch that was already reported durable. It
// lives here because every storage component that persists a catalog already
// depends on this package.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	name := tmp.Name()
	if err := faultPoint(FaultWrite, name); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := faultPoint(FaultSync, name); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := os.Chmod(name, perm); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := faultPoint(FaultRename, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory so that entry changes inside it (file creation,
// rename, removal) reach stable storage.
func SyncDir(dir string) error {
	if err := faultPoint(FaultSync, dir); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("pager: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("pager: sync dir %s: %w", dir, err)
	}
	return nil
}

// RemoveAll removes a directory tree through the fault-injection layer, so
// crash tests observe interrupted cleanups (a killed process removes
// nothing). Storage components use it for their cleanup paths.
func RemoveAll(path string) error {
	if err := faultPoint(FaultRemove, path); err != nil {
		return err
	}
	return os.RemoveAll(path)
}
