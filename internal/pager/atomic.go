package pager

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file and rename, so a
// crash mid-write never leaves a truncated catalog behind. It lives here
// because every storage component that persists a catalog already depends
// on this package.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := os.Chmod(name, perm); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("pager: atomic write: %w", err)
	}
	return nil
}
