package pager

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestPoolConcurrentReaders hammers one pool from several goroutines; page
// contents must stay intact and pins balanced. Run with -race.
func TestPoolConcurrentReaders(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "c.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := NewPool(f, 8)

	const pages = 32
	for i := 0; i < pages; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.Data()[PayloadSize-1] = byte(i ^ 0x5A) // last usable byte; the trailer follows
		p.Unpin(fr, true)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := PageID((g*31 + i*7) % pages)
				fr, err := p.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if fr.Data()[0] != byte(id) || fr.Data()[PayloadSize-1] != byte(int(id)^0x5A) {
					p.Unpin(fr, false)
					errs <- errCorrupt
					return
				}
				p.Unpin(fr, false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

var errCorrupt = &corruptError{}

type corruptError struct{}

func (*corruptError) Error() string { return "page content corrupted under concurrency" }
