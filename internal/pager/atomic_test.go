package pager

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite replaces atomically.
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2-longer" {
		t.Fatalf("after overwrite: %q", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries", len(entries))
	}
	// Write into a missing directory fails cleanly.
	if err := WriteFileAtomic(filepath.Join(dir, "no", "such", "x"), []byte("z"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
