package pager

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestPoolWaitsForUnpin is the regression test for the bounded exhaustion
// wait: a Fetch that finds every frame pinned must block for a concurrent
// Unpin instead of failing immediately with ErrPoolExhausted.
func TestPoolWaitsForUnpin(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "w.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := NewPool(f, 1)

	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage() // a second page on disk, no free frame for it yet
	if err == nil {
		t.Fatal("capacity-1 pool handed out two frames")
	}
	_ = b

	done := make(chan error, 1)
	go func() {
		// The only frame is pinned by a; this must block until the Unpin
		// below, then succeed.
		fr, err := p.Fetch(1)
		if err == nil {
			p.Unpin(fr, false)
		}
		done <- err
	}()

	time.Sleep(20 * time.Millisecond) // let the fetch reach the wait
	p.Unpin(a, true)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Fetch after concurrent Unpin: %v", err)
		}
	case <-time.After(2 * DefaultExhaustionWait):
		t.Fatal("Fetch did not wake up after Unpin")
	}
}

// TestPoolExhaustedAfterWait verifies the wait is bounded: with no Unpin
// coming, the pool must still fail rather than block forever.
func TestPoolExhaustedAfterWait(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "x.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := NewPool(f, 1)
	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = p.NewPage()
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	if waited := time.Since(start); waited < DefaultExhaustionWait/2 {
		t.Fatalf("failed after %v, want a bounded wait of ~%v first", waited, DefaultExhaustionWait)
	}
	p.Unpin(a, false)
}

// TestPoolShardSteal pins every frame that would normally serve one shard
// and verifies the pool steals an evictable frame from a sibling instead of
// reporting exhaustion.
func TestPoolShardSteal(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "s.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := newPool(f, 4, 2) // two shards, four frames total

	// Fill the pool: pages 0..3 alternate shards (low bit). Keep the two
	// even pages (shard 0) pinned, release the odd ones (shard 1).
	var pinned []*Frame
	for i := 0; i < 4; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		if fr.ID()%2 == 0 {
			pinned = append(pinned, fr)
		} else {
			p.Unpin(fr, true)
		}
	}
	// A new even page lands in shard 0, whose frames are all pinned; the
	// frame must be stolen from shard 1.
	fr, err := p.NewPage()
	if err != nil {
		t.Fatalf("NewPage with evictable sibling frames: %v", err)
	}
	if fr.ID()%2 != 0 {
		t.Fatalf("page %d landed in the wrong shard", fr.ID())
	}
	p.Unpin(fr, true)
	for _, fr := range pinned {
		p.Unpin(fr, true)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Everything written must read back intact (steal write-back included).
	for i := 0; i < 4; i++ {
		fr, err := p.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Fatalf("page %d data = %d, want %d", i, fr.Data()[0], i+1)
		}
		p.Unpin(fr, false)
	}
}

// TestPoolShardedConcurrentReaders hammers a deliberately multi-sharded
// pool from many goroutines; contents must stay intact and the pool-wide
// frame budget respected. Run with -race.
func TestPoolShardedConcurrentReaders(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "c.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := newPool(f, 16, 4)

	const pages = 64
	for i := 0; i < pages; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.Data()[PayloadSize-1] = byte(i ^ 0x5A)
		p.Unpin(fr, true)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				id := PageID((g*31 + i*7) % pages)
				fr, err := p.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if fr.Data()[0] != byte(id) || fr.Data()[PayloadSize-1] != byte(int(id)^0x5A) {
					p.Unpin(fr, false)
					errs <- errCorrupt
					return
				}
				p.Unpin(fr, false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := p.nframes.Load(); n > int64(p.Capacity()) {
		t.Fatalf("pool allocated %d frames, capacity %d", n, p.Capacity())
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestShardCount pins the shard-sizing policy: tiny pools stay single-shard
// (their LRU and counted I/O match the seed's global-LRU pool), larger ones
// shard by a power of two with at least eight frames per shard.
func TestShardCount(t *testing.T) {
	if got := shardCount(1); got != 1 {
		t.Fatalf("shardCount(1) = %d, want 1", got)
	}
	if got := shardCount(8); got != 1 {
		t.Fatalf("shardCount(8) = %d, want 1", got)
	}
	for _, capacity := range []int{16, 64, 128, 256, 1024} {
		n := shardCount(capacity)
		if n < 1 || n&(n-1) != 0 {
			t.Fatalf("shardCount(%d) = %d, want a power of two", capacity, n)
		}
		if n > 1 && capacity/n < 8 {
			t.Fatalf("shardCount(%d) = %d starves shards (%d frames each)", capacity, n, capacity/n)
		}
	}
}

// TestPoolExhaustionWaitConfigurable pins the PR 5 contract the server's
// Retry-After depends on: the wait bound is tunable per pool, and the typed
// ExhaustedError reports how long was actually waited.
func TestPoolExhaustionWaitConfigurable(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "x.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := NewPoolConfig(f, 1, Config{ExhaustionWait: 20 * time.Millisecond})
	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin(a, false)

	start := time.Now()
	_, err = p.NewPage()
	waited := time.Since(start)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Wait < 20*time.Millisecond {
		t.Fatalf("ExhaustedError.Wait = %v, want >= the configured 20ms", ex.Wait)
	}
	if waited >= DefaultExhaustionWait {
		t.Fatalf("waited %v; the configured 20ms bound was ignored for the default %v",
			waited, DefaultExhaustionWait)
	}

	// Retuning a live pool applies to subsequent waits.
	p.SetExhaustionWait(40 * time.Millisecond)
	start = time.Now()
	_, err = p.NewPage()
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("waited only %v after SetExhaustionWait(40ms)", waited)
	}
}
