// Package pager provides fixed-size page storage on top of ordinary files,
// an LRU buffer pool, and I/O accounting that distinguishes sequential from
// random page transfers.
//
// Every on-disk structure in this repository (heap files, B+-trees, packed
// R-trees) is built on this package so that the conventional and the Cubetree
// storage organizations are compared on an identical substrate, as in the
// paper's Informix experiments. The accounting layer exists because the
// paper's 10-1 and 100-1 results are driven by the sequential/random I/O gap
// of 1998 disks; see CostModel.
package pager

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the size in bytes of every page managed by this package.
const PageSize = 8192

// PageID identifies a page within a File. Pages are numbered from zero in
// file order, so consecutively numbered pages are physically adjacent.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage PageID = 0xFFFFFFFF

// ErrPageOutOfRange is returned when a read refers to a page that has not
// been allocated.
var ErrPageOutOfRange = errors.New("pager: page out of range")

// File is a page-addressed file. All methods are safe for concurrent use.
//
// Sequential access detection: a read (write) of page n immediately after a
// read (write) of page n-1 on the same File is counted as sequential;
// everything else is counted as random. This mirrors the behaviour of a
// single disk arm.
type File struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	numPages  uint32
	stats     *Stats
	lastRead  PageID
	lastWrite PageID
}

// Create creates (or truncates) a page file at path. I/O performed on the
// returned File is recorded in stats; a nil stats is replaced with a private
// Stats so callers may always ignore accounting.
func Create(path string, stats *Stats) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	return newFile(f, path, 0, stats), nil
}

// Open opens an existing page file at path. The file size must be a multiple
// of PageSize.
func Open(path string, stats *Stats) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d is not a multiple of page size", path, info.Size())
	}
	return newFile(f, path, uint32(info.Size()/PageSize), stats), nil
}

func newFile(f *os.File, path string, pages uint32, stats *Stats) *File {
	if stats == nil {
		stats = &Stats{}
	}
	return &File{
		f:         f,
		path:      path,
		numPages:  pages,
		stats:     stats,
		lastRead:  InvalidPage,
		lastWrite: InvalidPage,
	}
}

// Path returns the file system path of the page file.
func (f *File) Path() string { return f.path }

// Stats returns the accounting sink attached to the file.
func (f *File) Stats() *Stats { return f.stats }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.numPages
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(f.NumPages()) * PageSize }

// Allocate appends a fresh zeroed page and returns its id. The page contents
// on disk are undefined until the first WritePage; callers always write a
// full page before reading it back.
func (f *File) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := PageID(f.numPages)
	f.numPages++
	return id, nil
}

// ReadPage reads page id into buf, which must be at least PageSize bytes.
func (f *File) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pager: read buffer too small (%d bytes)", len(buf))
	}
	f.mu.Lock()
	if uint32(id) >= f.numPages {
		f.mu.Unlock()
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	seq := f.lastRead != InvalidPage && id == f.lastRead+1
	f.lastRead = id
	f.mu.Unlock()

	n, err := f.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil && n != PageSize {
		// A short read at the tail is possible when the page was allocated
		// but never written; treat it as a zero page.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	f.stats.recordRead(seq)
	return nil
}

// WritePage writes buf (at least PageSize bytes) to page id. The page must
// have been allocated.
func (f *File) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pager: write buffer too small (%d bytes)", len(buf))
	}
	f.mu.Lock()
	if uint32(id) >= f.numPages {
		f.mu.Unlock()
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	seq := f.lastWrite != InvalidPage && id == f.lastWrite+1
	f.lastWrite = id
	f.mu.Unlock()

	if _, err := f.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	f.stats.recordWrite(seq)
	return nil
}

// Sync flushes file contents to stable storage.
func (f *File) Sync() error { return f.f.Sync() }

// Close closes the underlying file.
func (f *File) Close() error { return f.f.Close() }
