// Package pager provides fixed-size page storage on top of ordinary files,
// an LRU buffer pool, and I/O accounting that distinguishes sequential from
// random page transfers.
//
// Every on-disk structure in this repository (heap files, B+-trees, packed
// R-trees) is built on this package so that the conventional and the Cubetree
// storage organizations are compared on an identical substrate, as in the
// paper's Informix experiments. The accounting layer exists because the
// paper's 10-1 and 100-1 results are driven by the sequential/random I/O gap
// of 1998 disks; see CostModel.
//
// Durability: files created by this package reserve the last TrailerSize
// bytes of every page for a CRC32-C checksum stamped on write and verified
// on read, so a torn write or flipped bit surfaces as ErrChecksum instead of
// being served as wrong data. Files written before the trailer existed are
// detected on Open (their page 0 lacks the trailer magic) and are read
// without verification; see File.PayloadSize.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// PageSize is the size in bytes of every page managed by this package.
const PageSize = 8192

// TrailerSize is the number of bytes reserved at the end of every page of a
// checksummed file: a CRC32-C over the payload followed by a format magic.
const TrailerSize = 8

// PayloadSize is the number of page bytes usable by callers on checksummed
// files. Callers must size their page layouts with File.PayloadSize, which
// returns the full PageSize for legacy (pre-checksum) files.
const PayloadSize = PageSize - TrailerSize

// trailerMagic marks a page trailer written by the checksumming pager
// ("CKS1" little-endian). It doubles as the format version: a future layout
// change bumps the final byte.
const trailerMagic = 0x31534B43

// ErrChecksum is returned when a page's stored CRC32-C does not match its
// contents, indicating a torn write or on-disk corruption.
var ErrChecksum = errors.New("pager: page checksum mismatch")

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PageID identifies a page within a File. Pages are numbered from zero in
// file order, so consecutively numbered pages are physically adjacent.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage PageID = 0xFFFFFFFF

// ErrPageOutOfRange is returned when a read refers to a page that has not
// been allocated.
var ErrPageOutOfRange = errors.New("pager: page out of range")

// File is a page-addressed file. All methods are safe for concurrent use.
//
// Sequential access detection: a read (write) of page n immediately after a
// read (write) of page n-1 on the same File is counted as sequential;
// everything else is counted as random. This mirrors the behaviour of a
// single disk arm.
type File struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	numPages  uint32
	stats     *Stats
	lastRead  PageID
	lastWrite PageID

	// checksummed is fixed at Create/Open: new files carry a CRC32-C
	// trailer on every page; legacy files are read and written verbatim.
	checksummed bool
}

// Create creates (or truncates) a page file at path. I/O performed on the
// returned File is recorded in stats; a nil stats is replaced with a private
// Stats so callers may always ignore accounting. Files are always created in
// the checksummed format.
func Create(path string, stats *Stats) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	return newFile(f, path, 0, stats, true), nil
}

// Open opens an existing page file at path. The file size must be a multiple
// of PageSize. The format is detected from page 0's trailer: files written by
// a pre-checksum version of this package lack the trailer magic and are
// served without verification (and with the full PageSize as payload).
func Open(path string, stats *Stats) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d is not a multiple of page size", path, info.Size())
	}
	checksummed := true
	if info.Size() >= PageSize {
		var trailer [TrailerSize]byte
		if _, err := f.ReadAt(trailer[:], PayloadSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("pager: probe %s: %w", path, err)
		}
		checksummed = binary.LittleEndian.Uint32(trailer[4:]) == trailerMagic
	}
	return newFile(f, path, uint32(info.Size()/PageSize), stats, checksummed), nil
}

func newFile(f *os.File, path string, pages uint32, stats *Stats, checksummed bool) *File {
	if stats == nil {
		stats = &Stats{}
	}
	return &File{
		f:           f,
		path:        path,
		numPages:    pages,
		stats:       stats,
		lastRead:    InvalidPage,
		lastWrite:   InvalidPage,
		checksummed: checksummed,
	}
}

// Checksummed reports whether the file carries per-page CRC32-C trailers.
func (f *File) Checksummed() bool { return f.checksummed }

// PayloadSize returns the number of bytes of each page available to callers:
// PayloadSize for checksummed files, the full PageSize for legacy files.
// Page layouts (node capacities, tuples per page) must be computed from this
// so the two formats stay mutually readable.
func (f *File) PayloadSize() int {
	if f.checksummed {
		return PayloadSize
	}
	return PageSize
}

// Path returns the file system path of the page file.
func (f *File) Path() string { return f.path }

// Stats returns the accounting sink attached to the file.
func (f *File) Stats() *Stats { return f.stats }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.numPages
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(f.NumPages()) * PageSize }

// Allocate appends a fresh zeroed page and returns its id. The page contents
// on disk are undefined until the first WritePage; callers always write a
// full page before reading it back.
func (f *File) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := PageID(f.numPages)
	f.numPages++
	return id, nil
}

// ReadPage reads page id into buf, which must be at least PageSize bytes.
// On checksummed files the page's CRC32-C trailer is verified and a mismatch
// is returned as an error wrapping ErrChecksum.
func (f *File) ReadPage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pager: read buffer too small (%d bytes)", len(buf))
	}
	if err := faultRead(); err != nil {
		return err
	}
	f.mu.Lock()
	if uint32(id) >= f.numPages {
		f.mu.Unlock()
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	seq := f.lastRead != InvalidPage && id == f.lastRead+1
	f.lastRead = id
	f.mu.Unlock()

	n, err := f.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil && n != PageSize {
		// A short read at the tail is possible when the page was allocated
		// but never written; treat it as a zero page.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	f.stats.recordRead(seq)
	if f.checksummed {
		if err := verifyPage(buf); err != nil {
			f.stats.recordChecksum(false)
			return fmt.Errorf("pager: %s page %d: %w", f.path, id, err)
		}
		f.stats.recordChecksum(true)
	}
	return nil
}

// verifyPage checks a checksummed page's trailer. An all-zero page (trailer
// included) is accepted: it is a page that was allocated but never written.
func verifyPage(buf []byte) error {
	stored := binary.LittleEndian.Uint32(buf[PayloadSize:])
	magic := binary.LittleEndian.Uint32(buf[PayloadSize+4:])
	if magic != trailerMagic {
		if magic == 0 && stored == 0 && allZero(buf[:PayloadSize]) {
			return nil
		}
		return fmt.Errorf("%w (missing trailer)", ErrChecksum)
	}
	if crc32.Checksum(buf[:PayloadSize], crcTable) != stored {
		return ErrChecksum
	}
	return nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// WritePage writes buf (at least PageSize bytes) to page id. The page must
// have been allocated. On checksummed files the trailer bytes
// buf[PayloadSize:PageSize] are overwritten in place with the payload's
// CRC32-C, so the in-memory copy always matches what reached disk.
func (f *File) WritePage(id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("pager: write buffer too small (%d bytes)", len(buf))
	}
	f.mu.Lock()
	if uint32(id) >= f.numPages {
		f.mu.Unlock()
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, f.numPages)
	}
	seq := f.lastWrite != InvalidPage && id == f.lastWrite+1
	f.lastWrite = id
	f.mu.Unlock()

	if f.checksummed {
		binary.LittleEndian.PutUint32(buf[PayloadSize:], crc32.Checksum(buf[:PayloadSize], crcTable))
		binary.LittleEndian.PutUint32(buf[PayloadSize+4:], trailerMagic)
	}
	if err := faultPageWrite(f.f, int64(id)*PageSize, buf[:PageSize]); err != nil {
		return err
	}
	if _, err := f.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	f.stats.recordWrite(seq)
	return nil
}

// Sync flushes file contents to stable storage.
func (f *File) Sync() error {
	if err := faultPoint(FaultSync, f.path); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close closes the underlying file.
func (f *File) Close() error { return f.f.Close() }
