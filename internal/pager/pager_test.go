package pager

import (
	"path/filepath"
	"testing"
	"time"
)

func newTestFile(t *testing.T, stats *Stats) *File {
	t.Helper()
	f, err := Create(filepath.Join(t.TempDir(), "test.pg"), stats)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFileAllocateReadWrite(t *testing.T) {
	f := newTestFile(t, nil)
	if f.NumPages() != 0 {
		t.Fatalf("new file has %d pages", f.NumPages())
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if id != 0 {
		t.Fatalf("first page id = %d, want 0", id)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := f.WritePage(id, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(id, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := range got {
		if got[i] != buf[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], buf[i])
		}
	}
}

func TestFileReadOutOfRange(t *testing.T) {
	f := newTestFile(t, nil)
	buf := make([]byte, PageSize)
	if err := f.ReadPage(3, buf); err == nil {
		t.Fatal("expected error reading unallocated page")
	}
}

func TestFileUnwrittenPageReadsZero(t *testing.T) {
	f := newTestFile(t, nil)
	id, _ := f.Allocate()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := range buf {
		if buf[i] != 0 {
			t.Fatalf("unwritten page byte %d = %d, want 0", i, buf[i])
		}
	}
}

func TestSequentialDetection(t *testing.T) {
	stats := &Stats{}
	f := newTestFile(t, stats)
	buf := make([]byte, PageSize)
	for i := 0; i < 10; i++ {
		id, _ := f.Allocate()
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// First write random, the other nine sequential.
	if got := stats.SeqWrites(); got != 9 {
		t.Errorf("SeqWrites = %d, want 9", got)
	}
	if got := stats.RandWrites(); got != 1 {
		t.Errorf("RandWrites = %d, want 1", got)
	}
	// Sequential read pass.
	for i := 0; i < 10; i++ {
		f.ReadPage(PageID(i), buf)
	}
	if got := stats.SeqReads(); got != 9 {
		t.Errorf("SeqReads = %d, want 9", got)
	}
	// A backwards read is random.
	f.ReadPage(0, buf)
	if got := stats.RandReads(); got != 2 {
		t.Errorf("RandReads = %d, want 2", got)
	}
}

func TestOpenExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pg")
	f, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	buf[17] = 42
	for i := 0; i < 3; i++ {
		id, _ := f.Allocate()
		f.WritePage(id, buf)
	}
	f.Close()

	g, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", g.NumPages())
	}
	got := make([]byte, PageSize)
	if err := g.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if got[17] != 42 {
		t.Fatalf("byte 17 = %d, want 42", got[17])
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	s := &Stats{}
	s.AddSequentialReads(5)
	a := s.Snapshot()
	s.AddSequentialReads(3)
	s.AddSequentialWrites(2)
	d := s.Snapshot().Sub(a)
	if d.SeqReads != 3 || d.SeqWrites != 2 {
		t.Fatalf("diff = %+v", d)
	}
	if d.Pages() != 5 {
		t.Fatalf("Pages = %d, want 5", d.Pages())
	}
}

func TestCostModel(t *testing.T) {
	snap := StatsSnapshot{SeqReads: 10, RandReads: 2, SeqWrites: 5, RandWrites: 1}
	m := CostModel{SeqRead: time.Millisecond, RandRead: 10 * time.Millisecond,
		SeqWrite: 2 * time.Millisecond, RandWrite: 20 * time.Millisecond}
	want := 10*time.Millisecond + 20*time.Millisecond + 10*time.Millisecond + 20*time.Millisecond
	if got := m.Cost(snap); got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestPoolFetchHitMiss(t *testing.T) {
	stats := &Stats{}
	f := newTestFile(t, stats)
	p := NewPool(f, 4)
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 99
	p.Unpin(fr, true)

	fr2, err := p.Fetch(fr.ID())
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data()[0] != 99 {
		t.Fatalf("data lost on pooled fetch")
	}
	p.Unpin(fr2, false)
	if stats.PoolHits() != 1 {
		t.Fatalf("PoolHits = %d, want 1", stats.PoolHits())
	}
}

func TestPoolEvictionWritesBack(t *testing.T) {
	f := newTestFile(t, nil)
	p := NewPool(f, 2)
	// Create three pages through a pool of two frames; the first must be
	// evicted and written back.
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		ids = append(ids, fr.ID())
		p.Unpin(fr, true)
	}
	for i, id := range ids {
		fr, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Fatalf("page %d data = %d, want %d", id, fr.Data()[0], i+1)
		}
		p.Unpin(fr, false)
	}
}

func TestPoolExhausted(t *testing.T) {
	f := newTestFile(t, nil)
	p := NewPool(f, 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	if _, err := p.NewPage(); err == nil {
		t.Fatal("expected pool exhaustion with all frames pinned")
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
	if _, err := p.NewPage(); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
}

func TestPoolFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "y.pg")
	f, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(f, 8)
	fr, _ := p.NewPage()
	fr.Data()[100] = 7
	p.Unpin(fr, true)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, PageSize)
	if err := g.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[100] != 7 {
		t.Fatal("dirty page not flushed on Close")
	}
}

func TestPoolRepin(t *testing.T) {
	f := newTestFile(t, nil)
	p := NewPool(f, 2)
	fr, _ := p.NewPage()
	fr2, err := p.Fetch(fr.ID())
	if err != nil {
		t.Fatal(err)
	}
	if fr2 != fr {
		t.Fatal("re-fetch returned a different frame")
	}
	p.Unpin(fr, true)
	p.Unpin(fr2, false)
	// Frame is now unpinned once fully released; pool can evict it.
	b, _ := p.NewPage()
	c, _ := p.NewPage()
	p.Unpin(b, false)
	p.Unpin(c, false)
}
