package pager

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writePages creates a checksummed file with n pages whose first byte is the
// page number, and returns its path.
func writePages(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.pg")
	f, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, _ := f.Allocate()
		buf[0] = byte(i)
		buf[PayloadSize-1] = byte(i ^ 0x7F)
		if err := f.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestChecksumRoundTrip(t *testing.T) {
	path := writePages(t, 4)
	stats := &Stats{}
	f, err := Open(path, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Checksummed() {
		t.Fatal("created file not detected as checksummed")
	}
	if f.PayloadSize() != PayloadSize {
		t.Fatalf("PayloadSize = %d, want %d", f.PayloadSize(), PayloadSize)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		if err := f.ReadPage(PageID(i), buf); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[PayloadSize-1] != byte(i^0x7F) {
			t.Fatalf("page %d content mangled", i)
		}
	}
	if stats.ChecksumsVerified() != 4 || stats.ChecksumFailures() != 0 {
		t.Fatalf("checksum counters = %d ok / %d fail",
			stats.ChecksumsVerified(), stats.ChecksumFailures())
	}
}

func TestChecksumDetectsPayloadCorruption(t *testing.T) {
	path := writePages(t, 4)
	// Flip one byte in the middle of page 2's payload.
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(2)*PageSize + 4000
	var b [1]byte
	if _, err := fh.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := fh.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	stats := &Stats{}
	f, err := Open(path, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, PageSize)
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatalf("intact page rejected: %v", err)
	}
	if err := f.ReadPage(2, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt page read error = %v, want ErrChecksum", err)
	}
	if stats.ChecksumFailures() != 1 {
		t.Fatalf("ChecksumFailures = %d, want 1", stats.ChecksumFailures())
	}
}

func TestChecksumDetectsTrailerCorruption(t *testing.T) {
	path := writePages(t, 2)
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Smash page 1's stored CRC.
	if _, err := fh.WriteAt([]byte{0xAA, 0xBB}, int64(1)*PageSize+PayloadSize); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	f, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, PageSize)
	if err := f.ReadPage(1, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read error = %v, want ErrChecksum", err)
	}
}

func TestChecksumDetectsTornWrite(t *testing.T) {
	path := writePages(t, 3)
	// Simulate a torn write: page 1 gets a fresh 512-byte prefix while the
	// rest of the page (and its trailer) is stale.
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 512)
	for i := range torn {
		torn[i] = 0xC3
	}
	if _, err := fh.WriteAt(torn, int64(1)*PageSize); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	f, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, PageSize)
	if err := f.ReadPage(1, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("torn page read error = %v, want ErrChecksum", err)
	}
}

func TestChecksumAcceptsNeverWrittenPage(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "z.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	id, _ := f.Allocate()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatalf("never-written page rejected: %v", err)
	}
	if !allZero(buf) {
		t.Fatal("never-written page not zeroed")
	}
}

func TestLegacyFileReadsWithoutVerification(t *testing.T) {
	// A file written before the checksum trailer existed: arbitrary bytes,
	// no trailer magic. It must open as legacy, expose the full page as
	// payload, and read back verbatim.
	path := filepath.Join(t.TempDir(), "legacy.pg")
	raw := make([]byte, 2*PageSize)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	// Ensure the probe location cannot accidentally match the magic.
	raw[PayloadSize+4] = 0
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	f, err := Open(path, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Checksummed() {
		t.Fatal("legacy file detected as checksummed")
	}
	if f.PayloadSize() != PageSize {
		t.Fatalf("legacy PayloadSize = %d, want %d", f.PayloadSize(), PageSize)
	}
	buf := make([]byte, PageSize)
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != raw[PageSize+i] {
			t.Fatalf("legacy byte %d = %d, want %d", i, buf[i], raw[PageSize+i])
		}
	}
	if stats.ChecksumsVerified() != 0 {
		t.Fatal("legacy reads must not verify checksums")
	}
	// Writes to a legacy file stay legacy: full page round-trips untouched.
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = 0xEE
	}
	if err := f.WritePage(0, page); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[PageSize-1] != 0xEE {
		t.Fatal("legacy write mangled the trailer region")
	}
}
