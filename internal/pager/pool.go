package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrPoolExhausted is returned when every frame in the pool is pinned and a
// new page is requested.
var ErrPoolExhausted = errors.New("pager: buffer pool exhausted (all frames pinned)")

// Frame is a pinned in-memory copy of one page. Callers read and modify
// Data and must Unpin the frame when done, declaring whether they dirtied it.
type Frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// ID returns the page id held by the frame.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the page bytes (length PageSize). The slice is valid only
// while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.data }

// Pool is an LRU buffer pool over one File. The pool is the only component
// that issues page reads and writes for its file, so buffer hits cost no
// counted I/O — reproducing the paper's observation that fewer, smaller trees
// raise the buffer hit ratio.
//
// All methods are safe for concurrent use, but a single Frame must not be
// used from multiple goroutines simultaneously.
type Pool struct {
	mu       sync.Mutex
	file     *File
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; unpinned frames only
}

// NewPool creates a buffer pool of the given capacity (in pages) over file.
// Capacity must be at least 1.
func NewPool(file *File, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// File returns the underlying page file.
func (p *Pool) File() *File { return p.file }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Fetch pins page id into the pool, reading it from disk on a miss.
func (p *Pool) Fetch(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if fr, ok := p.frames[id]; ok {
		p.file.stats.recordPool(true)
		p.pinLocked(fr)
		return fr, nil
	}
	p.file.stats.recordPool(false)
	fr, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := p.file.ReadPage(id, fr.data); err != nil {
		p.recycleLocked(fr)
		return nil, err
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	p.frames[id] = fr
	return fr, nil
}

// NewPage allocates a fresh page in the file and returns it pinned and
// zeroed. The frame is marked dirty so it will reach disk.
func (p *Pool) NewPage() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	id, err := p.file.Allocate()
	if err != nil {
		return nil, err
	}
	fr, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = true
	p.frames[id] = fr
	return fr, nil
}

// Unpin releases one pin on fr. If dirty is true the frame is marked for
// write-back before eviction.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of unpinned page %d", fr.id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.elem = p.lru.PushFront(fr)
	}
}

// Flush writes every dirty frame back to disk. Pinned frames are flushed
// too but stay resident.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Write in ascending page order to give the disk sequential runs, as a
	// real database's background writer would.
	ids := make([]PageID, 0, len(p.frames))
	for id := range p.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fr := p.frames[id]
		if !fr.dirty {
			continue
		}
		if err := p.file.WritePage(fr.id, fr.data); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// Close flushes the pool and closes the underlying file.
func (p *Pool) Close() error {
	if err := p.Flush(); err != nil {
		p.file.Close()
		return err
	}
	return p.file.Close()
}

func (p *Pool) pinLocked(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		p.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// freeFrameLocked returns an unused frame, evicting the least recently used
// unpinned page if the pool is full.
func (p *Pool) freeFrameLocked() (*Frame, error) {
	if len(p.frames) < p.capacity {
		return &Frame{data: make([]byte, PageSize)}, nil
	}
	elem := p.lru.Back()
	if elem == nil {
		return nil, ErrPoolExhausted
	}
	fr := elem.Value.(*Frame)
	p.lru.Remove(elem)
	fr.elem = nil
	delete(p.frames, fr.id)
	if fr.dirty {
		if err := p.file.WritePage(fr.id, fr.data); err != nil {
			return nil, err
		}
		fr.dirty = false
	}
	return fr, nil
}

// recycleLocked drops a frame obtained from freeFrameLocked that ended up
// unused (e.g. its read failed); the map never knew about it.
func (p *Pool) recycleLocked(fr *Frame) {}
