package pager

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPoolExhausted is returned when every frame in the pool is pinned and a
// new page is requested. The pool first waits up to Config.ExhaustionWait
// for a concurrent Unpin before giving up. The error returned from
// Fetch/NewPage is an *ExhaustedError wrapping this sentinel, so callers
// match with errors.Is and recover the wait bound with errors.As.
var ErrPoolExhausted = errors.New("pager: buffer pool exhausted (all frames pinned)")

// ExhaustedError reports a failed frame allocation after the bounded
// exhaustion wait expired. Wait is how long the caller was held before the
// pool gave up — an admission layer can turn it into an honest Retry-After,
// since a client retrying sooner than one full wait bound will most likely
// hit the same pinned pool.
type ExhaustedError struct {
	// Wait is the duration the allocation waited before failing.
	Wait time.Duration
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("%v after waiting %v", ErrPoolExhausted, e.Wait.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrPoolExhausted) hold.
func (e *ExhaustedError) Unwrap() error { return ErrPoolExhausted }

// DefaultExhaustionWait is the exhaustion wait bound used when
// Config.ExhaustionWait is zero. A transiently full pool (another goroutine
// about to unpin) should not fail the caller; a genuinely wedged one must
// not block it forever.
const DefaultExhaustionWait = 200 * time.Millisecond

// Config tunes a Pool beyond its capacity.
type Config struct {
	// ExhaustionWait bounds how long Fetch/NewPage waits for a concurrent
	// Unpin when every frame is pinned before failing with an
	// *ExhaustedError (default DefaultExhaustionWait). A server sizes this
	// against its latency budget: shorter sheds load faster, longer rides
	// out pin spikes.
	ExhaustionWait time.Duration
}

// exhaustedPoll caps one wait slice so the waiter re-attempts allocation
// periodically even if it raced with the unpin notification.
const exhaustedPoll = 10 * time.Millisecond

// Frame is a pinned in-memory copy of one page. Callers read and modify
// Data and must Unpin the frame when done, declaring whether they dirtied it.
type Frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// ID returns the page id held by the frame.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the page bytes (length PageSize). The slice is valid only
// while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.data }

// poolShard is one independently locked slice of the pool: its own frame
// map and LRU list. Pages map to shards by their low PageID bits, so a
// sequential scan round-robins across shards and shard-local LRU
// approximates global LRU.
type poolShard struct {
	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // front = most recently used; unpinned frames only
}

// Pool is an LRU buffer pool over one File. The pool is the only component
// that issues page reads and writes for its file, so buffer hits cost no
// counted I/O — reproducing the paper's observation that fewer, smaller trees
// raise the buffer hit ratio.
//
// The pool is sharded: frames are partitioned by PageID across power-of-two
// shards, each with its own mutex, map, and LRU list, so concurrent queries
// pin and unpin pages without funnelling through one lock. Capacity is a
// pool-wide budget (a shared atomic count of allocated frames), not a
// per-shard quota: a hot shard grows at the expense of cold ones, and a
// shard whose frames are all pinned steals an evictable frame from a
// sibling before reporting exhaustion.
//
// All methods are safe for concurrent use, but a single Frame must not be
// used from multiple goroutines simultaneously.
type Pool struct {
	file     *File
	capacity int
	shards   []poolShard
	mask     uint32

	// access, when set, observes every Fetch for page-level attribution
	// (e.g. charging leaf-run reads to the view that owns the run). The
	// default-nil pointer keeps the uninstrumented path at one atomic load.
	access atomic.Pointer[accessBox]

	// nframes counts frames allocated across all shards; it never exceeds
	// capacity.
	nframes atomic.Int64

	// exhaustionWait is the configured wait bound in nanoseconds (0 means
	// DefaultExhaustionWait). Atomic so SetExhaustionWait may retune a live
	// pool without racing in-flight fetches.
	exhaustionWait atomic.Int64

	// Exhaustion waiters: Unpin rotates unpinCh (close + replace) when a
	// frame becomes evictable and someone is waiting for one.
	waiters atomic.Int32
	waitMu  sync.Mutex
	unpinCh chan struct{}
}

// NewPool creates a buffer pool of the given capacity (in pages) over file
// with default tuning. Capacity must be at least 1.
func NewPool(file *File, capacity int) *Pool {
	return NewPoolConfig(file, capacity, Config{})
}

// NewPoolConfig creates a buffer pool with explicit tuning.
func NewPoolConfig(file *File, capacity int, cfg Config) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	p := newPool(file, capacity, shardCount(capacity))
	p.SetExhaustionWait(cfg.ExhaustionWait)
	return p
}

// SetExhaustionWait retunes the exhaustion wait bound on a live pool; d <= 0
// restores DefaultExhaustionWait. Safe to call concurrently with Fetch;
// in-flight waiters keep the bound they armed with.
func (p *Pool) SetExhaustionWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.exhaustionWait.Store(int64(d))
}

// exhaustedWait returns the effective wait bound.
func (p *Pool) exhaustedWait() time.Duration {
	if d := p.exhaustionWait.Load(); d > 0 {
		return time.Duration(d)
	}
	return DefaultExhaustionWait
}

// newPool builds a pool with an explicit power-of-two shard count (tests
// exercise multi-shard behaviour regardless of GOMAXPROCS through this).
func newPool(file *File, capacity, n int) *Pool {
	p := &Pool{
		file:     file,
		capacity: capacity,
		shards:   make([]poolShard, n),
		mask:     uint32(n - 1),
		unpinCh:  make(chan struct{}),
	}
	for i := range p.shards {
		p.shards[i].frames = make(map[PageID]*Frame)
		p.shards[i].lru = list.New()
	}
	return p
}

// shardCount picks a power-of-two shard count: enough for the machine's
// parallelism, but never so many that shards get starved of frames — tiny
// experiment pools (the paper's 3%-of-data setting) stay single-shard so
// their LRU behaviour and counted I/O match a global-LRU pool.
func shardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	for n > 1 && capacity/n < 8 {
		n >>= 1
	}
	return n
}

// AccessObserver receives one callback per Fetch with the page id and
// whether it was served from the pool (hit) or read from disk (miss).
// Implementations must be safe for concurrent use and must not touch the
// pool (the callback runs on the Fetch path, outside the shard locks).
type AccessObserver interface {
	PageAccess(id PageID, hit bool)
}

// accessBox wraps the interface so the pool can swap it with one atomic
// pointer store.
type accessBox struct{ ob AccessObserver }

// SetAccessObserver installs (or, with nil, removes) the pool's page-access
// observer. Safe to call concurrently with Fetch; in-flight fetches may
// report to either the old or the new observer.
func (p *Pool) SetAccessObserver(ob AccessObserver) {
	if ob == nil {
		p.access.Store(nil)
		return
	}
	p.access.Store(&accessBox{ob: ob})
}

// File returns the underlying page file.
func (p *Pool) File() *File { return p.file }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Shards returns the number of independently locked pool shards.
func (p *Pool) Shards() int { return len(p.shards) }

func (p *Pool) shardIndex(id PageID) int { return int(uint32(id) & p.mask) }

// Fetch pins page id into the pool, reading it from disk on a miss.
func (p *Pool) Fetch(id PageID) (*Frame, error) {
	shIdx := p.shardIndex(id)
	sh := &p.shards[shIdx]
	var deadline time.Time
	for {
		sh.mu.Lock()
		if fr, ok := sh.frames[id]; ok {
			p.file.stats.recordPool(true)
			sh.pinLocked(fr)
			sh.mu.Unlock()
			if box := p.access.Load(); box != nil {
				box.ob.PageAccess(id, true)
			}
			return fr, nil
		}
		fr, err := p.frameFor(shIdx)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		if fr != nil {
			p.file.stats.recordPool(false)
			if err := p.file.ReadPage(id, fr.data); err != nil {
				p.nframes.Add(-1) // drop the unused frame
				sh.mu.Unlock()
				return nil, err
			}
			fr.id = id
			fr.pins = 1
			fr.dirty = false
			sh.frames[id] = fr
			sh.mu.Unlock()
			if box := p.access.Load(); box != nil {
				box.ob.PageAccess(id, false)
			}
			return fr, nil
		}
		sh.mu.Unlock()
		if err := p.waitUnpinned(&deadline); err != nil {
			return nil, err
		}
	}
}

// NewPage allocates a fresh page in the file and returns it pinned and
// zeroed. The frame is marked dirty so it will reach disk.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.file.Allocate()
	if err != nil {
		return nil, err
	}
	shIdx := p.shardIndex(id)
	sh := &p.shards[shIdx]
	var deadline time.Time
	for {
		sh.mu.Lock()
		fr, err := p.frameFor(shIdx)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		if fr != nil {
			clear(fr.data)
			fr.id = id
			fr.pins = 1
			fr.dirty = true
			sh.frames[id] = fr
			sh.mu.Unlock()
			return fr, nil
		}
		sh.mu.Unlock()
		if err := p.waitUnpinned(&deadline); err != nil {
			return nil, err
		}
	}
}

// Unpin releases one pin on fr. If dirty is true the frame is marked for
// write-back before eviction.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	sh := &p.shards[p.shardIndex(fr.id)]
	sh.mu.Lock()
	if fr.pins <= 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("pager: unpin of unpinned page %d", fr.id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	evictable := fr.pins == 0
	if evictable {
		fr.elem = sh.lru.PushFront(fr)
	}
	sh.mu.Unlock()
	if evictable && p.waiters.Load() > 0 {
		p.waitMu.Lock()
		close(p.unpinCh)
		p.unpinCh = make(chan struct{})
		p.waitMu.Unlock()
	}
}

// waitUnpinned blocks until a frame is unpinned somewhere in the pool (or a
// short poll interval elapses, covering a notification race) and reports
// ErrPoolExhausted once the bounded wait expires. The first call arms the
// deadline and counts one wait episode; the time spent blocked is charged to
// Stats.PoolWaitTime so exhaustion stalls are visible in metrics, not just
// in tail latency.
func (p *Pool) waitUnpinned(deadline *time.Time) error {
	now := time.Now()
	bound := p.exhaustedWait()
	if deadline.IsZero() {
		*deadline = now.Add(bound)
		p.file.stats.recordPoolWait(0)
	} else if now.After(*deadline) {
		return &ExhaustedError{Wait: now.Sub(deadline.Add(-bound))}
	}
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	p.waitMu.Lock()
	ch := p.unpinCh
	p.waitMu.Unlock()
	wait := time.Until(*deadline)
	if wait > exhaustedPoll {
		wait = exhaustedPoll
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	}
	p.file.stats.poolWaitNanos.Add(uint64(time.Since(now)))
	return nil
}

// Flush writes every dirty frame back to disk. Pinned frames are flushed
// too but stay resident. Flush locks all shards (in index order) for the
// duration so it sees a consistent snapshot; frameFor never blocks on a
// sibling lock, so this cannot deadlock with a concurrent steal.
func (p *Pool) Flush() error {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	defer func() {
		for i := len(p.shards) - 1; i >= 0; i-- {
			p.shards[i].mu.Unlock()
		}
	}()
	// Write in ascending page order to give the disk sequential runs, as a
	// real database's background writer would.
	var dirty []*Frame
	for i := range p.shards {
		for _, fr := range p.shards[i].frames {
			if fr.dirty {
				dirty = append(dirty, fr)
			}
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	for _, fr := range dirty {
		if err := p.file.WritePage(fr.id, fr.data); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// Close flushes the pool and closes the underlying file.
func (p *Pool) Close() error {
	if err := p.Flush(); err != nil {
		p.file.Close()
		return err
	}
	return p.file.Close()
}

func (sh *poolShard) pinLocked(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		sh.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// frameFor returns an unused frame for shard shIdx, whose mutex the caller
// holds: a fresh allocation while the pool-wide budget has room, else an
// eviction from the shard's own LRU, else a steal from a sibling shard. A
// nil, nil return means every frame in the pool is currently pinned.
func (p *Pool) frameFor(shIdx int) (*Frame, error) {
	for {
		n := p.nframes.Load()
		if int(n) >= p.capacity {
			break
		}
		if p.nframes.CompareAndSwap(n, n+1) {
			return &Frame{data: make([]byte, PageSize)}, nil
		}
	}
	if fr, err := p.evictFrom(&p.shards[shIdx]); fr != nil || err != nil {
		return fr, err
	}
	// Own shard has nothing evictable; sweep the siblings once. TryLock
	// keeps the sweep deadlock-free (two shards stealing from each other
	// would otherwise deadlock) and bounded: a contended sibling is simply
	// skipped.
	for i := 1; i < len(p.shards); i++ {
		sib := &p.shards[(shIdx+i)&int(p.mask)]
		if !sib.mu.TryLock() {
			continue
		}
		fr, err := p.evictFrom(sib)
		sib.mu.Unlock()
		if fr != nil || err != nil {
			return fr, err
		}
	}
	return nil, nil
}

// ShardInfo is a point-in-time occupancy summary of one pool shard.
type ShardInfo struct {
	// Frames is the number of resident frames in the shard.
	Frames int `json:"frames"`
	// Pinned counts resident frames with at least one pin.
	Pinned int `json:"pinned"`
	// Evictable counts unpinned frames on the shard's LRU list.
	Evictable int `json:"evictable"`
}

// PoolInfo is a point-in-time occupancy summary of a whole pool, shaped for
// the /debug/warehouse endpoint.
type PoolInfo struct {
	Capacity int         `json:"capacity"`
	Frames   int         `json:"frames"`
	Pinned   int         `json:"pinned"`
	Shards   []ShardInfo `json:"shards"`
}

// Info reports the pool's current occupancy: total and per-shard frame and
// pin counts. Each shard is locked briefly in turn, so the totals are a
// near-consistent snapshot, adequate for monitoring.
func (p *Pool) Info() PoolInfo {
	info := PoolInfo{Capacity: p.capacity, Shards: make([]ShardInfo, len(p.shards))}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		si := ShardInfo{Frames: len(sh.frames), Evictable: sh.lru.Len()}
		for _, fr := range sh.frames {
			if fr.pins > 0 {
				si.Pinned++
			}
		}
		sh.mu.Unlock()
		info.Shards[i] = si
		info.Frames += si.Frames
		info.Pinned += si.Pinned
	}
	return info
}

// evictFrom removes the least recently used unpinned frame from sh (whose
// mutex the caller holds), writing it back if dirty. Returns nil, nil when
// the shard has no evictable frame.
func (p *Pool) evictFrom(sh *poolShard) (*Frame, error) {
	elem := sh.lru.Back()
	if elem == nil {
		return nil, nil
	}
	fr := elem.Value.(*Frame)
	sh.lru.Remove(elem)
	fr.elem = nil
	delete(sh.frames, fr.id)
	if fr.dirty {
		if err := p.file.WritePage(fr.id, fr.data); err != nil {
			p.nframes.Add(-1) // the frame is dropped with its failed write
			return nil, err
		}
		fr.dirty = false
	}
	return fr, nil
}
