package pager

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Fault injection: every state-changing I/O operation issued through this
// package (page writes, fsyncs, the atomic-rename catalog swap, directory
// removals) passes through an optional FaultInjector. Crash-point tests
// enumerate these operations, then re-run the workload failing at each one
// in turn to prove that recovery always lands on a consistent state.

// FaultOp classifies the injectable I/O operations.
type FaultOp int

// The injectable operation classes.
const (
	// FaultWrite is one page write (File.WritePage) or the data write of
	// WriteFileAtomic.
	FaultWrite FaultOp = iota
	// FaultSync is an fsync of a file or a directory.
	FaultSync
	// FaultRename is the commit rename of WriteFileAtomic.
	FaultRename
	// FaultRemove is a directory-tree removal via RemoveAll.
	FaultRemove
)

// String names the operation class for fault-point reports.
func (op FaultOp) String() string {
	switch op {
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	case FaultRename:
		return "rename"
	case FaultRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

var (
	// ErrInjected is returned by an operation failed in FaultTransient mode.
	ErrInjected = errors.New("pager: injected I/O fault")
	// ErrCrashed is returned by every operation after a FaultCrash injector
	// trips: the simulated process is dead and no further I/O happens.
	ErrCrashed = errors.New("pager: simulated crash")
)

// FaultMode selects what happens when the injector reaches its target
// operation.
type FaultMode int

const (
	// FaultCrash simulates a process crash: the target operation fails (or
	// is torn) and every subsequent pager operation — reads included —
	// fails with ErrCrashed until the injector is cleared. Cleanup code
	// therefore cannot run, exactly as after a real kill.
	FaultCrash FaultMode = iota
	// FaultTransient fails only the target operation with ErrInjected;
	// everything else proceeds, exercising in-process error paths.
	FaultTransient
)

// tornWriteBytes is how much of a page reaches disk when a tripped write is
// torn: one 512-byte "sector", leaving the page with a new prefix and stale
// suffix that the checksum must catch.
const tornWriteBytes = 512

// FaultInjector fails a chosen pager I/O operation. Install it with
// SetFaultInjector; a nil injector (the default) costs one atomic load per
// operation.
type FaultInjector struct {
	mode   FaultMode
	failAt int64
	torn   bool

	mu      sync.Mutex
	next    int64
	tripped bool
	ops     []string
}

// NewFaultInjector returns an injector that fails the failAt-th operation
// (0-based) in the given mode. failAt < 0 never fails, which makes the
// injector a pure counter for enumerating fault points. torn applies only
// when the target operation is a page write: a 512-byte prefix of the page
// reaches disk before the failure.
func NewFaultInjector(mode FaultMode, failAt int64, torn bool) *FaultInjector {
	return &FaultInjector{mode: mode, failAt: failAt, torn: torn}
}

// Points returns how many operations the injector has seen (not counting
// operations rejected after a crash trip).
func (fi *FaultInjector) Points() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.next
}

// Tripped reports whether the target operation was reached.
func (fi *FaultInjector) Tripped() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.tripped
}

// Ops returns a description of every operation seen, in order, for
// diagnosing a failing crash point.
func (fi *FaultInjector) Ops() []string {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return append([]string(nil), fi.ops...)
}

// decide registers one operation and returns whether to tear it (writes
// only) and the error to fail it with, if any.
func (fi *FaultInjector) decide(op FaultOp, path string) (torn bool, err error) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.tripped && fi.mode == FaultCrash {
		return false, ErrCrashed
	}
	i := fi.next
	fi.next++
	fi.ops = append(fi.ops, fmt.Sprintf("%s %s", op, path))
	if fi.failAt >= 0 && i == fi.failAt {
		fi.tripped = true
		if fi.mode == FaultCrash {
			return fi.torn, ErrCrashed
		}
		return fi.torn, ErrInjected
	}
	return false, nil
}

// dead reports whether a crash-mode injector has tripped.
func (fi *FaultInjector) dead() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.tripped && fi.mode == FaultCrash
}

var activeFault atomic.Pointer[FaultInjector]

// SetFaultInjector installs fi as the process-wide injector; nil removes it.
// Intended for tests, which must not run in parallel while one is installed.
func SetFaultInjector(fi *FaultInjector) { activeFault.Store(fi) }

// faultPoint registers one injectable operation with the active injector.
func faultPoint(op FaultOp, path string) error {
	fi := activeFault.Load()
	if fi == nil {
		return nil
	}
	_, err := fi.decide(op, path)
	return err
}

// faultPageWrite registers a page write, performing the torn prefix write
// itself when the injector asks for one.
func faultPageWrite(osf *os.File, off int64, buf []byte) error {
	fi := activeFault.Load()
	if fi == nil {
		return nil
	}
	torn, err := fi.decide(FaultWrite, osf.Name())
	if err == nil {
		return nil
	}
	if torn {
		osf.WriteAt(buf[:tornWriteBytes], off)
	}
	return err
}

// faultRead fails reads after a simulated crash; reads are never counted as
// fault points (they change no durable state).
func faultRead() error {
	fi := activeFault.Load()
	if fi == nil {
		return nil
	}
	if fi.dead() {
		return ErrCrashed
	}
	return nil
}
