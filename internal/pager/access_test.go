package pager

import (
	"sync"
	"testing"
)

// recordingAccess collects PageAccess callbacks for assertions.
type recordingAccess struct {
	mu     sync.Mutex
	hits   map[PageID]int
	misses map[PageID]int
}

func newRecordingAccess() *recordingAccess {
	return &recordingAccess{hits: map[PageID]int{}, misses: map[PageID]int{}}
}

func (r *recordingAccess) PageAccess(id PageID, hit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hit {
		r.hits[id]++
	} else {
		r.misses[id]++
	}
}

func TestPoolAccessObserver(t *testing.T) {
	f := newTestFile(t, nil)
	p := NewPool(f, 4)
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	p.Unpin(fr, true)

	// Attach after the page exists: the first fetch is a pool hit (NewPage
	// left it resident), then evicting is impossible with capacity 4, so
	// repeated fetches stay hits.
	rec := newRecordingAccess()
	p.SetAccessObserver(rec)
	for i := 0; i < 3; i++ {
		fr, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, false)
	}
	if rec.hits[id] != 3 || rec.misses[id] != 0 {
		t.Fatalf("hits/misses = %d/%d, want 3/0", rec.hits[id], rec.misses[id])
	}

	// Detach: further fetches are unobserved.
	p.SetAccessObserver(nil)
	fr, err = p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	if rec.hits[id] != 3 {
		t.Fatalf("observer fired after detach: hits = %d", rec.hits[id])
	}
}

func TestPoolAccessObserverMiss(t *testing.T) {
	f := newTestFile(t, nil)
	p := NewPool(f, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		ids = append(ids, fr.ID())
		p.Unpin(fr, true)
	}
	rec := newRecordingAccess()
	p.SetAccessObserver(rec)
	// Page 0 was evicted by the third NewPage in a 2-frame pool, so this
	// fetch goes to disk and must be reported as a miss.
	fr, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	if rec.misses[ids[0]] != 1 {
		t.Fatalf("misses[%d] = %d, want 1", ids[0], rec.misses[ids[0]])
	}
}
