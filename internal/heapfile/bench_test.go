package heapfile

import (
	"path/filepath"
	"testing"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

func BenchmarkInsert(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "h.pg"), nil)
	pool := pager.NewPool(f, 256)
	defer pool.Close()
	h, err := Create(pool, 40)
	if err != nil {
		b.Fatal(err)
	}
	tuple := enc.AppendTuple(nil, []int64{1, 2, 3, 4, 5})
	b.SetBytes(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(tuple); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "h.pg"), nil)
	pool := pager.NewPool(f, 256)
	defer pool.Close()
	h, _ := Create(pool, 40)
	tuple := enc.AppendTuple(nil, []int64{1, 2, 3, 4, 5})
	const n = 100000
	for i := 0; i < n; i++ {
		h.Insert(tuple)
	}
	b.SetBytes(n * 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := h.Scan(func(RID, []byte) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("scanned %d", count)
		}
	}
}

func BenchmarkGetRandom(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "h.pg"), nil)
	pool := pager.NewPool(f, 256)
	defer pool.Close()
	h, _ := Create(pool, 40)
	tuple := enc.AppendTuple(nil, []int64{1, 2, 3, 4, 5})
	var rids []RID
	for i := 0; i < 100000; i++ {
		rid, _ := h.Insert(tuple)
		rids = append(rids, rid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Get(rids[(i*7919)%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}
