// Package heapfile implements unordered fixed-width tuple storage on pager
// pages. It is the table storage of the conventional (relational)
// configuration: materialized summary tables live in heap files and are
// indexed by separate B+-trees, exactly the organization the paper compares
// Cubetrees against.
package heapfile

import (
	"encoding/binary"
	"fmt"
	"io"

	"cubetree/internal/pager"
)

const (
	headerPage = 0          // page 0 holds file metadata
	magic      = 0x48454150 // "HEAP"

	// page layout: [count uint16][tuples ...]
	pageHeaderSize = 2
)

// RID locates a tuple: the page that holds it and its slot on that page.
type RID struct {
	Page pager.PageID
	Slot uint16
}

// String formats the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// File is a heap file of fixed-width tuples.
type File struct {
	pool       *pager.Pool
	tupleWidth int
	perPage    int
	numTuples  int64
	lastPage   pager.PageID // last data page, InvalidPage if none
}

// Create initializes a heap file for tuples of width bytes on pool.
func Create(pool *pager.Pool, width int) (*File, error) {
	// The page checksum trailer (absent on legacy files) is reserved by
	// the pager; tuples per page are computed from the remaining payload.
	payload := pool.File().PayloadSize()
	if width <= 0 || width > payload-pageHeaderSize {
		return nil, fmt.Errorf("heapfile: invalid tuple width %d", width)
	}
	fr, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	if fr.ID() != headerPage {
		pool.Unpin(fr, false)
		return nil, fmt.Errorf("heapfile: Create on non-empty file (first page %d)", fr.ID())
	}
	h := &File{
		pool:       pool,
		tupleWidth: width,
		perPage:    (payload - pageHeaderSize) / width,
		numTuples:  0,
		lastPage:   pager.InvalidPage,
	}
	h.writeHeader(fr.Data())
	pool.Unpin(fr, true)
	return h, nil
}

// Open loads an existing heap file from pool.
func Open(pool *pager.Pool) (*File, error) {
	fr, err := pool.Fetch(headerPage)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr, false)
	b := fr.Data()
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return nil, fmt.Errorf("heapfile: bad magic")
	}
	width := int(binary.LittleEndian.Uint32(b[4:]))
	h := &File{
		pool:       pool,
		tupleWidth: width,
		perPage:    (pool.File().PayloadSize() - pageHeaderSize) / width,
		numTuples:  int64(binary.LittleEndian.Uint64(b[8:])),
		lastPage:   pager.PageID(binary.LittleEndian.Uint32(b[16:])),
	}
	return h, nil
}

func (h *File) writeHeader(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], uint32(h.tupleWidth))
	binary.LittleEndian.PutUint64(b[8:], uint64(h.numTuples))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.lastPage))
}

// syncHeader persists the metadata page.
func (h *File) syncHeader() error {
	fr, err := h.pool.Fetch(headerPage)
	if err != nil {
		return err
	}
	h.writeHeader(fr.Data())
	h.pool.Unpin(fr, true)
	return nil
}

// TupleWidth returns the fixed tuple width in bytes.
func (h *File) TupleWidth() int { return h.tupleWidth }

// Count returns the number of live tuples.
func (h *File) Count() int64 { return h.numTuples }

// PerPage returns the tuple capacity of one data page.
func (h *File) PerPage() int { return h.perPage }

// Insert appends tuple and returns its RID.
func (h *File) Insert(tuple []byte) (RID, error) {
	if len(tuple) != h.tupleWidth {
		return RID{}, fmt.Errorf("heapfile: tuple width %d, want %d", len(tuple), h.tupleWidth)
	}
	var fr *pager.Frame
	var err error
	if h.lastPage != pager.InvalidPage {
		fr, err = h.pool.Fetch(h.lastPage)
		if err != nil {
			return RID{}, err
		}
		if int(pageCount(fr.Data())) >= h.perPage {
			h.pool.Unpin(fr, false)
			fr = nil
		}
	}
	if fr == nil {
		fr, err = h.pool.NewPage()
		if err != nil {
			return RID{}, err
		}
		h.lastPage = fr.ID()
	}
	b := fr.Data()
	slot := pageCount(b)
	off := pageHeaderSize + int(slot)*h.tupleWidth
	copy(b[off:off+h.tupleWidth], tuple)
	setPageCount(b, slot+1)
	h.pool.Unpin(fr, true)
	h.numTuples++
	return RID{Page: fr.ID(), Slot: slot}, nil
}

// Get copies the tuple at rid into a fresh slice.
func (h *File) Get(rid RID) ([]byte, error) {
	fr, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(fr, false)
	b := fr.Data()
	if rid.Slot >= pageCount(b) {
		return nil, fmt.Errorf("heapfile: slot %d out of range on page %d", rid.Slot, rid.Page)
	}
	off := pageHeaderSize + int(rid.Slot)*h.tupleWidth
	out := make([]byte, h.tupleWidth)
	copy(out, b[off:off+h.tupleWidth])
	return out, nil
}

// Update overwrites the tuple at rid.
func (h *File) Update(rid RID, tuple []byte) error {
	if len(tuple) != h.tupleWidth {
		return fmt.Errorf("heapfile: tuple width %d, want %d", len(tuple), h.tupleWidth)
	}
	fr, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	b := fr.Data()
	if rid.Slot >= pageCount(b) {
		h.pool.Unpin(fr, false)
		return fmt.Errorf("heapfile: slot %d out of range on page %d", rid.Slot, rid.Page)
	}
	off := pageHeaderSize + int(rid.Slot)*h.tupleWidth
	copy(b[off:off+h.tupleWidth], tuple)
	h.pool.Unpin(fr, true)
	return nil
}

// Scan calls fn for each tuple in file order. The tuple slice passed to fn
// is only valid during the call. Scan stops early if fn returns an error,
// which it propagates (io.EOF is translated to nil for convenient early
// exits).
func (h *File) Scan(fn func(rid RID, tuple []byte) error) error {
	n := h.pool.File().NumPages()
	for pid := pager.PageID(headerPage + 1); uint32(pid) < n; pid++ {
		fr, err := h.pool.Fetch(pid)
		if err != nil {
			return err
		}
		b := fr.Data()
		cnt := int(pageCount(b))
		for slot := 0; slot < cnt; slot++ {
			off := pageHeaderSize + slot*h.tupleWidth
			if err := fn(RID{Page: pid, Slot: uint16(slot)}, b[off:off+h.tupleWidth]); err != nil {
				h.pool.Unpin(fr, false)
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
		h.pool.Unpin(fr, false)
	}
	return nil
}

// Close persists metadata and flushes the pool. It does not close the pool's
// underlying file, which the caller owns.
func (h *File) Close() error {
	if err := h.syncHeader(); err != nil {
		return err
	}
	return h.pool.Flush()
}

// Pages returns the number of pages used by the heap file, including the
// header page.
func (h *File) Pages() uint32 { return h.pool.File().NumPages() }

func pageCount(b []byte) uint16       { return binary.LittleEndian.Uint16(b[0:]) }
func setPageCount(b []byte, n uint16) { binary.LittleEndian.PutUint16(b[0:], n) }
