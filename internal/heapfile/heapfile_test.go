package heapfile

import (
	"io"
	"path/filepath"
	"testing"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

func newPool(t *testing.T, pages int) *pager.Pool {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "h.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pager.NewPool(f, pages)
	t.Cleanup(func() { p.Close() })
	return p
}

func tuple(vals ...int64) []byte { return enc.AppendTuple(nil, vals) }

func TestInsertGet(t *testing.T) {
	h, err := Create(newPool(t, 16), 24)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert(tuple(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Field(got, 0) != 1 || enc.Field(got, 2) != 3 {
		t.Fatalf("got %v", enc.Tuple(got, 3))
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestInsertSpansPages(t *testing.T) {
	h, err := Create(newPool(t, 16), 24)
	if err != nil {
		t.Fatal(err)
	}
	n := h.PerPage()*3 + 5
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(tuple(int64(i), 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if h.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	// Pages: header + 4 data pages.
	if h.Pages() != 5 {
		t.Fatalf("Pages = %d, want 5", h.Pages())
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Field(got, 0) != int64(i) {
			t.Fatalf("tuple %d = %d", i, enc.Field(got, 0))
		}
	}
}

func TestUpdate(t *testing.T) {
	h, _ := Create(newPool(t, 16), 16)
	rid, _ := h.Insert(tuple(10, 20))
	if err := h.Update(rid, tuple(10, 99)); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(rid)
	if enc.Field(got, 1) != 99 {
		t.Fatalf("update lost: %v", enc.Tuple(got, 2))
	}
}

func TestUpdateBadSlot(t *testing.T) {
	h, _ := Create(newPool(t, 16), 16)
	h.Insert(tuple(1, 2))
	if err := h.Update(RID{Page: 1, Slot: 7}, tuple(0, 0)); err == nil {
		t.Fatal("expected slot range error")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	h, _ := Create(newPool(t, 16), 8)
	for i := 0; i < 100; i++ {
		h.Insert(tuple(int64(i)))
	}
	var seen []int64
	err := h.Scan(func(_ RID, tup []byte) error {
		seen = append(seen, enc.Field(tup, 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("scanned %d", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order broken at %d: %d", i, v)
		}
	}
	// Early stop via io.EOF.
	count := 0
	err = h.Scan(func(_ RID, _ []byte) error {
		count++
		if count == 10 {
			return io.EOF
		}
		return nil
	})
	if err != nil || count != 10 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pg")
	f, _ := pager.Create(path, nil)
	pool := pager.NewPool(f, 16)
	h, _ := Create(pool, 16)
	for i := 0; i < 50; i++ {
		h.Insert(tuple(int64(i), int64(i*2)))
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	f2, _ := pager.Open(path, nil)
	pool2 := pager.NewPool(f2, 16)
	defer pool2.Close()
	h2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 50 {
		t.Fatalf("reopened Count = %d", h2.Count())
	}
	if h2.TupleWidth() != 16 {
		t.Fatalf("reopened width = %d", h2.TupleWidth())
	}
	// Inserts continue on the last page.
	rid, err := h2.Insert(tuple(999, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h2.Get(rid)
	if enc.Field(got, 0) != 999 {
		t.Fatal("insert after reopen corrupt")
	}
}

func TestCreateRejectsBadWidth(t *testing.T) {
	if _, err := Create(newPool(t, 4), 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := Create(newPool(t, 4), pager.PageSize); err == nil {
		t.Fatal("oversized width accepted")
	}
}

func TestInsertWrongWidth(t *testing.T) {
	h, _ := Create(newPool(t, 4), 16)
	if _, err := h.Insert(tuple(1)); err == nil {
		t.Fatal("expected width error")
	}
}
