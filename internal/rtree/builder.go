package rtree

import (
	"fmt"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

// Options configures tree construction.
type Options struct {
	// Measures is the number of int64 measures per point (default 2:
	// SUM and COUNT).
	Measures int
	// Fanout, if non-zero, caps node capacity. Tests use 3 to reproduce the
	// paper's Figure 8.
	Fanout int
	// PackFormat selects the leaf layout: FormatV1 (row-major fixed width)
	// or FormatV2 (column-major compressed). Zero means DefaultFormat.
	PackFormat int
}

// Builder bulk-loads a packed R-tree. Points are supplied one sorted run per
// view: call BeginRun, Add every point of the view in pack order, then
// EndRun; repeat for further views; Finish builds the internal levels.
//
// Leaf pages are allocated strictly sequentially starting right after the
// meta page, so the entire leaf level is written with sequential I/O — the
// property behind the paper's 6 GB/hour packing rate. A new leaf is started
// at every run boundary so that each leaf belongs to exactly one view,
// enabling zero-coordinate compression.
type Builder struct {
	pool   *pager.Pool
	t      *Tree
	format int

	inRun    bool
	arity    int
	leafCap  int
	cur      *pager.Frame
	curN     int
	runFirst pager.PageID
	runLast  pager.PageID
	runPts   int64
	prev     []int64
	havePrev bool

	// v2 leaves are buffered column-wise and written only when sealed,
	// because the packed column widths are not known until then.
	cols    []enc.ColumnBuilder
	measBuf [][]int64

	leaves []childEntry // MBR + page of every finished leaf, in order
}

// childEntry records a built node for assembling its parent level.
type childEntry struct {
	lo, hi []int64
	page   pager.PageID
}

// NewBuilder starts building a packed tree of the given dimensionality on
// pool, whose file must be empty.
func NewBuilder(pool *pager.Pool, dim int, opts Options) (*Builder, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rtree: dimension must be >= 1")
	}
	measures := opts.Measures
	if measures <= 0 {
		measures = 2
	}
	format := opts.PackFormat
	if format == 0 {
		format = DefaultFormat
	}
	if format != FormatV1 && format != FormatV2 {
		return nil, fmt.Errorf("rtree: unknown pack format %d", opts.PackFormat)
	}
	meta, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	if meta.ID() != metaPage {
		pool.Unpin(meta, false)
		return nil, fmt.Errorf("rtree: NewBuilder on non-empty file")
	}
	pool.Unpin(meta, true)
	t := &Tree{
		pool:     pool,
		dim:      dim,
		measures: measures,
		leafLo:   1,
		leafHi:   0, // empty until first leaf
		fanout:   opts.Fanout,
	}
	return &Builder{pool: pool, t: t, format: format}, nil
}

// Format reports the leaf format the builder emits.
func (b *Builder) Format() int { return b.format }

// BeginRun starts a new view run whose points carry arity coordinates
// (1 <= arity <= dim). Arity 0 is allowed for the scalar "none" view, whose
// single point sits at the origin.
func (b *Builder) BeginRun(arity int) error {
	if b.inRun {
		return fmt.Errorf("rtree: BeginRun while a run is open")
	}
	if arity < 0 || arity > b.t.dim {
		return fmt.Errorf("rtree: run arity %d out of range [0,%d]", arity, b.t.dim)
	}
	b.inRun = true
	b.arity = arity
	if b.format == FormatV2 {
		// v2 leaves are sealed by encoded size, not a fixed entry count; the
		// cap only reflects the count field's range and any test fanout.
		b.leafCap = 1<<16 - 1
		if b.t.fanout > 1 {
			b.leafCap = b.t.fanout
		}
		for len(b.cols) < arity {
			b.cols = append(b.cols, enc.ColumnBuilder{})
		}
		for j := 0; j < arity; j++ {
			b.cols[j].Reset()
		}
		b.curN = 0
	} else {
		b.leafCap = b.t.leafCap(arity)
	}
	b.runFirst = pager.InvalidPage
	b.runLast = pager.InvalidPage
	b.runPts = 0
	b.prev = make([]int64, b.t.dim)
	b.havePrev = false
	return nil
}

// Add appends one point of the current run. coords must have exactly the
// run's arity and be strictly increasing in pack order; measures must match
// the builder's measure count.
func (b *Builder) Add(coords []int64, measures []int64) error {
	if !b.inRun {
		return fmt.Errorf("rtree: Add outside a run")
	}
	if len(coords) != b.arity {
		return fmt.Errorf("rtree: point arity %d, want %d", len(coords), b.arity)
	}
	if len(measures) != b.t.measures {
		return fmt.Errorf("rtree: point with %d measures, want %d", len(measures), b.t.measures)
	}
	full := make([]int64, b.t.dim)
	copy(full, coords)
	if b.havePrev && !packLess(b.prev, full) {
		return fmt.Errorf("rtree: points out of pack order: %v then %v", b.prev, full)
	}
	copy(b.prev, full)
	b.havePrev = true

	if b.format == FormatV2 {
		if err := b.addV2(coords, measures); err != nil {
			return err
		}
		b.runPts++
		b.t.count++
		return nil
	}

	if b.cur == nil || b.curN >= b.leafCap {
		if err := b.finishLeaf(); err != nil {
			return err
		}
		fr, err := b.pool.NewPage()
		if err != nil {
			return err
		}
		initNode(fr.Data(), kindLeaf, byte(b.arity))
		b.cur = fr
		b.curN = 0
		if b.runFirst == pager.InvalidPage {
			b.runFirst = fr.ID()
		}
		b.runLast = fr.ID()
	}
	es := b.t.leafEntrySize(b.arity)
	off := nodeHeaderSize + b.curN*es
	data := b.cur.Data()
	for j := 0; j < b.arity; j++ {
		putField(data[off:], j, coords[j])
	}
	for j := 0; j < b.t.measures; j++ {
		putField(data[off:], b.arity+j, measures[j])
	}
	b.curN++
	setNodeCount(data, b.curN)
	b.runPts++
	b.t.count++
	return nil
}

// addV2 buffers one point into the column builders, sealing the current
// leaf when it would overflow the page: the just-added point is popped,
// the remaining points are flushed, and the point reopens a fresh leaf.
func (b *Builder) addV2(coords, measures []int64) error {
	b.pushV2(coords, measures)
	if b.curN > b.leafCap || v2EncodedSize(b.cols[:b.arity], b.curN, b.t.measures) > b.t.payload() {
		b.popV2()
		if b.curN == 0 {
			return fmt.Errorf("rtree: point exceeds v2 leaf payload")
		}
		if err := b.flushLeafV2(); err != nil {
			return err
		}
		b.pushV2(coords, measures)
		if v2EncodedSize(b.cols[:b.arity], b.curN, b.t.measures) > b.t.payload() {
			return fmt.Errorf("rtree: point exceeds v2 leaf payload")
		}
	}
	return nil
}

// pushV2 appends one point to the leaf buffers.
func (b *Builder) pushV2(coords, measures []int64) {
	for j := 0; j < b.arity; j++ {
		b.cols[j].Append(coords[j])
	}
	if b.curN < len(b.measBuf) {
		copy(b.measBuf[b.curN], measures)
	} else {
		b.measBuf = append(b.measBuf, append([]int64(nil), measures...))
	}
	b.curN++
}

// popV2 removes the most recently pushed point.
func (b *Builder) popV2() {
	for j := 0; j < b.arity; j++ {
		b.cols[j].PopLast()
	}
	b.curN--
}

// flushLeafV2 writes the buffered points as one v2 leaf page. The leaf MBR
// comes straight from the column zone maps; coordinates beyond the run's
// arity are zero.
func (b *Builder) flushLeafV2() error {
	if b.curN == 0 {
		return nil
	}
	fr, err := b.pool.NewPage()
	if err != nil {
		return err
	}
	encodeV2Leaf(fr.Data(), b.cols[:b.arity], b.measBuf[:b.curN], b.t.measures)
	lo := make([]int64, b.t.dim)
	hi := make([]int64, b.t.dim)
	for j := 0; j < b.arity; j++ {
		lo[j] = b.cols[j].Min()
		hi[j] = b.cols[j].Max()
	}
	b.leaves = append(b.leaves, childEntry{lo: lo, hi: hi, page: fr.ID()})
	b.t.leafHi = fr.ID()
	if b.runFirst == pager.InvalidPage {
		b.runFirst = fr.ID()
	}
	b.runLast = fr.ID()
	b.pool.Unpin(fr, true)
	for j := 0; j < b.arity; j++ {
		b.cols[j].Reset()
	}
	b.curN = 0
	return nil
}

// finishLeaf seals the current leaf, recording its MBR.
func (b *Builder) finishLeaf() error {
	if b.cur == nil {
		return nil
	}
	data := b.cur.Data()
	n := nodeCount(data)
	lo := make([]int64, b.t.dim)
	hi := make([]int64, b.t.dim)
	coords := make([]int64, b.t.dim)
	meas := make([]int64, b.t.measures)
	for i := 0; i < n; i++ {
		b.t.leafPoint(data, i, coords, meas)
		for j := 0; j < b.t.dim; j++ {
			if i == 0 || coords[j] < lo[j] {
				lo[j] = coords[j]
			}
			if i == 0 || coords[j] > hi[j] {
				hi[j] = coords[j]
			}
		}
	}
	b.leaves = append(b.leaves, childEntry{lo: lo, hi: hi, page: b.cur.ID()})
	b.t.leafHi = b.cur.ID()
	b.pool.Unpin(b.cur, true)
	b.cur = nil
	b.curN = 0
	return nil
}

// EndRun closes the current run and returns its placement.
func (b *Builder) EndRun() (RunInfo, error) {
	if !b.inRun {
		return RunInfo{}, fmt.Errorf("rtree: EndRun without BeginRun")
	}
	if b.format == FormatV2 {
		if err := b.flushLeafV2(); err != nil {
			return RunInfo{}, err
		}
	} else if err := b.finishLeaf(); err != nil {
		return RunInfo{}, err
	}
	b.inRun = false
	run := RunInfo{Arity: b.arity, FirstLeaf: b.runFirst, LastLeaf: b.runLast, Points: b.runPts}
	if b.runPts == 0 {
		run.FirstLeaf, run.LastLeaf = 1, 0 // canonical empty range
	}
	b.t.runs = append(b.t.runs, run)
	return run, nil
}

// Finish builds the internal levels bottom-up and returns the completed
// tree. The builder must not be reused.
func (b *Builder) Finish() (*Tree, error) {
	if b.inRun {
		return nil, fmt.Errorf("rtree: Finish with an open run")
	}
	if err := b.finishLeaf(); err != nil {
		return nil, err
	}
	t := b.t
	if len(b.leaves) == 0 {
		// Empty tree: keep a single empty leaf so searches have a root.
		fr, err := b.pool.NewPage()
		if err != nil {
			return nil, err
		}
		kind := byte(kindLeaf)
		if b.format == FormatV2 {
			kind = kindLeafV2
		}
		initNode(fr.Data(), kind, 0)
		t.root = fr.ID()
		t.height = 1
		t.leafLo, t.leafHi = fr.ID(), fr.ID()
		b.pool.Unpin(fr, true)
		if err := t.syncMeta(); err != nil {
			return nil, err
		}
		return t, nil
	}
	level := b.leaves
	t.height = 1
	cap := t.innerCap()
	for len(level) > 1 {
		var parents []childEntry
		for i := 0; i < len(level); i += cap {
			end := i + cap
			if end > len(level) {
				end = len(level)
			}
			fr, err := b.pool.NewPage()
			if err != nil {
				return nil, err
			}
			data := fr.Data()
			initNode(data, kindInternal, byte(t.height))
			lo := make([]int64, t.dim)
			hi := make([]int64, t.dim)
			for j, ch := range level[i:end] {
				t.setInnerEntry(data, j, ch.lo, ch.hi, ch.page)
				for d := 0; d < t.dim; d++ {
					if j == 0 || ch.lo[d] < lo[d] {
						lo[d] = ch.lo[d]
					}
					if j == 0 || ch.hi[d] > hi[d] {
						hi[d] = ch.hi[d]
					}
				}
			}
			setNodeCount(data, end-i)
			parents = append(parents, childEntry{lo: lo, hi: hi, page: fr.ID()})
			b.pool.Unpin(fr, true)
		}
		level = parents
		t.height++
	}
	t.root = level[0].page
	if err := t.syncMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// putField is a local alias to keep builder hot paths tight.
func putField(b []byte, i int, v int64) {
	b[i*8] = byte(v)
	b[i*8+1] = byte(v >> 8)
	b[i*8+2] = byte(v >> 16)
	b[i*8+3] = byte(v >> 24)
	b[i*8+4] = byte(v >> 32)
	b[i*8+5] = byte(v >> 40)
	b[i*8+6] = byte(v >> 48)
	b[i*8+7] = byte(v >> 56)
}
