package rtree

import "fmt"

// Combine folds the measures of two points with equal coordinates. The
// default, AddMeasures, sums componentwise — correct for SUM and COUNT
// payloads under insert-only increments.
type Combine func(dst, src []int64)

// AddMeasures adds src into dst componentwise.
func AddMeasures(dst, src []int64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// MergeRun merges two pack-ordered point streams of the same view into the
// builder's current run, combining measures on coordinate collisions. It is
// the heart of the paper's bulk incremental update: the old tree's run and
// the sorted delta are both read sequentially, and the output is packed
// sequentially, so the whole refresh is linear in the data with zero random
// I/O.
//
// The builder must have an open run of matching arity. Streams a and b must
// be in strict pack order (duplicates within one stream are not allowed;
// pre-aggregate deltas first).
func MergeRun(b *Builder, arity int, old, delta PointIterator, combine Combine) error {
	if combine == nil {
		combine = AddMeasures
	}
	type cursor struct {
		it       PointIterator
		coords   []int64
		measures []int64
		done     bool
	}
	advance := func(c *cursor) error {
		coords, measures, err := c.it.Next()
		if err != nil {
			if Done(err) {
				c.done = true
				return nil
			}
			return err
		}
		if c.coords == nil {
			c.coords = make([]int64, len(coords))
			c.measures = make([]int64, len(measures))
		}
		copy(c.coords, coords)
		copy(c.measures, measures)
		return nil
	}
	a := &cursor{it: old}
	d := &cursor{it: delta}
	if err := advance(a); err != nil {
		return err
	}
	if err := advance(d); err != nil {
		return err
	}
	emit := func(coords, measures []int64) error {
		if len(coords) < arity {
			return fmt.Errorf("rtree: merge point narrower (%d) than run arity %d", len(coords), arity)
		}
		return b.Add(coords[:arity], measures)
	}
	for !a.done || !d.done {
		switch {
		case a.done:
			if err := emit(d.coords, d.measures); err != nil {
				return err
			}
			if err := advance(d); err != nil {
				return err
			}
		case d.done:
			if err := emit(a.coords, a.measures); err != nil {
				return err
			}
			if err := advance(a); err != nil {
				return err
			}
		case equalCoords(a.coords, d.coords):
			combine(a.measures, d.measures)
			if err := emit(a.coords, a.measures); err != nil {
				return err
			}
			if err := advance(a); err != nil {
				return err
			}
			if err := advance(d); err != nil {
				return err
			}
		case packLess(a.coords, d.coords):
			if err := emit(a.coords, a.measures); err != nil {
				return err
			}
			if err := advance(a); err != nil {
				return err
			}
		default:
			if err := emit(d.coords, d.measures); err != nil {
				return err
			}
			if err := advance(d); err != nil {
				return err
			}
		}
	}
	return nil
}

func equalCoords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
