package rtree

import (
	"errors"

	"cubetree/internal/pager"
)

// ErrDone signals the normal end of a PointIterator.
var ErrDone = errors.New("rtree: iterator exhausted")

// Done reports whether err marks the normal end of a PointIterator.
func Done(err error) bool { return err == ErrDone }

// PointIterator yields points in pack order. Next returns an error for
// which Done reports true after the last point.
type PointIterator interface {
	// Next returns the next point's full-dimensional coordinates and its
	// measures. The slices are reused between calls.
	Next() (coords []int64, measures []int64, err error)
	Close() error
}

// RunIterator streams the points of one view run with sequential page
// reads. The run's leaves are physically contiguous, so this is the linear
// scan the merge-pack update relies on.
func (t *Tree) RunIterator(run RunInfo) PointIterator {
	return &runIterator{
		t:        t,
		next:     run.FirstLeaf,
		last:     run.LastLeaf,
		coords:   make([]int64, t.dim),
		measures: make([]int64, t.measures),
	}
}

type runIterator struct {
	t        *Tree
	next     pager.PageID
	last     pager.PageID
	fr       *pager.Frame
	dec      leafDecoder
	idx      int
	coords   []int64
	measures []int64
	err      error
}

func (it *runIterator) Next() ([]int64, []int64, error) {
	if it.err != nil {
		return nil, nil, it.err
	}
	for {
		if it.fr == nil {
			if it.next > it.last {
				it.err = ErrDone
				return nil, nil, it.err
			}
			fr, err := it.t.pool.Fetch(it.next)
			if err != nil {
				it.err = err
				return nil, nil, err
			}
			// Decode the page's format once; v2 leaves unpack their
			// coordinate columns here rather than per point.
			if err := it.t.readLeaf(fr.Data(), &it.dec); err != nil {
				it.t.pool.Unpin(fr, false)
				it.err = err
				return nil, nil, err
			}
			it.fr = fr
			it.idx = 0
			it.next++
		}
		if it.idx < it.dec.count() {
			it.dec.point(it.idx, it.coords, it.measures)
			it.idx++
			return it.coords, it.measures, nil
		}
		it.t.pool.Unpin(it.fr, false)
		it.fr = nil
	}
}

func (it *runIterator) Close() error {
	if it.fr != nil {
		it.t.pool.Unpin(it.fr, false)
		it.fr = nil
	}
	if it.err == nil || it.err == ErrDone {
		return nil
	}
	return it.err
}

// SlicePoints is an in-memory PointIterator over pre-sorted points, used for
// deltas and tests.
type SlicePoints struct {
	Coords   [][]int64 // full-dimensional coordinates in pack order
	Measures [][]int64
	i        int
}

// Next implements PointIterator.
func (s *SlicePoints) Next() ([]int64, []int64, error) {
	if s.i >= len(s.Coords) {
		return nil, nil, ErrDone
	}
	c, m := s.Coords[s.i], s.Measures[s.i]
	s.i++
	return c, m, nil
}

// Close implements PointIterator.
func (s *SlicePoints) Close() error { return nil }
