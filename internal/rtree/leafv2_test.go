package rtree

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"cubetree/internal/pager"
)

// buildFormatTree packs the same two-run point set (an arity-1 run and an
// arity-2 run) in the requested leaf format.
func buildFormatTree(t *testing.T, pool *pager.Pool, format int, v1pts, v2pts [][]int64) *Tree {
	t.Helper()
	b, err := NewBuilder(pool, 2, Options{Measures: 2, PackFormat: format})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.BeginRun(1); err != nil {
		t.Fatal(err)
	}
	for _, p := range v1pts {
		if err := b.Add(p[:1], []int64{p[0] * 3, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	if err := b.BeginRun(2); err != nil {
		t.Fatal(err)
	}
	for _, p := range v2pts {
		if err := b.Add(p, []int64{p[0] + p[1], 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestV1V2SearchEquivalence: for random point sets and rectangles, a v1 tree
// and a v2 tree built from identical input return identical result sets —
// coordinates and measures — in the style of TestPackedSearchEquivalenceQuick.
func TestV1V2SearchEquivalence(t *testing.T) {
	type result struct {
		coords [2]int64
		meas   [2]int64
	}
	collect := func(tree *Tree, lo, hi []int64) ([]result, error) {
		var out []result
		err := tree.Search(lo, hi, func(coords, measures []int64) error {
			out = append(out, result{
				coords: [2]int64{coords[0], coords[1]},
				meas:   [2]int64{measures[0], measures[1]},
			})
			return nil
		})
		return out, err
	}
	f := func(raw []uint16, rect [4]uint8) bool {
		seen1 := map[int64]bool{}
		seen2 := map[[2]int64]bool{}
		var v1pts, v2pts [][]int64
		for _, r := range raw {
			x, y := int64(r%50)+1, int64(r/50%50)+1
			if !seen1[x] {
				seen1[x] = true
				v1pts = append(v1pts, []int64{x})
			}
			if !seen2[[2]int64{x, y}] {
				seen2[[2]int64{x, y}] = true
				v2pts = append(v2pts, []int64{x, y})
			}
		}
		sortPack(v1pts)
		sortPack(v2pts)
		t1 := buildFormatTree(t, newPool(t, 64), FormatV1, v1pts, v2pts)
		t2 := buildFormatTree(t, newPool(t, 64), FormatV2, v1pts, v2pts)
		if f1, _ := t1.Format(); f1 != FormatV1 {
			return false
		}
		if f2, _ := t2.Format(); f2 != FormatV2 {
			return false
		}
		// Rectangles on the arity-2 plane and on the arity-1 axis (y pinned
		// to 0 so the v8-style run is included).
		rects := [][2][]int64{
			{{int64(rect[0]%50) + 1, int64(rect[1]%50) + 1},
				{int64(rect[0]%50) + 1 + int64(rect[2]%20), int64(rect[1]%50) + 1 + int64(rect[3]%20)}},
			{{int64(rect[0]%50) + 1, 0}, {int64(rect[0]%50) + 1 + int64(rect[2]%20), 0}},
			{{0, 0}, {60, 60}},
		}
		for _, rc := range rects {
			r1, err1 := collect(t1, rc[0], rc[1])
			r2, err2 := collect(t2, rc[0], rc[1])
			if err1 != nil || err2 != nil {
				return false
			}
			if len(r1) != len(r2) {
				return false
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestV2Persistence: a v2 tree survives close and reopen — the format is
// re-derived from the leaf pages, Validate passes, and searches answer.
func TestV2Persistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v2.rt")
	f, _ := pager.Create(path, nil)
	pool := pager.NewPool(f, 64)
	b, _ := NewBuilder(pool, 2, Options{PackFormat: FormatV2})
	b.BeginRun(2)
	for i := int64(1); i <= 500; i++ {
		b.Add([]int64{i, 1}, []int64{i * 10, 1})
	}
	b.EndRun()
	tree, _ := b.Finish()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	f2, _ := pager.Open(path, nil)
	pool2 := pager.NewPool(f2, 64)
	defer pool2.Close()
	tree2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if format, err := tree2.Format(); err != nil || format != FormatV2 {
		t.Fatalf("Format = %d, %v; want FormatV2", format, err)
	}
	if err := tree2.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	tree2.Search([]int64{100, 1}, []int64{200, 1}, func(coords, m []int64) error {
		if m[0] != coords[0]*10 {
			t.Fatalf("measure %d at %v", m[0], coords)
		}
		sum += m[0]
		return nil
	})
	if want := int64(10 * (100 + 200) * 101 / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	info, err := tree2.ScrubLeaves()
	if err != nil {
		t.Fatal(err)
	}
	if info.V1Leaves != 0 || info.V2Leaves == 0 || info.Points != 500 {
		t.Fatalf("scrub info = %+v", info)
	}
}

// TestV1BackwardCompat: a file built with the v1 format (as every pre-v2
// release wrote) reopens and scans correctly while the default is v2.
func TestV1BackwardCompat(t *testing.T) {
	if DefaultFormat != FormatV2 {
		t.Fatalf("DefaultFormat = %d; test assumes v2 default", DefaultFormat)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.rt")
	f, _ := pager.Create(path, nil)
	pool := pager.NewPool(f, 64)
	b, _ := NewBuilder(pool, 3, Options{PackFormat: FormatV1})
	if b.Format() != FormatV1 {
		t.Fatalf("builder format %d", b.Format())
	}
	b.BeginRun(3)
	pts := make([][]int64, 0, 1000)
	r := rand.New(rand.NewSource(11))
	seen := map[[3]int64]bool{}
	for len(pts) < 1000 {
		p := [3]int64{r.Int63n(40) + 1, r.Int63n(40) + 1, r.Int63n(40) + 1}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, []int64{p[0], p[1], p[2]})
		}
	}
	sortPack(pts)
	for _, p := range pts {
		b.Add(p, []int64{p[0], 1})
	}
	b.EndRun()
	tree, _ := b.Finish()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	f2, _ := pager.Open(path, nil)
	pool2 := pager.NewPool(f2, 64)
	defer pool2.Close()
	tree2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if format, err := tree2.Format(); err != nil || format != FormatV1 {
		t.Fatalf("Format = %d, %v; want FormatV1", format, err)
	}
	if err := tree2.Validate(); err != nil {
		t.Fatal(err)
	}
	info, err := tree2.ScrubLeaves()
	if err != nil {
		t.Fatal(err)
	}
	if info.V2Leaves != 0 || info.V1Leaves == 0 {
		t.Fatalf("scrub info = %+v", info)
	}
	got := 0
	tree2.Search([]int64{1, 1, 1}, []int64{40, 40, 40}, func(coords, m []int64) error {
		if m[0] != coords[0] {
			t.Fatalf("measure %d at %v", m[0], coords)
		}
		got++
		return nil
	})
	if got != len(pts) {
		t.Fatalf("scan found %d of %d points", got, len(pts))
	}
}

// TestMergeAcrossFormats: merge-packing a v1 tree with deltas into a v2
// builder (the upgrade path a refresh takes on an old forest) preserves
// every point and combines measures.
func TestMergeAcrossFormats(t *testing.T) {
	oldPool := newPool(t, 64)
	ob, _ := NewBuilder(oldPool, 2, Options{PackFormat: FormatV1})
	ob.BeginRun(2)
	for i := int64(1); i <= 100; i++ {
		ob.Add([]int64{i, 1}, []int64{i, 1})
	}
	ob.EndRun()
	oldTree, err := ob.Finish()
	if err != nil {
		t.Fatal(err)
	}

	newPoolV2 := newPool(t, 64)
	nb, _ := NewBuilder(newPoolV2, 2, Options{PackFormat: FormatV2})
	delta := &SlicePoints{
		Coords:   [][]int64{{50, 1}, {101, 1}},
		Measures: [][]int64{{5, 1}, {7, 1}},
	}
	if err := nb.BeginRun(2); err != nil {
		t.Fatal(err)
	}
	if err := MergeRun(nb, 2, oldTree.RunIterator(oldTree.Runs()[0]), delta, AddMeasures); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.EndRun(); err != nil {
		t.Fatal(err)
	}
	merged, err := nb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if format, _ := merged.Format(); format != FormatV2 {
		t.Fatalf("merged format %d, want v2", format)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.Count() != 101 {
		t.Fatalf("merged count %d, want 101", merged.Count())
	}
	var m50 []int64
	merged.Search([]int64{50, 1}, []int64{50, 1}, func(_, m []int64) error {
		m50 = append([]int64(nil), m...)
		return nil
	})
	if m50[0] != 55 || m50[1] != 2 {
		t.Fatalf("merged measures at 50 = %v, want [55 2]", m50)
	}
}

// TestScrubLeavesDetectsCorruption: ScrubLeaves fails on a v2 zone map that
// disagrees with the decoded column, and on an unknown node kind.
func TestScrubLeavesDetectsCorruption(t *testing.T) {
	pool := newPool(t, 64)
	b, _ := NewBuilder(pool, 1, Options{PackFormat: FormatV2})
	b.BeginRun(1)
	for i := int64(1); i <= 300; i++ {
		b.Add([]int64{i}, []int64{i, 1})
	}
	b.EndRun()
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ScrubLeaves(); err != nil {
		t.Fatalf("clean tree failed scrub: %v", err)
	}

	corrupt := func(mutate func(b []byte)) error {
		fr, err := pool.Fetch(tree.leafLo)
		if err != nil {
			t.Fatal(err)
		}
		mutate(fr.Data())
		pool.Unpin(fr, true)
		_, err = tree.ScrubLeaves()
		return err
	}

	// Bump the first column's zone-map min (bytes 8..16 of the directory
	// entry hold min; entry starts right after the node header).
	if err := corrupt(func(b []byte) { b[nodeHeaderSize]++ }); err == nil {
		t.Fatal("scrub accepted a zone map that disagrees with the column")
	}
	if err := corrupt(func(b []byte) { b[nodeHeaderSize]-- }); err != nil {
		t.Fatalf("scrub still failing after repair: %v", err)
	}
	// Unknown node kind.
	if err := corrupt(func(b []byte) { b[0] = 9 }); err == nil {
		t.Fatal("scrub accepted an unknown leaf kind")
	}
	if err := corrupt(func(b []byte) { b[0] = kindLeafV2 }); err != nil {
		t.Fatalf("scrub still failing after kind repair: %v", err)
	}
	// Out-of-range bit width in the directory.
	if err := corrupt(func(b []byte) { b[nodeHeaderSize+16] = 65 }); err == nil {
		t.Fatal("scrub accepted bit width 65")
	}
}

// TestV2PacksDenser: on small-domain data, the columnar format stores
// several times more points per leaf than the fixed-width v1 layout — the
// core space claim behind the tentpole.
func TestV2PacksDenser(t *testing.T) {
	build := func(format int) *Tree {
		pool := newPool(t, 256)
		b, _ := NewBuilder(pool, 3, Options{PackFormat: format})
		b.BeginRun(3)
		r := rand.New(rand.NewSource(3))
		pts := make([][]int64, 0, 20000)
		seen := map[[3]int64]bool{}
		for len(pts) < 20000 {
			p := [3]int64{r.Int63n(100) + 1, r.Int63n(100) + 1, r.Int63n(100) + 1}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, []int64{p[0], p[1], p[2]})
			}
		}
		sortPack(pts)
		for _, p := range pts {
			b.Add(p, []int64{p[0], 1})
		}
		b.EndRun()
		tree, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	t1 := build(FormatV1)
	t2 := build(FormatV2)
	if t2.LeafPages() >= t1.LeafPages() {
		t.Fatalf("v2 uses %d leaf pages, v1 %d: columnar packing saved nothing",
			t2.LeafPages(), t1.LeafPages())
	}
	// 3 coords in ~7 bits each plus 2 raw measures vs 5×8 bytes: expect a
	// large density win, not a marginal one.
	d1 := float64(t1.Count()) / float64(t1.LeafPages())
	d2 := float64(t2.Count()) / float64(t2.LeafPages())
	if d2 < 1.8*d1 {
		t.Fatalf("v2 density %.0f points/page vs v1 %.0f: expected >= 1.8x", d2, d1)
	}
}
