package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildFromMap packs points into a fresh tree.
func buildFromMap(t *testing.T, data map[[2]int64]int64, fanout int) *Tree {
	t.Helper()
	pts := make([][]int64, 0, len(data))
	for k := range data {
		pts = append(pts, []int64{k[0], k[1]})
	}
	sort.Slice(pts, func(i, j int) bool { return PackLess(pts[i], pts[j]) })
	pool := newPool(t, 256)
	b, err := NewBuilder(pool, 2, Options{Fanout: fanout})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.BeginRun(2); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := b.Add(p, []int64{data[[2]int64{p[0], p[1]}], 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// slicePointsFromMap builds a delta iterator from a map.
func slicePointsFromMap(data map[[2]int64]int64) *SlicePoints {
	pts := make([][]int64, 0, len(data))
	for k := range data {
		pts = append(pts, []int64{k[0], k[1]})
	}
	sort.Slice(pts, func(i, j int) bool { return PackLess(pts[i], pts[j]) })
	sp := &SlicePoints{}
	for _, p := range pts {
		sp.Coords = append(sp.Coords, p)
		sp.Measures = append(sp.Measures, []int64{data[[2]int64{p[0], p[1]}], 1})
	}
	return sp
}

// dumpTree reads every point of a tree's single run back into a map.
func dumpTree(t *testing.T, tree *Tree) map[[2]int64]int64 {
	t.Helper()
	out := map[[2]int64]int64{}
	runs := tree.Runs()
	for _, run := range runs {
		it := tree.RunIterator(run)
		for {
			coords, measures, err := it.Next()
			if Done(err) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out[[2]int64{coords[0], coords[1]}] += measures[0]
		}
		it.Close()
	}
	return out
}

func TestMergeRunBasic(t *testing.T) {
	oldData := map[[2]int64]int64{{1, 1}: 10, {2, 1}: 20, {1, 3}: 30}
	delta := map[[2]int64]int64{{2, 1}: 5, {3, 2}: 7}
	old := buildFromMap(t, oldData, 3)

	pool := newPool(t, 256)
	b, _ := NewBuilder(pool, 2, Options{Fanout: 3})
	b.BeginRun(2)
	err := MergeRun(b, 2, old.RunIterator(old.Runs()[0]), slicePointsFromMap(delta), nil)
	if err != nil {
		t.Fatal(err)
	}
	b.EndRun()
	merged, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	got := dumpTree(t, merged)
	want := map[[2]int64]int64{{1, 1}: 10, {2, 1}: 25, {1, 3}: 30, {3, 2}: 7}
	if len(got) != len(want) {
		t.Fatalf("merged has %d points, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("point %v = %d, want %d", k, got[k], v)
		}
	}
}

func TestMergeRunEmptyDelta(t *testing.T) {
	oldData := map[[2]int64]int64{{1, 1}: 1, {5, 9}: 2}
	old := buildFromMap(t, oldData, 0)
	pool := newPool(t, 64)
	b, _ := NewBuilder(pool, 2, Options{})
	b.BeginRun(2)
	if err := MergeRun(b, 2, old.RunIterator(old.Runs()[0]), &SlicePoints{}, nil); err != nil {
		t.Fatal(err)
	}
	b.EndRun()
	merged, _ := b.Finish()
	got := dumpTree(t, merged)
	if len(got) != 2 || got[[2]int64{1, 1}] != 1 {
		t.Fatalf("identity merge broken: %v", got)
	}
}

func TestMergeRunEmptyOld(t *testing.T) {
	delta := map[[2]int64]int64{{4, 4}: 44}
	pool := newPool(t, 64)
	b, _ := NewBuilder(pool, 2, Options{})
	b.BeginRun(2)
	if err := MergeRun(b, 2, &SlicePoints{}, slicePointsFromMap(delta), nil); err != nil {
		t.Fatal(err)
	}
	b.EndRun()
	merged, _ := b.Finish()
	got := dumpTree(t, merged)
	if got[[2]int64{4, 4}] != 44 {
		t.Fatalf("merge into empty broken: %v", got)
	}
}

// TestMergeEquivalenceQuick: merge(load(A), B) == load(A+B) pointwise.
func TestMergeEquivalenceQuick(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := map[[2]int64]int64{}
		for i, r := range rawA {
			a[[2]int64{int64(r%30) + 1, int64(r/30%30) + 1}] += int64(i + 1)
		}
		bm := map[[2]int64]int64{}
		for i, r := range rawB {
			bm[[2]int64{int64(r%30) + 1, int64(r/30%30) + 1}] += int64(i + 2)
		}
		old := buildFromMap(t, a, 4)
		pool := newPool(t, 256)
		bld, _ := NewBuilder(pool, 2, Options{Fanout: 4})
		bld.BeginRun(2)
		if err := MergeRun(bld, 2, old.RunIterator(old.Runs()[0]), slicePointsFromMap(bm), nil); err != nil {
			return false
		}
		bld.EndRun()
		merged, err := bld.Finish()
		if err != nil {
			return false
		}
		if merged.Validate() != nil {
			return false
		}
		want := map[[2]int64]int64{}
		for k, v := range a {
			want[k] += v
		}
		for k, v := range bm {
			want[k] += v
		}
		got := dumpTree(t, merged)
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeLargeSequential(t *testing.T) {
	// Build 10k points, merge 1k delta (half collisions), verify sums via
	// search.
	r := rand.New(rand.NewSource(99))
	a := map[[2]int64]int64{}
	for len(a) < 10000 {
		a[[2]int64{r.Int63n(300) + 1, r.Int63n(300) + 1}] = r.Int63n(1000)
	}
	old := buildFromMap(t, a, 0)
	d := map[[2]int64]int64{}
	for k := range a {
		if len(d) >= 500 {
			break
		}
		d[k] = 7
	}
	for len(d) < 1000 {
		d[[2]int64{r.Int63n(300) + 301, r.Int63n(300) + 1}] = 3
	}
	pool := newPool(t, 512)
	b, _ := NewBuilder(pool, 2, Options{})
	b.BeginRun(2)
	if err := MergeRun(b, 2, old.RunIterator(old.Runs()[0]), slicePointsFromMap(d), nil); err != nil {
		t.Fatal(err)
	}
	b.EndRun()
	merged, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var wantTotal, gotTotal int64
	for _, v := range a {
		wantTotal += v
	}
	for _, v := range d {
		wantTotal += v
	}
	merged.Search([]int64{1, 1}, []int64{math.MaxInt64, math.MaxInt64}, func(_, m []int64) error {
		gotTotal += m[0]
		return nil
	})
	if gotTotal != wantTotal {
		t.Fatalf("total after merge = %d, want %d", gotTotal, wantTotal)
	}
}
