package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"cubetree/internal/pager"
)

func benchPoints(n int) [][]int64 {
	r := rand.New(rand.NewSource(9))
	seen := map[[3]int64]bool{}
	pts := make([][]int64, 0, n)
	for len(pts) < n {
		p := [3]int64{r.Int63n(2000) + 1, r.Int63n(2000) + 1, r.Int63n(2000) + 1}
		if seen[p] {
			continue
		}
		seen[p] = true
		pts = append(pts, []int64{p[0], p[1], p[2]})
	}
	sort.Slice(pts, func(i, j int) bool { return PackLess(pts[i], pts[j]) })
	return pts
}

func benchBuild(b *testing.B, pts [][]int64) *Tree {
	b.Helper()
	f, err := pager.Create(filepath.Join(b.TempDir(), "r.ct"), nil)
	if err != nil {
		b.Fatal(err)
	}
	pool := pager.NewPool(f, 1024)
	b.Cleanup(func() { pool.Close() })
	bld, err := NewBuilder(pool, 3, Options{})
	if err != nil {
		b.Fatal(err)
	}
	bld.BeginRun(3)
	for _, p := range pts {
		if err := bld.Add(p, []int64{1, 1}); err != nil {
			b.Fatal(err)
		}
	}
	bld.EndRun()
	tree, err := bld.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func BenchmarkPack(b *testing.B) {
	pts := benchPoints(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := benchBuild(b, pts)
		if tree.Count() != int64(len(pts)) {
			b.Fatal("count mismatch")
		}
	}
	b.SetBytes(int64(len(pts)) * 40)
}

func BenchmarkPointSearch(b *testing.B) {
	pts := benchPoints(100000)
	tree := benchBuild(b, pts)
	r := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[r.Intn(len(pts))]
		found := 0
		tree.Search(p, p, func([]int64, []int64) error { found++; return nil })
		if found != 1 {
			b.Fatalf("point %v found %d times", p, found)
		}
	}
}

func BenchmarkSliceSearch(b *testing.B) {
	pts := benchPoints(100000)
	tree := benchBuild(b, pts)
	r := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fix the last (major) coordinate: a contiguous band of leaves.
		z := r.Int63n(2000) + 1
		tree.Search([]int64{1, 1, z}, []int64{math.MaxInt64, math.MaxInt64, z},
			func([]int64, []int64) error { return nil })
	}
}

func BenchmarkMergePack(b *testing.B) {
	pts := benchPoints(100000)
	old := benchBuild(b, pts)
	// 10% delta.
	delta := &SlicePoints{}
	for i := 0; i < len(pts); i += 10 {
		delta.Coords = append(delta.Coords, pts[i])
		delta.Measures = append(delta.Measures, []int64{1, 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, _ := pager.Create(filepath.Join(b.TempDir(), "m.ct"), nil)
		pool := pager.NewPool(f, 1024)
		bld, _ := NewBuilder(pool, 3, Options{})
		d := &SlicePoints{Coords: delta.Coords, Measures: delta.Measures}
		b.StartTimer()
		bld.BeginRun(3)
		if err := MergeRun(bld, 3, old.RunIterator(old.Runs()[0]), d, nil); err != nil {
			b.Fatal(err)
		}
		bld.EndRun()
		if _, err := bld.Finish(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		pool.Close()
		b.StartTimer()
	}
	b.SetBytes(int64(len(pts)) * 40)
}
