package rtree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"cubetree/internal/pager"
)

func newPoolB(b *testing.B, pages int) *pager.Pool {
	b.Helper()
	f, err := pager.Create(filepath.Join(b.TempDir(), "rt.pg"), nil)
	if err != nil {
		b.Fatal(err)
	}
	p := pager.NewPool(f, pages)
	b.Cleanup(func() { p.Close() })
	return p
}

func sortPackB(points [][]int64) {
	sort.Slice(points, func(i, j int) bool { return PackLess(points[i], points[j]) })
}

// BenchmarkSearchFormats compares point- and range-query latency over the
// same data in both leaf formats.
func BenchmarkSearchFormats(b *testing.B) {
	build := func(format int) *Tree {
		f := newPoolB(b, 512)
		bd, _ := NewBuilder(f, 3, Options{PackFormat: format})
		bd.BeginRun(3)
		r := rand.New(rand.NewSource(3))
		pts := make([][]int64, 0, 50000)
		seen := map[[3]int64]bool{}
		for len(pts) < 50000 {
			p := [3]int64{r.Int63n(200) + 1, r.Int63n(200) + 1, r.Int63n(200) + 1}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, []int64{p[0], p[1], p[2]})
			}
		}
		sortPackB(pts)
		for _, p := range pts {
			bd.Add(p, []int64{p[0], 1})
		}
		bd.EndRun()
		tree, err := bd.Finish()
		if err != nil {
			b.Fatal(err)
		}
		return tree
	}
	for _, fmtCase := range []struct {
		name   string
		format int
	}{{"v1", FormatV1}, {"v2", FormatV2}} {
		tree := build(fmtCase.format)
		b.Run("point/"+fmtCase.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(9))
			for i := 0; i < b.N; i++ {
				x := r.Int63n(200) + 1
				tree.Search([]int64{x, x, 0}, []int64{x, x, 200}, func([]int64, []int64) error { return nil })
			}
		})
		b.Run("range/"+fmtCase.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(9))
			for i := 0; i < b.N; i++ {
				x := r.Int63n(150) + 1
				tree.Search([]int64{x, x, x}, []int64{x + 50, x + 50, x + 50}, func([]int64, []int64) error { return nil })
			}
		})
	}
}
