package rtree

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"cubetree/internal/enc"
)

// Leaf format v2: column-major compressed leaf pages.
//
// A v1 leaf stores row-major fixed-width tuples, so a slice scan decodes
// every 8-byte field of every point even when one coordinate column decides
// the predicate. A v2 leaf reorganizes the same points column-major:
//
//	node header (8 bytes)   kind=kindLeafV2, aux=arity, count u16
//	column directory        arity × 17 bytes: min i64, max i64, bit width u8
//	coordinate columns      arity × ceil(count·width/8) bytes, packed
//	                        frame-of-reference deltas (enc.PackColumn)
//	measure columns         measures × count × 8 bytes, raw little-endian
//
// The directory doubles as a per-leaf zone map: a scan whose rectangle
// misses [min,max] on any coordinate skips the whole leaf without touching a
// column, and a column whose zone lies entirely inside the rectangle is
// never evaluated as a predicate. Measures stay raw because they are summed,
// not filtered, and decoding them is deferred until a row survives every
// coordinate predicate (late materialization).
//
// Versioning: leaves self-describe through the node kind byte, so v1 and v2
// leaves can coexist in one file and v1 files remain fully readable. The
// internal-node format and the meta page are unchanged.

const (
	kindLeafV2 = 2

	// colDescSize is the bytes per column directory entry: min, max, width.
	colDescSize = 8 + 8 + 1
)

// Pack formats selectable at build time.
const (
	// FormatV1 is the row-major fixed-width leaf layout.
	FormatV1 = 1
	// FormatV2 is the column-major compressed leaf layout.
	FormatV2 = 2
	// DefaultFormat is used when Options.PackFormat is zero.
	DefaultFormat = FormatV2
)

// colDesc is one decoded column directory entry.
type colDesc struct {
	min, max int64
	width    uint
}

// v2Layout resolves the region offsets of a v2 leaf from its header and
// directory. All offsets are relative to the start of the page payload.
type v2Layout struct {
	arity   int
	n       int
	desc    []colDesc // len arity; reused across leaves by callers
	colOff  []int     // byte offset of each packed coordinate column
	measOff int       // byte offset of the raw measure region
	end     int       // one past the last used byte
}

// parseV2Leaf decodes the directory of leaf page b into lay, validating that
// every region stays inside the payload. measures is the tree's measure
// count; payload the usable page bytes.
func parseV2Leaf(b []byte, measures, payload int, lay *v2Layout) error {
	arity := int(nodeAux(b))
	n := nodeCount(b)
	lay.arity = arity
	lay.n = n
	if cap(lay.desc) < arity {
		lay.desc = make([]colDesc, arity)
		lay.colOff = make([]int, arity)
	}
	lay.desc = lay.desc[:arity]
	lay.colOff = lay.colOff[:arity]
	off := nodeHeaderSize + arity*colDescSize
	if off > payload || off > len(b) {
		return fmt.Errorf("rtree: v2 leaf directory (arity %d) exceeds page payload", arity)
	}
	for j := 0; j < arity; j++ {
		d := nodeHeaderSize + j*colDescSize
		lay.desc[j].min = int64(binary.LittleEndian.Uint64(b[d:]))
		lay.desc[j].max = int64(binary.LittleEndian.Uint64(b[d+8:]))
		lay.desc[j].width = uint(b[d+16])
		if lay.desc[j].width > 64 {
			return fmt.Errorf("rtree: v2 leaf column %d bit width %d out of range", j, lay.desc[j].width)
		}
		lay.colOff[j] = off
		off += enc.PackedColumnBytes(n, lay.desc[j].width)
	}
	lay.measOff = off
	lay.end = off + n*measures*enc.FieldSize
	if lay.end > payload || lay.end > len(b) {
		return fmt.Errorf("rtree: v2 leaf regions (%d bytes) exceed page payload (%d)", lay.end, payload)
	}
	return nil
}

// col returns the packed bytes of coordinate column j.
func (lay *v2Layout) col(b []byte, j int) []byte {
	return b[lay.colOff[j] : lay.colOff[j]+enc.PackedColumnBytes(lay.n, lay.desc[j].width)]
}

// measure returns the raw value of measure column m at row i.
func (lay *v2Layout) measure(b []byte, m, i int) int64 {
	return int64(binary.LittleEndian.Uint64(b[lay.measOff+(m*lay.n+i)*enc.FieldSize:]))
}

// v2EncodedSize returns the page bytes a v2 leaf of n points needs given the
// coordinate column builders' current widths.
func v2EncodedSize(cols []enc.ColumnBuilder, n, measures int) int {
	size := nodeHeaderSize + len(cols)*colDescSize + n*measures*enc.FieldSize
	for j := range cols {
		size += enc.PackedColumnBytes(n, cols[j].Width())
	}
	return size
}

// encodeV2Leaf writes the buffered columns into page payload b (zeroed by
// the pool's NewPage). meas is row-major scratch: meas[i] holds row i's
// measures.
func encodeV2Leaf(b []byte, cols []enc.ColumnBuilder, meas [][]int64, measures int) {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	} else {
		n = len(meas)
	}
	initNode(b, kindLeafV2, byte(len(cols)))
	setNodeCount(b, n)
	off := nodeHeaderSize + len(cols)*colDescSize
	for j := range cols {
		c := &cols[j]
		d := nodeHeaderSize + j*colDescSize
		binary.LittleEndian.PutUint64(b[d:], uint64(c.Min()))
		binary.LittleEndian.PutUint64(b[d+8:], uint64(c.Max()))
		b[d+16] = byte(c.Width())
		c.Encode(b[off : off+c.EncodedBytes()])
		off += c.EncodedBytes()
	}
	for m := 0; m < measures; m++ {
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(b[off:], uint64(meas[i][m]))
			off += enc.FieldSize
		}
	}
}

// scratchPool recycles scan scratch across searches: the decode buffers are
// ~10 KB per search (arity columns × leaf rows), which would otherwise be the
// dominant allocation of a point query.
var scratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// scanScratch holds the per-search decode buffers for v2 leaves, allocated
// lazily on the first v2 leaf a search touches and reused for every later
// leaf of the search.
type scanScratch struct {
	lay   v2Layout
	cols  [][]int64    // decoded coordinate columns, cols[j][i] = row i's coord j
	sel   []uint64     // selection bitmap over the leaf's rows
	stats *SearchStats // optional leaf read/skip counters; nil on Search
}

// grow sizes the scratch for a leaf of n rows and arity coordinate columns.
func (s *scanScratch) grow(arity, n int) {
	for len(s.cols) < arity {
		s.cols = append(s.cols, nil)
	}
	for j := 0; j < arity; j++ {
		if cap(s.cols[j]) < n {
			s.cols[j] = make([]int64, n)
		}
		s.cols[j] = s.cols[j][:n]
	}
	if w := enc.SelectionWords(n); cap(s.sel) < w {
		s.sel = make([]uint64, w)
	} else {
		s.sel = s.sel[:enc.SelectionWords(n)]
	}
}

// searchLeafV2 scans one v2 leaf for points inside [lo, hi], calling fn for
// each match. The scan proceeds in three phases: zone-map leaf skipping,
// column-at-a-time predicate evaluation into the selection bitmap, and late
// materialization of only the surviving rows.
func (t *Tree) searchLeafV2(b []byte, lo, hi []int64, s *scanScratch, coords, measures []int64, fn Visit) error {
	if err := parseV2Leaf(b, t.measures, t.payload(), &s.lay); err != nil {
		return err
	}
	lay := &s.lay
	if lay.n == 0 {
		if s.stats != nil {
			s.stats.LeafPagesSkipped++
		}
		return nil
	}
	// Every point in this leaf has zero for coordinates beyond its arity:
	// one check covers all rows.
	for j := lay.arity; j < t.dim; j++ {
		if lo[j] > 0 || hi[j] < 0 {
			if s.stats != nil {
				s.stats.LeafPagesSkipped++
			}
			return nil
		}
	}
	// Zone-map skip: a coordinate whose [min,max] misses the rectangle rules
	// out the whole leaf.
	for j := 0; j < lay.arity; j++ {
		if lay.desc[j].max < lo[j] || lay.desc[j].min > hi[j] {
			if s.stats != nil {
				s.stats.LeafPagesSkipped++
			}
			return nil
		}
	}
	// Past the whole-page pruning checks: this leaf's packed columns will be
	// evaluated, so it counts as read even if every row is later rejected.
	if s.stats != nil {
		s.stats.LeafPagesRead++
	}
	s.grow(lay.arity, lay.n)
	enc.FillSelection(s.sel, lay.n)
	// Predicate phase: evaluate constrained columns on packed data. Columns
	// whose zone lies entirely inside the rectangle cannot reject a row and
	// are deferred to materialization.
	for j := 0; j < lay.arity; j++ {
		d := lay.desc[j]
		if d.min >= lo[j] && d.max <= hi[j] {
			continue // zone inside the rectangle: cannot reject any row
		}
		enc.FilterPackedRange(lay.col(b, j), lay.n, d.min, d.width, lo[j], hi[j], s.sel)
		if enc.SelectionEmpty(s.sel) {
			return nil
		}
	}
	// Materialization phase: decode every column only for the rows that
	// survived all predicates, then emit rows.
	for j := 0; j < lay.arity; j++ {
		d := lay.desc[j]
		enc.UnpackColumnSelect(lay.col(b, j), lay.n, d.min, d.width, s.sel, s.cols[j])
	}
	for j := lay.arity; j < t.dim; j++ {
		coords[j] = 0
	}
	for wi, w := range s.sel {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			for j := 0; j < lay.arity; j++ {
				coords[j] = s.cols[j][i]
			}
			for m := 0; m < t.measures; m++ {
				measures[m] = lay.measure(b, m, i)
			}
			if err := fn(coords, measures); err != nil {
				return err
			}
		}
	}
	return nil
}

// leafDecoder provides format-agnostic random access to a leaf's points for
// the iterator and Validate. For v2 leaves the coordinate columns are
// decoded once per page.
type leafDecoder struct {
	t     *Tree
	b     []byte
	kind  byte
	arity int
	n     int
	lay   v2Layout
	cols  [][]int64
}

// readLeaf points the decoder at leaf page b, decoding v2 columns.
func (t *Tree) readLeaf(b []byte, d *leafDecoder) error {
	d.t = t
	d.b = b
	d.kind = nodeKind(b)
	d.arity = int(nodeAux(b))
	d.n = nodeCount(b)
	switch d.kind {
	case kindLeaf:
		return nil
	case kindLeafV2:
		if err := parseV2Leaf(b, t.measures, t.payload(), &d.lay); err != nil {
			return err
		}
		for len(d.cols) < d.arity {
			d.cols = append(d.cols, nil)
		}
		for j := 0; j < d.arity; j++ {
			if cap(d.cols[j]) < d.n {
				d.cols[j] = make([]int64, d.n)
			}
			d.cols[j] = d.cols[j][:d.n]
			enc.UnpackColumn(d.lay.col(b, j), d.n, d.lay.desc[j].min, d.lay.desc[j].width, d.cols[j])
		}
		return nil
	default:
		return fmt.Errorf("rtree: unknown leaf format (node kind %d)", d.kind)
	}
}

// count returns the number of points on the decoded leaf.
func (d *leafDecoder) count() int { return d.n }

// point decodes entry i into coords (len dim, zero padded) and measures.
func (d *leafDecoder) point(i int, coords, measures []int64) {
	if d.kind == kindLeaf {
		d.t.leafPoint(d.b, i, coords, measures)
		return
	}
	for j := 0; j < d.arity; j++ {
		coords[j] = d.cols[j][i]
	}
	for j := d.arity; j < d.t.dim; j++ {
		coords[j] = 0
	}
	for m := 0; m < d.t.measures; m++ {
		measures[m] = d.lay.measure(d.b, m, i)
	}
}

// LeafFormatInfo summarizes the leaf formats of a tree, as reported by
// ScrubLeaves.
type LeafFormatInfo struct {
	// V1Leaves and V2Leaves count leaf pages per format.
	V1Leaves uint64 `json:"v1_leaves"`
	V2Leaves uint64 `json:"v2_leaves"`
	// Points is the total number of points across all leaves.
	Points int64 `json:"points"`
}

// Format reports the dominant leaf format of the info: FormatV2 when any v2
// leaf exists, FormatV1 otherwise.
func (i LeafFormatInfo) Format() int {
	if i.V2Leaves > 0 {
		return FormatV2
	}
	return FormatV1
}

// ScrubLeaves walks every leaf page, verifying the format-level invariants
// the structural Validate does not see: node kinds are known, v2 directory
// and column regions stay inside the payload, bit widths are in bounds, and
// every v2 zone map equals the decoded column's actual min/max. It returns
// per-format leaf counts so integrity tools can report what is on disk.
func (t *Tree) ScrubLeaves() (LeafFormatInfo, error) {
	var info LeafFormatInfo
	if t.leafHi < t.leafLo {
		return info, nil
	}
	var lay v2Layout
	var vals []int64
	for pid := t.leafLo; pid <= t.leafHi; pid++ {
		fr, err := t.pool.Fetch(pid)
		if err != nil {
			return info, err
		}
		b := fr.Data()
		switch nodeKind(b) {
		case kindLeaf:
			info.V1Leaves++
			arity := int(nodeAux(b))
			n := nodeCount(b)
			if need := nodeHeaderSize + n*t.leafEntrySize(arity); need > t.payload() {
				t.pool.Unpin(fr, false)
				return info, fmt.Errorf("rtree: leaf %d: %d v1 entries exceed payload", pid, n)
			}
			info.Points += int64(n)
		case kindLeafV2:
			info.V2Leaves++
			if err := parseV2Leaf(b, t.measures, t.payload(), &lay); err != nil {
				t.pool.Unpin(fr, false)
				return info, fmt.Errorf("rtree: leaf %d: %w", pid, err)
			}
			info.Points += int64(lay.n)
			if cap(vals) < lay.n {
				vals = make([]int64, lay.n)
			}
			vals = vals[:lay.n]
			for j := 0; j < lay.arity; j++ {
				d := lay.desc[j]
				enc.UnpackColumn(lay.col(b, j), lay.n, d.min, d.width, vals)
				if lay.n == 0 {
					continue
				}
				mn, mx := vals[0], vals[0]
				for _, v := range vals[1:] {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if mn != d.min || mx != d.max {
					t.pool.Unpin(fr, false)
					return info, fmt.Errorf(
						"rtree: leaf %d column %d: zone map [%d,%d] disagrees with decoded [%d,%d]",
						pid, j, d.min, d.max, mn, mx)
				}
			}
		default:
			t.pool.Unpin(fr, false)
			return info, fmt.Errorf("rtree: leaf %d: unknown leaf format (node kind %d)", pid, nodeKind(b))
		}
		t.pool.Unpin(fr, false)
	}
	return info, nil
}

// RunFormat reports the leaf format of one run (FormatV1 for empty runs,
// whose canonical range holds no pages).
func (t *Tree) RunFormat(run RunInfo) (int, error) {
	if run.FirstLeaf > run.LastLeaf {
		return FormatV1, nil
	}
	fr, err := t.pool.Fetch(run.FirstLeaf)
	if err != nil {
		return 0, err
	}
	defer t.pool.Unpin(fr, false)
	switch nodeKind(fr.Data()) {
	case kindLeaf:
		return FormatV1, nil
	case kindLeafV2:
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("rtree: unknown leaf format (node kind %d)", nodeKind(fr.Data()))
	}
}
