package rtree

import (
	"testing"
)

// buildStatsTree packs one arity-1 run (x in [1,xmax], y implicitly 0) and
// one arity-2 run (the full [1,xmax]×[1,ymax] grid) in the given format —
// the same shared-index-space shape a forest tree has, big enough to span
// multiple leaf pages.
func buildStatsTree(t *testing.T, format, xmax, ymax int) *Tree {
	t.Helper()
	b, err := NewBuilder(newPool(t, 256), 2, Options{Measures: 2, PackFormat: format})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.BeginRun(1); err != nil {
		t.Fatal(err)
	}
	for x := 1; x <= xmax; x++ {
		if err := b.Add([]int64{int64(x)}, []int64{int64(x), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	if err := b.BeginRun(2); err != nil {
		t.Fatal(err)
	}
	for y := 1; y <= ymax; y++ {
		for x := 1; x <= xmax; x++ {
			if err := b.Add([]int64{int64(x), int64(y)}, []int64{int64(x + y), 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestSearchStatsReadSkipAccounting pins the SearchStats contract: read +
// skipped totals the leaf pages the search considered, skipped is the pages
// the zone extents pruned without decoding, and a nil stats pointer changes
// nothing about the results.
func TestSearchStatsReadSkipAccounting(t *testing.T) {
	for _, format := range []int{FormatV1, FormatV2} {
		name := map[int]string{FormatV1: "v1", FormatV2: "v2"}[format]
		t.Run(name, func(t *testing.T) {
			const xmax, ymax = 60, 60
			tree := buildStatsTree(t, format, xmax, ymax)
			info, err := tree.ScrubLeaves()
			if err != nil {
				t.Fatal(err)
			}
			leaves := int64(info.V1Leaves + info.V2Leaves)
			if leaves < 4 {
				t.Fatalf("test tree has only %d leaves; grow the grid", leaves)
			}

			// Full-cover scan (y range includes 0, so the arity-1 run too):
			// every leaf is read, nothing is skipped.
			full := [2][]int64{{0, 0}, {xmax + 1, ymax + 1}}
			var fullSt SearchStats
			n := 0
			if err := tree.SearchWithStats(full[0], full[1], func(_, _ []int64) error {
				n++
				return nil
			}, &fullSt); err != nil {
				t.Fatal(err)
			}
			if want := xmax + xmax*ymax; n != want {
				t.Fatalf("full scan visited %d points, want %d", n, want)
			}
			if fullSt.LeafPagesRead != leaves || fullSt.LeafPagesSkipped != 0 {
				t.Fatalf("full scan stats = %+v, want read=%d skipped=0", fullSt, leaves)
			}

			// A narrow band on y: pack order is y-major, so most leaves are
			// pruned by their zone extent; the survivors are read. The tree is
			// height 2 here, so every leaf is considered exactly once and
			// read + skipped must equal the leaf count.
			band := [2][]int64{{0, 7}, {xmax + 1, 7}}
			var bandSt SearchStats
			n = 0
			if err := tree.SearchWithStats(band[0], band[1], func(_, _ []int64) error {
				n++
				return nil
			}, &bandSt); err != nil {
				t.Fatal(err)
			}
			if n != xmax {
				t.Fatalf("band scan visited %d points, want %d", n, xmax)
			}
			if bandSt.LeafPagesSkipped == 0 {
				t.Fatal("band scan skipped no leaves; zone pruning is not being counted")
			}
			if bandSt.LeafPagesRead == 0 || bandSt.LeafPagesRead >= leaves {
				t.Fatalf("band scan read %d of %d leaves", bandSt.LeafPagesRead, leaves)
			}
			if got := bandSt.LeafPagesRead + bandSt.LeafPagesSkipped; got != leaves {
				t.Fatalf("read+skipped = %d, want leaf count %d", got, leaves)
			}

			// Search (no stats) returns identical results: the stats pointer
			// is observation only.
			m := 0
			if err := tree.Search(band[0], band[1], func(_, _ []int64) error {
				m++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if m != n {
				t.Fatalf("Search returned %d points, SearchWithStats %d", m, n)
			}
		})
	}
}

// TestSearchStatsAdd covers the nil-safe accumulator used when a profile
// spans shards or trees.
func TestSearchStatsAdd(t *testing.T) {
	var nilStats *SearchStats
	nilStats.Add(&SearchStats{LeafPagesRead: 1}) // must not panic
	total := &SearchStats{LeafPagesRead: 1, LeafPagesSkipped: 2}
	total.Add(nil) // must not panic
	total.Add(&SearchStats{LeafPagesRead: 10, LeafPagesSkipped: 20})
	if total.LeafPagesRead != 11 || total.LeafPagesSkipped != 22 {
		t.Fatalf("accumulated stats = %+v", *total)
	}
}
