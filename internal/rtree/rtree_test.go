package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"cubetree/internal/pager"
)

func newPool(t *testing.T, pages int) *pager.Pool {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "rt.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pager.NewPool(f, pages)
	t.Cleanup(func() { p.Close() })
	return p
}

// sortPack sorts 2-field points in pack order (y-major then x), matching
// the paper's R{x,y} example.
func sortPack(points [][]int64) {
	sort.Slice(points, func(i, j int) bool { return PackLess(points[i], points[j]) })
}

func TestPackOrder(t *testing.T) {
	// Paper Table 4: points of V9 sorted (y,x): (1,1),(2,1),(3,1),(1,3),(3,3)
	pts := [][]int64{{3, 1}, {1, 1}, {1, 3}, {3, 3}, {2, 1}}
	sortPack(pts)
	want := [][]int64{{1, 1}, {2, 1}, {3, 1}, {1, 3}, {3, 3}}
	for i := range want {
		if pts[i][0] != want[i][0] || pts[i][1] != want[i][1] {
			t.Fatalf("pack order[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

// buildPaperTree packs the paper's Section 2.4 example: views V8 (arity 1)
// and V9 (arity 2) in one R{x,y} tree with fan-out 3 (Figure 8).
func buildPaperTree(t *testing.T) *Tree {
	t.Helper()
	pool := newPool(t, 64)
	b, err := NewBuilder(pool, 2, Options{Measures: 2, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: V8 sorted points (partkey, sum): 1..6
	v8 := []struct{ x, sum int64 }{
		{1, 102}, {2, 84}, {3, 67}, {4, 15}, {5, 24}, {6, 42},
	}
	if err := b.BeginRun(1); err != nil {
		t.Fatal(err)
	}
	for _, p := range v8 {
		if err := b.Add([]int64{p.x}, []int64{p.sum, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	// Table 4: V9 sorted points ((suppkey,custkey), sum).
	v9 := []struct{ x, y, sum int64 }{
		{1, 1, 24}, {2, 1, 6}, {3, 1, 2}, {1, 3, 11}, {3, 3, 17},
	}
	if err := b.BeginRun(2); err != nil {
		t.Fatal(err)
	}
	for _, p := range v9 {
		if err := b.Add([]int64{p.x, p.y}, []int64{p.sum, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.EndRun(); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPaperFigure8(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Count() != 11 {
		t.Fatalf("Count = %d, want 11", tree.Count())
	}
	// Fan-out 3 with 6+5 points: V8 fills 2 leaves, V9 fills 2 leaves
	// (runs start new leaves), exactly as Figure 8 draws them.
	if got := tree.LeafPages(); got != 4 {
		t.Fatalf("LeafPages = %d, want 4", got)
	}
	runs := tree.Runs()
	if len(runs) != 2 || runs[0].Arity != 1 || runs[1].Arity != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Points != 6 || runs[1].Points != 5 {
		t.Fatalf("run points = %d, %d", runs[0].Points, runs[1].Points)
	}

	// Point query on V8: partkey=4 -> 15.
	var got []int64
	err := tree.Search([]int64{4, 0}, []int64{4, 0}, func(coords, measures []int64) error {
		got = append(got, measures[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("V8 partkey=4 -> %v, want [15]", got)
	}

	// Slice on V9: custkey=3 (y=3, x open >= 1) -> sums 11 and 17.
	var sums []int64
	err = tree.Search([]int64{1, 3}, []int64{math.MaxInt64, 3}, func(coords, measures []int64) error {
		sums = append(sums, measures[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0]+sums[1] != 28 {
		t.Fatalf("V9 custkey=3 -> %v", sums)
	}

	// The V8 region (y=0) never returns V9 points and vice versa.
	n := 0
	tree.Search([]int64{1, 0}, []int64{math.MaxInt64, 0}, func([]int64, []int64) error {
		n++
		return nil
	})
	if n != 6 {
		t.Fatalf("V8 region has %d points, want 6", n)
	}
}

func TestRunIteratorStreamsInOrder(t *testing.T) {
	tree := buildPaperTree(t)
	runs := tree.Runs()
	it := tree.RunIterator(runs[1])
	defer it.Close()
	var xs, ys []int64
	for {
		coords, measures, err := it.Next()
		if Done(err) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, coords[0])
		ys = append(ys, coords[1])
		_ = measures
	}
	wantX := []int64{1, 2, 3, 1, 3}
	wantY := []int64{1, 1, 1, 3, 3}
	for i := range wantX {
		if xs[i] != wantX[i] || ys[i] != wantY[i] {
			t.Fatalf("run point %d = (%d,%d), want (%d,%d)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
}

func TestBuilderRejectsOutOfOrder(t *testing.T) {
	pool := newPool(t, 16)
	b, _ := NewBuilder(pool, 2, Options{})
	b.BeginRun(2)
	if err := b.Add([]int64{5, 5}, []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]int64{4, 5}, []int64{1, 1}); err == nil {
		t.Fatal("accepted out-of-pack-order point")
	}
	if err := b.Add([]int64{5, 5}, []int64{1, 1}); err == nil {
		t.Fatal("accepted duplicate point")
	}
}

func TestBuilderRejectsBadArity(t *testing.T) {
	pool := newPool(t, 16)
	b, _ := NewBuilder(pool, 2, Options{})
	if err := b.BeginRun(3); err == nil {
		t.Fatal("arity above dim accepted")
	}
	b.BeginRun(1)
	if err := b.Add([]int64{1, 2}, []int64{1, 1}); err == nil {
		t.Fatal("wrong-arity point accepted")
	}
	if err := b.Add([]int64{1}, []int64{1}); err == nil {
		t.Fatal("wrong measure count accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	pool := newPool(t, 16)
	b, _ := NewBuilder(pool, 3, Options{})
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Count() != 0 {
		t.Fatal("empty tree has points")
	}
	err = tree.Search([]int64{0, 0, 0}, []int64{10, 10, 10}, func([]int64, []int64) error {
		t.Fatal("match in empty tree")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRun(t *testing.T) {
	pool := newPool(t, 16)
	b, _ := NewBuilder(pool, 2, Options{})
	b.BeginRun(1)
	run, err := b.EndRun()
	if err != nil {
		t.Fatal(err)
	}
	if run.Points != 0 {
		t.Fatal("empty run has points")
	}
	b.BeginRun(2)
	b.Add([]int64{1, 1}, []int64{5, 1})
	b.EndRun()
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	it := tree.RunIterator(run)
	defer it.Close()
	if _, _, err := it.Next(); !Done(err) {
		t.Fatalf("empty run iterator: %v", err)
	}
}

func TestLargePackAndSearch(t *testing.T) {
	pool := newPool(t, 512)
	b, _ := NewBuilder(pool, 3, Options{})
	pts := make([][]int64, 0, 20000)
	r := rand.New(rand.NewSource(5))
	seen := map[[3]int64]bool{}
	for len(pts) < 20000 {
		p := [3]int64{r.Int63n(100) + 1, r.Int63n(100) + 1, r.Int63n(100) + 1}
		if seen[p] {
			continue
		}
		seen[p] = true
		pts = append(pts, []int64{p[0], p[1], p[2]})
	}
	sortPack(pts)
	b.BeginRun(3)
	for _, p := range pts {
		if err := b.Add(p, []int64{p[0] + p[1] + p[2], 1}); err != nil {
			t.Fatal(err)
		}
	}
	b.EndRun()
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() < 2 {
		t.Fatalf("20k points, height %d", tree.Height())
	}
	// Leaf domination: packed trees should be almost all leaves.
	if ratio := float64(tree.LeafPages()) / float64(tree.Pages()); ratio < 0.85 {
		t.Fatalf("leaf page ratio %.2f, want >= 0.85", ratio)
	}

	// Compare several range searches against brute force.
	for trial := 0; trial < 20; trial++ {
		lo := []int64{r.Int63n(80) + 1, r.Int63n(80) + 1, r.Int63n(80) + 1}
		hi := []int64{lo[0] + r.Int63n(20), lo[1] + r.Int63n(20), lo[2] + r.Int63n(20)}
		want := 0
		for _, p := range pts {
			if p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1] && p[2] >= lo[2] && p[2] <= hi[2] {
				want++
			}
		}
		got := 0
		err := tree.Search(lo, hi, func(coords, measures []int64) error {
			if measures[0] != coords[0]+coords[1]+coords[2] {
				t.Fatalf("measure corrupted at %v", coords)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: search found %d, brute force %d", trial, got, want)
		}
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	// The same arity-1 view stored in a dim-4 tree must not cost 4x: leaves
	// store only one coordinate per point.
	build := func(dim int) int64 {
		pool := newPool(t, 256)
		b, _ := NewBuilder(pool, dim, Options{})
		b.BeginRun(1)
		for i := int64(1); i <= 50000; i++ {
			b.Add([]int64{i}, []int64{i, 1})
		}
		b.EndRun()
		tree, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return tree.Bytes()
	}
	b1 := build(1)
	b4 := build(4)
	if float64(b4) > float64(b1)*1.2 {
		t.Fatalf("dim-4 embedding costs %d bytes vs %d at dim-1: compression missing", b4, b1)
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.rt")
	f, _ := pager.Create(path, nil)
	pool := pager.NewPool(f, 64)
	b, _ := NewBuilder(pool, 2, Options{Fanout: 3})
	b.BeginRun(2)
	for i := int64(1); i <= 30; i++ {
		b.Add([]int64{i, 1}, []int64{i * 10, 1})
	}
	b.EndRun()
	tree, _ := b.Finish()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	f2, _ := pager.Open(path, nil)
	pool2 := pager.NewPool(f2, 64)
	defer pool2.Close()
	tree2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Count() != 30 || tree2.Dim() != 2 || len(tree2.Runs()) != 1 {
		t.Fatalf("reopened: count=%d dim=%d runs=%d", tree2.Count(), tree2.Dim(), len(tree2.Runs()))
	}
	if err := tree2.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	tree2.Search([]int64{1, 1}, []int64{math.MaxInt64, 1}, func(_, m []int64) error {
		sum += m[0]
		return nil
	})
	if sum != 10*(30*31/2) {
		t.Fatalf("sum after reopen = %d", sum)
	}
}

func TestFourMeasurePayload(t *testing.T) {
	// The paper's footnote 3: multiple aggregation functions per point.
	pool := newPool(t, 64)
	b, err := NewBuilder(pool, 2, Options{Measures: 4})
	if err != nil {
		t.Fatal(err)
	}
	b.BeginRun(2)
	// payload: sum, count, min, max
	if err := b.Add([]int64{1, 1}, []int64{10, 2, 3, 7}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]int64{2, 1}, []int64{5, 1, 5, 5}); err != nil {
		t.Fatal(err)
	}
	b.EndRun()
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Measures() != 4 {
		t.Fatalf("Measures = %d", tree.Measures())
	}
	var got [][]int64
	err = tree.Search([]int64{1, 1}, []int64{2, 1}, func(coords, measures []int64) error {
		got = append(got, append([]int64(nil), measures...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][2] != 3 || got[0][3] != 7 || got[1][0] != 5 {
		t.Fatalf("measures = %v", got)
	}
	// Merge with a min/max-aware combiner.
	pool2 := newPool(t, 64)
	b2, _ := NewBuilder(pool2, 2, Options{Measures: 4})
	b2.BeginRun(2)
	delta := &SlicePoints{
		Coords:   [][]int64{{1, 1}},
		Measures: [][]int64{{4, 1, 1, 4}},
	}
	combine := func(dst, src []int64) {
		dst[0] += src[0]
		dst[1] += src[1]
		if src[2] < dst[2] {
			dst[2] = src[2]
		}
		if src[3] > dst[3] {
			dst[3] = src[3]
		}
	}
	if err := MergeRun(b2, 2, tree.RunIterator(tree.Runs()[0]), delta, combine); err != nil {
		t.Fatal(err)
	}
	b2.EndRun()
	merged, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var m []int64
	merged.Search([]int64{1, 1}, []int64{1, 1}, func(_, measures []int64) error {
		m = append([]int64(nil), measures...)
		return nil
	})
	if m[0] != 14 || m[1] != 3 || m[2] != 1 || m[3] != 7 {
		t.Fatalf("merged measures = %v", m)
	}
}

// TestPackedSearchEquivalenceQuick: for random point sets, tree search
// matches brute force on random rectangles.
func TestPackedSearchEquivalenceQuick(t *testing.T) {
	f := func(raw []uint16, rect [4]uint8) bool {
		seen := map[[2]int64]bool{}
		var pts [][]int64
		for _, r := range raw {
			p := [2]int64{int64(r%50) + 1, int64(r/50%50) + 1}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, []int64{p[0], p[1]})
			}
		}
		sortPack(pts)
		pool := newPool(t, 64)
		b, _ := NewBuilder(pool, 2, Options{Fanout: 4})
		b.BeginRun(2)
		for _, p := range pts {
			if err := b.Add(p, []int64{1, 1}); err != nil {
				return false
			}
		}
		b.EndRun()
		tree, err := b.Finish()
		if err != nil {
			return false
		}
		lo := []int64{int64(rect[0]%50) + 1, int64(rect[1]%50) + 1}
		hi := []int64{lo[0] + int64(rect[2]%20), lo[1] + int64(rect[3]%20)}
		want := 0
		for _, p := range pts {
			if p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1] {
				want++
			}
		}
		got := 0
		tree.Search(lo, hi, func([]int64, []int64) error { got++; return nil })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
