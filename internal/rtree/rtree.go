// Package rtree implements the packed and compressed R-trees underlying
// Cubetrees (Roussopoulos & Leifker 1985; Roussopoulos, Kotidis &
// Roussopoulos 1997).
//
// Unlike a dynamic R-tree, a packed R-tree is bulk-loaded from points sorted
// in "pack order" — by the last coordinate, then the next-to-last, and so on
// — filling every leaf to capacity with purely sequential writes. Views of
// arity k < dim are embedded by treating their missing coordinates as zero,
// and because packing keeps each view's points in a contiguous run of
// leaves, those zero coordinates are never stored: a leaf records the arity
// of its view and stores only the k useful coordinates per point. This
// compression plus full leaves is what makes the Cubetree organization
// smaller than even an unindexed relational representation of the same
// views.
//
// Each point carries a fixed number of int64 measures (by convention
// measure 0 is SUM and measure 1 is COUNT, from which AVG is derived),
// implementing the paper's footnote that the scheme extends to multiple
// aggregation functions per point.
package rtree

import (
	"encoding/binary"
	"fmt"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

const (
	metaPage = 0
	magic    = 0x43554254 // "CUBT"

	kindInternal = 0
	kindLeaf     = 1

	nodeHeaderSize = 8 // kind u8, arity/level u8, count u16, pad u32

	// maxRuns bounds the number of view runs recorded on the meta page.
	maxRuns = 128
)

// RunInfo describes one view's contiguous run of leaves inside a tree.
type RunInfo struct {
	// Arity is the number of stored coordinates per point in the run.
	Arity int
	// FirstLeaf and LastLeaf delimit the run's leaf pages (inclusive).
	// FirstLeaf > LastLeaf means the run is empty.
	FirstLeaf pager.PageID
	LastLeaf  pager.PageID
	// Points is the number of points in the run.
	Points int64
}

// Tree is a packed R-tree. It is immutable once built; updates produce a new
// tree via merge-packing (see Merge).
type Tree struct {
	pool     *pager.Pool
	dim      int
	measures int
	root     pager.PageID
	height   int // 1 = root is a leaf
	count    int64
	leafLo   pager.PageID // first leaf page (they are contiguous)
	leafHi   pager.PageID // last leaf page
	runs     []RunInfo
	fanout   int // test override, 0 = page capacity
}

// Dim returns the dimensionality of the tree's point space.
func (t *Tree) Dim() int { return t.dim }

// Measures returns the number of measures stored per point.
func (t *Tree) Measures() int { return t.measures }

// Count returns the total number of points.
func (t *Tree) Count() int64 { return t.count }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Runs returns the view runs recorded at build time, in leaf order.
func (t *Tree) Runs() []RunInfo { return append([]RunInfo(nil), t.runs...) }

// Pages returns the total number of pages in the tree's file.
func (t *Tree) Pages() uint32 { return t.pool.File().NumPages() }

// LeafPages returns the number of leaf pages.
func (t *Tree) LeafPages() uint32 {
	if t.leafHi < t.leafLo {
		return 0
	}
	return uint32(t.leafHi - t.leafLo + 1)
}

// Bytes returns the on-disk size of the tree.
func (t *Tree) Bytes() int64 { return t.pool.File().Size() }

// Format reports the tree's leaf format (FormatV1 or FormatV2). The format
// is not stored on the meta page — the layout predates v2 and has no spare
// field — so it is derived from the first leaf's self-describing kind byte.
func (t *Tree) Format() (int, error) {
	if t.leafHi < t.leafLo {
		return FormatV1, nil
	}
	fr, err := t.pool.Fetch(t.leafLo)
	if err != nil {
		return 0, err
	}
	defer t.pool.Unpin(fr, false)
	switch nodeKind(fr.Data()) {
	case kindLeaf:
		return FormatV1, nil
	case kindLeafV2:
		return FormatV2, nil
	default:
		return 0, fmt.Errorf("rtree: unknown leaf format (node kind %d)", nodeKind(fr.Data()))
	}
}

// Pool exposes the tree's buffer pool (used by the forest for flushing).
func (t *Tree) Pool() *pager.Pool { return t.pool }

// Close persists metadata and flushes the pool.
func (t *Tree) Close() error {
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.pool.Flush()
}

// Open loads a packed tree previously built on pool's file.
func Open(pool *pager.Pool) (*Tree, error) {
	fr, err := pool.Fetch(metaPage)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr, false)
	b := fr.Data()
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return nil, fmt.Errorf("rtree: bad magic")
	}
	t := &Tree{
		pool:     pool,
		dim:      int(binary.LittleEndian.Uint32(b[4:])),
		measures: int(binary.LittleEndian.Uint32(b[8:])),
		root:     pager.PageID(binary.LittleEndian.Uint32(b[12:])),
		height:   int(binary.LittleEndian.Uint32(b[16:])),
		count:    int64(binary.LittleEndian.Uint64(b[20:])),
		leafLo:   pager.PageID(binary.LittleEndian.Uint32(b[28:])),
		leafHi:   pager.PageID(binary.LittleEndian.Uint32(b[32:])),
		fanout:   int(binary.LittleEndian.Uint32(b[36:])),
	}
	n := int(binary.LittleEndian.Uint32(b[40:]))
	off := 44
	for i := 0; i < n; i++ {
		t.runs = append(t.runs, RunInfo{
			Arity:     int(b[off]),
			FirstLeaf: pager.PageID(binary.LittleEndian.Uint32(b[off+1:])),
			LastLeaf:  pager.PageID(binary.LittleEndian.Uint32(b[off+5:])),
			Points:    int64(binary.LittleEndian.Uint64(b[off+9:])),
		})
		off += 17
	}
	return t, nil
}

func (t *Tree) syncMeta() error {
	fr, err := t.pool.Fetch(metaPage)
	if err != nil {
		return err
	}
	b := fr.Data()
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], uint32(t.dim))
	binary.LittleEndian.PutUint32(b[8:], uint32(t.measures))
	binary.LittleEndian.PutUint32(b[12:], uint32(t.root))
	binary.LittleEndian.PutUint32(b[16:], uint32(t.height))
	binary.LittleEndian.PutUint64(b[20:], uint64(t.count))
	binary.LittleEndian.PutUint32(b[28:], uint32(t.leafLo))
	binary.LittleEndian.PutUint32(b[32:], uint32(t.leafHi))
	binary.LittleEndian.PutUint32(b[36:], uint32(t.fanout))
	if len(t.runs) > maxRuns {
		t.pool.Unpin(fr, false)
		return fmt.Errorf("rtree: too many runs (%d)", len(t.runs))
	}
	binary.LittleEndian.PutUint32(b[40:], uint32(len(t.runs)))
	off := 44
	for _, r := range t.runs {
		b[off] = byte(r.Arity)
		binary.LittleEndian.PutUint32(b[off+1:], uint32(r.FirstLeaf))
		binary.LittleEndian.PutUint32(b[off+5:], uint32(r.LastLeaf))
		binary.LittleEndian.PutUint64(b[off+9:], uint64(r.Points))
		off += 17
	}
	t.pool.Unpin(fr, true)
	return nil
}

// --- node layout ------------------------------------------------------------

func initNode(b []byte, kind, aux byte) {
	for i := 0; i < nodeHeaderSize; i++ {
		b[i] = 0
	}
	b[0] = kind
	b[1] = aux
}

func nodeKind(b []byte) byte       { return b[0] }
func nodeAux(b []byte) byte        { return b[1] } // arity for leaves, level for internal
func nodeCount(b []byte) int       { return int(binary.LittleEndian.Uint16(b[2:])) }
func setNodeCount(b []byte, n int) { binary.LittleEndian.PutUint16(b[2:], uint16(n)) }

// leafEntrySize is the bytes per point on a leaf of the given arity.
func (t *Tree) leafEntrySize(arity int) int { return enc.TupleSize(arity + t.measures) }

// payload is the usable bytes per page: the checksum trailer (absent on
// legacy files) is reserved by the pager. Reads never depend on capacity —
// nodes carry their own entry counts — so both formats stay readable.
func (t *Tree) payload() int { return t.pool.File().PayloadSize() }

// leafCap returns the point capacity of a leaf of the given arity.
func (t *Tree) leafCap(arity int) int {
	c := (t.payload() - nodeHeaderSize) / t.leafEntrySize(arity)
	if t.fanout > 1 && c > t.fanout {
		c = t.fanout
	}
	return c
}

// innerEntrySize is the bytes per child entry of an internal node: an MBR of
// dim (lo,hi) pairs plus a child page id.
func (t *Tree) innerEntrySize() int { return t.dim*16 + 4 }

// innerCap returns the child capacity of an internal node.
func (t *Tree) innerCap() int {
	c := (t.payload() - nodeHeaderSize) / t.innerEntrySize()
	if t.fanout > 1 && c > t.fanout {
		c = t.fanout
	}
	return c
}

// leafPoint decodes entry i of leaf b into coords (len dim, zero padded) and
// measures (len measures). Both must be caller-provided slices.
func (t *Tree) leafPoint(b []byte, i int, coords, measures []int64) {
	arity := int(nodeAux(b))
	es := t.leafEntrySize(arity)
	off := nodeHeaderSize + i*es
	for j := 0; j < arity; j++ {
		coords[j] = enc.Field(b[off:], j)
	}
	for j := arity; j < t.dim; j++ {
		coords[j] = 0
	}
	for j := 0; j < t.measures; j++ {
		measures[j] = enc.Field(b[off:], arity+j)
	}
}

// innerEntry decodes entry i of internal node b.
func (t *Tree) innerEntry(b []byte, i int, lo, hi []int64) pager.PageID {
	es := t.innerEntrySize()
	off := nodeHeaderSize + i*es
	for j := 0; j < t.dim; j++ {
		lo[j] = enc.Field(b[off:], 2*j)
		hi[j] = enc.Field(b[off:], 2*j+1)
	}
	return pager.PageID(binary.LittleEndian.Uint32(b[off+t.dim*16:]))
}

func (t *Tree) setInnerEntry(b []byte, i int, lo, hi []int64, child pager.PageID) {
	es := t.innerEntrySize()
	off := nodeHeaderSize + i*es
	for j := 0; j < t.dim; j++ {
		enc.PutField(b[off:], 2*j, lo[j])
		enc.PutField(b[off:], 2*j+1, hi[j])
	}
	binary.LittleEndian.PutUint32(b[off+t.dim*16:], uint32(child))
}

// --- search -----------------------------------------------------------------

// Visit is called for every point matched by a search. coords has the
// tree's full dimensionality with zero padding; measures holds the point's
// aggregate payload. Both slices are reused between calls.
type Visit func(coords []int64, measures []int64) error

// SearchStats counts one search's leaf-page traffic for EXPLAIN-ANALYZE
// style profiles. A leaf is "read" when its rows (or packed columns) were
// actually evaluated against the rectangle, and "skipped" when the page was
// ruled out by its zone extent without decoding any point: pruned at its
// parent by the entry rectangle (the leaf's zone boundaries hoisted into the
// index), or pruned after a fetch by a v2 zone map, the arity check, or an
// empty page. Read + skipped therefore totals the leaf pages the search
// considered, and skipped is the pages the zone maps saved. Counters
// accumulate across calls so one stats value can cover a multi-tree plan.
type SearchStats struct {
	LeafPagesRead    int64
	LeafPagesSkipped int64
}

// Add accumulates other into s (nil-safe on both sides).
func (s *SearchStats) Add(other *SearchStats) {
	if s == nil || other == nil {
		return
	}
	s.LeafPagesRead += other.LeafPagesRead
	s.LeafPagesSkipped += other.LeafPagesSkipped
}

// Search visits every point p with lo[j] <= p[j] <= hi[j] for all j.
func (t *Tree) Search(lo, hi []int64, fn Visit) error {
	return t.SearchWithStats(lo, hi, fn, nil)
}

// SearchWithStats is Search, additionally accumulating leaf read/skip counts
// into st when st is non-nil. A nil st makes it identical to Search: the only
// extra cost on the unprofiled path is one pointer test per leaf page.
func (t *Tree) SearchWithStats(lo, hi []int64, fn Visit, st *SearchStats) error {
	if len(lo) != t.dim || len(hi) != t.dim {
		return fmt.Errorf("rtree: search rectangle dim %d/%d, want %d", len(lo), len(hi), t.dim)
	}
	if t.count == 0 {
		return nil
	}
	coords := make([]int64, t.dim)
	measures := make([]int64, t.measures)
	elo := make([]int64, t.dim)
	ehi := make([]int64, t.dim)
	scratch := scratchPool.Get().(*scanScratch)
	scratch.stats = st
	err := t.search(t.root, t.height, lo, hi, coords, measures, elo, ehi, scratch, fn)
	scratch.stats = nil // never leak the caller's pointer through the pool
	scratchPool.Put(scratch)
	return err
}

func (t *Tree) search(pid pager.PageID, level int, lo, hi, coords, measures, elo, ehi []int64, scratch *scanScratch, fn Visit) error {
	fr, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	b := fr.Data()
	n := nodeCount(b)
	if level == 1 {
		switch nodeKind(b) {
		case kindLeaf:
			// v1 leaves carry no zone maps: every visited leaf is a read.
			if scratch.stats != nil {
				scratch.stats.LeafPagesRead++
			}
			for i := 0; i < n; i++ {
				t.leafPoint(b, i, coords, measures)
				if pointInRect(coords, lo, hi) {
					if err := fn(coords, measures); err != nil {
						t.pool.Unpin(fr, false)
						return err
					}
				}
			}
		case kindLeafV2:
			if err := t.searchLeafV2(b, lo, hi, scratch, coords, measures, fn); err != nil {
				t.pool.Unpin(fr, false)
				return err
			}
		default:
			t.pool.Unpin(fr, false)
			return fmt.Errorf("rtree: corrupt node %d: unknown leaf format (kind %d)", pid, nodeKind(b))
		}
		t.pool.Unpin(fr, false)
		return nil
	}
	if nodeKind(b) != kindInternal {
		t.pool.Unpin(fr, false)
		return fmt.Errorf("rtree: corrupt node %d: expected internal", pid)
	}
	// Collect matching children before recursing so the parent page is not
	// pinned during the whole subtree walk.
	var children []pager.PageID
	for i := 0; i < n; i++ {
		child := t.innerEntry(b, i, elo, ehi)
		if rectsIntersect(elo, ehi, lo, hi) {
			children = append(children, child)
		} else if level == 2 && scratch.stats != nil {
			// The rejected child is a leaf page: its entry rectangle is the
			// leaf's zone extent, so this is a leaf page skipped whole
			// without even being fetched.
			scratch.stats.LeafPagesSkipped++
		}
	}
	t.pool.Unpin(fr, false)
	for _, c := range children {
		if err := t.search(c, level-1, lo, hi, coords, measures, elo, ehi, scratch, fn); err != nil {
			return err
		}
	}
	return nil
}

func pointInRect(p, lo, hi []int64) bool {
	for j := range p {
		if p[j] < lo[j] || p[j] > hi[j] {
			return false
		}
	}
	return true
}

func rectsIntersect(alo, ahi, blo, bhi []int64) bool {
	for j := range alo {
		if ahi[j] < blo[j] || bhi[j] < alo[j] {
			return false
		}
	}
	return true
}

// Validate checks packing invariants: every leaf in [leafLo, leafHi], leaves
// sorted in pack order within each run, full MBR containment, and the meta
// point count. Tests call it after every build and merge.
func (t *Tree) Validate() error {
	if t.count == 0 {
		return nil
	}
	// MBR containment and level structure.
	var walk func(pid pager.PageID, level int, lo, hi []int64) error
	walk = func(pid pager.PageID, level int, lo, hi []int64) error {
		fr, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		defer t.pool.Unpin(fr, false)
		b := fr.Data()
		n := nodeCount(b)
		if level == 1 {
			if nodeKind(b) != kindLeaf && nodeKind(b) != kindLeafV2 {
				return fmt.Errorf("rtree: node %d at leaf level is internal", pid)
			}
			if pid < t.leafLo || pid > t.leafHi {
				return fmt.Errorf("rtree: leaf %d outside leaf range [%d,%d]", pid, t.leafLo, t.leafHi)
			}
			var dec leafDecoder
			if err := t.readLeaf(b, &dec); err != nil {
				return fmt.Errorf("rtree: leaf %d: %w", pid, err)
			}
			coords := make([]int64, t.dim)
			meas := make([]int64, t.measures)
			for i := 0; i < n; i++ {
				dec.point(i, coords, meas)
				if lo != nil && !pointInRect(coords, lo, hi) {
					return fmt.Errorf("rtree: leaf %d point %v escapes parent MBR", pid, coords)
				}
			}
			return nil
		}
		if nodeKind(b) != kindInternal {
			return fmt.Errorf("rtree: node %d at level %d is a leaf", pid, level)
		}
		elo := make([]int64, t.dim)
		ehi := make([]int64, t.dim)
		for i := 0; i < n; i++ {
			child := t.innerEntry(b, i, elo, ehi)
			if lo != nil && !rectContains(lo, hi, elo, ehi) {
				return fmt.Errorf("rtree: node %d entry %d MBR escapes parent", pid, i)
			}
			if err := walk(child, level-1, append([]int64(nil), elo...), append([]int64(nil), ehi...)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height, nil, nil); err != nil {
		return err
	}
	// Run ordering and count.
	var total int64
	for _, run := range t.runs {
		prev := make([]int64, t.dim)
		first := true
		it := t.RunIterator(run)
		for {
			coords, _, err := it.Next()
			if err != nil {
				if err == ErrDone {
					break
				}
				return err
			}
			if !first && !packLess(prev, coords) {
				return fmt.Errorf("rtree: run (arity %d) out of pack order: %v !< %v", run.Arity, prev, coords)
			}
			copy(prev, coords)
			first = false
			total++
		}
		it.Close()
	}
	if total != t.count {
		return fmt.Errorf("rtree: count mismatch: meta %d, runs %d", t.count, total)
	}
	return nil
}

func rectContains(plo, phi, clo, chi []int64) bool {
	for j := range plo {
		if clo[j] < plo[j] || chi[j] > phi[j] {
			return false
		}
	}
	return true
}

// packLess reports whether a precedes b in pack order (last coordinate
// major, as the paper sorts R{x,y} points by y then x).
func packLess(a, b []int64) bool {
	for j := len(a) - 1; j >= 0; j-- {
		if a[j] != b[j] {
			return a[j] < b[j]
		}
	}
	return false
}

// PackLess exposes the pack order for callers preparing sorted input.
func PackLess(a, b []int64) bool { return packLess(a, b) }
