package enc

import (
	"math"
	"math/rand"
	"testing"
)

func TestBitWidth64(t *testing.T) {
	cases := []struct {
		min, max int64
		want     uint
	}{
		{0, 0, 0},
		{5, 5, 0},
		{0, 1, 1},
		{0, 255, 8},
		{0, 256, 9},
		{-1, 0, 1},
		{-128, 127, 8},
		{math.MinInt64, math.MaxInt64, 64},
		{math.MinInt64, 0, 64},
		{-1, math.MaxInt64, 64},
	}
	for _, c := range cases {
		if got := BitWidth64(c.min, c.max); got != c.want {
			t.Errorf("BitWidth64(%d, %d) = %d, want %d", c.min, c.max, got, c.want)
		}
	}
}

func minMax(vals []int64) (int64, int64) {
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func roundTrip(t *testing.T, vals []int64) {
	t.Helper()
	lo, hi := minMax(vals)
	width := BitWidth64(lo, hi)
	buf := AppendPackedColumn(nil, vals, lo, width)
	if len(buf) != PackedColumnBytes(len(vals), width) {
		t.Fatalf("packed %d bytes, want %d", len(buf), PackedColumnBytes(len(vals), width))
	}
	out := make([]int64, len(vals))
	UnpackColumn(buf, len(vals), lo, width, out)
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("width %d: value %d = %d, want %d", width, i, out[i], vals[i])
		}
	}
	for i := range vals {
		if got := PackedValue(buf, i, lo, width); got != vals[i] {
			t.Fatalf("width %d: PackedValue(%d) = %d, want %d", width, i, got, vals[i])
		}
	}
}

func TestColumnRoundTripWidths(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for width := 0; width <= 64; width++ {
		n := 1 + r.Intn(300)
		vals := make([]int64, n)
		base := r.Int63n(1 << 20)
		for i := range vals {
			if width == 0 {
				vals[i] = base
				continue
			}
			d := r.Uint64()
			if width < 64 {
				d &= 1<<uint(width) - 1
			}
			vals[i] = int64(uint64(base) + d)
		}
		roundTrip(t, vals)
	}
}

func TestColumnRoundTripEdges(t *testing.T) {
	cases := [][]int64{
		{0},
		{math.MaxInt64},
		{math.MinInt64},
		{math.MinInt64, math.MaxInt64},
		{-5, -5, -5, -5},
		{-1000, 1000},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{7, 7, 7, 7, 7, 7, 7, 9}, // run of equal values + one outlier
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestFilterPackedRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(200)
		vals := make([]int64, n)
		span := int64(1) << uint(r.Intn(20))
		base := r.Int63n(1<<30) - (1 << 29)
		for i := range vals {
			vals[i] = base + r.Int63n(span)
		}
		lo, hi := minMax(vals)
		width := BitWidth64(lo, hi)
		buf := AppendPackedColumn(nil, vals, lo, width)

		qlo := base + r.Int63n(span*2) - span/2
		qhi := qlo + r.Int63n(span)
		if trial%10 == 0 {
			qhi = qlo - 1 // empty range
		}
		sel := make([]uint64, SelectionWords(n))
		FillSelection(sel, n)
		FilterPackedRange(buf, n, lo, width, qlo, qhi, sel)
		for i := 0; i < n; i++ {
			want := vals[i] >= qlo && vals[i] <= qhi
			got := sel[i/64]&(1<<uint(i%64)) != 0
			if got != want {
				t.Fatalf("trial %d: row %d (v=%d, range [%d,%d]): sel=%v want %v",
					trial, i, vals[i], qlo, qhi, got, want)
			}
		}
		// Selection-vector decode fills exactly the surviving rows.
		out := make([]int64, n)
		for i := range out {
			out[i] = math.MinInt64 // sentinel
		}
		UnpackColumnSelect(buf, n, lo, width, sel, out)
		for i := 0; i < n; i++ {
			if sel[i/64]&(1<<uint(i%64)) != 0 {
				if out[i] != vals[i] {
					t.Fatalf("trial %d: selected row %d decoded %d, want %d", trial, i, out[i], vals[i])
				}
			} else if out[i] != math.MinInt64 {
				t.Fatalf("trial %d: unselected row %d was written (%d)", trial, i, out[i])
			}
		}
	}
}

func TestFilterPackedRangeIntersects(t *testing.T) {
	// Filtering twice with two ranges must intersect, not replace.
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	lo, hi := minMax(vals)
	width := BitWidth64(lo, hi)
	buf := AppendPackedColumn(nil, vals, lo, width)
	sel := make([]uint64, 1)
	FillSelection(sel, len(vals))
	FilterPackedRange(buf, len(vals), lo, width, 3, 8, sel)
	FilterPackedRange(buf, len(vals), lo, width, 1, 5, sel)
	for i, v := range vals {
		want := v >= 3 && v <= 5
		if got := sel[0]&(1<<uint(i)) != 0; got != want {
			t.Fatalf("row %d: sel=%v want %v", i, got, want)
		}
	}
	if SelectionEmpty(sel) {
		t.Fatal("selection should not be empty")
	}
	FilterPackedRange(buf, len(vals), lo, width, 100, 200, sel)
	if !SelectionEmpty(sel) {
		t.Fatal("selection should be empty after disjoint filter")
	}
}

func TestColumnBuilder(t *testing.T) {
	var c ColumnBuilder
	if c.Width() != 0 || c.EncodedBytes() != 0 {
		t.Fatal("empty builder should encode to nothing")
	}
	for _, v := range []int64{10, -3, 25, 25, 7} {
		c.Append(v)
	}
	if c.Min() != -3 || c.Max() != 25 {
		t.Fatalf("zone map [%d,%d], want [-3,25]", c.Min(), c.Max())
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	buf := make([]byte, c.EncodedBytes())
	c.Encode(buf)
	out := make([]int64, c.Len())
	UnpackColumn(buf, c.Len(), c.Min(), c.Width(), out)
	want := []int64{10, -3, 25, 25, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("decoded %v, want %v", out, want)
		}
	}

	// PopLast recomputes the zone map.
	c.PopLast() // drop 7
	c.PopLast() // drop 25
	c.PopLast() // drop 25
	if c.Min() != -3 || c.Max() != 10 {
		t.Fatalf("after pops zone map [%d,%d], want [-3,10]", c.Min(), c.Max())
	}
	c.Reset()
	if c.Len() != 0 || c.Width() != 0 {
		t.Fatal("Reset did not empty the builder")
	}
	c.Append(5)
	c.PopLast()
	if c.Min() != 0 || c.Max() != 0 || c.Len() != 0 {
		t.Fatal("PopLast to empty should zero the zone map")
	}
}
