package enc

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzColumnBlock round-trips the column codec over arbitrary value streams:
// the input bytes are cut into int64s (with a leading mode byte mixing in
// small-delta and run-of-equal shapes), packed at the tightest width, fully
// decoded, randomly accessed, range-filtered and select-decoded, and every
// path must agree with the plain values.
func FuzzColumnBlock(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0})
	// Negatives and extremes, in raw-int64 mode.
	minV, maxV := int64(math.MinInt64), int64(math.MaxInt64)
	f.Add(append([]byte{0},
		binary.LittleEndian.AppendUint64(
			binary.LittleEndian.AppendUint64(nil, uint64(minV)),
			uint64(maxV))...))
	// A run of equal values.
	f.Add([]byte{3, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		mode := data[0]
		data = data[1:]
		var vals []int64
		switch mode % 3 {
		case 0: // raw int64s
			for len(data) >= 8 {
				vals = append(vals, int64(binary.LittleEndian.Uint64(data)))
				data = data[8:]
			}
		case 1: // small deltas from a base, runs of equal bytes become runs of equal values
			base := int64(-17)
			for _, b := range data {
				base += int64(b) - 128
				vals = append(vals, base)
			}
		default: // repeated single value
			v := int64(7)
			if len(data) >= 8 {
				v = int64(binary.LittleEndian.Uint64(data))
				data = data[8:]
			}
			for range data {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return
		}
		lo, hi := minMax(vals)
		width := BitWidth64(lo, hi)
		buf := AppendPackedColumn(nil, vals, lo, width)
		if want := PackedColumnBytes(len(vals), width); len(buf) != want {
			t.Fatalf("packed %d bytes, want %d", len(buf), want)
		}
		out := make([]int64, len(vals))
		UnpackColumn(buf, len(vals), lo, width, out)
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("UnpackColumn[%d] = %d, want %d (width %d)", i, out[i], vals[i], width)
			}
			if got := PackedValue(buf, i, lo, width); got != vals[i] {
				t.Fatalf("PackedValue(%d) = %d, want %d (width %d)", i, got, vals[i], width)
			}
		}
		// Filter with a range derived from the data, check against brute force.
		qlo, qhi := lo, hi
		if len(vals) >= 2 {
			qlo, qhi = vals[0], vals[len(vals)/2]
			if qhi < qlo {
				qlo, qhi = qhi, qlo
			}
		}
		sel := make([]uint64, SelectionWords(len(vals)))
		FillSelection(sel, len(vals))
		FilterPackedRange(buf, len(vals), lo, width, qlo, qhi, sel)
		got := make([]int64, len(vals))
		copy(got, out) // pre-fill so unselected slots hold the right value trivially
		UnpackColumnSelect(buf, len(vals), lo, width, sel, got)
		for i, v := range vals {
			want := v >= qlo && v <= qhi
			if isSel := sel[i/64]&(1<<uint(i%64)) != 0; isSel != want {
				t.Fatalf("filter row %d (v=%d, [%d,%d]) = %v, want %v", i, v, qlo, qhi, isSel, want)
			}
			if got[i] != v {
				t.Fatalf("select-decode row %d = %d, want %d", i, got[i], v)
			}
		}
	})
}
