package enc

import (
	"encoding/binary"
	"testing"
)

// appendTuplePerField is the pre-optimization AppendTuple: one temporary
// buffer append per field. Kept as the benchmark baseline so the single-grow
// rewrite's win stays measurable.
func appendTuplePerField(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		var b [FieldSize]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

var benchTuple = []int64{17, -3, 99999, 1, 7}

func BenchmarkAppendTuple(b *testing.B) {
	b.Run("single-grow", func(b *testing.B) {
		b.ReportAllocs()
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst = AppendTuple(dst[:0], benchTuple)
		}
	})
	b.Run("per-field-baseline", func(b *testing.B) {
		b.ReportAllocs()
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst = appendTuplePerField(dst[:0], benchTuple)
		}
	})
	// Growing from empty every iteration shows the allocation-count win: the
	// per-field version grows the slice up to len(vals) times, the
	// single-grow version exactly once.
	b.Run("single-grow-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = AppendTuple(nil, benchTuple)
		}
	})
	b.Run("per-field-baseline-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = appendTuplePerField(nil, benchTuple)
		}
	})
}

func BenchmarkColumnCodec(b *testing.B) {
	const n = 400
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(1000 + i%97)
	}
	lo, hi := minMax(vals)
	width := BitWidth64(lo, hi)
	buf := AppendPackedColumn(nil, vals, lo, width)
	out := make([]int64, n)
	b.Run("pack", func(b *testing.B) {
		b.SetBytes(n * 8)
		dst := make([]byte, PackedColumnBytes(n, width))
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = 0
			}
			PackColumn(dst, vals, lo, width)
		}
	})
	b.Run("unpack", func(b *testing.B) {
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			UnpackColumn(buf, n, lo, width, out)
		}
	})
	b.Run("filter", func(b *testing.B) {
		b.SetBytes(n * 8)
		sel := make([]uint64, SelectionWords(n))
		for i := 0; i < b.N; i++ {
			FillSelection(sel, n)
			FilterPackedRange(buf, n, lo, width, 1010, 1050, sel)
		}
	})
}
