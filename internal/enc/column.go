// Column block codec: frame-of-reference delta encoding with bit packing.
//
// A column block stores n int64 values as (v - base) deltas of a fixed bit
// width, packed LSB-first into a contiguous bit stream. The base is the
// column minimum, so deltas are non-negative and the width is
// bits(max - min); a run of equal values packs to width 0 and costs no data
// bytes at all. Arithmetic is done on uint64 two's-complement images, so the
// codec is exact for the full int64 range (including blocks spanning
// negative and positive values, whose delta range can exceed MaxInt64).
//
// The codec is deliberately dumb about layout: callers (the v2 R-tree leaf
// format, tests) own headers, directories and zone maps, and hand this
// package exactly the packed bytes of one column. Decoding offers three
// shapes matched to the leaf scan's phases: full decode (UnpackColumn),
// predicate evaluation on packed data into a selection bitmap
// (FilterPackedRange), and late materialization of only the selected rows
// (UnpackColumnSelect).
package enc

import (
	"encoding/binary"
	"math/bits"
)

// BitWidth64 returns the number of bits needed to store any value in
// [min, max] as a delta from min. The result is 0 when min == max and at
// most 64.
func BitWidth64(min, max int64) uint {
	return uint(bits.Len64(uint64(max) - uint64(min)))
}

// PackedColumnBytes returns the encoded size of n values at the given bit
// width, rounded up to whole bytes.
func PackedColumnBytes(n int, width uint) int {
	return (n*int(width) + 7) / 8
}

// widthMask returns a mask of the low width bits (width <= 64).
func widthMask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<width - 1
}

// PackColumn encodes vals as base-relative deltas of the given width into
// dst, which must hold PackedColumnBytes(len(vals), width) ZEROED bytes (the
// packer ORs bits in). Every value must satisfy v >= base and
// v-base < 2^width; PackColumn does not validate, garbage in is garbage out.
func PackColumn(dst []byte, vals []int64, base int64, width uint) {
	if width == 0 {
		return
	}
	bitPos := 0
	for _, v := range vals {
		d := uint64(v) - uint64(base)
		off := bitPos >> 3
		shift := uint(bitPos & 7)
		lo := d << shift
		nbytes := (int(shift) + int(width) + 7) / 8
		for k := 0; k < nbytes && k < 8; k++ {
			dst[off+k] |= byte(lo >> (8 * k))
		}
		if shift > 0 && shift+width > 64 {
			dst[off+8] |= byte(d >> (64 - shift))
		}
		bitPos += int(width)
	}
}

// AppendPackedColumn appends the packed encoding of vals to dst and returns
// the extended slice.
func AppendPackedColumn(dst []byte, vals []int64, base int64, width uint) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, PackedColumnBytes(len(vals), width))...)
	PackColumn(dst[n:], vals, base, width)
	return dst
}

// extractBits reads width bits starting at bitPos from src. src needs only
// hold the packed stream itself; reads near the end fall back to a
// byte-accumulation path so no padding is required after the block.
func extractBits(src []byte, bitPos int, width uint, mask uint64) uint64 {
	off := bitPos >> 3
	shift := uint(bitPos & 7)
	if off+8 <= len(src) {
		w := binary.LittleEndian.Uint64(src[off:]) >> shift
		if shift+width > 64 && off+8 < len(src) {
			w |= uint64(src[off+8]) << (64 - shift)
		}
		return w & mask
	}
	var w uint64
	for k := len(src) - 1; k >= off; k-- {
		w = w<<8 | uint64(src[k])
	}
	return (w >> shift) & mask
}

// UnpackColumn decodes n values from src into out[:n].
func UnpackColumn(src []byte, n int, base int64, width uint, out []int64) {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = base
		}
		return
	}
	mask := widthMask(width)
	bitPos := 0
	for i := 0; i < n; i++ {
		out[i] = int64(uint64(base) + extractBits(src, bitPos, width, mask))
		bitPos += int(width)
	}
}

// PackedValue decodes value i of a packed column (random access).
func PackedValue(src []byte, i int, base int64, width uint) int64 {
	if width == 0 {
		return base
	}
	return int64(uint64(base) + extractBits(src, i*int(width), width, widthMask(width)))
}

// SelectionWords returns the number of uint64 words a selection bitmap over
// n rows needs.
func SelectionWords(n int) int { return (n + 63) / 64 }

// FillSelection sets the first n bits of sel (and clears any tail bits of
// the last word), the all-rows-pass starting state of a leaf scan.
func FillSelection(sel []uint64, n int) {
	for i := range sel {
		sel[i] = ^uint64(0)
	}
	if tail := uint(n & 63); tail != 0 && len(sel) > 0 {
		sel[len(sel)-1] = 1<<tail - 1
	}
}

// SelectionEmpty reports whether no bit of sel is set.
func SelectionEmpty(sel []uint64) bool {
	for _, w := range sel {
		if w != 0 {
			return false
		}
	}
	return true
}

// FilterPackedRange evaluates lo <= v <= hi over a packed column and clears
// the selection bit of every row that fails, evaluating only rows still
// selected. The comparison happens in delta space — the base is subtracted
// from the bounds once, not from every row. Rows past n are ignored.
func FilterPackedRange(src []byte, n int, base int64, width uint, lo, hi int64, sel []uint64) {
	if hi < lo {
		for i := range sel {
			sel[i] = 0
		}
		return
	}
	// Map bounds into delta space, clamping to the representable range.
	var dlo, dhi uint64
	if lo > base {
		dlo = uint64(lo) - uint64(base)
	}
	maxDelta := widthMask(width)
	if hi >= base {
		dhi = uint64(hi) - uint64(base)
		if dhi > maxDelta {
			dhi = maxDelta
		}
	} else {
		// hi < base: nothing can pass.
		for i := range sel {
			sel[i] = 0
		}
		return
	}
	if dlo > maxDelta {
		for i := range sel {
			sel[i] = 0
		}
		return
	}
	if width == 0 {
		// Single value 0; dlo == 0 means it passes (dhi >= dlo held above).
		if dlo > 0 {
			for i := range sel {
				sel[i] = 0
			}
		}
		return
	}
	mask := widthMask(width)
	for wi := range sel {
		if sel[wi] == 0 {
			continue
		}
		row0 := wi * 64
		cnt := n - row0
		if cnt <= 0 {
			break
		}
		if cnt > 64 {
			cnt = 64
		}
		// Decode the word's rows with a sequential bit cursor and build the
		// pass mask in one tight loop; evaluating a skipped row costs less
		// than the per-bit bookkeeping of chasing the selection. Widths up to
		// 57 fit any 8-byte load (shift <= 7), so the fast path can read a
		// whole word per row as long as the last row's load stays in bounds.
		bitPos := row0 * int(width)
		var pass uint64
		if width <= 57 && (bitPos+(cnt-1)*int(width))>>3+8 <= len(src) {
			for i := 0; i < cnt; i++ {
				d := binary.LittleEndian.Uint64(src[bitPos>>3:]) >> uint(bitPos&7) & mask
				if d-dlo <= dhi-dlo {
					pass |= 1 << uint(i)
				}
				bitPos += int(width)
			}
		} else {
			for i := 0; i < cnt; i++ {
				d := extractBits(src, bitPos, width, mask)
				if d-dlo <= dhi-dlo {
					pass |= 1 << uint(i)
				}
				bitPos += int(width)
			}
		}
		sel[wi] &= pass
	}
}

// UnpackColumnSelect decodes only the selected rows of a packed column into
// their positions of out (unselected slots are left untouched). This is the
// late-materialization decode: after the predicate columns have shrunk the
// selection, the remaining columns pay only for surviving rows.
func UnpackColumnSelect(src []byte, n int, base int64, width uint, sel []uint64, out []int64) {
	if width == 0 {
		for wi := range sel {
			w := sel[wi]
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				w &^= 1 << uint(bit)
				if i := wi*64 + bit; i < n {
					out[i] = base
				}
			}
		}
		return
	}
	mask := widthMask(width)
	for wi := range sel {
		w := sel[wi]
		if w == 0 {
			continue
		}
		row0 := wi * 64
		// Dense word: decode its 64 rows with a sequential bit cursor, the
		// same fast path FilterPackedRange uses. A column the zone map proved
		// fully inside the query never shrinks the selection, so this is the
		// common shape for deferred columns.
		if w == ^uint64(0) && row0+64 <= n && width <= 57 {
			bitPos := row0 * int(width)
			if (bitPos+63*int(width))>>3+8 <= len(src) {
				for i := 0; i < 64; i++ {
					out[row0+i] = int64(uint64(base) + binary.LittleEndian.Uint64(src[bitPos>>3:])>>uint(bitPos&7)&mask)
					bitPos += int(width)
				}
				continue
			}
		}
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			i := row0 + bit
			if i >= n {
				return
			}
			out[i] = int64(uint64(base) + extractBits(src, i*int(width), width, mask))
		}
	}
}

// ColumnBuilder accumulates one column's values and tracks the min/max zone
// map, answering the encoded size so a page builder can decide when a leaf
// is full. Appending never allocates beyond the value buffer, and Reset
// reuses it for the next leaf.
type ColumnBuilder struct {
	vals     []int64
	min, max int64
}

// Append adds v to the column.
func (c *ColumnBuilder) Append(v int64) {
	if len(c.vals) == 0 {
		c.min, c.max = v, v
	} else {
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
	c.vals = append(c.vals, v)
}

// PopLast removes the most recently appended value, recomputing the zone
// map. Page builders use it when the value that overflowed the page must
// move to the next leaf.
func (c *ColumnBuilder) PopLast() {
	c.vals = c.vals[:len(c.vals)-1]
	if len(c.vals) == 0 {
		c.min, c.max = 0, 0
		return
	}
	c.min, c.max = c.vals[0], c.vals[0]
	for _, v := range c.vals[1:] {
		if v < c.min {
			c.min = v
		}
		if v > c.max {
			c.max = v
		}
	}
}

// Len returns the number of appended values.
func (c *ColumnBuilder) Len() int { return len(c.vals) }

// Min returns the column minimum (0 when empty).
func (c *ColumnBuilder) Min() int64 { return c.min }

// Max returns the column maximum (0 when empty).
func (c *ColumnBuilder) Max() int64 { return c.max }

// Width returns the bit width the column packs to.
func (c *ColumnBuilder) Width() uint {
	if len(c.vals) == 0 {
		return 0
	}
	return BitWidth64(c.min, c.max)
}

// EncodedBytes returns the packed size of the column at its current width.
func (c *ColumnBuilder) EncodedBytes() int {
	return PackedColumnBytes(len(c.vals), c.Width())
}

// Values returns the appended values (aliased, valid until Reset).
func (c *ColumnBuilder) Values() []int64 { return c.vals }

// Encode packs the column into dst, which must hold EncodedBytes() zeroed
// bytes.
func (c *ColumnBuilder) Encode(dst []byte) {
	PackColumn(dst, c.vals, c.min, c.Width())
}

// Reset empties the builder, keeping the value buffer.
func (c *ColumnBuilder) Reset() {
	c.vals = c.vals[:0]
	c.min, c.max = 0, 0
}
