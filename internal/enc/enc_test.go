package enc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPutFieldRoundTrip(t *testing.T) {
	buf := make([]byte, TupleSize(3))
	vals := []int64{-1, 0, math.MaxInt64}
	for i, v := range vals {
		PutField(buf, i, v)
	}
	for i, v := range vals {
		if got := Field(buf, i); got != v {
			t.Errorf("field %d = %d, want %d", i, got, v)
		}
	}
}

func TestTupleRoundTripQuick(t *testing.T) {
	f := func(vals []int64) bool {
		buf := make([]byte, TupleSize(len(vals)))
		PutTuple(buf, vals)
		got := Tuple(buf, len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTuple(t *testing.T) {
	b := AppendTuple(nil, []int64{1, -2, 3})
	if len(b) != 24 {
		t.Fatalf("len = %d, want 24", len(b))
	}
	if Field(b, 1) != -2 {
		t.Fatalf("field 1 = %d", Field(b, 1))
	}
	b = AppendTuple(b, []int64{9})
	if Field(b, 3) != 9 {
		t.Fatalf("appended field = %d", Field(b, 3))
	}
}

func TestCompareFields(t *testing.T) {
	a := AppendTuple(nil, []int64{5, -10})
	b := AppendTuple(nil, []int64{5, 3})
	if CompareFields(a, b, 0) != 0 {
		t.Error("equal fields should compare 0")
	}
	if CompareFields(a, b, 1) != -1 {
		t.Error("-10 should be < 3 (signed comparison)")
	}
	if CompareFields(b, a, 1) != 1 {
		t.Error("3 should be > -10")
	}
}

func TestLessByFields(t *testing.T) {
	less := LessByFields([]int{1, 0}) // second field major
	a := AppendTuple(nil, []int64{9, 1})
	b := AppendTuple(nil, []int64{1, 2})
	if !less(a, b) {
		t.Error("(9,1) should precede (1,2) when field 1 is major")
	}
	if less(b, a) {
		t.Error("ordering not antisymmetric")
	}
	if less(a, a) {
		t.Error("irreflexivity violated")
	}
}

func TestLessByFieldsTotalOrderQuick(t *testing.T) {
	less := LessByFields([]int{2, 1, 0})
	f := func(x, y [3]int64) bool {
		a := AppendTuple(nil, x[:])
		b := AppendTuple(nil, y[:])
		la, lb := less(a, b), less(b, a)
		if x == y {
			return !la && !lb
		}
		return la != lb // exactly one direction for distinct tuples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualFields(t *testing.T) {
	a := AppendTuple(nil, []int64{1, 2, 3})
	b := AppendTuple(nil, []int64{1, 9, 3})
	if !EqualFields(a, b, []int{0, 2}) {
		t.Error("fields 0,2 should be equal")
	}
	if EqualFields(a, b, []int{0, 1}) {
		t.Error("field 1 differs")
	}
	if !EqualFields(a, b, nil) {
		t.Error("empty field set is always equal")
	}
}
