// Package enc defines the fixed-width little-endian tuple encoding shared by
// every storage component. A tuple is a sequence of int64 fields; field i
// occupies bytes [8i, 8i+8).
package enc

import "encoding/binary"

// FieldSize is the encoded size of one tuple field in bytes.
const FieldSize = 8

// TupleSize returns the encoded size in bytes of a tuple with n fields.
func TupleSize(n int) int { return n * FieldSize }

// PutField stores v as field i of buf.
func PutField(buf []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(buf[i*FieldSize:], uint64(v))
}

// Field loads field i of buf.
func Field(buf []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(buf[i*FieldSize:]))
}

// PutTuple encodes vals into buf, which must hold TupleSize(len(vals)) bytes.
func PutTuple(buf []byte, vals []int64) {
	for i, v := range vals {
		PutField(buf, i, v)
	}
}

// Tuple decodes n fields of buf into a fresh slice.
func Tuple(buf []byte, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = Field(buf, i)
	}
	return out
}

// AppendTuple appends the encoding of vals to dst and returns the extended
// slice. The slice is grown once and encoded in place, rather than appending
// a temporary buffer per field.
func AppendTuple(dst []byte, vals []int64) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, TupleSize(len(vals)))...)
	PutTuple(dst[n:], vals)
	return dst
}

// Less is a total order over encoded tuples.
type Less func(a, b []byte) bool

// CompareFields compares field i of a and b, returning -1, 0 or +1.
func CompareFields(a, b []byte, i int) int {
	av, bv := Field(a, i), Field(b, i)
	switch {
	case av < bv:
		return -1
	case av > bv:
		return 1
	default:
		return 0
	}
}

// LessByFields returns a Less comparing the given fields in order. Fields
// not listed do not participate in the order.
func LessByFields(fields []int) Less {
	order := append([]int(nil), fields...)
	return func(a, b []byte) bool {
		for _, f := range order {
			if c := CompareFields(a, b, f); c != 0 {
				return c < 0
			}
		}
		return false
	}
}

// EqualFields reports whether a and b agree on every listed field.
func EqualFields(a, b []byte, fields []int) bool {
	for _, f := range fields {
		if CompareFields(a, b, f) != 0 {
			return false
		}
	}
	return true
}
