// Package lattice models the data cube lattice of Harinarayan, Rajaraman &
// Ullman (1996) as used by the paper: aggregate views identified by their
// projection lists, the derives-from relation between them, and the
// smallest-parent computation plan used when materializing a selected
// subset of the cube.
package lattice

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Attr names a grouping attribute (a dimension key such as "partkey", or an
// attribute reachable through a dimension hierarchy such as "brand").
type Attr string

// View is an aggregate view: the result of grouping the fact table by Attrs
// and aggregating the measure. The order of Attrs is the view's projection
// list order, which determines its coordinate mapping inside a Cubetree
// (attribute i maps to coordinate i).
type View struct {
	// Name is an optional human-readable label ("V1"). Views are identified
	// structurally by Key; Name is only for display.
	Name string
	// Attrs is the projection list.
	Attrs []Attr
}

// NewView constructs a view over the given attributes.
func NewView(name string, attrs ...Attr) View {
	return View{Name: name, Attrs: attrs}
}

// Arity returns the number of grouping attributes.
func (v View) Arity() int { return len(v.Attrs) }

// Key returns the canonical identity of the view: its attribute set, sorted.
// Two views with the same Key hold the same data (possibly in different
// orders).
func (v View) Key() string { return CanonKey(v.Attrs) }

// OrderKey returns the identity of the view including attribute order,
// distinguishing replicas stored in different sort orders.
func (v View) OrderKey() string {
	parts := make([]string, len(v.Attrs))
	for i, a := range v.Attrs {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}

// String renders the view like the paper's V{partkey,suppkey} notation.
func (v View) String() string {
	if v.Arity() == 0 {
		if v.Name != "" {
			return v.Name + "{none}"
		}
		return "V{none}"
	}
	name := v.Name
	if name == "" {
		name = "V"
	}
	return name + "{" + v.OrderKey() + "}"
}

// Has reports whether the view projects attr.
func (v View) Has(attr Attr) bool {
	for _, a := range v.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// Covers reports whether the view can answer queries over node, i.e. the
// node's attributes are a subset of the view's.
func (v View) Covers(node []Attr) bool { return Subset(node, v.Attrs) }

// Reordered returns a copy of the view with its attributes in the given
// order, which must be a permutation of the view's attributes.
func (v View) Reordered(order []Attr) (View, error) {
	if CanonKey(order) != v.Key() {
		return View{}, fmt.Errorf("lattice: %v is not a permutation of %s", order, v)
	}
	return View{Name: v.Name, Attrs: append([]Attr(nil), order...)}, nil
}

// CanonKey returns the canonical key of an attribute set: names sorted and
// comma-joined.
func CanonKey(attrs []Attr) string {
	if len(attrs) == 0 {
		return "none"
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = string(a)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Subset reports whether every attribute of a appears in b.
func Subset(a, b []Attr) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Lattice is the data cube lattice over a set of dimension attributes with
// known domain sizes (numbers of distinct key values).
type Lattice struct {
	dims    []Attr
	domains map[Attr]int64
}

// New creates a lattice over dims. domains gives the number of distinct
// values of each dimension attribute and must cover every dim.
func New(dims []Attr, domains map[Attr]int64) (*Lattice, error) {
	for _, d := range dims {
		if domains[d] <= 0 {
			return nil, fmt.Errorf("lattice: missing or non-positive domain for %q", d)
		}
	}
	return &Lattice{dims: append([]Attr(nil), dims...), domains: domains}, nil
}

// Dims returns the lattice dimensions in declaration order.
func (l *Lattice) Dims() []Attr { return append([]Attr(nil), l.dims...) }

// Domain returns the domain size of attr (0 if unknown).
func (l *Lattice) Domain(attr Attr) int64 { return l.domains[attr] }

// Nodes enumerates every lattice node (attribute subset) in decreasing
// arity, each in dimension declaration order. For d dims it returns 2^d
// nodes, the last being the empty "none" node.
func (l *Lattice) Nodes() [][]Attr {
	d := len(l.dims)
	var nodes [][]Attr
	for mask := 0; mask < 1<<d; mask++ {
		var node []Attr
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				node = append(node, l.dims[i])
			}
		}
		nodes = append(nodes, node)
	}
	sort.SliceStable(nodes, func(i, j int) bool { return len(nodes[i]) > len(nodes[j]) })
	return nodes
}

// EstimateSize estimates the number of tuples in the aggregate view over
// node given fact table cardinality n, using Yao's formula for the number
// of distinct combinations hit by n uniform draws from the node's key
// space.
func (l *Lattice) EstimateSize(node []Attr, n int64) int64 {
	if len(node) == 0 {
		return 1
	}
	space := 1.0
	for _, a := range node {
		space *= float64(l.domains[a])
		if space > 1e18 {
			return n
		}
	}
	if space <= 0 {
		return n
	}
	est := space * (1 - math.Exp(-float64(n)/space))
	if est > float64(n) {
		return n
	}
	if est < 1 {
		return 1
	}
	return int64(est)
}

// Step is one step of a computation plan: compute View from Parent, or from
// the fact table when FromFact is true.
type Step struct {
	View     View
	Parent   View
	FromFact bool
}

// Plan orders the selected views for computation so that each is derived
// from its smallest already-computed ancestor (the dependency graph of the
// paper's Figure 10). sizes maps view Key to (estimated or exact) tuple
// counts; factSize is the fact table cardinality.
func Plan(selected []View, sizes map[string]int64, factSize int64) []Step {
	ordered := append([]View(nil), selected...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arity() > ordered[j].Arity() })
	var steps []Step
	for i, v := range ordered {
		best := -1
		var bestSize int64 = math.MaxInt64
		for j := 0; j < i; j++ {
			p := ordered[j]
			if !Subset(v.Attrs, p.Attrs) {
				continue
			}
			sz, ok := sizes[p.Key()]
			if !ok {
				sz = factSize
			}
			if sz < bestSize {
				bestSize = sz
				best = j
			}
		}
		if best < 0 {
			steps = append(steps, Step{View: v, FromFact: true})
		} else {
			steps = append(steps, Step{View: v, Parent: ordered[best]})
		}
	}
	return steps
}
