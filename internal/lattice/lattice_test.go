package lattice

import (
	"testing"
	"testing/quick"
)

func testLattice(t *testing.T) *Lattice {
	t.Helper()
	l, err := New([]Attr{"partkey", "suppkey", "custkey"},
		map[Attr]int64{"partkey": 200, "suppkey": 10, "custkey": 150})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestViewKeyCanonical(t *testing.T) {
	a := NewView("V1", "partkey", "suppkey")
	b := NewView("V2", "suppkey", "partkey")
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.OrderKey() == b.OrderKey() {
		t.Fatal("order keys should differ")
	}
	if NewView("").Key() != "none" {
		t.Fatal("empty view key")
	}
}

func TestViewCoversAndHas(t *testing.T) {
	v := NewView("", "a", "b", "c")
	if !v.Covers([]Attr{"b"}) || !v.Covers([]Attr{"a", "c"}) || !v.Covers(nil) {
		t.Fatal("Covers broken")
	}
	if v.Covers([]Attr{"d"}) {
		t.Fatal("covers unknown attr")
	}
	if !v.Has("b") || v.Has("z") {
		t.Fatal("Has broken")
	}
}

func TestViewReordered(t *testing.T) {
	v := NewView("V", "a", "b", "c")
	r, err := v.Reordered([]Attr{"c", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if r.OrderKey() != "c,a,b" || r.Key() != v.Key() {
		t.Fatalf("reordered = %s", r)
	}
	if _, err := v.Reordered([]Attr{"a", "b"}); err == nil {
		t.Fatal("accepted non-permutation")
	}
	if _, err := v.Reordered([]Attr{"a", "b", "d"}); err == nil {
		t.Fatal("accepted wrong attrs")
	}
}

func TestNodes(t *testing.T) {
	l := testLattice(t)
	nodes := l.Nodes()
	if len(nodes) != 8 {
		t.Fatalf("3-dim lattice has %d nodes, want 8", len(nodes))
	}
	if len(nodes[0]) != 3 {
		t.Fatal("nodes not in decreasing arity")
	}
	if len(nodes[7]) != 0 {
		t.Fatal("last node should be none")
	}
	// Count by arity: 1,3,3,1.
	counts := map[int]int{}
	for _, n := range nodes {
		counts[len(n)]++
	}
	if counts[3] != 1 || counts[2] != 3 || counts[1] != 3 || counts[0] != 1 {
		t.Fatalf("arity counts = %v", counts)
	}
}

func TestSubset(t *testing.T) {
	if !Subset([]Attr{"a"}, []Attr{"b", "a"}) {
		t.Fatal("subset false negative")
	}
	if Subset([]Attr{"a", "c"}, []Attr{"a", "b"}) {
		t.Fatal("subset false positive")
	}
	if !Subset(nil, nil) {
		t.Fatal("empty set is subset of everything")
	}
}

func TestEstimateSize(t *testing.T) {
	l := testLattice(t)
	// Tiny domain saturates.
	if got := l.EstimateSize([]Attr{"suppkey"}, 100000); got != 10 {
		t.Fatalf("suppkey estimate = %d, want 10", got)
	}
	// Huge space stays near n.
	got := l.EstimateSize([]Attr{"partkey", "suppkey", "custkey"}, 1000)
	if got < 950 || got > 1000 {
		t.Fatalf("sparse estimate = %d, want ~1000", got)
	}
	if l.EstimateSize(nil, 5000) != 1 {
		t.Fatal("none view estimate must be 1")
	}
	// Monotone in n.
	if l.EstimateSize([]Attr{"custkey"}, 10) > l.EstimateSize([]Attr{"custkey"}, 1000) {
		t.Fatal("estimate not monotone")
	}
}

func TestEstimateBoundsQuick(t *testing.T) {
	l := testLattice(t)
	f := func(n uint32) bool {
		nn := int64(n%1000000) + 1
		for _, node := range l.Nodes() {
			est := l.EstimateSize(node, nn)
			if est < 1 || est > nn {
				return false
			}
			space := int64(1)
			for _, a := range node {
				space *= l.Domain(a)
			}
			if len(node) > 0 && est > space {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSmallestParent(t *testing.T) {
	views := []View{
		NewView("", "partkey", "suppkey", "custkey"),
		NewView("", "partkey", "suppkey"),
		NewView("", "partkey"),
		NewView("", "custkey"),
		NewView(""),
	}
	sizes := map[string]int64{
		views[0].Key(): 6000,
		views[1].Key(): 800,
		views[2].Key(): 200,
		views[3].Key(): 150,
	}
	steps := Plan(views, sizes, 100000)
	if len(steps) != 5 {
		t.Fatalf("%d steps", len(steps))
	}
	if !steps[0].FromFact {
		t.Fatal("top view must come from fact")
	}
	byKey := map[string]Step{}
	for _, s := range steps {
		byKey[s.View.Key()] = s
	}
	// {partkey} should derive from {partkey,suppkey} (800) not the top (6000).
	if p := byKey[views[2].Key()]; p.FromFact || p.Parent.Key() != views[1].Key() {
		t.Fatalf("partkey parent = %+v", p)
	}
	// {custkey} can only derive from the top view.
	if p := byKey[views[3].Key()]; p.FromFact || p.Parent.Key() != views[0].Key() {
		t.Fatalf("custkey parent = %+v", p)
	}
	// none derives from the smallest view: {custkey} (150).
	if p := byKey["none"]; p.FromFact || p.Parent.Key() != views[3].Key() {
		t.Fatalf("none parent = %+v", p)
	}
}

func TestPlanHierarchyFromFact(t *testing.T) {
	views := []View{
		NewView("", "partkey", "suppkey"),
		NewView("", "brand"), // not derivable from partkey views
	}
	steps := Plan(views, map[string]int64{}, 1000)
	for _, s := range steps {
		if s.View.Key() == "brand" && !s.FromFact {
			t.Fatal("hierarchy view must come from fact")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Attr{"a"}, map[Attr]int64{}); err == nil {
		t.Fatal("missing domain accepted")
	}
	if _, err := New([]Attr{"a"}, map[Attr]int64{"a": -1}); err == nil {
		t.Fatal("negative domain accepted")
	}
}
