package lattice

import "fmt"

// Agg identifies an aggregate function applied to the fact measure. The
// paper's experiments use SUM; footnote 3 notes the Cubetree point payload
// extends to multiple aggregation functions, which this type realizes.
type Agg uint8

const (
	// AggSum accumulates the measure total.
	AggSum Agg = iota
	// AggCount accumulates the contributing fact-row count (with AggSum it
	// yields AVG).
	AggCount
	// AggMin tracks the minimum measure value.
	AggMin
	// AggMax tracks the maximum measure value.
	AggMax
)

// String names the aggregate function.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// Schema is the ordered list of measures stored per aggregate point. Every
// schema starts with SUM and COUNT (so AVG is always derivable and deltas
// always merge); MIN and MAX may follow.
type Schema []Agg

// DefaultSchema is the paper's payload: SUM plus COUNT.
func DefaultSchema() Schema { return Schema{AggSum, AggCount} }

// NewSchema builds a schema from extra measures appended to SUM and COUNT.
func NewSchema(extra ...Agg) (Schema, error) {
	s := DefaultSchema()
	for _, a := range extra {
		switch a {
		case AggMin, AggMax:
			s = append(s, a)
		case AggSum, AggCount:
			return nil, fmt.Errorf("lattice: %v is already part of every schema", a)
		default:
			return nil, fmt.Errorf("lattice: unknown aggregate %v", a)
		}
	}
	return s, nil
}

// Validate checks the SUM/COUNT prefix invariant.
func (s Schema) Validate() error {
	if len(s) < 2 || s[0] != AggSum || s[1] != AggCount {
		return fmt.Errorf("lattice: schema must begin with sum,count (got %v)", s)
	}
	for _, a := range s[2:] {
		if a != AggMin && a != AggMax {
			return fmt.Errorf("lattice: invalid extra measure %v", a)
		}
	}
	return nil
}

// Extras returns the measures beyond SUM and COUNT.
func (s Schema) Extras() []Agg {
	if len(s) <= 2 {
		return nil
	}
	return append([]Agg(nil), s[2:]...)
}

// Len returns the number of stored measures.
func (s Schema) Len() int { return len(s) }

// Init fills dst (len Len) with the measure vector of a single fact row
// whose measure value is m.
func (s Schema) Init(dst []int64, m int64) {
	for i, a := range s {
		switch a {
		case AggSum:
			dst[i] = m
		case AggCount:
			dst[i] = 1
		case AggMin, AggMax:
			dst[i] = m
		}
	}
}

// Fold combines src into dst componentwise according to the schema. It is
// associative and commutative for insert-only increments, which is what
// makes merge-packing correct.
func (s Schema) Fold(dst, src []int64) {
	for i, a := range s {
		switch a {
		case AggSum, AggCount:
			dst[i] += src[i]
		case AggMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case AggMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// Equal reports whether two schemas are identical.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Strings renders the schema for catalogs.
func (s Schema) Strings() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.String()
	}
	return out
}

// ParseSchema inverts Strings.
func ParseSchema(names []string) (Schema, error) {
	if len(names) == 0 {
		return DefaultSchema(), nil
	}
	s := make(Schema, len(names))
	for i, n := range names {
		switch n {
		case "sum":
			s[i] = AggSum
		case "count":
			s[i] = AggCount
		case "min":
			s[i] = AggMin
		case "max":
			s[i] = AggMax
		default:
			return nil, fmt.Errorf("lattice: unknown aggregate %q", n)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
