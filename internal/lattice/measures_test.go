package lattice

import (
	"testing"
	"testing/quick"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema(AggMin, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || s[0] != AggSum || s[1] != AggCount || s[2] != AggMin || s[3] != AggMax {
		t.Fatalf("schema = %v", s)
	}
	if _, err := NewSchema(AggSum); err == nil {
		t.Fatal("duplicate sum accepted")
	}
	if _, err := NewSchema(Agg(99)); err == nil {
		t.Fatal("unknown agg accepted")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{AggCount, AggSum}).Validate(); err == nil {
		t.Fatal("swapped prefix accepted")
	}
	if err := (Schema{AggSum}).Validate(); err == nil {
		t.Fatal("short schema accepted")
	}
	if err := (Schema{AggSum, AggCount, AggCount}).Validate(); err == nil {
		t.Fatal("count as extra accepted")
	}
	if err := DefaultSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaInitFold(t *testing.T) {
	s, _ := NewSchema(AggMin, AggMax)
	a := make([]int64, 4)
	b := make([]int64, 4)
	s.Init(a, 10)
	s.Init(b, 3)
	s.Fold(a, b)
	if a[0] != 13 || a[1] != 2 || a[2] != 3 || a[3] != 10 {
		t.Fatalf("folded = %v", a)
	}
}

func TestSchemaFoldPropertiesQuick(t *testing.T) {
	s, _ := NewSchema(AggMin, AggMax)
	// Fold must be commutative and associative over single-row vectors.
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		// forward fold
		fwd := make([]int64, 4)
		s.Init(fwd, int64(xs[0]))
		tmp := make([]int64, 4)
		for _, x := range xs[1:] {
			s.Init(tmp, int64(x))
			s.Fold(fwd, tmp)
		}
		// reverse fold
		rev := make([]int64, 4)
		s.Init(rev, int64(xs[len(xs)-1]))
		for i := len(xs) - 2; i >= 0; i-- {
			s.Init(tmp, int64(xs[i]))
			s.Fold(rev, tmp)
		}
		for i := range fwd {
			if fwd[i] != rev[i] {
				return false
			}
		}
		// sanity: count equals len, min <= max
		return fwd[1] == int64(len(xs)) && fwd[2] <= fwd[3]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaStringsRoundTrip(t *testing.T) {
	s, _ := NewSchema(AggMax)
	parsed, err := ParseSchema(s.Strings())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(s) {
		t.Fatalf("round trip: %v vs %v", parsed, s)
	}
	if _, err := ParseSchema([]string{"sum", "count", "median"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	// Empty means default.
	d, err := ParseSchema(nil)
	if err != nil || !d.Equal(DefaultSchema()) {
		t.Fatalf("empty parse = %v, %v", d, err)
	}
}

func TestSchemaExtras(t *testing.T) {
	if DefaultSchema().Extras() != nil {
		t.Fatal("default has extras")
	}
	s, _ := NewSchema(AggMin)
	ex := s.Extras()
	if len(ex) != 1 || ex[0] != AggMin {
		t.Fatalf("extras = %v", ex)
	}
}

func TestAggString(t *testing.T) {
	for a, want := range map[Agg]string{AggSum: "sum", AggCount: "count", AggMin: "min", AggMax: "max"} {
		if a.String() != want {
			t.Fatalf("%d -> %s", a, a.String())
		}
	}
}
