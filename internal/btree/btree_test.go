package btree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"cubetree/internal/pager"
)

func newPool(t *testing.T, pages int) *pager.Pool {
	t.Helper()
	f, err := pager.Create(filepath.Join(t.TempDir(), "bt.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pager.NewPool(f, pages)
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPutGetSingle(t *testing.T) {
	tr, err := Create(newPool(t, 64), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.Put([]int64{1, 2}, 42)
	if err != nil || !ins {
		t.Fatalf("Put: %v inserted=%v", err, ins)
	}
	v, ok, err := tr.Get([]int64{1, 2})
	if err != nil || !ok || v != 42 {
		t.Fatalf("Get = %d, %v, %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]int64{1, 3}); ok {
		t.Fatal("found missing key")
	}
}

func TestPutOverwrite(t *testing.T) {
	tr, _ := Create(newPool(t, 64), 1, Options{})
	tr.Put([]int64{7}, 1)
	ins, err := tr.Put([]int64{7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ins {
		t.Fatal("overwrite reported as insert")
	}
	v, _, _ := tr.Get([]int64{7})
	if v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestManyKeysSplitsAndValidate(t *testing.T) {
	tr, _ := Create(newPool(t, 256), 2, Options{})
	r := rand.New(rand.NewSource(11))
	keys := make(map[[2]int64]int64)
	for i := 0; i < 20000; i++ {
		k := [2]int64{r.Int63n(5000), r.Int63n(5000)}
		keys[k] = int64(i)
		if _, err := tr.Put(k[:], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != int64(len(keys)) {
		t.Fatalf("Count = %d, want %d", tr.Count(), len(keys))
	}
	if tr.Height() < 2 {
		t.Fatalf("tree did not split: height %d", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, v := range keys {
		got, ok, err := tr.Get(k[:])
		if err != nil || !ok || got != v {
			t.Fatalf("Get(%v) = %d,%v,%v want %d", k, got, ok, err, v)
		}
	}
}

func TestTinyFanoutDeepTree(t *testing.T) {
	tr, _ := Create(newPool(t, 256), 1, Options{Fanout: 3})
	for i := 0; i < 200; i++ {
		tr.Put([]int64{int64(i * 7 % 200)}, int64(i))
	}
	if tr.Height() < 4 {
		t.Fatalf("fanout-3 tree with 200 keys has height %d", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorFullScanSorted(t *testing.T) {
	tr, _ := Create(newPool(t, 128), 1, Options{Fanout: 4})
	r := rand.New(rand.NewSource(3))
	var want []int64
	seen := map[int64]bool{}
	for i := 0; i < 500; i++ {
		v := r.Int63n(10000)
		if !seen[v] {
			seen[v] = true
			want = append(want, v)
		}
		tr.Put([]int64{v}, v*2)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	it, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []int64
	for it.Next() {
		got = append(got, it.Key()[0])
		if it.Value() != it.Key()[0]*2 {
			t.Fatalf("value mismatch at %d", it.Key()[0])
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSeekGE(t *testing.T) {
	tr, _ := Create(newPool(t, 64), 1, Options{})
	for _, v := range []int64{10, 20, 30, 40} {
		tr.Put([]int64{v}, v)
	}
	it, err := tr.SeekGE([]int64{25})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Next() || it.Key()[0] != 30 {
		t.Fatalf("SeekGE(25) -> %v", it.Key())
	}
	if !it.Next() || it.Key()[0] != 40 {
		t.Fatalf("second = %v", it.Key())
	}
	if it.Next() {
		t.Fatal("iterator past end")
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := Create(newPool(t, 128), 3, Options{})
	// keys (a,b,c) for a in 1..5, b in 1..4, c in 1..3
	for a := int64(1); a <= 5; a++ {
		for b := int64(1); b <= 4; b++ {
			for c := int64(1); c <= 3; c++ {
				tr.Put([]int64{a, b, c}, a*100+b*10+c)
			}
		}
	}
	var got []int64
	err := tr.ScanPrefix([]int64{3, 2}, func(key []int64, val int64) error {
		if key[0] != 3 || key[1] != 2 {
			t.Fatalf("prefix violated: %v", key)
		}
		got = append(got, key[2])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("prefix scan found %d entries, want 3", len(got))
	}
	// One-column prefix.
	n := 0
	tr.ScanPrefix([]int64{5}, func(key []int64, _ int64) error {
		if key[0] != 5 {
			t.Fatalf("prefix violated: %v", key)
		}
		n++
		return nil
	})
	if n != 12 {
		t.Fatalf("one-column prefix found %d, want 12", n)
	}
	// Empty prefix scans everything.
	n = 0
	tr.ScanPrefix(nil, func([]int64, int64) error { n++; return nil })
	if n != 60 {
		t.Fatalf("empty prefix found %d, want 60", n)
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := Create(newPool(t, 128), 2, Options{Fanout: 4})
	for a := int64(1); a <= 10; a++ {
		for b := int64(1); b <= 5; b++ {
			tr.Put([]int64{a, b}, a*10+b)
		}
	}
	// Full-width inclusive range.
	var got [][2]int64
	err := tr.ScanRange([]int64{3, 2}, []int64{5, 3}, func(key []int64, val int64) error {
		got = append(got, [2]int64{key[0], key[1]})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lexicographic range [3 2, 5 3]: (3,2)..(3,5), (4,*), (5,1)..(5,3).
	want := 4 + 5 + 3
	if len(got) != want {
		t.Fatalf("ScanRange found %d keys, want %d: %v", len(got), want, got)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("ScanRange out of order at %d: %v", i, got)
		}
	}
	// Empty range yields nothing.
	n := 0
	tr.ScanRange([]int64{7, 4}, []int64{7, 3}, func([]int64, int64) error { n++; return nil })
	if n != 0 {
		t.Fatalf("empty range returned %d keys", n)
	}
	// Single key.
	n = 0
	tr.ScanRange([]int64{2, 2}, []int64{2, 2}, func(key []int64, val int64) error {
		if val != 22 {
			t.Fatalf("val = %d", val)
		}
		n++
		return nil
	})
	if n != 1 {
		t.Fatalf("point range returned %d keys", n)
	}
}

func TestIteratorCloseEarly(t *testing.T) {
	tr, _ := Create(newPool(t, 64), 1, Options{Fanout: 3})
	for i := int64(0); i < 100; i++ {
		tr.Put([]int64{i}, i)
	}
	it, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && it.Next(); i++ {
	}
	it.Close()
	// The pool must not be left with pinned frames: another full traversal
	// and structure validation still work.
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr, _ := Create(newPool(t, 64), 1, Options{})
	for _, v := range []int64{-5, 3, -1, 0, 7} {
		tr.Put([]int64{v}, v)
	}
	it, _ := tr.SeekFirst()
	defer it.Close()
	want := []int64{-5, -1, 0, 3, 7}
	for _, w := range want {
		if !it.Next() || it.Key()[0] != w {
			t.Fatalf("order with negatives broken: got %v want %d", it.Key(), w)
		}
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.bt")
	f, _ := pager.Create(path, nil)
	pool := pager.NewPool(f, 64)
	tr, _ := Create(pool, 2, Options{})
	for i := int64(0); i < 1000; i++ {
		tr.Put([]int64{i % 37, i}, i)
	}
	count := tr.Count()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	f2, _ := pager.Open(path, nil)
	pool2 := pager.NewPool(f2, 64)
	defer pool2.Close()
	tr2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != count || tr2.K() != 2 {
		t.Fatalf("reopened count=%d k=%d", tr2.Count(), tr2.K())
	}
	v, ok, _ := tr2.Get([]int64{5, 5})
	if !ok || v != 5 {
		t.Fatalf("reopened Get = %d, %v", v, ok)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyWidth(t *testing.T) {
	tr, _ := Create(newPool(t, 16), 2, Options{})
	if _, err := tr.Put([]int64{1}, 0); err == nil {
		t.Fatal("short key accepted")
	}
	if _, _, err := tr.Get([]int64{1, 2, 3}); err == nil {
		t.Fatal("long key accepted")
	}
}

func TestDelete(t *testing.T) {
	tr, _ := Create(newPool(t, 64), 1, Options{Fanout: 4})
	for i := int64(0); i < 100; i++ {
		tr.Put([]int64{i}, i)
	}
	// Delete every third key.
	for i := int64(0); i < 100; i += 3 {
		ok, err := tr.Delete([]int64{i})
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	// Deleting again reports absent.
	if ok, _ := tr.Delete([]int64{0}); ok {
		t.Fatal("double delete reported present")
	}
	if ok, _ := tr.Delete([]int64{999}); ok {
		t.Fatal("deleting unknown key reported present")
	}
	for i := int64(0); i < 100; i++ {
		_, found, err := tr.Get([]int64{i})
		if err != nil {
			t.Fatal(err)
		}
		want := i%3 != 0
		if found != want {
			t.Fatalf("Get(%d) found=%v, want %v", i, found, want)
		}
	}
	if tr.Count() != 66 {
		t.Fatalf("Count = %d, want 66", tr.Count())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-inserting a deleted key works.
	if ins, err := tr.Put([]int64{0}, 42); err != nil || !ins {
		t.Fatalf("re-insert = %v, %v", ins, err)
	}
	v, ok, _ := tr.Get([]int64{0})
	if !ok || v != 42 {
		t.Fatalf("re-inserted value = %d, %v", v, ok)
	}
}

func TestDeleteEntireTree(t *testing.T) {
	tr, _ := Create(newPool(t, 128), 2, Options{Fanout: 3})
	const n = 200
	for i := int64(0); i < n; i++ {
		tr.Put([]int64{i % 17, i}, i)
	}
	for i := int64(0); i < n; i++ {
		if ok, err := tr.Delete([]int64{i % 17, i}); err != nil || !ok {
			t.Fatalf("Delete #%d: %v %v", i, ok, err)
		}
	}
	if tr.Count() != 0 {
		t.Fatalf("Count = %d", tr.Count())
	}
	it, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Next() {
		t.Fatal("iterator found entries in emptied tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertEverywhereQuick property: after inserting any set of keys, every
// key is retrievable with its latest value and the structure validates.
func TestInsertEverywhereQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		pool := newPool(t, 128)
		tr, err := Create(pool, 1, Options{Fanout: 5})
		if err != nil {
			return false
		}
		want := map[int64]int64{}
		for i, r := range raw {
			k := int64(r % 512)
			want[k] = int64(i)
			if _, err := tr.Put([]int64{k}, int64(i)); err != nil {
				return false
			}
		}
		if tr.Count() != int64(len(want)) {
			return false
		}
		for k, v := range want {
			got, ok, err := tr.Get([]int64{k})
			if err != nil || !ok || got != v {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
