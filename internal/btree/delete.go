package btree

// Delete removes key from the tree, reporting whether it was present.
//
// Deletion is lazy: the entry is removed from its leaf but nodes are never
// merged or rebalanced, so a heavily-deleted tree retains its height until
// rebuilt. This matches warehouse workloads, where summary tables shrink
// only on full recomputation; the paper's update model is insert-only.
func (t *Tree) Delete(key []int64) (bool, error) {
	kb, err := t.encodeKey(key)
	if err != nil {
		return false, err
	}
	fr, err := t.findLeaf(kb)
	if err != nil {
		return false, err
	}
	b := fr.Data()
	n := nodeCount(b)
	i := t.lowerBoundLeaf(b, kb)
	if i >= n || t.compareKeys(t.leafKey(b, i), kb) != 0 {
		t.pool.Unpin(fr, false)
		return false, nil
	}
	if i < n-1 {
		entry := t.leafEntryBytes()
		src := b[t.leafKeyOff(i+1) : t.leafKeyOff(i+1)+(n-1-i)*entry]
		copy(b[t.leafKeyOff(i):], src)
	}
	setNodeCount(b, n-1)
	t.pool.Unpin(fr, true)
	t.count--
	return true, nil
}
