package btree

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cubetree/internal/pager"
)

func benchTree(b *testing.B, keys int64) *Tree {
	b.Helper()
	f, err := pager.Create(filepath.Join(b.TempDir(), "b.bt"), nil)
	if err != nil {
		b.Fatal(err)
	}
	pool := pager.NewPool(f, 1024)
	b.Cleanup(func() { pool.Close() })
	tr, err := Create(pool, 3, Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := int64(0); i < keys; i++ {
		if _, err := tr.Put([]int64{r.Int63n(1000), r.Int63n(1000), i}, i); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkPutRandom(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "b.bt"), nil)
	pool := pager.NewPool(f, 1024)
	defer pool.Close()
	tr, _ := Create(pool, 3, Options{})
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Put([]int64{r.Int63n(1 << 30), r.Int63n(1 << 30), int64(i)}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutSequential(b *testing.B) {
	f, _ := pager.Create(filepath.Join(b.TempDir(), "b.bt"), nil)
	pool := pager.NewPool(f, 1024)
	defer pool.Close()
	tr, _ := Create(pool, 3, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Put([]int64{int64(i), 0, 0}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 50000)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get([]int64{r.Int63n(1000), r.Int63n(1000), r.Int63n(50000)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanPrefix(b *testing.B) {
	tr := benchTree(b, 50000)
	r := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := tr.ScanPrefix([]int64{r.Int63n(1000)}, func([]int64, int64) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
