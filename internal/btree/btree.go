// Package btree implements a disk-based B+-tree over composite integer keys.
//
// The conventional ROLAP configuration in the paper stores each materialized
// view in a relational table and indexes it with B-trees whose search keys
// are concatenations of the view's group-by attributes (the paper's
// I_{a,b,c} notation). This package provides that index: fixed-arity int64
// keys, an 8-byte payload (usually a heapfile RID or an inline aggregate),
// point lookups, lower-bound range scans, and one-at-a-time inserts — the
// access pattern whose random I/O makes conventional incremental view
// maintenance so slow in Table 7.
package btree

import (
	"encoding/binary"
	"fmt"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

const (
	metaPage = 0
	magic    = 0x42545245 // "BTRE"

	kindInternal = 0
	kindLeaf     = 1

	nodeHeaderSize = 8 // kind u8, pad u8, count u16, next/child0 u32
)

// Tree is a disk B+-tree. Keys are vectors of K int64 fields compared
// lexicographically; values are opaque int64 payloads.
type Tree struct {
	pool    *pager.Pool
	k       int // key fields
	keySize int // bytes
	root    pager.PageID
	height  int // 1 = root is a leaf
	count   int64

	leafCap  int
	innerCap int

	// capOverride, when >0, limits both capacities (for tests that need
	// tiny fan-outs).
	capOverride int
}

// Options configures tree creation.
type Options struct {
	// Fanout, if non-zero, caps the number of entries per node. Used by
	// tests to force deep trees on few keys.
	Fanout int
}

// Create initializes an empty tree with K key fields on pool.
func Create(pool *pager.Pool, k int, opts Options) (*Tree, error) {
	if k < 1 {
		return nil, fmt.Errorf("btree: need at least one key field")
	}
	t := &Tree{pool: pool, k: k, keySize: enc.TupleSize(k), capOverride: opts.Fanout}
	t.computeCaps()
	meta, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	if meta.ID() != metaPage {
		pool.Unpin(meta, false)
		return nil, fmt.Errorf("btree: Create on non-empty file")
	}
	rootFr, err := pool.NewPage()
	if err != nil {
		pool.Unpin(meta, false)
		return nil, err
	}
	initNode(rootFr.Data(), kindLeaf)
	setNext(rootFr.Data(), pager.InvalidPage)
	t.root = rootFr.ID()
	t.height = 1
	pool.Unpin(rootFr, true)
	t.writeMeta(meta.Data())
	pool.Unpin(meta, true)
	return t, nil
}

// Open loads an existing tree from pool.
func Open(pool *pager.Pool) (*Tree, error) {
	fr, err := pool.Fetch(metaPage)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr, false)
	b := fr.Data()
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return nil, fmt.Errorf("btree: bad magic")
	}
	t := &Tree{
		pool:        pool,
		k:           int(binary.LittleEndian.Uint32(b[4:])),
		root:        pager.PageID(binary.LittleEndian.Uint32(b[8:])),
		height:      int(binary.LittleEndian.Uint32(b[12:])),
		count:       int64(binary.LittleEndian.Uint64(b[16:])),
		capOverride: int(binary.LittleEndian.Uint32(b[24:])),
	}
	t.keySize = enc.TupleSize(t.k)
	t.computeCaps()
	return t, nil
}

func (t *Tree) computeCaps() {
	// The pager reserves a checksum trailer on new-format files; nodes
	// carry entry counts, so legacy files (full-page capacity) stay
	// readable through the same code.
	payload := t.pool.File().PayloadSize()
	t.leafCap = (payload - nodeHeaderSize) / (t.keySize + 8)
	t.innerCap = (payload - nodeHeaderSize) / (t.keySize + 4)
	if t.capOverride > 1 {
		if t.leafCap > t.capOverride {
			t.leafCap = t.capOverride
		}
		if t.innerCap > t.capOverride {
			t.innerCap = t.capOverride
		}
	}
}

func (t *Tree) writeMeta(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], uint32(t.k))
	binary.LittleEndian.PutUint32(b[8:], uint32(t.root))
	binary.LittleEndian.PutUint32(b[12:], uint32(t.height))
	binary.LittleEndian.PutUint64(b[16:], uint64(t.count))
	binary.LittleEndian.PutUint32(b[24:], uint32(t.capOverride))
}

func (t *Tree) syncMeta() error {
	fr, err := t.pool.Fetch(metaPage)
	if err != nil {
		return err
	}
	t.writeMeta(fr.Data())
	t.pool.Unpin(fr, true)
	return nil
}

// K returns the number of key fields.
func (t *Tree) K() int { return t.k }

// Count returns the number of distinct keys stored.
func (t *Tree) Count() int64 { return t.count }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Pages returns the number of pages in the tree's file.
func (t *Tree) Pages() uint32 { return t.pool.File().NumPages() }

// Close persists metadata and flushes the pool.
func (t *Tree) Close() error {
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.pool.Flush()
}

// encodeKey validates and encodes a key.
func (t *Tree) encodeKey(key []int64) ([]byte, error) {
	if len(key) != t.k {
		return nil, fmt.Errorf("btree: key with %d fields, want %d", len(key), t.k)
	}
	buf := make([]byte, t.keySize)
	enc.PutTuple(buf, key)
	return buf, nil
}

// compareKeys compares two encoded keys field by field.
func (t *Tree) compareKeys(a, b []byte) int {
	for i := 0; i < t.k; i++ {
		if c := enc.CompareFields(a, b, i); c != 0 {
			return c
		}
	}
	return 0
}

// --- node accessors -------------------------------------------------------

func initNode(b []byte, kind byte) {
	for i := 0; i < nodeHeaderSize; i++ {
		b[i] = 0
	}
	b[0] = kind
}

func nodeKind(b []byte) byte           { return b[0] }
func nodeCount(b []byte) int           { return int(binary.LittleEndian.Uint16(b[2:])) }
func setNodeCount(b []byte, n int)     { binary.LittleEndian.PutUint16(b[2:], uint16(n)) }
func next(b []byte) pager.PageID       { return pager.PageID(binary.LittleEndian.Uint32(b[4:])) }
func setNext(b []byte, p pager.PageID) { binary.LittleEndian.PutUint32(b[4:], uint32(p)) }

// child0 shares the header slot used by leaf next pointers.
func child0(b []byte) pager.PageID       { return pager.PageID(binary.LittleEndian.Uint32(b[4:])) }
func setChild0(b []byte, p pager.PageID) { binary.LittleEndian.PutUint32(b[4:], uint32(p)) }

// leaf entry i: key at leafKeyOff(i), value at +keySize.
func (t *Tree) leafKeyOff(i int) int { return nodeHeaderSize + i*(t.keySize+8) }

func (t *Tree) leafKey(b []byte, i int) []byte {
	off := t.leafKeyOff(i)
	return b[off : off+t.keySize]
}

func (t *Tree) leafVal(b []byte, i int) int64 {
	off := t.leafKeyOff(i) + t.keySize
	return int64(binary.LittleEndian.Uint64(b[off:]))
}

func (t *Tree) setLeafEntry(b []byte, i int, key []byte, val int64) {
	off := t.leafKeyOff(i)
	copy(b[off:off+t.keySize], key)
	binary.LittleEndian.PutUint64(b[off+t.keySize:], uint64(val))
}

func (t *Tree) setLeafVal(b []byte, i int, val int64) {
	off := t.leafKeyOff(i) + t.keySize
	binary.LittleEndian.PutUint64(b[off:], uint64(val))
}

// internal entry i: key at innerKeyOff(i), child pointer at +keySize.
func (t *Tree) innerKeyOff(i int) int { return nodeHeaderSize + i*(t.keySize+4) }

func (t *Tree) innerKey(b []byte, i int) []byte {
	off := t.innerKeyOff(i)
	return b[off : off+t.keySize]
}

func (t *Tree) innerChild(b []byte, i int) pager.PageID {
	off := t.innerKeyOff(i) + t.keySize
	return pager.PageID(binary.LittleEndian.Uint32(b[off:]))
}

func (t *Tree) setInnerEntry(b []byte, i int, key []byte, child pager.PageID) {
	off := t.innerKeyOff(i)
	copy(b[off:off+t.keySize], key)
	binary.LittleEndian.PutUint32(b[off+t.keySize:], uint32(child))
}

// leafEntryBytes and innerEntryBytes are entry strides.
func (t *Tree) leafEntryBytes() int  { return t.keySize + 8 }
func (t *Tree) innerEntryBytes() int { return t.keySize + 4 }

// --- search ---------------------------------------------------------------

// lowerBoundLeaf returns the index of the first leaf entry with key >= key.
func (t *Tree) lowerBoundLeaf(b []byte, key []byte) int {
	lo, hi := 0, nodeCount(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.compareKeys(t.leafKey(b, mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child to descend for key: the largest i such
// that innerKey(i-1) <= key, with child 0 for keys below every separator.
func (t *Tree) childIndex(b []byte, key []byte) int {
	lo, hi := 0, nodeCount(b)
	// find first separator > key; descend the child just before it.
	for lo < hi {
		mid := (lo + hi) / 2
		if t.compareKeys(t.innerKey(b, mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // child index in [0, count]
}

func (t *Tree) childAt(b []byte, idx int) pager.PageID {
	if idx == 0 {
		return child0(b)
	}
	return t.innerChild(b, idx-1)
}

// findLeaf descends to the leaf that would contain key.
func (t *Tree) findLeaf(key []byte) (*pager.Frame, error) {
	pid := t.root
	for level := t.height; level > 1; level-- {
		fr, err := t.pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		b := fr.Data()
		if nodeKind(b) != kindInternal {
			t.pool.Unpin(fr, false)
			return nil, fmt.Errorf("btree: corrupt node %d: expected internal", pid)
		}
		pid = t.childAt(b, t.childIndex(b, key))
		t.pool.Unpin(fr, false)
	}
	fr, err := t.pool.Fetch(pid)
	if err != nil {
		return nil, err
	}
	if nodeKind(fr.Data()) != kindLeaf {
		t.pool.Unpin(fr, false)
		return nil, fmt.Errorf("btree: corrupt node %d: expected leaf", pid)
	}
	return fr, nil
}

// Get returns the value stored under key, if present.
func (t *Tree) Get(key []int64) (int64, bool, error) {
	kb, err := t.encodeKey(key)
	if err != nil {
		return 0, false, err
	}
	fr, err := t.findLeaf(kb)
	if err != nil {
		return 0, false, err
	}
	defer t.pool.Unpin(fr, false)
	b := fr.Data()
	i := t.lowerBoundLeaf(b, kb)
	if i < nodeCount(b) && t.compareKeys(t.leafKey(b, i), kb) == 0 {
		return t.leafVal(b, i), true, nil
	}
	return 0, false, nil
}

// --- insert ---------------------------------------------------------------

// splitResult communicates a child split to its parent.
type splitResult struct {
	split   bool
	sepKey  []byte
	newPage pager.PageID
}

// Put inserts key with value val, overwriting the value if key exists.
// It reports whether a new key was inserted (false on overwrite).
func (t *Tree) Put(key []int64, val int64) (bool, error) {
	kb, err := t.encodeKey(key)
	if err != nil {
		return false, err
	}
	inserted, res, err := t.insert(t.root, t.height, kb, val)
	if err != nil {
		return false, err
	}
	if res.split {
		// grow a new root
		fr, err := t.pool.NewPage()
		if err != nil {
			return false, err
		}
		b := fr.Data()
		initNode(b, kindInternal)
		setChild0(b, t.root)
		t.setInnerEntry(b, 0, res.sepKey, res.newPage)
		setNodeCount(b, 1)
		t.root = fr.ID()
		t.height++
		t.pool.Unpin(fr, true)
	}
	if inserted {
		t.count++
	}
	return inserted, nil
}

func (t *Tree) insert(pid pager.PageID, level int, key []byte, val int64) (bool, splitResult, error) {
	fr, err := t.pool.Fetch(pid)
	if err != nil {
		return false, splitResult{}, err
	}
	b := fr.Data()
	if level == 1 {
		inserted, res, dirty, err := t.insertLeaf(b, key, val)
		t.pool.Unpin(fr, dirty)
		return inserted, res, err
	}
	idx := t.childIndex(b, key)
	child := t.childAt(b, idx)
	inserted, childRes, err := t.insert(child, level-1, key, val)
	if err != nil {
		t.pool.Unpin(fr, false)
		return false, splitResult{}, err
	}
	if !childRes.split {
		t.pool.Unpin(fr, false)
		return inserted, splitResult{}, nil
	}
	res, err := t.insertInner(b, idx, childRes.sepKey, childRes.newPage)
	t.pool.Unpin(fr, true)
	return inserted, res, err
}

// insertLeaf puts (key,val) into the leaf b, splitting if full.
func (t *Tree) insertLeaf(b []byte, key []byte, val int64) (bool, splitResult, bool, error) {
	n := nodeCount(b)
	i := t.lowerBoundLeaf(b, key)
	if i < n && t.compareKeys(t.leafKey(b, i), key) == 0 {
		t.setLeafVal(b, i, val)
		return false, splitResult{}, true, nil
	}
	if n < t.leafCap {
		t.shiftLeaf(b, i, n)
		t.setLeafEntry(b, i, key, val)
		setNodeCount(b, n+1)
		return true, splitResult{}, true, nil
	}
	// split: allocate right sibling, move upper half.
	right, err := t.pool.NewPage()
	if err != nil {
		return false, splitResult{}, false, err
	}
	rb := right.Data()
	initNode(rb, kindLeaf)
	mid := (n + 1) / 2
	moved := n - mid
	copy(rb[t.leafKeyOff(0):], b[t.leafKeyOff(mid):t.leafKeyOff(mid)+moved*t.leafEntryBytes()])
	setNodeCount(rb, moved)
	setNodeCount(b, mid)
	setNext(rb, next(b))
	setNext(b, right.ID())
	// insert into the proper half
	if i <= mid {
		t.shiftLeaf(b, i, mid)
		t.setLeafEntry(b, i, key, val)
		setNodeCount(b, mid+1)
	} else {
		j := i - mid
		t.shiftLeaf(rb, j, moved)
		t.setLeafEntry(rb, j, key, val)
		setNodeCount(rb, moved+1)
	}
	sep := make([]byte, t.keySize)
	copy(sep, t.leafKey(rb, 0))
	res := splitResult{split: true, sepKey: sep, newPage: right.ID()}
	t.pool.Unpin(right, true)
	return true, res, true, nil
}

// shiftLeaf opens a gap at index i in a leaf with n entries.
func (t *Tree) shiftLeaf(b []byte, i, n int) {
	if i < n {
		src := b[t.leafKeyOff(i) : t.leafKeyOff(i)+(n-i)*t.leafEntryBytes()]
		copy(b[t.leafKeyOff(i+1):], src)
	}
}

// insertInner inserts separator sep with right child newPage after child
// position idx in internal node b, splitting if full.
func (t *Tree) insertInner(b []byte, idx int, sep []byte, newPage pager.PageID) (splitResult, error) {
	n := nodeCount(b)
	if n < t.innerCap {
		t.shiftInner(b, idx, n)
		t.setInnerEntry(b, idx, sep, newPage)
		setNodeCount(b, n+1)
		return splitResult{}, nil
	}
	// Split internal node: entries 0..n-1, push-up the median separator.
	right, err := t.pool.NewPage()
	if err != nil {
		return splitResult{}, err
	}
	rb := right.Data()
	initNode(rb, kindInternal)

	// Build the full (n+1)-entry list in scratch, then distribute.
	entry := t.innerEntryBytes()
	scratch := make([]byte, (n+1)*entry)
	copy(scratch, b[t.innerKeyOff(0):t.innerKeyOff(0)+idx*entry])
	copy(scratch[idx*entry:], sep)
	binary.LittleEndian.PutUint32(scratch[idx*entry+t.keySize:], uint32(newPage))
	copy(scratch[(idx+1)*entry:], b[t.innerKeyOff(idx):t.innerKeyOff(idx)+(n-idx)*entry])

	total := n + 1
	mid := total / 2 // entry pushed up
	// left keeps entries [0,mid), right gets (mid,total)
	copy(b[t.innerKeyOff(0):], scratch[:mid*entry])
	setNodeCount(b, mid)
	pushKey := make([]byte, t.keySize)
	copy(pushKey, scratch[mid*entry:mid*entry+t.keySize])
	pushChild := pager.PageID(binary.LittleEndian.Uint32(scratch[mid*entry+t.keySize:]))
	setChild0(rb, pushChild)
	rn := total - mid - 1
	copy(rb[t.innerKeyOff(0):], scratch[(mid+1)*entry:])
	setNodeCount(rb, rn)
	res := splitResult{split: true, sepKey: pushKey, newPage: right.ID()}
	t.pool.Unpin(right, true)
	return res, nil
}

// shiftInner opens a gap at entry index i in an internal node with n entries.
func (t *Tree) shiftInner(b []byte, i, n int) {
	if i < n {
		entry := t.innerEntryBytes()
		src := b[t.innerKeyOff(i) : t.innerKeyOff(i)+(n-i)*entry]
		copy(b[t.innerKeyOff(i+1):], src)
	}
}

// --- validation -----------------------------------------------------------

// Validate checks structural invariants: sorted keys in every node, correct
// separator bounds, uniform leaf depth, and leaf chain ordering. It is used
// by tests and returns a descriptive error on the first violation.
func (t *Tree) Validate() error {
	var prevLeafKey []byte
	leaves := 0
	var walk func(pid pager.PageID, level int, lo, hi []byte) error
	walk = func(pid pager.PageID, level int, lo, hi []byte) error {
		fr, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		defer t.pool.Unpin(fr, false)
		b := fr.Data()
		n := nodeCount(b)
		if level == 1 {
			if nodeKind(b) != kindLeaf {
				return fmt.Errorf("btree: node %d at leaf level is internal", pid)
			}
			leaves++
			for i := 0; i < n; i++ {
				k := t.leafKey(b, i)
				if i > 0 && t.compareKeys(t.leafKey(b, i-1), k) >= 0 {
					return fmt.Errorf("btree: leaf %d keys out of order at %d", pid, i)
				}
				if lo != nil && t.compareKeys(k, lo) < 0 {
					return fmt.Errorf("btree: leaf %d key below separator", pid)
				}
				if hi != nil && t.compareKeys(k, hi) >= 0 {
					return fmt.Errorf("btree: leaf %d key above separator", pid)
				}
				if prevLeafKey != nil && t.compareKeys(prevLeafKey, k) >= 0 {
					return fmt.Errorf("btree: leaf chain out of order at page %d", pid)
				}
				prevLeafKey = append(prevLeafKey[:0], k...)
			}
			return nil
		}
		if nodeKind(b) != kindInternal {
			return fmt.Errorf("btree: node %d at level %d is a leaf", pid, level)
		}
		for i := 0; i < n; i++ {
			if i > 0 && t.compareKeys(t.innerKey(b, i-1), t.innerKey(b, i)) >= 0 {
				return fmt.Errorf("btree: internal %d separators out of order", pid)
			}
		}
		for i := 0; i <= n; i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = append([]byte(nil), t.innerKey(b, i-1)...)
			}
			if i < n {
				chi = append([]byte(nil), t.innerKey(b, i)...)
			}
			if err := walk(t.childAt(b, i), level-1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height, nil, nil); err != nil {
		return err
	}
	// count check
	it, err := t.SeekFirst()
	if err != nil {
		return err
	}
	defer it.Close()
	var n int64
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if n != t.count {
		return fmt.Errorf("btree: count mismatch: meta %d, leaves %d", t.count, n)
	}
	return nil
}
