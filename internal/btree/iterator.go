package btree

import (
	"math"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

// Iterator walks leaf entries in key order. Use Next to advance and Key/Value
// to read the current entry. A typical loop:
//
//	it, err := t.SeekGE(lo)
//	for it.Next() { use(it.Key(), it.Value()) }
//	err = it.Err()
//	it.Close()
type Iterator struct {
	t     *Tree
	fr    *pager.Frame
	idx   int // index of the entry Next will return
	key   []int64
	val   int64
	err   error
	valid bool
}

// SeekFirst positions an iterator before the smallest key.
func (t *Tree) SeekFirst() (*Iterator, error) {
	lo := make([]int64, t.k)
	for i := range lo {
		lo[i] = math.MinInt64
	}
	return t.SeekGE(lo)
}

// SeekGE positions an iterator before the smallest key >= key.
func (t *Tree) SeekGE(key []int64) (*Iterator, error) {
	kb, err := t.encodeKey(key)
	if err != nil {
		return nil, err
	}
	fr, err := t.findLeaf(kb)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t, fr: fr, key: make([]int64, t.k)}
	it.idx = t.lowerBoundLeaf(fr.Data(), kb)
	return it, nil
}

// Next advances to the next entry, reporting whether one exists.
func (it *Iterator) Next() bool {
	if it.err != nil || it.fr == nil {
		it.valid = false
		return false
	}
	t := it.t
	for {
		b := it.fr.Data()
		if it.idx < nodeCount(b) {
			kb := t.leafKey(b, it.idx)
			for i := 0; i < t.k; i++ {
				it.key[i] = enc.Field(kb, i)
			}
			it.val = t.leafVal(b, it.idx)
			it.idx++
			it.valid = true
			return true
		}
		nxt := next(b)
		t.pool.Unpin(it.fr, false)
		it.fr = nil
		if nxt == pager.InvalidPage {
			it.valid = false
			return false
		}
		fr, err := t.pool.Fetch(nxt)
		if err != nil {
			it.err = err
			it.valid = false
			return false
		}
		it.fr = fr
		it.idx = 0
	}
}

// Key returns the current key. The slice is reused across Next calls.
func (it *Iterator) Key() []int64 { return it.key }

// Value returns the current value.
func (it *Iterator) Value() int64 { return it.val }

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's pinned page.
func (it *Iterator) Close() {
	if it.fr != nil {
		it.t.pool.Unpin(it.fr, false)
		it.fr = nil
	}
}

// PrefixBounds returns [lo, hi) full-width keys for scanning all entries
// whose first len(prefix) fields equal prefix. hi is nil when the scan has
// no upper bound (prefix at the maximum value).
func (t *Tree) PrefixBounds(prefix []int64) (lo, hi []int64) {
	lo = make([]int64, t.k)
	copy(lo, prefix)
	for i := len(prefix); i < t.k; i++ {
		lo[i] = math.MinInt64
	}
	hi = make([]int64, t.k)
	copy(hi, prefix)
	// increment the prefix to form the exclusive upper bound
	for i := len(prefix) - 1; i >= 0; i-- {
		if hi[i] != math.MaxInt64 {
			hi[i]++
			for j := len(prefix); j < t.k; j++ {
				hi[j] = math.MinInt64
			}
			return lo, hi
		}
		hi[i] = math.MinInt64
	}
	return lo, nil
}

// ScanRange calls fn for every entry with lo <= key <= hi in lexicographic
// key order. The key slice passed to fn is reused between calls.
func (t *Tree) ScanRange(lo, hi []int64, fn func(key []int64, val int64) error) error {
	it, err := t.SeekGE(lo)
	if err != nil {
		return err
	}
	defer it.Close()
	hb := make([]byte, t.keySize)
	enc.PutTuple(hb, hi)
	kb := make([]byte, t.keySize)
	for it.Next() {
		enc.PutTuple(kb, it.Key())
		if t.compareKeys(kb, hb) > 0 {
			break
		}
		if err := fn(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	return it.Err()
}

// ScanPrefix calls fn for every entry whose leading fields equal prefix.
// The key slice passed to fn is reused between calls.
func (t *Tree) ScanPrefix(prefix []int64, fn func(key []int64, val int64) error) error {
	lo, hi := t.PrefixBounds(prefix)
	it, err := t.SeekGE(lo)
	if err != nil {
		return err
	}
	defer it.Close()
	var hb []byte
	if hi != nil {
		hb = make([]byte, t.keySize)
		enc.PutTuple(hb, hi)
	}
	kb := make([]byte, t.keySize)
	for it.Next() {
		if hb != nil {
			enc.PutTuple(kb, it.Key())
			if t.compareKeys(kb, hb) >= 0 {
				break
			}
		}
		if err := fn(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	return it.Err()
}
