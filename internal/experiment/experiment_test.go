package experiment

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/relstore"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

// testParams is small enough for CI but large enough that the paper's
// shapes are visible.
func testParams(t *testing.T) Params {
	// Pools are deliberately tiny relative to the data, mirroring the
	// paper's 32 MB of memory against a 1 GB database; otherwise every
	// structure fits in RAM and the I/O shapes vanish.
	return Params{
		SF:             0.005,
		Seed:           1,
		QueriesPerView: 10,
		PoolPages:      8,
		Replicas:       true,
		Dir:            t.TempDir(),
	}
}

func newTestSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSetupBuildsBothConfigurations(t *testing.T) {
	s := newTestSetup(t)
	if len(s.Selection.Views) != 6 || len(s.Selection.Indexes) != 3 {
		t.Fatalf("selection: %d views, %d indexes", len(s.Selection.Views), len(s.Selection.Indexes))
	}
	if got := len(s.Conv.Views()); got != 6 {
		t.Fatalf("conventional views = %d", got)
	}
	// 6 views + 2 replicas = 8 placements.
	if got := len(s.Forest.Placements()); got != 8 {
		t.Fatalf("placements = %d", got)
	}
	// Replicas force 3 trees (three arity-3 runs).
	if s.Forest.Trees() != 3 {
		t.Fatalf("trees = %d", s.Forest.Trees())
	}
	for i := 0; i < s.Forest.Trees(); i++ {
		if err := s.Forest.Tree(i).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTable5(t *testing.T) {
	s := newTestSetup(t)
	tab := s.RunTable5()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "partkey,suppkey,custkey") {
		t.Fatalf("missing top view:\n%s", out)
	}
}

func TestTable6LoadShapes(t *testing.T) {
	s := newTestSetup(t)
	tab := s.RunTable6()
	// The conventional load (views + per-row index builds) must cost more
	// modelled I/O than the sequential Cubetree pack.
	if tab.Ratio < 2 {
		t.Errorf("conventional/cubetree load ratio = %.2f, want >= 2\n%s", tab.Ratio, tab)
	}
	if tab.ConvIndexModeled <= 0 || tab.CubeModeled <= 0 {
		t.Errorf("missing phases: %+v", tab)
	}
}

func TestStorageShapes(t *testing.T) {
	s := newTestSetup(t)
	st := s.RunStorage()
	// The paper reports 51% savings; require a robust >= 30% at our scale,
	// even with two extra replicas of the top view on the Cubetree side.
	if st.Saving < 0.30 {
		t.Errorf("storage saving = %.0f%%, want >= 30%%\n%s", st.Saving*100, st)
	}
	if st.CubeLeafFrac < 0.80 {
		t.Errorf("leaf fraction = %.2f, want >= 0.80", st.CubeLeafFrac)
	}
	if st.Points <= 0 {
		t.Error("no stored points")
	}
}

func TestFig12QueriesAgreeAndCubetreesWin(t *testing.T) {
	s := newTestSetup(t)
	fig, err := s.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	var convTotal, cubeTotal time.Duration
	for _, r := range fig.Rows {
		convTotal += r.ConvModeled
		cubeTotal += r.CubeModeled
	}
	if cubeTotal <= 0 {
		t.Fatal("no cubetree I/O measured")
	}
	if convTotal < cubeTotal {
		t.Errorf("conventional (%v) beat cubetrees (%v) overall\n%s", convTotal, cubeTotal, fig)
	}
}

func TestFig13Throughput(t *testing.T) {
	s := newTestSetup(t)
	fig, err := s.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	th := RunFig13(fig)
	if th.CubeAvg <= th.ConvAvg {
		t.Errorf("cubetree avg throughput %.2f <= conventional %.2f\n%s", th.CubeAvg, th.ConvAvg, th)
	}
	if th.ConvMin > th.ConvMax || th.CubeMin > th.CubeMax {
		t.Errorf("min/max inverted: %+v", th)
	}
}

func TestTable7UpdateShapes(t *testing.T) {
	s := newTestSetup(t)
	tab, err := s.RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	if tab.IncrementRows <= 0 {
		t.Fatal("no increment")
	}
	// Merge-pack must beat recomputation and per-tuple maintenance by a
	// wide margin in modelled time.
	if !tab.IncTimedOut && tab.RatioInc < 5 {
		t.Errorf("incremental/cubetree ratio = %.1f, want >= 5 (or timeout)\n%s", tab.RatioInc, tab)
	}
	if tab.Ratio < 1.5 {
		t.Errorf("recompute/cubetree ratio = %.1f, want >= 1.5\n%s", tab.Ratio, tab)
	}
	if tab.CubeModeled <= 0 {
		t.Error("cubetree update unmeasured")
	}
}

func TestFig14Scalability(t *testing.T) {
	p := testParams(t)
	p.QueriesPerView = 5
	fig, err := RunFig14(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Cubetree query time should grow sublinearly: the 2x batch must stay
	// below 3x the 1x batch in modelled time overall.
	var t1, t2 time.Duration
	for _, r := range fig.Rows {
		t1 += r.Base1x
		t2 += r.Base2x
	}
	if t1 <= 0 {
		t.Fatal("no I/O measured at 1x")
	}
	if float64(t2) > 3*float64(t1) {
		t.Errorf("2x dataset cost %.1fx the 1x dataset\n%s", float64(t2)/float64(t1), fig)
	}
}

func TestRunBatchCrossChecks(t *testing.T) {
	s := newTestSetup(t)
	res, err := s.runBatch(Nodes()[0], 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 5 {
		t.Fatalf("queries = %d", res.Queries)
	}
}

func TestReportFormatting(t *testing.T) {
	// Every report must render non-empty text and CSV with the expected
	// headers; regressions here break ctbench output.
	s := newTestSetup(t)
	t5 := s.RunTable5()
	t6 := s.RunTable6()
	st := s.RunStorage()
	fig, err := s.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	th := RunFig13(fig)
	t7, err := s.RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, text, csv, header string
	}{
		{"table5", t5.String(), t5.CSV(), "cubetree,view,tuples"},
		{"table6", t6.String(), t6.CSV(), "configuration,views_ms"},
		{"storage", st.String(), st.CSV(), "metric,bytes"},
		{"fig12", fig.String(), fig.CSV(), "view,queries"},
		{"fig13", th.String(), th.CSV(), "configuration,min_qps"},
		{"table7", t7.String(), t7.CSV(), "method,modelled_ms"},
	}
	for _, c := range cases {
		if len(c.text) < 40 {
			t.Errorf("%s: text report too short: %q", c.name, c.text)
		}
		if !strings.HasPrefix(c.csv, c.header) {
			t.Errorf("%s: csv header = %q, want prefix %q", c.name, firstLine(c.csv), c.header)
		}
		if strings.Count(c.csv, "\n") < 2 {
			t.Errorf("%s: csv has no data rows:\n%s", c.name, c.csv)
		}
	}
	dir := t.TempDir()
	if err := WriteCSV(dir, "x.csv", t5.CSV()); err != nil {
		t.Fatal(err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestLargerScaleCrossCheck runs the full Figure 12 batch at 4x the usual
// test scale, cross-checking every query across both engines. Skipped with
// -short.
func TestLargerScaleCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale cross check skipped in -short mode")
	}
	p := testParams(t)
	p.SF = 0.02
	p.QueriesPerView = 15
	p.PoolPages = 16
	s, err := NewSetup(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fig, err := s.RunFig12() // cross-checks every query internally
	if err != nil {
		t.Fatal(err)
	}
	var conv, cube time.Duration
	for _, r := range fig.Rows {
		conv += r.ConvModeled
		cube += r.CubeModeled
	}
	if cube <= 0 || conv < cube {
		t.Errorf("4x scale: conventional %v vs cubetrees %v", conv, cube)
	}
}

func TestRunAblations(t *testing.T) {
	p := testParams(t)
	p.QueriesPerView = 5
	ab, err := RunAblations(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 5 {
		t.Fatalf("rows = %d", len(ab.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range ab.Rows {
		if r.Queries == 0 || r.Bytes == 0 || r.Trees == 0 {
			t.Fatalf("empty measurements: %+v", r)
		}
		byName[r.Name] = r
	}
	// Replicas cost space but buy query time on this workload.
	if byName["selectmapping+replicas"].Bytes <= byName["selectmapping, no replicas"].Bytes {
		t.Errorf("replicas should cost space: %+v", ab)
	}
	// One tree per view uses more trees than SelectMapping.
	if byName["one tree per view"].Trees <= byName["selectmapping+replicas"].Trees {
		t.Errorf("per-view mapping should use more trees: %+v", ab)
	}
	// More memory never costs more modelled time.
	if byName["memory*4"].Modeled > byName["memory/4"].Modeled {
		t.Errorf("memory sweep inverted: %+v", ab)
	}
	if !strings.Contains(ab.String(), "variant") || !strings.HasPrefix(ab.CSV(), "variant,") {
		t.Error("ablation formatting broken")
	}
}

func TestNodeLabel(t *testing.T) {
	if NodeLabel(nil) != "none" {
		t.Fatal("none label")
	}
	if got := NodeLabel(Nodes()[1]); got != "partkey,suppkey" {
		t.Fatalf("label = %s", got)
	}
}

func TestEnginesAgreeBruteForce(t *testing.T) {
	// Cross-check both engines against a brute-force scan of the raw fact
	// stream for a handful of random queries per node.
	s := newTestSetup(t)
	gen := workload.NewGenerator(77, s.Dataset.Domains())
	for _, node := range Nodes() {
		for i := 0; i < 3; i++ {
			q := gen.ForNode(node)
			want := bruteForce(t, s, q)
			got, err := s.Forest.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if !workload.EqualRows(got, want) {
				t.Fatalf("%s: cubetree %v, brute force %v", q, got, want)
			}
		}
	}
}

func TestRangeQueriesAgree(t *testing.T) {
	// Range predicates: both engines and brute force must agree, and the
	// planner's range paths must be exercised.
	s := newTestSetup(t)
	gen := workload.NewGenerator(31, s.Dataset.Domains())
	for _, node := range Nodes() {
		for _, width := range []float64{0.05, 0.3} {
			for i := 0; i < 3; i++ {
				q := gen.ForNodeRanges(node, width)
				want := bruteForce(t, s, q)
				cube, err := s.Forest.Execute(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if !workload.EqualRows(cube, want) {
					t.Fatalf("%s: cubetree %d rows, brute force %d rows", q, len(cube), len(want))
				}
				conv, err := s.Conv.Execute(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if !workload.EqualRows(conv, want) {
					t.Fatalf("%s: conventional %d rows, brute force %d rows", q, len(conv), len(want))
				}
			}
		}
	}
}

func TestExtendedSchemaEnginesAgree(t *testing.T) {
	// Build both engines with MIN/MAX extras over the same fact data and
	// cross-check random queries, extras included.
	dir := t.TempDir()
	ds := tpcd.New(tpcd.Params{SF: 0.002, Seed: 5})
	sel := greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	schema, err := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cube.Compute(dir, &factRows{it: ds.FactRows()}, sel.Views,
		cube.Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := relstore.Create(filepath.Join(dir, "conv"), relstore.Options{
		Domains: ds.Domains(), Schema: schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conv.Close()
	var sources []*cube.ViewData
	for _, view := range sel.Views {
		if err := conv.LoadView(data[view.Key()]); err != nil {
			t.Fatal(err)
		}
		sources = append(sources, data[view.Key()])
	}
	forest, err := core.Build(filepath.Join(dir, "forest"), sources, core.BuildOptions{
		Domains: ds.Domains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer forest.Close()
	if !forest.Schema().Equal(schema) {
		t.Fatalf("forest schema = %v", forest.Schema())
	}

	gen := workload.NewGenerator(17, ds.Domains())
	for _, node := range Nodes() {
		for i := 0; i < 5; i++ {
			q := gen.ForNode(node)
			a, err := forest.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := conv.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if !workload.EqualRows(a, b) {
				t.Fatalf("%s: engines disagree with extras", q)
			}
			for _, r := range a {
				if len(r.Extra) != 2 {
					t.Fatalf("%s: missing extras: %+v", q, r)
				}
				if r.Extra[0] > r.Extra[1] {
					t.Fatalf("%s: min %d > max %d", q, r.Extra[0], r.Extra[1])
				}
				if r.Extra[1] > 50 || r.Extra[0] < 1 {
					t.Fatalf("%s: extras out of quantity domain: %+v", q, r)
				}
			}
		}
	}
}

func TestMixedPredicatesAgree(t *testing.T) {
	// Queries mixing one equality with one range on the top node.
	s := newTestSetup(t)
	node := Nodes()[0]
	doms := s.Dataset.Domains()
	for i := int64(1); i <= 5; i++ {
		q := workload.Query{
			Node:  node,
			Fixed: []workload.Pred{{Attr: node[0], Value: i}},
			Ranges: []workload.Range{
				{Attr: node[2], Lo: 1, Hi: doms[node[2]] / 2},
			},
		}
		want := bruteForce(t, s, q)
		cube, err := s.Forest.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := s.Conv.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !workload.EqualRows(cube, want) || !workload.EqualRows(conv, want) {
			t.Fatalf("%s: engines disagree with brute force", q)
		}
	}
}

func bruteForce(t *testing.T, s *Setup, q workload.Query) []workload.Row {
	t.Helper()
	agg := workload.NewAggregator(len(q.Node))
	it := s.Dataset.FactRows()
	rows := &factRows{it: it}
	group := make([]int64, len(q.Node))
	for rows.Next() {
		match := true
		for _, p := range q.Fixed {
			v, err := rows.Value(p.Attr)
			if err != nil {
				t.Fatal(err)
			}
			if v != p.Value {
				match = false
				break
			}
		}
		for _, r := range q.Ranges {
			v, err := rows.Value(r.Attr)
			if err != nil {
				t.Fatal(err)
			}
			if v < r.Lo || v > r.Hi {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for i, a := range q.Node {
			v, err := rows.Value(a)
			if err != nil {
				t.Fatal(err)
			}
			group[i] = v
		}
		agg.Add(group, rows.Measure(), 1)
	}
	return agg.Rows()
}
