package experiment

import (
	"fmt"
	"strings"
)

// Table5 reproduces the paper's Table 5, "View allocation for the TPC-D
// dataset": which Cubetree each materialized view (and replica) was mapped
// to by the SelectMapping algorithm.
type Table5 struct {
	Rows []Table5Row
}

// Table5Row is one (Cubetree, view) assignment.
type Table5Row struct {
	Tree   string
	View   string
	Points int64
}

// RunTable5 reads the forest catalog built during setup.
func (s *Setup) RunTable5() Table5 {
	var t Table5
	for _, p := range s.Forest.Placements() {
		tree := s.Forest.Tree(p.Tree)
		t.Rows = append(t.Rows, Table5Row{
			Tree:   fmt.Sprintf("R%d{dim %d}", p.Tree+1, tree.Dim()),
			View:   "V{" + NodeLabel(p.View.Attrs) + "}",
			Points: p.Run.Points,
		})
	}
	return t
}

// String renders the table in the paper's layout.
func (t Table5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: View allocation for the TPC-D dataset\n")
	fmt.Fprintf(&b, "%-14s %-44s %12s\n", "Cubetree", "View", "tuples")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-44s %12d\n", r.Tree, r.View, r.Points)
	}
	return b.String()
}
