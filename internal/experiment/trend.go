package experiment

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Trend analysis over throughput sweeps: two BENCH_throughput.json files are
// compared row by row (client count × engine), and a QPS drop beyond a
// configurable threshold is flagged as a regression. This is the arithmetic
// behind cmd/cttrend and ctbench -compare, and the CI bench gate.

// DefaultTrendThreshold is the fractional QPS drop that counts as a
// regression when no threshold is given: 10%, comfortably above the run-to-
// run noise of the smoke-scale sweep while catching real cliffs.
const DefaultTrendThreshold = 0.10

// TrendOptions configures a throughput comparison.
type TrendOptions struct {
	// Threshold is the fractional QPS drop flagged as a regression
	// (0 = DefaultTrendThreshold).
	Threshold float64
}

// TrendDelta compares one engine at one client count across two sweeps.
type TrendDelta struct {
	Clients int     `json:"clients"`
	Engine  string  `json:"engine"` // "conv" or "cube"
	BaseQPS float64 `json:"base_qps"`
	CurQPS  float64 `json:"cur_qps"`
	// Delta is the fractional change: positive = faster than baseline.
	Delta     float64 `json:"delta"`
	Regressed bool    `json:"regressed"`
	// BaseHitRatio and CurHitRatio track the engine's buffer-pool hit ratio
	// across the two sweeps. Informational: hit-ratio shifts explain QPS
	// moves (e.g. denser leaves fit the pool better) but do not gate.
	BaseHitRatio float64 `json:"base_pool_hit_ratio,omitempty"`
	CurHitRatio  float64 `json:"cur_pool_hit_ratio,omitempty"`
}

// TrendReport is the outcome of comparing two throughput sweeps.
type TrendReport struct {
	Threshold float64      `json:"threshold"`
	Deltas    []TrendDelta `json:"deltas"`
	// MissingClients lists client counts present in only one sweep; they
	// cannot be compared and are reported rather than silently dropped.
	MissingClients []int `json:"missing_clients,omitempty"`
	// Storage-shape context: leaf format and packing density of each sweep.
	// Informational — format changes legitimately move these — but surfaced
	// so a density regression is visible next to the QPS it explains.
	BasePackFormat        int     `json:"base_pack_format,omitempty"`
	CurPackFormat         int     `json:"cur_pack_format,omitempty"`
	BasePointsPerLeafPage float64 `json:"base_points_per_leaf_page,omitempty"`
	CurPointsPerLeafPage  float64 `json:"cur_points_per_leaf_page,omitempty"`
}

// Regressed reports whether any compared row crossed the threshold.
func (r TrendReport) Regressed() bool {
	for _, d := range r.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Regressions returns only the rows that crossed the threshold.
func (r TrendReport) Regressions() []TrendDelta {
	var out []TrendDelta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// CompareThroughput diffs two sweeps. Rows are matched by client count;
// each matched row yields two deltas (conventional and Cubetree engines).
func CompareThroughput(base, cur Throughput, opts TrendOptions) TrendReport {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultTrendThreshold
	}
	rep := TrendReport{
		Threshold:             opts.Threshold,
		BasePackFormat:        base.PackFormat,
		CurPackFormat:         cur.PackFormat,
		BasePointsPerLeafPage: base.CubePointsPerLeafPage,
		CurPointsPerLeafPage:  cur.CubePointsPerLeafPage,
	}
	baseBy := make(map[int]ThroughputRow, len(base.Rows))
	for _, row := range base.Rows {
		baseBy[row.Clients] = row
	}
	matched := make(map[int]bool)
	for _, row := range cur.Rows {
		b, ok := baseBy[row.Clients]
		if !ok {
			rep.MissingClients = append(rep.MissingClients, row.Clients)
			continue
		}
		matched[row.Clients] = true
		conv := trendDelta(row.Clients, "conv", b.ConvQPS, row.ConvQPS, opts.Threshold)
		conv.BaseHitRatio, conv.CurHitRatio = b.ConvHitRatio, row.ConvHitRatio
		cube := trendDelta(row.Clients, "cube", b.CubeQPS, row.CubeQPS, opts.Threshold)
		cube.BaseHitRatio, cube.CurHitRatio = b.CubeHitRatio, row.CubeHitRatio
		rep.Deltas = append(rep.Deltas, conv, cube)
	}
	for c := range baseBy {
		if !matched[c] {
			rep.MissingClients = append(rep.MissingClients, c)
		}
	}
	sort.Ints(rep.MissingClients)
	sort.Slice(rep.Deltas, func(i, j int) bool {
		if rep.Deltas[i].Clients != rep.Deltas[j].Clients {
			return rep.Deltas[i].Clients < rep.Deltas[j].Clients
		}
		return rep.Deltas[i].Engine < rep.Deltas[j].Engine
	})
	return rep
}

func trendDelta(clients int, engine string, base, cur, threshold float64) TrendDelta {
	d := TrendDelta{Clients: clients, Engine: engine, BaseQPS: base, CurQPS: cur}
	switch {
	case base > 0:
		d.Delta = (cur - base) / base
	case cur > 0:
		d.Delta = math.Inf(1)
	}
	d.Regressed = d.Delta < -threshold
	return d
}

// String renders the comparison as a table, regressions marked.
func (r TrendReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput trend (regression threshold %.1f%%)\n", 100*r.Threshold)
	if r.BasePackFormat != 0 || r.CurPackFormat != 0 || r.BasePointsPerLeafPage != 0 || r.CurPointsPerLeafPage != 0 {
		fmt.Fprintf(&b, "cube leaf format v%d -> v%d, points/leaf page %.1f -> %.1f\n",
			packFormatOrV1(r.BasePackFormat), packFormatOrV1(r.CurPackFormat),
			r.BasePointsPerLeafPage, r.CurPointsPerLeafPage)
	}
	fmt.Fprintf(&b, "%8s %6s %14s %14s %9s %16s\n",
		"clients", "engine", "base q/s", "current q/s", "delta", "pool hit%")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%8d %6s %14.0f %14.0f %+8.1f%% %6.1f%% -> %5.1f%%%s\n",
			d.Clients, d.Engine, d.BaseQPS, d.CurQPS, 100*d.Delta,
			100*d.BaseHitRatio, 100*d.CurHitRatio, mark)
	}
	if len(r.MissingClients) > 0 {
		fmt.Fprintf(&b, "not compared (present in only one sweep): clients %v\n", r.MissingClients)
	}
	return b.String()
}

// packFormatOrV1 maps the zero value of Throughput.PackFormat (baselines
// recorded before the field existed) to v1 for display.
func packFormatOrV1(f int) int {
	if f == 0 {
		return 1
	}
	return f
}

// LoadThroughput reads a BENCH_throughput.json file written by ctbench.
func LoadThroughput(path string) (Throughput, error) {
	var t Throughput
	data, err := os.ReadFile(path)
	if err != nil {
		return t, fmt.Errorf("load throughput: %w", err)
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("parse %s: %w", path, err)
	}
	return t, nil
}
