// Package experiment reproduces every table and figure of the paper's
// evaluation (Section 3) on the scaled TPC-D dataset: the view allocation
// (Table 5), the initial load comparison (Table 6), the storage comparison
// (Section 3.2), the per-view query times (Figure 12), system throughput
// (Figure 13), Cubetree scalability (Figure 14), and the warehouse update
// comparison (Table 7).
//
// Because modern buffered SSDs hide the sequential/random gap that drove
// the paper's numbers on a 1998 disk, every experiment reports both wall
// clock and "modelled" time: the counted page I/O priced by a
// pager.CostModel (Disk1998 by default). The modelled time is the
// apples-to-apples reproduction of the paper's measurements; shapes should
// match even though absolute numbers will not.
package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
	"cubetree/internal/relstore"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

// Params configures an experiment run.
type Params struct {
	// SF is the TPC-D scale factor (1.0 = the paper's 1 GB run). Defaults
	// to 0.01.
	SF float64
	// Seed selects the data and query random streams.
	Seed uint64
	// QueriesPerView is the batch size per lattice view (paper: 100).
	QueriesPerView int
	// PoolPages is the buffer pool capacity per storage structure.
	PoolPages int
	// Model prices counted page I/O; defaults to pager.Disk1998.
	Model pager.CostModel
	// Deadline is the update drop-dead window in modelled time. Zero means
	// the paper's 24 hours scaled by SF.
	Deadline time.Duration
	// Replicas controls whether the top view is replicated in two extra
	// sort orders, as the paper does to compensate for the conventional
	// configuration's extra indexes.
	Replicas bool
	// Dir is the working directory. Empty means a fresh temp directory.
	Dir string
	// Obs, when set, instruments both configurations: query metrics,
	// latency histograms, and the slow-query log flow into it, so a debug
	// server attached to the observer exposes a live view of the run.
	Obs *obs.Observer
	// PackFormat selects the Cubetree leaf layout (rtree.FormatV1 or
	// rtree.FormatV2; zero = library default). Benchmarks set it to compare
	// the row-major and columnar formats on identical data.
	PackFormat int
	// MinMeasure is the minimum wall-clock window each throughput-sweep row
	// is measured over: the query batch repeats until the window is filled
	// and QPS is averaged across repetitions. At smoke scale one batch runs
	// in tens of milliseconds, below the noise floor of a shared machine;
	// a window of a second or two makes sweeps reproducible. Zero keeps the
	// single-pass behavior (tests).
	MinMeasure time.Duration
}

func (p Params) withDefaults() Params {
	if p.SF <= 0 {
		p.SF = 0.01
	}
	if p.QueriesPerView <= 0 {
		p.QueriesPerView = 100
	}
	if p.PoolPages <= 0 {
		p.PoolPages = 128
	}
	if p.Model.Name == "" {
		p.Model = pager.Disk1998
	}
	if p.Deadline <= 0 {
		p.Deadline = time.Duration(float64(24*time.Hour) * p.SF)
	}
	return p
}

// Setup holds the artifacts shared by the experiments: the generated
// dataset, the selected views and indexes, the computed view data, and both
// loaded configurations with their load-phase measurements.
type Setup struct {
	Params  Params
	Dataset *tpcd.Dataset
	Lattice *lattice.Lattice

	// Selection mirrors the paper's greedy output: six views and three
	// indexes on the top view.
	Selection greedy.Selection

	// ViewData maps View.Key() to the computed, pack-ordered aggregate
	// data used to load both configurations.
	ViewData map[string]*cube.ViewData

	Conv   *relstore.Config
	Forest *core.Forest

	// Load measurements (Table 6).
	ComputeWall   time.Duration
	ComputeIO     pager.StatsSnapshot
	ConvViewWall  time.Duration
	ConvViewIO    pager.StatsSnapshot
	ConvIndexWall time.Duration
	ConvIndexIO   pager.StatsSnapshot
	CubeWall      time.Duration // pack phase
	CubeIO        pager.StatsSnapshot
	CubeSortWall  time.Duration // replica re-sorts
	CubeSortIO    pager.StatsSnapshot

	dir       string
	convStats *pager.Stats
	cubeStats *pager.Stats
}

// ConvStats returns the conventional configuration's I/O accounting.
func (s *Setup) ConvStats() *pager.Stats { return s.convStats }

// CubeStats returns the Cubetree configuration's I/O accounting.
func (s *Setup) CubeStats() *pager.Stats { return s.cubeStats }

// Dir returns the setup's working directory.
func (s *Setup) Dir() string { return s.dir }

// Close releases both configurations.
func (s *Setup) Close() error {
	var first error
	if s.Conv != nil {
		if err := s.Conv.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.Forest != nil {
		if err := s.Forest.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// factRows adapts the TPC-D iterator to cube.RowIter.
type factRows struct{ it *tpcd.Iterator }

func (f *factRows) Next() bool                          { return f.it.Next() }
func (f *factRows) Value(a lattice.Attr) (int64, error) { return f.it.Value(a) }
func (f *factRows) Measure() int64                      { return f.it.Fact().Quantity }

// replicaOrders are the two extra sort orders the paper materializes for
// the top view: V{suppkey,custkey,partkey} and V{custkey,partkey,suppkey}.
func replicaOrders() [][]lattice.Attr {
	return [][]lattice.Attr{
		{tpcd.AttrSupplier, tpcd.AttrCustomer, tpcd.AttrPart},
		{tpcd.AttrCustomer, tpcd.AttrPart, tpcd.AttrSupplier},
	}
}

// NewSetup generates the dataset, computes the selected views, and loads
// both storage configurations, recording the Table 6 measurements.
func NewSetup(p Params) (*Setup, error) {
	p = p.withDefaults()
	dir := p.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cubetree-exp-")
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	ds := tpcd.New(tpcd.Params{SF: p.SF, Seed: p.Seed})
	dims := []lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer}
	lat, err := lattice.New(dims, ds.Domains())
	if err != nil {
		return nil, err
	}

	s := &Setup{
		Params:    p,
		Dataset:   ds,
		Lattice:   lat,
		Selection: greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer),
		dir:       dir,
		convStats: &pager.Stats{},
		cubeStats: &pager.Stats{},
	}

	// Phase 0: compute the selected views with the shared sort-based
	// pipeline. Both configurations consume this data, exactly as both of
	// the paper's configurations materialize the same set V.
	computeStats := &pager.Stats{}
	start := time.Now()
	s.ViewData, err = cube.Compute(filepath.Join(dir, "viewdata"), &factRows{it: ds.FactRows()},
		s.Selection.Views, cube.Options{Stats: computeStats})
	if err != nil {
		return nil, err
	}
	s.ComputeWall = time.Since(start)
	s.ComputeIO = computeStats.Snapshot()

	// Phase 1: conventional views (heap tables).
	s.Conv, err = relstore.Create(filepath.Join(dir, "conv"), relstore.Options{
		PoolPages: p.PoolPages,
		Domains:   ds.Domains(),
		Stats:     s.convStats,
	})
	if err != nil {
		return nil, err
	}
	mark := s.convStats.Snapshot()
	start = time.Now()
	for _, view := range s.Selection.Views {
		if err := s.Conv.LoadView(s.ViewData[view.Key()]); err != nil {
			return nil, err
		}
	}
	s.ConvViewWall = time.Since(start)
	s.ConvViewIO = s.convStats.Snapshot().Sub(mark)

	// Phase 2: conventional indexes (per-row B-tree inserts).
	mark = s.convStats.Snapshot()
	start = time.Now()
	for _, order := range s.Selection.Indexes {
		if err := s.Conv.BuildIndex(order); err != nil {
			return nil, err
		}
	}
	s.ConvIndexWall = time.Since(start)
	s.ConvIndexIO = s.convStats.Snapshot().Sub(mark)

	// Phase 3: Cubetree forest. Replica sort orders are produced first
	// (part of the Cubetree sort phase), then everything is packed.
	sources := make([]*cube.ViewData, 0, len(s.Selection.Views)+2)
	for _, view := range s.Selection.Views {
		sources = append(sources, s.ViewData[view.Key()])
	}
	sortStats := &pager.Stats{}
	start = time.Now()
	if p.Replicas {
		top := s.ViewData[lattice.CanonKey(dims)]
		for _, order := range replicaOrders() {
			rep, err := cube.Reorder(filepath.Join(dir, "viewdata"), top, order,
				cube.Options{Stats: sortStats})
			if err != nil {
				return nil, err
			}
			sources = append(sources, rep)
		}
	}
	s.CubeSortWall = time.Since(start)
	s.CubeSortIO = sortStats.Snapshot()

	mark = s.cubeStats.Snapshot()
	start = time.Now()
	s.Forest, err = core.Build(filepath.Join(dir, "forest"), sources, core.BuildOptions{
		PoolPages:  p.PoolPages,
		Domains:    ds.Domains(),
		Stats:      s.cubeStats,
		PackFormat: p.PackFormat,
	})
	if err != nil {
		return nil, err
	}
	s.CubeWall = time.Since(start)
	s.CubeIO = s.cubeStats.Snapshot().Sub(mark)

	if p.Obs != nil {
		s.Conv.SetObserver(p.Obs)
		s.Forest.SetObserver(p.Obs)
	}
	return s, nil
}

// Nodes returns the seven non-empty lattice nodes in the order of the
// paper's Figure 12 x-axis.
func Nodes() [][]lattice.Attr {
	p, su, c := tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer
	return [][]lattice.Attr{
		{p, su, c},
		{p, su},
		{p, c},
		{su, c},
		{p},
		{su},
		{c},
	}
}

// NodeLabel renders a node like the paper's axis labels.
func NodeLabel(node []lattice.Attr) string {
	if len(node) == 0 {
		return "none"
	}
	out := ""
	for i, a := range node {
		if i > 0 {
			out += ","
		}
		out += string(a)
	}
	return out
}

// fmtDur renders durations compactly for report tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm%02ds", int(d.Hours()), int(d.Minutes())%60, int(d.Seconds())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}

// queryEngines runs the same query batch against both engines, checking
// that the answers agree, and returns per-engine wall and modelled times.
func (s *Setup) runBatch(node []lattice.Attr, n int, genSeed uint64) (batchResult, error) {
	gen := workload.NewGenerator(genSeed, s.Dataset.Domains())
	queries := gen.Batch(node, n)
	var res batchResult

	convMark := s.convStats.Snapshot()
	start := time.Now()
	convRows := make([][]workload.Row, len(queries))
	for i, q := range queries {
		rows, err := s.Conv.Execute(q)
		if err != nil {
			return res, fmt.Errorf("conventional %s: %w", q, err)
		}
		convRows[i] = rows
	}
	res.ConvWall = time.Since(start)
	res.ConvIO = s.convStats.Snapshot().Sub(convMark)

	cubeMark := s.cubeStats.Snapshot()
	start = time.Now()
	for i, q := range queries {
		rows, err := s.Forest.Execute(q)
		if err != nil {
			return res, fmt.Errorf("cubetree %s: %w", q, err)
		}
		if !workload.EqualRows(rows, convRows[i]) {
			return res, fmt.Errorf("engines disagree on %s: cubetree %d rows, conventional %d rows",
				q, len(rows), len(convRows[i]))
		}
	}
	res.CubeWall = time.Since(start)
	res.CubeIO = s.cubeStats.Snapshot().Sub(cubeMark)
	res.Queries = len(queries)
	return res, nil
}

type batchResult struct {
	Queries  int
	ConvWall time.Duration
	ConvIO   pager.StatsSnapshot
	CubeWall time.Duration
	CubeIO   pager.StatsSnapshot
}
