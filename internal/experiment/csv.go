package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// CSV renderers: each experiment result can emit the series the paper
// plots as comma-separated values, so figures can be regenerated with any
// plotting tool (ctbench -csv <dir> writes one file per artifact).

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// CSV renders Table 5 rows.
func (t Table5) CSV() string {
	var b strings.Builder
	b.WriteString("cubetree,view,tuples\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%q,%q,%d\n", r.Tree, r.View, r.Points)
	}
	return b.String()
}

// CSV renders Table 6 phases in modelled milliseconds.
func (t Table6) CSV() string {
	var b strings.Builder
	b.WriteString("configuration,views_ms,indices_ms,total_ms,wall_ms\n")
	fmt.Fprintf(&b, "conventional,%.1f,%.1f,%.1f,%.1f\n",
		ms(t.ComputeModeled+t.ConvViewsModeled), ms(t.ConvIndexModeled),
		ms(t.ComputeModeled+t.ConvViewsModeled+t.ConvIndexModeled),
		ms(t.ComputeWall+t.ConvViewsWall+t.ConvIndexWall))
	fmt.Fprintf(&b, "cubetrees,%.1f,0,%.1f,%.1f\n",
		ms(t.ComputeModeled+t.CubeModeled), ms(t.ComputeModeled+t.CubeModeled),
		ms(t.ComputeWall+t.CubeWall))
	return b.String()
}

// CSV renders the storage comparison.
func (st Storage) CSV() string {
	var b strings.Builder
	b.WriteString("metric,bytes\n")
	fmt.Fprintf(&b, "conventional_tables,%d\n", st.ConvTables)
	fmt.Fprintf(&b, "conventional_indexes,%d\n", st.ConvIndexes)
	fmt.Fprintf(&b, "conventional_total,%d\n", st.ConvTotal)
	fmt.Fprintf(&b, "cubetrees_total,%d\n", st.CubeTotal)
	fmt.Fprintf(&b, "saving_pct,%.1f\n", st.Saving*100)
	fmt.Fprintf(&b, "leaf_page_pct,%.1f\n", st.CubeLeafFrac*100)
	return b.String()
}

// CSV renders the Figure 12 series.
func (f Fig12) CSV() string {
	var b strings.Builder
	b.WriteString("view,queries,conventional_ms,cubetrees_ms,conventional_wall_ms,cubetrees_wall_ms\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%q,%d,%.1f,%.1f,%.1f,%.1f\n",
			r.View, r.Queries, ms(r.ConvModeled), ms(r.CubeModeled),
			ms(r.ConvWall), ms(r.CubeWall))
	}
	return b.String()
}

// CSV renders the Figure 13 throughput summary.
func (f Fig13) CSV() string {
	var b strings.Builder
	b.WriteString("configuration,min_qps,max_qps,avg_qps\n")
	fmt.Fprintf(&b, "conventional,%.2f,%.2f,%.2f\n", f.ConvMin, f.ConvMax, f.ConvAvg)
	fmt.Fprintf(&b, "cubetrees,%.2f,%.2f,%.2f\n", f.CubeMin, f.CubeMax, f.CubeAvg)
	return b.String()
}

// CSV renders the Figure 14 scalability series.
func (f Fig14) CSV() string {
	var b strings.Builder
	b.WriteString("view,queries,base1x_ms,base2x_ms,rows1x,rows2x\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%q,%d,%.1f,%.1f,%d,%d\n",
			r.View, r.Queries, ms(r.Base1x), ms(r.Base2x), r.Output1x, r.Output2x)
	}
	return b.String()
}

// CSV renders Table 7 methods in modelled milliseconds.
func (t Table7) CSV() string {
	var b strings.Builder
	b.WriteString("method,modelled_ms,wall_ms,timed_out\n")
	fmt.Fprintf(&b, "incremental_conventional,%.1f,%.1f,%v\n", ms(t.IncModeled), ms(t.IncWall), t.IncTimedOut)
	fmt.Fprintf(&b, "recompute_conventional,%.1f,%.1f,false\n", ms(t.RecompModeled), ms(t.RecompWall))
	fmt.Fprintf(&b, "mergepack_cubetrees,%.1f,%.1f,false\n", ms(t.CubeModeled), ms(t.CubeWall))
	return b.String()
}

// WriteCSV stores content under dir/name, creating dir if needed.
func WriteCSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
