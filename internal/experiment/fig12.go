package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Fig12 reproduces Figure 12, "Querying the views": the total time of 100
// random slice queries per lattice view under each configuration. Every
// query is answered by both engines and the results are cross-checked, so
// a Fig12 run is also an end-to-end equivalence test of the two storage
// organizations.
type Fig12 struct {
	Rows []Fig12Row
}

// Fig12Row is one view's batch measurement.
type Fig12Row struct {
	View        string
	Queries     int
	ConvWall    time.Duration
	ConvModeled time.Duration
	CubeWall    time.Duration
	CubeModeled time.Duration
}

// RunFig12 executes the query batches over all seven non-scalar lattice
// views.
func (s *Setup) RunFig12() (Fig12, error) {
	var f Fig12
	for i, node := range Nodes() {
		res, err := s.runBatch(node, s.Params.QueriesPerView, s.Params.Seed+uint64(i)*7919)
		if err != nil {
			return f, err
		}
		f.Rows = append(f.Rows, Fig12Row{
			View:        NodeLabel(node),
			Queries:     res.Queries,
			ConvWall:    res.ConvWall,
			ConvModeled: s.Params.Model.Cost(res.ConvIO),
			CubeWall:    res.CubeWall,
			CubeModeled: s.Params.Model.Cost(res.CubeIO),
		})
	}
	return f, nil
}

// String renders the figure's series as a table.
func (f Fig12) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: Querying the views (total time for batch, modelled | wall)\n")
	fmt.Fprintf(&b, "%-28s %6s %14s %14s | %12s %12s\n",
		"View", "n", "Conventional", "Cubetrees", "conv wall", "cube wall")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s %6d %14s %14s | %12s %12s\n",
			r.View, r.Queries, fmtDur(r.ConvModeled), fmtDur(r.CubeModeled),
			fmtDur(r.ConvWall), fmtDur(r.CubeWall))
	}
	return b.String()
}

// Fig13 reproduces Figure 13, "System throughput": the minimum, maximum and
// average queries/second of each configuration over the Figure 12 batches.
// The paper measured conventional avg 1.1 q/s vs Cubetrees 10.1 q/s.
type Fig13 struct {
	ConvMin, ConvMax, ConvAvg float64
	CubeMin, CubeMax, CubeAvg float64
}

// RunFig13 derives throughput from a Fig12 result using modelled time.
func RunFig13(f Fig12) Fig13 {
	var out Fig13
	var convTotal, cubeTotal time.Duration
	var n int
	for i, r := range f.Rows {
		conv := throughput(r.Queries, r.ConvModeled)
		cube := throughput(r.Queries, r.CubeModeled)
		if i == 0 {
			out.ConvMin, out.ConvMax = conv, conv
			out.CubeMin, out.CubeMax = cube, cube
		}
		out.ConvMin = min2(out.ConvMin, conv)
		out.ConvMax = max2(out.ConvMax, conv)
		out.CubeMin = min2(out.CubeMin, cube)
		out.CubeMax = max2(out.CubeMax, cube)
		convTotal += r.ConvModeled
		cubeTotal += r.CubeModeled
		n += r.Queries
	}
	out.ConvAvg = throughput(n, convTotal)
	out.CubeAvg = throughput(n, cubeTotal)
	return out
}

func throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		// A batch that cost no I/O at all was fully buffered; report it as
		// if it took one model tick rather than dividing by zero.
		d = time.Millisecond
	}
	return float64(n) / d.Seconds()
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the throughput comparison.
func (f Fig13) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: System throughput (queries/sec, modelled)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "Configuration", "min", "max", "avg")
	fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f\n", "Conventional", f.ConvMin, f.ConvMax, f.ConvAvg)
	fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f\n", "Cubetrees", f.CubeMin, f.CubeMax, f.CubeAvg)
	if f.ConvAvg > 0 {
		fmt.Fprintf(&b, "cubetree/conventional avg ratio: %.1fx (paper: ~10x)\n", f.CubeAvg/f.ConvAvg)
	}
	return b.String()
}
