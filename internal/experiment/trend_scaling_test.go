package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scalingFixture(qps4, refresh4 float64) Scaling {
	return Scaling{
		SF: 0.01, PoolPages: 64, Queries: 100,
		SingleQPS: 900, SingleRefreshMS: 40,
		Rows: []ScalingRow{
			{Workers: 1, QPS: 1000, Speedup: 1, RefreshShardMaxMS: 40, RefreshShardSumMS: 40},
			{Workers: 4, QPS: qps4, Speedup: qps4 / 1000, RefreshShardMaxMS: refresh4, RefreshShardSumMS: 44},
		},
	}
}

func TestCompareScaling(t *testing.T) {
	base := scalingFixture(3000, 12)
	same := CompareScaling(base, base, TrendOptions{})
	if same.Regressed() {
		t.Fatalf("self-comparison regressed: %v", same.Regressions())
	}

	// QPS down 50% at 4 workers: regression on the qps metric only.
	worse := CompareScaling(base, scalingFixture(1500, 12), TrendOptions{})
	regs := worse.Regressions()
	if len(regs) != 1 || regs[0].Metric != "qps" || regs[0].Workers != 4 {
		t.Fatalf("regressions = %+v, want one qps@4", regs)
	}

	// Refresh window doubled: lower-is-better metric must flag too.
	slower := CompareScaling(base, scalingFixture(3000, 24), TrendOptions{})
	regs = slower.Regressions()
	if len(regs) != 1 || regs[0].Metric != "refresh_ms" {
		t.Fatalf("regressions = %+v, want one refresh_ms@4", regs)
	}
	if !strings.Contains(slower.String(), "REGRESSION") {
		t.Fatal("rendering does not mark the regression")
	}

	// A cluster size present on one side only is reported, not compared.
	cur := base
	cur.Rows = cur.Rows[:1]
	partial := CompareScaling(base, cur, TrendOptions{})
	if len(partial.MissingWorkers) != 1 || partial.MissingWorkers[0] != 4 {
		t.Fatalf("missing workers = %v, want [4]", partial.MissingWorkers)
	}
}

// TestBenchKindSniff checks cttrend's artifact detection, including a
// baseline recorded before pack_format existed: older JSONs must load with
// missing fields defaulting rather than erroring.
func TestBenchKindSniff(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// A pre-pack_format throughput baseline (PR 5 era): no pack_format, no
	// cube_points_per_leaf_page, no pool hit ratios.
	old := write("old.json", `{
		"sf": 0.01, "pool_pages": 128, "gomaxprocs": 4, "queries": 700,
		"rows": [{"clients": 1, "conv_qps": 100, "cube_qps": 400,
			"conv_io": {}, "cube_io": {}}]
	}`)
	scaling := write("scaling.json", `{
		"sf": 0.01, "pool_pages_per_worker": 64, "queries": 100,
		"rows": [{"workers": 1, "qps": 1000, "speedup": 1}]
	}`)

	if k, err := BenchKind(old); err != nil || k != "throughput" {
		t.Fatalf("BenchKind(old) = %q, %v", k, err)
	}
	if k, err := BenchKind(scaling); err != nil || k != "scaling" {
		t.Fatalf("BenchKind(scaling) = %q, %v", k, err)
	}

	tp, err := LoadThroughput(old)
	if err != nil {
		t.Fatalf("old baseline failed to load: %v", err)
	}
	if tp.PackFormat != 0 || len(tp.Rows) != 1 || tp.Rows[0].CubeQPS != 400 {
		t.Fatalf("old baseline mangled: %+v", tp)
	}
	// Comparing current (with pack_format) against the old baseline works
	// and renders the zero format as v1.
	cur := tp
	cur.PackFormat = 2
	rep := CompareThroughput(tp, cur, TrendOptions{})
	if rep.Regressed() {
		t.Fatalf("format-only change regressed: %v", rep.Regressions())
	}
	if !strings.Contains(rep.String(), "v1 -> v2") {
		t.Fatalf("rendering does not map 0 to v1:\n%s", rep.String())
	}

	s, err := LoadScaling(scaling)
	if err != nil || len(s.Rows) != 1 || s.Rows[0].Workers != 1 {
		t.Fatalf("LoadScaling = %+v, %v", s, err)
	}
}
