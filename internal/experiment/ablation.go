package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/greedy"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out, on one
// dataset: SelectMapping vs one-tree-per-view, replicas on/off, and a
// buffer pool sweep. Each row reports bytes and the modelled cost of a
// fixed query batch.
type Ablations struct {
	Rows []AblationRow
}

// AblationRow is one configuration's measurements.
type AblationRow struct {
	Name    string
	Trees   int
	Bytes   int64
	Queries int
	Modeled time.Duration
}

// RunAblations builds each variant from the same computed view data and
// runs an identical query batch against it.
func RunAblations(p Params) (Ablations, error) {
	p = p.withDefaults()
	ds := tpcd.New(tpcd.Params{SF: p.SF, Seed: p.Seed})
	sel := greedy.PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	scratch, err := tempDir(p.Dir)
	if err != nil {
		return Ablations{}, err
	}
	data, err := cube.Compute(scratch, &factRows{it: ds.FactRows()}, sel.Views, cube.Options{})
	if err != nil {
		return Ablations{}, err
	}
	top := data[lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer})]

	baseSources := make([]*cube.ViewData, 0, len(sel.Views))
	for _, view := range sel.Views {
		baseSources = append(baseSources, data[view.Key()])
	}
	withReplicas := append([]*cube.ViewData(nil), baseSources...)
	for _, order := range replicaOrders() {
		rep, err := cube.Reorder(scratch, top, order, cube.Options{})
		if err != nil {
			return Ablations{}, err
		}
		withReplicas = append(withReplicas, rep)
	}

	type variant struct {
		name    string
		sources []*cube.ViewData
		mapping func([]lattice.View) core.Mapping
		// budget is the TOTAL pool pages across all trees, so variants
		// with more trees do not silently get more memory.
		budget int
	}
	// The baseline SelectMapping forest has 3 trees.
	base := p.PoolPages * 3
	variants := []variant{
		{"selectmapping+replicas", withReplicas, nil, base},
		{"selectmapping, no replicas", baseSources, nil, base},
		{"one tree per view", withReplicas, core.PerViewMapping, base},
		{"memory/4", withReplicas, nil, maxInt(base/4, 6)},
		{"memory*4", withReplicas, nil, base * 4},
	}

	var out Ablations
	for vi, v := range variants {
		stats := &pager.Stats{}
		views := make([]lattice.View, len(v.sources))
		for i, s := range v.sources {
			views[i] = s.View
		}
		mapping := core.SelectMapping(views)
		if v.mapping != nil {
			mapping = v.mapping(views)
		}
		opts := core.BuildOptions{
			PoolPages: maxInt(v.budget/len(mapping.Trees), 2),
			Domains:   ds.Domains(),
			Stats:     stats,
			Mapping:   &mapping,
		}
		forest, err := core.Build(filepath.Join(scratch, fmt.Sprintf("ab%d", vi)), v.sources, opts)
		if err != nil {
			return out, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		gen := workload.NewGenerator(p.Seed^0xab1a, ds.Domains())
		nodes := Nodes()
		mark := stats.Snapshot()
		n := 0
		for _, node := range nodes {
			for i := 0; i < p.QueriesPerView; i++ {
				if _, err := forest.Execute(gen.ForNode(node)); err != nil {
					forest.Close()
					return out, fmt.Errorf("ablation %q: %w", v.name, err)
				}
				n++
			}
		}
		io := stats.Snapshot().Sub(mark)
		out.Rows = append(out.Rows, AblationRow{
			Name:    v.name,
			Trees:   forest.Trees(),
			Bytes:   forest.TotalBytes(),
			Queries: n,
			Modeled: p.Model.Cost(io),
		})
		forest.Close()
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tempDir returns a scratch directory inside base (or the OS default).
func tempDir(base string) (string, error) {
	if base == "" {
		return os.MkdirTemp("", "cubetree-ablation-")
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		return "", err
	}
	return os.MkdirTemp(base, "ablation-")
}

// String renders the ablation table.
func (a Ablations) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (same views + identical query batch per variant)\n")
	fmt.Fprintf(&b, "%-28s %6s %12s %8s %14s\n", "variant", "trees", "bytes", "queries", "modelled")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-28s %6d %12d %8d %14s\n", r.Name, r.Trees, r.Bytes, r.Queries, fmtDur(r.Modeled))
	}
	return b.String()
}

// CSV renders the ablation table as CSV.
func (a Ablations) CSV() string {
	var b strings.Builder
	b.WriteString("variant,trees,bytes,queries,modelled_ms\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%q,%d,%d,%d,%.1f\n", r.Name, r.Trees, r.Bytes, r.Queries, ms(r.Modeled))
	}
	return b.String()
}
