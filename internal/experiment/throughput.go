package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"cubetree/internal/pager"
	"cubetree/internal/workload"
)

// Throughput extends Figure 13 with a concurrency sweep: the same mixed
// query batch is executed against both configurations with 1, 2, 4, and
// GOMAXPROCS concurrent clients, reporting wall-clock queries/second, the
// buffer-pool hit ratio, and the counted page I/O per run. Modelled time
// (the paper's metric) is invariant under parallelism — the same pages are
// read no matter when — so this sweep is about the implementation scaling
// with cores, and its JSON output is the perf baseline later PRs diff
// against.
type Throughput struct {
	SF         float64 `json:"sf"`
	PoolPages  int     `json:"pool_pages"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Queries    int     `json:"queries"`
	// PackFormat is the Cubetree leaf layout the sweep ran against
	// (rtree.FormatV1 or rtree.FormatV2; 0 in baselines recorded before the
	// field existed, which implies v1).
	PackFormat int `json:"pack_format,omitempty"`
	// CubePointsPerLeafPage is the forest's packing density; the columnar
	// format raises it, which is what turns into fewer leaf reads per query.
	CubePointsPerLeafPage float64         `json:"cube_points_per_leaf_page,omitempty"`
	Rows                  []ThroughputRow `json:"rows"`
}

// ThroughputRow is one client count's measurement over both engines.
type ThroughputRow struct {
	Clients      int                 `json:"clients"`
	ConvQPS      float64             `json:"conv_qps"`
	CubeQPS      float64             `json:"cube_qps"`
	ConvHitRatio float64             `json:"conv_pool_hit_ratio"`
	CubeHitRatio float64             `json:"cube_pool_hit_ratio"`
	ConvIO       pager.StatsSnapshot `json:"conv_io"`
	CubeIO       pager.StatsSnapshot `json:"cube_io"`
}

// DefaultClients is the sweep's client-count axis: 1, 2, 4, GOMAXPROCS
// (deduplicated, ascending).
func DefaultClients() []int {
	out := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		out = append(out, p)
	}
	return out
}

// RunThroughput executes the concurrency sweep. The batch interleaves the
// seven lattice nodes' query streams so every client count serves the same
// mixed workload. Parallel answers are cross-checked against the serial
// ones: a sweep that returned different rows would be measuring a broken
// executor.
func (s *Setup) RunThroughput(clients []int) (Throughput, error) {
	if len(clients) == 0 {
		clients = DefaultClients()
	}
	out := Throughput{
		SF:         s.Params.SF,
		PoolPages:  s.Params.PoolPages,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PackFormat: s.Forest.PackFormat(),
	}
	if lp := s.Forest.LeafPages(); lp > 0 {
		out.CubePointsPerLeafPage = float64(s.Forest.Points()) / float64(lp)
	}

	// One generator per node, interleaved round-robin into a mixed batch.
	nodes := Nodes()
	gens := make([]*workload.Generator, len(nodes))
	for i := range nodes {
		gens[i] = workload.NewGenerator(s.Params.Seed+uint64(i)*7919, s.Dataset.Domains())
	}
	var queries []workload.Query
	for q := 0; q < s.Params.QueriesPerView; q++ {
		for i, node := range nodes {
			queries = append(queries, gens[i].ForNode(node))
		}
	}
	out.Queries = len(queries)

	// Serial reference answers; also warms both pools the same way every
	// sweep row's predecessor does.
	refConv, err := s.Conv.ExecuteBatch(queries, 1)
	if err != nil {
		return out, fmt.Errorf("throughput reference (conventional): %w", err)
	}
	refCube, err := s.Forest.ExecuteBatch(queries, 1)
	if err != nil {
		return out, fmt.Errorf("throughput reference (cubetree): %w", err)
	}
	for i := range queries {
		if !workload.EqualRows(refConv[i], refCube[i]) {
			return out, fmt.Errorf("engines disagree on %s", queries[i])
		}
	}

	for _, c := range clients {
		row := ThroughputRow{Clients: c}

		convMark := s.convStats.Snapshot()
		start := time.Now()
		got, err := s.Conv.ExecuteBatch(queries, c)
		if err != nil {
			return out, fmt.Errorf("conventional @%d clients: %w", c, err)
		}
		// The I/O snapshot covers exactly one batch — page counts are
		// deterministic per batch, so repetitions would just scale them.
		row.ConvIO = s.convStats.Snapshot().Sub(convMark)
		row.ConvHitRatio = hitRatio(row.ConvIO)
		reps := 1
		for time.Since(start) < s.Params.MinMeasure {
			if _, err := s.Conv.ExecuteBatch(queries, c); err != nil {
				return out, fmt.Errorf("conventional @%d clients: %w", c, err)
			}
			reps++
		}
		row.ConvQPS = throughput(reps*len(queries), time.Since(start))
		for i := range queries {
			if !workload.EqualRows(got[i], refConv[i]) {
				return out, fmt.Errorf("conventional @%d clients: %s differs from serial answer", c, queries[i])
			}
		}

		cubeMark := s.cubeStats.Snapshot()
		start = time.Now()
		got, err = s.Forest.ExecuteBatch(queries, c)
		if err != nil {
			return out, fmt.Errorf("cubetree @%d clients: %w", c, err)
		}
		row.CubeIO = s.cubeStats.Snapshot().Sub(cubeMark)
		row.CubeHitRatio = hitRatio(row.CubeIO)
		reps = 1
		for time.Since(start) < s.Params.MinMeasure {
			if _, err := s.Forest.ExecuteBatch(queries, c); err != nil {
				return out, fmt.Errorf("cubetree @%d clients: %w", c, err)
			}
			reps++
		}
		row.CubeQPS = throughput(reps*len(queries), time.Since(start))
		for i := range queries {
			if !workload.EqualRows(got[i], refCube[i]) {
				return out, fmt.Errorf("cubetree @%d clients: %s differs from serial answer", c, queries[i])
			}
		}

		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func hitRatio(s pager.StatsSnapshot) float64 {
	if s.PoolHits+s.PoolMisses == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.PoolHits+s.PoolMisses)
}

// String renders the sweep as a table.
func (t Throughput) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput sweep: %d mixed queries, pool %d pages, GOMAXPROCS %d (wall-clock q/s)\n",
		t.Queries, t.PoolPages, t.GoMaxProcs)
	fmt.Fprintf(&b, "%8s %14s %14s %12s %12s\n", "clients", "conv q/s", "cube q/s", "conv hit%", "cube hit%")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%8d %14.0f %14.0f %11.1f%% %11.1f%%\n",
			r.Clients, r.ConvQPS, r.CubeQPS, 100*r.ConvHitRatio, 100*r.CubeHitRatio)
	}
	return b.String()
}
