package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sweep(qps map[int][2]float64) Throughput {
	t := Throughput{SF: 0.01, Queries: 700}
	for _, c := range []int{1, 2, 4} {
		if v, ok := qps[c]; ok {
			t.Rows = append(t.Rows, ThroughputRow{Clients: c, ConvQPS: v[0], CubeQPS: v[1]})
		}
	}
	return t
}

func TestCompareThroughputIdentical(t *testing.T) {
	base := sweep(map[int][2]float64{1: {100, 200}, 2: {180, 390}, 4: {300, 700}})
	rep := CompareThroughput(base, base, TrendOptions{})
	if rep.Regressed() {
		t.Fatalf("identical sweeps flagged as regression: %+v", rep.Regressions())
	}
	if len(rep.Deltas) != 6 {
		t.Fatalf("deltas = %d, want 6 (3 client counts x 2 engines)", len(rep.Deltas))
	}
	for _, d := range rep.Deltas {
		if d.Delta != 0 {
			t.Fatalf("identical sweep has nonzero delta: %+v", d)
		}
	}
}

func TestCompareThroughputFlagsRegression(t *testing.T) {
	base := sweep(map[int][2]float64{1: {100, 200}, 2: {180, 390}})
	// Cube engine at 2 clients drops 15% — beyond the 10% default.
	cur := sweep(map[int][2]float64{1: {100, 200}, 2: {180, 331.5}})
	rep := CompareThroughput(base, cur, TrendOptions{})
	if !rep.Regressed() {
		t.Fatal("15% drop not flagged at 10% threshold")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Clients != 2 || regs[0].Engine != "cube" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Delta > -0.14 || regs[0].Delta < -0.16 {
		t.Fatalf("delta = %v, want ~-0.15", regs[0].Delta)
	}
}

func TestCompareThroughputThreshold(t *testing.T) {
	base := sweep(map[int][2]float64{1: {100, 200}})
	cur := sweep(map[int][2]float64{1: {100, 184}}) // cube -8%
	if CompareThroughput(base, cur, TrendOptions{}).Regressed() {
		t.Fatal("8% drop flagged at 10% threshold")
	}
	if !CompareThroughput(base, cur, TrendOptions{Threshold: 0.05}).Regressed() {
		t.Fatal("8% drop not flagged at 5% threshold")
	}
	// Speedups never regress, whatever the threshold.
	fast := sweep(map[int][2]float64{1: {400, 800}})
	if CompareThroughput(base, fast, TrendOptions{Threshold: 0.01}).Regressed() {
		t.Fatal("speedup flagged as regression")
	}
}

func TestCompareThroughputMissingClients(t *testing.T) {
	base := sweep(map[int][2]float64{1: {100, 200}, 2: {180, 390}})
	cur := sweep(map[int][2]float64{1: {100, 200}, 4: {300, 700}})
	rep := CompareThroughput(base, cur, TrendOptions{})
	if len(rep.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (only clients=1 comparable)", len(rep.Deltas))
	}
	if len(rep.MissingClients) != 2 || rep.MissingClients[0] != 2 || rep.MissingClients[1] != 4 {
		t.Fatalf("missing clients = %v, want [2 4]", rep.MissingClients)
	}
}

func TestCompareThroughputZeroBaseline(t *testing.T) {
	base := sweep(map[int][2]float64{1: {0, 0}})
	cur := sweep(map[int][2]float64{1: {100, 200}})
	rep := CompareThroughput(base, cur, TrendOptions{})
	if rep.Regressed() {
		t.Fatalf("zero baseline flagged as regression: %+v", rep.Regressions())
	}
}

func TestLoadThroughputRoundTrip(t *testing.T) {
	want := sweep(map[int][2]float64{1: {100, 200}, 2: {180, 390}})
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadThroughput(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[1].CubeQPS != 390 {
		t.Fatalf("round-trip = %+v", got)
	}
	if _, err := LoadThroughput(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
