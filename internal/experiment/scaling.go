package experiment

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"cubetree"
	"cubetree/internal/dist"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/tpcd"
	"cubetree/internal/workload"
)

// ScalingParams configures the distributed scatter-gather sweep.
type ScalingParams struct {
	// SF is the TPC-D scale factor (default 0.01).
	SF float64
	// Seed selects the data and query random streams.
	Seed uint64
	// QueriesPerView is the batch size per lattice node (default 25).
	QueriesPerView int
	// PoolPages is the buffer pool capacity per Cubetree on each worker
	// (default 64). It is deliberately held fixed as workers are added: the
	// cluster's aggregate cache grows with N, which is the memory-scale-out
	// effect the sweep measures on top of the refresh fan-out.
	PoolPages int
	// Workers lists the cluster sizes to sweep (default 1, 2, 4).
	Workers []int
	// DeltaFrac sizes the refresh delta as a fraction of the fact table
	// (default 0.1, the paper's 10% increment).
	DeltaFrac float64
	// MinMeasure is the minimum wall-clock window each QPS row is measured
	// over; the batch repeats until the window is filled. Zero = one pass.
	MinMeasure time.Duration
	// Dir is the working directory. Empty means a fresh temp directory per
	// cluster size under os.TempDir.
	Dir string
	// PackFormat selects the Cubetree leaf layout (0 = library default).
	PackFormat int
}

func (p ScalingParams) withDefaults() ScalingParams {
	if p.SF <= 0 {
		p.SF = 0.01
	}
	if p.QueriesPerView <= 0 {
		p.QueriesPerView = 25
	}
	if p.PoolPages <= 0 {
		p.PoolPages = 64
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4}
	}
	if p.DeltaFrac <= 0 {
		p.DeltaFrac = 0.1
	}
	return p
}

// Scaling is the sweep's JSON artifact (BENCH_scaling.json).
type Scaling struct {
	SF         float64 `json:"sf"`
	PoolPages  int     `json:"pool_pages_per_worker"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Queries    int     `json:"queries"`
	DeltaRows  int     `json:"delta_rows"`
	PackFormat int     `json:"pack_format,omitempty"`
	// SingleQPS is the no-network baseline on the modelled testbed: the
	// same batch executed directly against the 1-shard warehouse (no
	// coordinator, no wire protocol), its counted page I/O priced by
	// pager.Disk1998 on top of the measured CPU. SingleWallQPS is the raw
	// wall figure.
	SingleQPS     float64 `json:"single_qps"`
	SingleWallQPS float64 `json:"single_wall_qps"`
	// SingleRefreshMS is the single-process update window for the full
	// delta, measured on the 1-shard warehouse.
	SingleRefreshMS float64      `json:"single_refresh_ms"`
	Rows            []ScalingRow `json:"rows"`
}

// ScalingRow is one cluster size's measurement.
type ScalingRow struct {
	Workers int `json:"workers"`
	// QPS is aggregate queries/second through the coordinator on the
	// modelled testbed, where each worker owns its own disk: a measurement
	// window costs the slowest shard's counted page I/O priced by
	// pager.Disk1998 (shards seek in parallel on their own spindles) plus
	// that shard's CPU share — the single-host wall divided by N, because
	// on one test machine the N shard scans serialize while on N machines
	// they would not. Per the package comment, the modelled time is the
	// apples-to-apples figure; wall clock on a CPU-starved host measures
	// the host serializing the scatter, not the cluster. WallQPS records
	// the raw single-host wall figure alongside.
	QPS     float64 `json:"qps"`
	WallQPS float64 `json:"wall_qps"`
	// Speedup is QPS relative to the 1-worker cluster.
	Speedup float64 `json:"speedup"`
	// PoolHitRatio is the cluster-wide buffer pool hit ratio during the
	// query phase; the fixed per-worker pool makes this climb with N.
	PoolHitRatio float64 `json:"pool_hit_ratio"`
	// RefreshShardMaxMS is the largest single shard's merge-pack wall for
	// its slice of the delta — the per-shard update window. Shards refresh
	// concurrently in production, so this is the cluster's effective
	// blackout had queries been blocked (they are not; queries keep
	// flowing against the old generation during prepare).
	RefreshShardMaxMS float64 `json:"refresh_shard_max_ms"`
	// RefreshShardSumMS is the serialized total across shards — what a
	// single process would pay for the same delta plus partitioning skew.
	RefreshShardSumMS float64 `json:"refresh_shard_sum_ms"`
	// RefreshSpeedup is SingleRefreshMS / RefreshShardMaxMS: how much the
	// per-shard update window shrank versus the single-process refresh.
	RefreshSpeedup float64 `json:"refresh_speedup"`
}

// RunScaling sweeps cluster sizes: for each N it hash-partitions the same
// TPC-D facts into N shard warehouses, boots N wire-protocol workers plus a
// coordinator on the loopback, measures aggregate scatter-gather QPS on a
// mixed batch (answers cross-checked against the 1-worker cluster), and
// then measures the per-shard refresh wall for the paper's 10% increment.
//
// QPS follows the package's wall-plus-modelled discipline: each row records
// the raw single-host wall figure and the modelled-testbed figure, where
// every worker owns its own 1998 disk and CPU (see ScalingRow.QPS). The
// modelled figure is the one that answers "what does a second machine buy",
// which a single test host cannot exhibit in wall clock.
//
// Per-shard refresh walls are measured by running each shard's merge-pack
// sequentially and taking the max: on a single-core host a concurrent
// prepare would interleave all shards to the same end time, hiding exactly
// the per-shard window this sweep exists to show. The sequential max is the
// honest per-shard figure on any core count.
func RunScaling(p ScalingParams) (Scaling, error) {
	p = p.withDefaults()
	out := Scaling{
		SF:         p.SF,
		PoolPages:  p.PoolPages,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PackFormat: p.PackFormat,
	}

	ds := tpcd.New(tpcd.Params{SF: p.SF, Seed: p.Seed})
	domains := ds.Domains()
	attrs := dist.SortedAttrs(domains)
	views := []cubetree.View{
		cubetree.NewView("top", tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer),
		cubetree.NewView("ps", tpcd.AttrPart, tpcd.AttrSupplier),
		cubetree.NewView("sc", tpcd.AttrSupplier, tpcd.AttrCustomer),
		cubetree.NewView("c", tpcd.AttrCustomer),
		cubetree.NewView("all"),
	}
	// The batch is a reporting mix chosen to be scan-heavy but row-light:
	// (part,custkey) has no dedicated view, so every slice of it aggregates
	// the top view's leaves while returning only the sparse groups inside
	// the slice; suppkey roll-ups likewise aggregate ps/sc. The remaining
	// nodes answer from pruned runs or the scalar view. This keeps the
	// measurement on the engines — where the cluster's aggregate buffer
	// pool grows with N — rather than on serializing giant result sets,
	// which a reporting workload would not return anyway.
	queryNodes := [][]lattice.Attr{
		{tpcd.AttrPart, tpcd.AttrCustomer},
		{tpcd.AttrSupplier},
		{tpcd.AttrCustomer},
		{},
	}
	gens := make([]*workload.Generator, len(queryNodes))
	for i := range queryNodes {
		gens[i] = workload.NewGenerator(p.Seed+uint64(i)*7919, domains)
	}
	var queries []workload.Query
	for q := 0; q < p.QueriesPerView; q++ {
		for i, node := range queryNodes {
			if q%2 == 1 && len(node) == 1 && node[0] == tpcd.AttrSupplier {
				queries = append(queries, gens[i].ForNodeRanges(node, 0.4))
			} else {
				queries = append(queries, gens[i].ForNode(node))
			}
		}
	}
	out.Queries = len(queries)

	var reference [][]workload.Row
	ctx := context.Background()
	for wi, n := range p.Workers {
		var dir string
		if p.Dir == "" {
			var err error
			dir, err = os.MkdirTemp("", fmt.Sprintf("cubetree-scaling-%d-", n))
			if err != nil {
				return out, err
			}
			defer os.RemoveAll(dir)
		} else {
			dir = filepath.Join(p.Dir, fmt.Sprintf("w%d", n))
		}

		docs, err := dist.Partition(&factRows{it: ds.FactRows()}, attrs, n)
		if err != nil {
			return out, fmt.Errorf("partition %d ways: %w", n, err)
		}
		stats := make([]*pager.Stats, n)
		whs := make([]*cubetree.Warehouse, n)
		workers := make([]*dist.Worker, n)
		addrs := make([]string, n)
		cleanup := func() {
			for _, wk := range workers {
				if wk != nil {
					wk.Close()
				}
			}
			for _, wh := range whs {
				if wh != nil {
					wh.Close()
				}
			}
		}
		for i, doc := range docs {
			src, err := cubetree.ShardCSV(doc, dist.PartitionMeasure)
			if err != nil {
				cleanup()
				return out, err
			}
			stats[i] = &pager.Stats{}
			whs[i], err = cubetree.Materialize(cubetree.Config{
				Dir:        filepath.Join(dir, fmt.Sprintf("shard%d", i)),
				Domains:    domains,
				PoolPages:  p.PoolPages,
				Stats:      stats[i],
				PackFormat: p.PackFormat,
			}, views, src)
			if err != nil {
				cleanup()
				return out, fmt.Errorf("materialize shard %d/%d: %w", i, n, err)
			}
			workers[i] = dist.NewWorker(cubetree.ShardBackend(whs[i]), cubetree.ShardCSV, nil)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				cleanup()
				return out, err
			}
			go workers[i].Serve(ln)
			addrs[i] = ln.Addr().String()
		}
		coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Shards: addrs})
		if err != nil {
			cleanup()
			return out, fmt.Errorf("coordinator over %d workers: %w", n, err)
		}

		// Single-process baseline off the 1-shard warehouse: same engine,
		// same pool, no coordinator and no wire protocol in the path.
		if wi == 0 && n == 1 {
			mark := stats[0].Snapshot()
			got, err := whs[0].QueryBatchCtx(ctx, queries, 4)
			if err != nil {
				cleanup()
				return out, err
			}
			reference = got
			start := time.Now()
			reps := 1
			for time.Since(start) < p.MinMeasure {
				if _, err := whs[0].QueryBatchCtx(ctx, queries, 4); err != nil {
					cleanup()
					return out, err
				}
				reps++
			}
			wall := time.Since(start)
			out.SingleWallQPS = throughput(reps*len(queries), wall)
			out.SingleQPS = throughput(reps*len(queries),
				wall+pager.Disk1998.Cost(stats[0].Snapshot().Sub(mark)))
		}

		row := ScalingRow{Workers: n}
		marks := make([]pager.StatsSnapshot, n)
		for i := range stats {
			marks[i] = stats[i].Snapshot()
		}
		start := time.Now()
		got, err := coord.QueryBatchCtx(ctx, queries, 4)
		if err != nil {
			coord.Close()
			cleanup()
			return out, fmt.Errorf("scatter batch @%d workers: %w", n, err)
		}
		reps := 1
		for time.Since(start) < p.MinMeasure {
			if _, err := coord.QueryBatchCtx(ctx, queries, 4); err != nil {
				coord.Close()
				cleanup()
				return out, fmt.Errorf("scatter batch @%d workers: %w", n, err)
			}
			reps++
		}
		wall := time.Since(start)
		row.WallQPS = throughput(reps*len(queries), wall)
		// Price the window on the modelled cluster: every shard's disk runs
		// in parallel, so the window's I/O bill is the slowest shard's; each
		// shard's CPU share is the single-host wall over N (the scatter work
		// this host serialized would spread across N machines).
		var maxIOCost time.Duration
		var agg pager.StatsSnapshot
		for i := range stats {
			d := stats[i].Snapshot().Sub(marks[i])
			agg.PoolHits += d.PoolHits
			agg.PoolMisses += d.PoolMisses
			if c := pager.Disk1998.Cost(d); c > maxIOCost {
				maxIOCost = c
			}
		}
		row.QPS = throughput(reps*len(queries), maxIOCost+wall/time.Duration(n))
		row.PoolHitRatio = hitRatio(agg)
		if reference == nil {
			reference = got
		}
		for i := range queries {
			if !workload.EqualRows(got[i], reference[i]) {
				coord.Close()
				cleanup()
				return out, fmt.Errorf("@%d workers, query %s: distributed answer differs from single-process", n, queries[i])
			}
		}

		// Refresh: the same 10% increment every cluster size sees, split
		// into per-shard slices; each shard's merge-pack is timed alone.
		delta, err := dist.Partition(&factRows{it: ds.Increment(p.DeltaFrac, 1)}, attrs, n)
		if err != nil {
			coord.Close()
			cleanup()
			return out, err
		}
		if out.DeltaRows == 0 {
			for it := ds.Increment(p.DeltaFrac, 1); it.Next(); {
				out.DeltaRows++
			}
		}
		var max, sum time.Duration
		for i, doc := range delta {
			src, err := cubetree.ShardCSV(doc, dist.PartitionMeasure)
			if err != nil {
				coord.Close()
				cleanup()
				return out, err
			}
			start := time.Now()
			if err := whs[i].Update(src); err != nil {
				coord.Close()
				cleanup()
				return out, fmt.Errorf("refresh shard %d/%d: %w", i, n, err)
			}
			wall := time.Since(start)
			sum += wall
			if wall > max {
				max = wall
			}
		}
		row.RefreshShardMaxMS = float64(max.Microseconds()) / 1000
		row.RefreshShardSumMS = float64(sum.Microseconds()) / 1000
		if n == 1 {
			out.SingleRefreshMS = row.RefreshShardMaxMS
		}
		if out.SingleRefreshMS > 0 && row.RefreshShardMaxMS > 0 {
			row.RefreshSpeedup = out.SingleRefreshMS / row.RefreshShardMaxMS
		}
		if len(out.Rows) > 0 && out.Rows[0].QPS > 0 {
			row.Speedup = row.QPS / out.Rows[0].QPS
		} else if len(out.Rows) == 0 {
			row.Speedup = 1
		}
		out.Rows = append(out.Rows, row)

		coord.Close()
		cleanup()
	}
	return out, nil
}

// String renders the sweep as a table.
func (s Scaling) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling sweep: %d mixed queries, %d pool pages/worker, delta %d rows (single: %.0f q/s modelled, %.0f wall, refresh %.1fms)\n",
		s.Queries, s.PoolPages, s.DeltaRows, s.SingleQPS, s.SingleWallQPS, s.SingleRefreshMS)
	fmt.Fprintf(&b, "%8s %12s %9s %10s %9s %16s %16s %9s\n",
		"workers", "qps(model)", "speedup", "qps(wall)", "pool hit", "refresh max(ms)", "refresh sum(ms)", "rf spdup")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%8d %12.0f %8.2fx %10.0f %8.1f%% %16.1f %16.1f %8.2fx\n",
			r.Workers, r.QPS, r.Speedup, r.WallQPS, 100*r.PoolHitRatio, r.RefreshShardMaxMS, r.RefreshShardSumMS, r.RefreshSpeedup)
	}
	return b.String()
}
