package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunThroughputSweep runs the concurrency sweep with a pool large
// enough to hold the working set, so the counted page I/O must be identical
// at every client count — parallelism changes when pages are read, never
// what. (RunThroughput itself cross-checks that every parallel answer
// matches the serial one.)
func TestRunThroughputSweep(t *testing.T) {
	p := testParams(t)
	p.PoolPages = 4096 // hold the working set: I/O becomes parallelism-invariant
	s, err := NewSetup(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	tp, err := s.RunThroughput([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Queries != 7*p.QueriesPerView {
		t.Fatalf("queries = %d, want %d", tp.Queries, 7*p.QueriesPerView)
	}
	if len(tp.Rows) != 3 {
		t.Fatalf("rows = %d", len(tp.Rows))
	}
	base := tp.Rows[0]
	if base.Clients != 1 {
		t.Fatalf("first row clients = %d", base.Clients)
	}
	for _, r := range tp.Rows[1:] {
		if r.ConvIO != base.ConvIO {
			t.Errorf("conventional I/O at %d clients differs from serial: %v vs %v",
				r.Clients, r.ConvIO, base.ConvIO)
		}
		if r.CubeIO != base.CubeIO {
			t.Errorf("cubetree I/O at %d clients differs from serial: %v vs %v",
				r.Clients, r.CubeIO, base.CubeIO)
		}
		if r.ConvQPS <= 0 || r.CubeQPS <= 0 {
			t.Errorf("non-positive q/s at %d clients: %+v", r.Clients, r)
		}
	}

	// The JSON baseline later PRs diff against must round-trip.
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Throughput
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Queries != tp.Queries || len(back.Rows) != len(tp.Rows) {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
	if !strings.Contains(tp.String(), "clients") {
		t.Fatalf("report: %q", tp.String())
	}
}
