package experiment

import (
	"fmt"
	"strings"
	"time"

	"cubetree/internal/pager"
)

// Table6 reproduces the paper's Table 6, "Loading the databases with the
// TPC-D data". The paper reports conventional views 10h58m + indices 51m
// (total 11h49m) versus Cubetrees 45m — a 16:1 ratio.
type Table6 struct {
	Model pager.CostModel

	// Shared sort-based view computation (both configurations consume it;
	// the paper folds it into each load path).
	ComputeWall    time.Duration
	ComputeModeled time.Duration

	ConvViewsWall    time.Duration
	ConvViewsModeled time.Duration
	ConvIndexWall    time.Duration
	ConvIndexModeled time.Duration

	CubeWall    time.Duration
	CubeModeled time.Duration

	// Ratio is conventional total / Cubetree total in modelled time.
	Ratio float64
}

// RunTable6 assembles the load-phase measurements recorded by NewSetup.
func (s *Setup) RunTable6() Table6 {
	m := s.Params.Model
	t := Table6{
		Model:            m,
		ComputeWall:      s.ComputeWall,
		ComputeModeled:   m.Cost(s.ComputeIO),
		ConvViewsWall:    s.ConvViewWall,
		ConvViewsModeled: m.Cost(s.ConvViewIO),
		ConvIndexWall:    s.ConvIndexWall,
		ConvIndexModeled: m.Cost(s.ConvIndexIO),
		CubeWall:         s.CubeWall + s.CubeSortWall,
		CubeModeled:      m.Cost(s.CubeIO) + m.Cost(s.CubeSortIO),
	}
	convTotal := t.ComputeModeled + t.ConvViewsModeled + t.ConvIndexModeled
	cubeTotal := t.ComputeModeled + t.CubeModeled
	if cubeTotal > 0 {
		t.Ratio = float64(convTotal) / float64(cubeTotal)
	}
	return t
}

// String renders the table in the paper's layout, with a modelled-time
// column reproducing the 1998 measurement.
func (t Table6) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Loading the databases with the TPC-D data (model %s)\n", t.Model.Name)
	fmt.Fprintf(&b, "%-14s %14s %14s %14s | %14s\n", "Configuration", "Views", "Indices", "Total", "wall clock")
	fmt.Fprintf(&b, "%-14s %14s %14s %14s | %14s\n", "Conventional",
		fmtDur(t.ComputeModeled+t.ConvViewsModeled),
		fmtDur(t.ConvIndexModeled),
		fmtDur(t.ComputeModeled+t.ConvViewsModeled+t.ConvIndexModeled),
		fmtDur(t.ComputeWall+t.ConvViewsWall+t.ConvIndexWall))
	fmt.Fprintf(&b, "%-14s %14s %14s %14s | %14s\n", "Cubetrees",
		fmtDur(t.ComputeModeled+t.CubeModeled), "-",
		fmtDur(t.ComputeModeled+t.CubeModeled),
		fmtDur(t.ComputeWall+t.CubeWall))
	fmt.Fprintf(&b, "conventional/cubetree modelled ratio: %.1f:1 (paper: ~16:1)\n", t.Ratio)
	return b.String()
}

// Storage reproduces the Section 3.2 storage comparison: 602 MB
// conventional versus 293 MB Cubetrees (51%% smaller).
type Storage struct {
	ConvTables  int64
	ConvIndexes int64
	ConvTotal   int64
	CubeTotal   int64
	// CubeLeafFrac is the fraction of Cubetree pages that are compressed
	// leaves (paper: ~90%).
	CubeLeafFrac float64
	// Saving is 1 - cube/conv (paper: 51%).
	Saving float64
	// Points is the total number of stored aggregate tuples (paper:
	// 7,110,464 plus replicas).
	Points int64
}

// RunStorage measures the on-disk footprint of both configurations.
func (s *Setup) RunStorage() Storage {
	st := Storage{
		ConvTables:  s.Conv.TableBytes(),
		ConvIndexes: s.Conv.IndexBytes(),
		ConvTotal:   s.Conv.TotalBytes(),
		CubeTotal:   s.Forest.TotalBytes(),
		Points:      s.Forest.Points(),
	}
	if tp := s.Forest.TotalPages(); tp > 0 {
		st.CubeLeafFrac = float64(s.Forest.LeafPages()) / float64(tp)
	}
	if st.ConvTotal > 0 {
		st.Saving = 1 - float64(st.CubeTotal)/float64(st.ConvTotal)
	}
	return st
}

// String renders the storage comparison.
func (st Storage) String() string {
	var b strings.Builder
	mb := func(n int64) string { return fmt.Sprintf("%.1f MB", float64(n)/(1<<20)) }
	fmt.Fprintf(&b, "Storage (Section 3.2)\n")
	fmt.Fprintf(&b, "%-28s %12s\n", "Conventional tables", mb(st.ConvTables))
	fmt.Fprintf(&b, "%-28s %12s\n", "Conventional indexes", mb(st.ConvIndexes))
	fmt.Fprintf(&b, "%-28s %12s\n", "Conventional total", mb(st.ConvTotal))
	fmt.Fprintf(&b, "%-28s %12s\n", "Cubetrees total", mb(st.CubeTotal))
	fmt.Fprintf(&b, "stored aggregate points: %d; cubetree leaf-page fraction: %.0f%% (paper ~90%%)\n",
		st.Points, st.CubeLeafFrac*100)
	fmt.Fprintf(&b, "cubetree saving: %.0f%% (paper: 51%%)\n", st.Saving*100)
	return b.String()
}
