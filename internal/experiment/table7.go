package experiment

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"cubetree/internal/core"
	"cubetree/internal/cube"
	"cubetree/internal/lattice"
	"cubetree/internal/pager"
	"cubetree/internal/relstore"
)

// Table7 reproduces the paper's Table 7, "Updates on the TPC-D dataset":
// applying a 10% increment under a daily drop-dead deadline, three ways.
// The paper measured: conventional incremental >24 hours (did not finish),
// conventional recomputation 12h59m, Cubetree merge-pack 8m24s.
type Table7 struct {
	Model    pager.CostModel
	Deadline time.Duration
	// IncrementRows is the size of the update batch.
	IncrementRows int64

	// Conventional incremental maintenance (one tuple at a time through
	// the primary indexes).
	IncWall     time.Duration
	IncModeled  time.Duration
	IncTimedOut bool
	IncApplied  int64

	// Recomputation from scratch (recompute the view set over fact +
	// increment, reload tables, rebuild indexes).
	RecompWall    time.Duration
	RecompModeled time.Duration

	// Cubetree bulk incremental update (sort delta + merge-pack).
	CubeWall    time.Duration
	CubeModeled time.Duration

	// Ratio is recomputation/cubetree in modelled time; RatioInc is
	// incremental/cubetree (a lower bound if the increment timed out).
	Ratio    float64
	RatioInc float64
}

// RunTable7 runs all three update strategies. It builds private copies of
// the conventional configuration so the shared setup remains untouched for
// other experiments.
func (s *Setup) RunTable7() (Table7, error) {
	p := s.Params
	t := Table7{Model: p.Model, Deadline: p.Deadline}

	// The 10% daily increment.
	inc := s.Dataset.Increment(0.1, 1)
	t.IncrementRows = inc.Remaining()

	// Compute the delta views with the shared sort pipeline (used by both
	// the conventional incremental and the Cubetree path, like the paper's
	// Figure 15 "delta" box).
	deltaStats := &pager.Stats{}
	deltaStart := time.Now()
	deltaData, err := cube.Compute(filepath.Join(s.dir, "delta"), &factRows{it: inc},
		s.Selection.Views, cube.Options{Stats: deltaStats})
	if err != nil {
		return t, err
	}
	deltaWall := time.Since(deltaStart)
	deltaModeled := p.Model.Cost(deltaStats.Snapshot())

	// --- (a) conventional incremental maintenance --------------------------
	incStats := &pager.Stats{}
	convInc, err := s.cloneConv(filepath.Join(s.dir, "conv-inc"), incStats)
	if err != nil {
		return t, err
	}
	defer convInc.Close()
	// The paper's footnote: additional (primary) indexing was built to
	// speed up this phase; its cost is setup, not part of the measurement.
	for _, view := range s.Selection.Views {
		if err := convInc.BuildPrimary(view.Key()); err != nil {
			return t, err
		}
	}
	mark := incStats.Snapshot()
	start := time.Now()
	budget := relstore.Budget{Model: p.Model, Deadline: p.Deadline}
	remaining := p.Deadline
	for _, view := range s.Selection.Views {
		budget.Deadline = remaining
		rep, err := convInc.ApplyDelta(deltaData[view.Key()], budget)
		if err != nil {
			return t, err
		}
		t.IncApplied += rep.Applied
		spent := p.Model.Cost(incStats.Snapshot().Sub(mark))
		if rep.TimedOut || spent > p.Deadline {
			t.IncTimedOut = true
			break
		}
		remaining = p.Deadline - spent
	}
	t.IncWall = time.Since(start) + deltaWall
	t.IncModeled = p.Model.Cost(incStats.Snapshot().Sub(mark)) + deltaModeled

	// --- (b) recomputation of materialized views ---------------------------
	recompStats := &pager.Stats{}
	mark = recompStats.Snapshot()
	start = time.Now()
	merged, err := cube.Compute(filepath.Join(s.dir, "recomp-views"),
		&mergedRows{a: &factRows{it: s.Dataset.FactRows()}, b: &factRows{it: s.Dataset.Increment(0.1, 1)}},
		s.Selection.Views, cube.Options{Stats: recompStats})
	if err != nil {
		return t, err
	}
	convRe, err := relstore.Create(filepath.Join(s.dir, "conv-recomp"), relstore.Options{
		PoolPages: p.PoolPages,
		Domains:   s.Dataset.Domains(),
		Stats:     recompStats,
	})
	if err != nil {
		return t, err
	}
	defer convRe.Close()
	for _, view := range s.Selection.Views {
		if err := convRe.LoadView(merged[view.Key()]); err != nil {
			return t, err
		}
	}
	for _, order := range s.Selection.Indexes {
		if err := convRe.BuildIndex(order); err != nil {
			return t, err
		}
	}
	t.RecompWall = time.Since(start)
	t.RecompModeled = p.Model.Cost(recompStats.Snapshot().Sub(mark))

	// --- (c) Cubetree bulk incremental update ------------------------------
	cubeStats := &pager.Stats{}
	mark = cubeStats.Snapshot()
	start = time.Now()
	deltas, err := s.Forest.DeltasFor(filepath.Join(s.dir, "delta"), deltaData)
	if err != nil {
		return t, err
	}
	newForest, err := s.Forest.MergeUpdate(filepath.Join(s.dir, "forest-v2"), deltas, core.BuildOptions{
		Stats: cubeStats,
	})
	if err != nil {
		return t, err
	}
	defer newForest.Close()
	t.CubeWall = time.Since(start) + deltaWall
	t.CubeModeled = p.Model.Cost(cubeStats.Snapshot().Sub(mark)) + deltaModeled

	if t.CubeModeled > 0 {
		t.Ratio = float64(t.RecompModeled) / float64(t.CubeModeled)
		t.RatioInc = float64(t.IncModeled) / float64(t.CubeModeled)
	}
	return t, nil
}

// cloneConv reloads the setup's conventional configuration (tables +
// indexes) into a fresh directory with its own stats.
func (s *Setup) cloneConv(dir string, stats *pager.Stats) (*relstore.Config, error) {
	c, err := relstore.Create(dir, relstore.Options{
		PoolPages: s.Params.PoolPages,
		Domains:   s.Dataset.Domains(),
		Stats:     stats,
	})
	if err != nil {
		return nil, err
	}
	for _, view := range s.Selection.Views {
		if err := c.LoadView(s.ViewData[view.Key()]); err != nil {
			c.Close()
			return nil, err
		}
	}
	for _, order := range s.Selection.Indexes {
		if err := c.BuildIndex(order); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// mergedRows concatenates two fact streams (base data then increment),
// used by the recomputation strategy.
type mergedRows struct {
	a, b *factRows
	inB  bool
}

func (m *mergedRows) Next() bool {
	if !m.inB {
		if m.a.Next() {
			return true
		}
		m.inB = true
	}
	return m.b.Next()
}

func (m *mergedRows) Value(attr lattice.Attr) (int64, error) {
	if m.inB {
		return m.b.Value(attr)
	}
	return m.a.Value(attr)
}

func (m *mergedRows) Measure() int64 {
	if m.inB {
		return m.b.Measure()
	}
	return m.a.Measure()
}

// String renders Table 7 in the paper's layout.
func (t Table7) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: Updates on the TPC-D dataset (10%% increment = %d rows, deadline %s, model %s)\n",
		t.IncrementRows, fmtDur(t.Deadline), t.Model.Name)
	fmt.Fprintf(&b, "%-46s %16s | %12s\n", "Method", "Total (modelled)", "wall clock")
	incTime := fmtDur(t.IncModeled)
	if t.IncTimedOut {
		incTime = ">" + fmtDur(t.Deadline) + " (did not finish)"
	}
	fmt.Fprintf(&b, "%-46s %16s | %12s\n", "Incremental updates of materialized views", incTime, fmtDur(t.IncWall))
	fmt.Fprintf(&b, "%-46s %16s | %12s\n", "Re-computation of materialized views", fmtDur(t.RecompModeled), fmtDur(t.RecompWall))
	fmt.Fprintf(&b, "%-46s %16s | %12s\n", "Incremental updates of Cubetrees", fmtDur(t.CubeModeled), fmtDur(t.CubeWall))
	fmt.Fprintf(&b, "recompute/cubetree: %.0fx; incremental/cubetree: %.0fx%s (paper: ~93x recompute, >170x incremental)\n",
		t.Ratio, t.RatioInc, timedOutNote(t.IncTimedOut))
	return b.String()
}

func timedOutNote(timedOut bool) string {
	if timedOut {
		return " (lower bound, timed out)"
	}
	return ""
}
