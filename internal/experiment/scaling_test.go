package experiment

import "testing"

// TestRunScalingSmoke runs the distributed sweep at toy scale: answers must
// match across cluster sizes (RunScaling fails internally otherwise) and
// every row must carry a QPS and refresh measurement.
func TestRunScalingSmoke(t *testing.T) {
	s, err := RunScaling(ScalingParams{
		SF:             0.002,
		Seed:           42,
		QueriesPerView: 4,
		PoolPages:      32,
		Workers:        []int{1, 2},
		Dir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	if s.SingleQPS <= 0 || s.SingleWallQPS <= 0 || s.SingleRefreshMS <= 0 || s.DeltaRows == 0 {
		t.Fatalf("missing single-process baselines: %+v", s)
	}
	for _, r := range s.Rows {
		if r.QPS <= 0 || r.WallQPS <= 0 || r.RefreshShardMaxMS <= 0 || r.RefreshShardSumMS < r.RefreshShardMaxMS {
			t.Fatalf("bad row: %+v", r)
		}
		// The modelled figure prices page I/O the wall figure got nearly for
		// free from the OS cache, so it can never beat wall beyond the CPU
		// fan-out (1% slack for nanosecond truncation in the division).
		if r.QPS > r.WallQPS*float64(r.Workers)*1.01 {
			t.Fatalf("modelled QPS %v exceeds wall %v x %d workers", r.QPS, r.WallQPS, r.Workers)
		}
	}
	if s.Rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v, want 1", s.Rows[0].Speedup)
	}
	if s.String() == "" {
		t.Fatal("empty rendering")
	}
}
