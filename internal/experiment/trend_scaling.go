package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Trend analysis over scaling sweeps: two BENCH_scaling.json files are
// compared row by row (worker count), gating both the scatter-gather QPS
// and the per-shard refresh window. Shares cttrend and the CI gate with the
// throughput trend; BenchKind tells the two artifacts apart.

// ScalingDelta compares one cluster size across two sweeps on one metric.
type ScalingDelta struct {
	Workers int    `json:"workers"`
	Metric  string `json:"metric"` // "qps" or "refresh_ms"
	Base    float64
	Cur     float64
	// Delta is the fractional improvement: positive = better than baseline
	// (more QPS, or a smaller refresh window).
	Delta     float64 `json:"delta"`
	Regressed bool    `json:"regressed"`
}

// ScalingReport is the outcome of comparing two scaling sweeps.
type ScalingReport struct {
	Threshold float64        `json:"threshold"`
	Deltas    []ScalingDelta `json:"deltas"`
	// MissingWorkers lists cluster sizes present in only one sweep.
	MissingWorkers []int `json:"missing_workers,omitempty"`
}

// Regressed reports whether any compared row crossed the threshold.
func (r ScalingReport) Regressed() bool {
	for _, d := range r.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Regressions returns only the rows that crossed the threshold.
func (r ScalingReport) Regressions() []ScalingDelta {
	var out []ScalingDelta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// CompareScaling diffs two scaling sweeps. Rows are matched by worker
// count; each matched row yields a QPS delta and a refresh-window delta.
func CompareScaling(base, cur Scaling, opts TrendOptions) ScalingReport {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultTrendThreshold
	}
	rep := ScalingReport{Threshold: opts.Threshold}
	baseBy := make(map[int]ScalingRow, len(base.Rows))
	for _, row := range base.Rows {
		baseBy[row.Workers] = row
	}
	matched := make(map[int]bool)
	for _, row := range cur.Rows {
		b, ok := baseBy[row.Workers]
		if !ok {
			rep.MissingWorkers = append(rep.MissingWorkers, row.Workers)
			continue
		}
		matched[row.Workers] = true
		rep.Deltas = append(rep.Deltas,
			scalingDelta(row.Workers, "qps", b.QPS, row.QPS, false, opts.Threshold),
			scalingDelta(row.Workers, "refresh_ms", b.RefreshShardMaxMS, row.RefreshShardMaxMS, true, opts.Threshold))
	}
	for w := range baseBy {
		if !matched[w] {
			rep.MissingWorkers = append(rep.MissingWorkers, w)
		}
	}
	sort.Ints(rep.MissingWorkers)
	sort.Slice(rep.Deltas, func(i, j int) bool {
		if rep.Deltas[i].Workers != rep.Deltas[j].Workers {
			return rep.Deltas[i].Workers < rep.Deltas[j].Workers
		}
		return rep.Deltas[i].Metric < rep.Deltas[j].Metric
	})
	return rep
}

// scalingDelta computes one metric's fractional improvement; for
// lowerBetter metrics (refresh walls) the sign is flipped so positive is
// always an improvement.
func scalingDelta(workers int, metric string, base, cur float64, lowerBetter bool, threshold float64) ScalingDelta {
	d := ScalingDelta{Workers: workers, Metric: metric, Base: base, Cur: cur}
	if base > 0 {
		d.Delta = (cur - base) / base
		if lowerBetter {
			d.Delta = -d.Delta
		}
	}
	d.Regressed = d.Delta < -threshold
	return d
}

// String renders the comparison as a table, regressions marked.
func (r ScalingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling trend (regression threshold %.1f%%)\n", 100*r.Threshold)
	fmt.Fprintf(&b, "%8s %12s %14s %14s %9s\n", "workers", "metric", "base", "current", "delta")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%8d %12s %14.1f %14.1f %+8.1f%%%s\n",
			d.Workers, d.Metric, d.Base, d.Cur, 100*d.Delta, mark)
	}
	if len(r.MissingWorkers) > 0 {
		fmt.Fprintf(&b, "not compared (present in only one sweep): workers %v\n", r.MissingWorkers)
	}
	return b.String()
}

// LoadScaling reads a BENCH_scaling.json file written by ctbench.
func LoadScaling(path string) (Scaling, error) {
	var s Scaling
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("load scaling: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("parse %s: %w", path, err)
	}
	return s, nil
}

// BenchKind sniffs which artifact a ctbench JSON file holds: "scaling" when
// its rows carry a workers axis, "throughput" otherwise. Baselines recorded
// by older builds — without pack_format or other fields added since — parse
// fine either way; unknown fields are ignored and missing ones default.
func BenchKind(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("sniff bench kind: %w", err)
	}
	var probe struct {
		Rows []map[string]json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("parse %s: %w", path, err)
	}
	if len(probe.Rows) > 0 {
		if _, ok := probe.Rows[0]["workers"]; ok {
			return "scaling", nil
		}
	}
	return "throughput", nil
}
