package experiment

import (
	"fmt"
	"strings"
)

// barWidth is the maximum bar length in characters.
const barWidth = 40

// bar renders a proportional horizontal bar.
func bar(value, max float64) string {
	if max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * barWidth)
	if n < 1 {
		n = 1
	}
	if n > barWidth {
		n = barWidth
	}
	return strings.Repeat("#", n)
}

// Chart renders Figure 12 as paired horizontal bars per view, echoing the
// paper's bar chart.
func (f Fig12) Chart() string {
	var max float64
	for _, r := range f.Rows {
		if v := float64(r.ConvModeled); v > max {
			max = v
		}
		if v := float64(r.CubeModeled); v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 (bars: modelled batch time; C=conventional, T=cubetrees)\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s C %-*s %s\n", r.View, barWidth,
			bar(float64(r.ConvModeled), max), fmtDur(r.ConvModeled))
		fmt.Fprintf(&b, "%-28s T %-*s %s\n", "", barWidth,
			bar(float64(r.CubeModeled), max), fmtDur(r.CubeModeled))
	}
	return b.String()
}

// Chart renders Figure 13's throughput ranges as bars, echoing the paper's
// min/max plot.
func (f Fig13) Chart() string {
	max := f.CubeAvg
	if f.ConvAvg > max {
		max = f.ConvAvg
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 (bars: avg queries/sec, modelled)\n")
	fmt.Fprintf(&b, "%-14s %-*s %.1f (min %.1f, max %.1f)\n", "Conventional",
		barWidth, bar(f.ConvAvg, max), f.ConvAvg, f.ConvMin, f.ConvMax)
	fmt.Fprintf(&b, "%-14s %-*s %.1f (min %.1f, max %.1f)\n", "Cubetrees",
		barWidth, bar(f.CubeAvg, max), f.CubeAvg, f.CubeMin, f.CubeMax)
	return b.String()
}

// Chart renders Figure 14's two scales side by side.
func (f Fig14) Chart() string {
	var max float64
	for _, r := range f.Rows {
		if v := float64(r.Base2x); v > max {
			max = v
		}
		if v := float64(r.Base1x); v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14 (bars: modelled batch time; 1=1x dataset, 2=2x dataset)\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s 1 %-*s %s\n", r.View, barWidth,
			bar(float64(r.Base1x), max), fmtDur(r.Base1x))
		fmt.Fprintf(&b, "%-28s 2 %-*s %s\n", "", barWidth,
			bar(float64(r.Base2x), max), fmtDur(r.Base2x))
	}
	return b.String()
}
