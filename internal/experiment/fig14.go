package experiment

import (
	"fmt"
	"strings"
	"time"

	"cubetree/internal/workload"
)

// Fig14 reproduces Figure 14, "Scalability test (Cubetrees only)": the same
// query batches against a 1x and a 2x dataset. The paper's point is that
// Cubetree query time is practically unaffected by doubling the input.
type Fig14 struct {
	Rows []Fig14Row
}

// Fig14Row is one view's batch at both scales.
type Fig14Row struct {
	View               string
	Queries            int
	Base1x, Base2x     time.Duration // modelled
	Wall1x, Wall2x     time.Duration
	Output1x, Output2x int64 // result rows, explaining small differences
}

// RunFig14 builds a second setup at twice the scale factor and queries both
// forests with identical query batches.
func RunFig14(p Params) (Fig14, error) {
	p = p.withDefaults()
	p2 := p
	p2.SF = p.SF * 2
	p2.Dir = ""

	s1, err := NewSetup(p)
	if err != nil {
		return Fig14{}, err
	}
	defer s1.Close()
	s2, err := NewSetup(p2)
	if err != nil {
		return Fig14{}, err
	}
	defer s2.Close()

	var f Fig14
	for i, node := range Nodes() {
		// Use the SMALLER dataset's domains for both batches so queries are
		// identical and in-range on both scales.
		gen1 := workload.NewGenerator(p.Seed+uint64(i)*104729, s1.Dataset.Domains())
		gen2 := workload.NewGenerator(p.Seed+uint64(i)*104729, s1.Dataset.Domains())
		row := Fig14Row{View: NodeLabel(node), Queries: p.QueriesPerView}

		mark := s1.CubeStats().Snapshot()
		start := time.Now()
		for j := 0; j < p.QueriesPerView; j++ {
			rows, err := s1.Forest.Execute(gen1.ForNode(node))
			if err != nil {
				return f, err
			}
			row.Output1x += int64(len(rows))
		}
		row.Wall1x = time.Since(start)
		row.Base1x = p.Model.Cost(s1.CubeStats().Snapshot().Sub(mark))

		mark = s2.CubeStats().Snapshot()
		start = time.Now()
		for j := 0; j < p.QueriesPerView; j++ {
			rows, err := s2.Forest.Execute(gen2.ForNode(node))
			if err != nil {
				return f, err
			}
			row.Output2x += int64(len(rows))
		}
		row.Wall2x = time.Since(start)
		row.Base2x = p.Model.Cost(s2.CubeStats().Snapshot().Sub(mark))

		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// String renders the scalability comparison.
func (f Fig14) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: Scalability test, Cubetrees only (batch time, modelled)\n")
	fmt.Fprintf(&b, "%-28s %6s %12s %12s %10s %10s\n", "View", "n", "1x dataset", "2x dataset", "rows 1x", "rows 2x")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-28s %6d %12s %12s %10d %10d\n",
			r.View, r.Queries, fmtDur(r.Base1x), fmtDur(r.Base2x), r.Output1x, r.Output2x)
	}
	return b.String()
}
