package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTracerSnapshotNewestFirst pins Snapshot's ordering contract: active
// roots first (newest start first), then completed traces newest-completion
// first. The wraparound case is the regression this guards — a naive
// forward walk of the ring flips to oldest-first once the ring has lapped.
func TestTracerSnapshotNewestFirst(t *testing.T) {
	names := func(snaps []SpanSnapshot) []string {
		out := make([]string, len(snaps))
		for i, s := range snaps {
			out[i] = s.Name
		}
		return out
	}
	equal := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	tr := NewTracer(3)

	// Pre-wrap: two completions in a three-slot ring.
	tr.StartRoot("r1").End()
	tr.StartRoot("r2").End()
	if got := names(tr.Snapshot()); !equal(got, []string{"r2", "r1"}) {
		t.Fatalf("pre-wrap order = %v, want [r2 r1]", got)
	}

	// Post-wrap: five completions lapped the ring; only the newest three
	// remain, and they must still come back newest first.
	tr.StartRoot("r3").End()
	tr.StartRoot("r4").End()
	tr.StartRoot("r5").End()
	if got := names(tr.Snapshot()); !equal(got, []string{"r5", "r4", "r3"}) {
		t.Fatalf("post-wrap order = %v, want [r5 r4 r3]", got)
	}

	// Active roots precede everything, themselves newest-start first.
	a1 := tr.StartRoot("a1")
	time.Sleep(time.Millisecond) // distinct start times for the sort
	a2 := tr.StartRoot("a2")
	if got := names(tr.Snapshot()); !equal(got, []string{"a2", "a1", "r5", "r4", "r3"}) {
		t.Fatalf("active+completed order = %v, want [a2 a1 r5 r4 r3]", got)
	}
	// Ending them moves both into the ring (evicting r3 and r4): the order
	// flips to completion order, newest completion first.
	a2.End()
	a1.End()
	if got := names(tr.Snapshot()); !equal(got, []string{"a1", "a2", "r5"}) {
		t.Fatalf("after ends order = %v, want [a1 a2 r5]", got)
	}
}

// TestTraceIDContext covers the context plumbing: round trip, absence, and
// the no-alloc empty-ID shortcut returning the identical context.
func TestTraceIDContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("background trace id = %q, want empty", got)
	}
	if got := WithTraceID(ctx, ""); got != ctx {
		t.Fatal("empty trace id must return the context unchanged")
	}
	tagged := WithTraceID(ctx, "abc123")
	if got := TraceIDFrom(tagged); got != "abc123" {
		t.Fatalf("trace id round trip = %q, want abc123", got)
	}

	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("NewTraceID length = %d, want 32 hex chars", len(id))
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("two trace ids collided: %s", id)
	}
}

// TestSpanTraceIDTagAndFilter tags spans with trace IDs and checks both the
// snapshot field and the /debug/traces?trace= filter.
func TestSpanTraceIDTagAndFilter(t *testing.T) {
	o := New(Options{})
	spA := o.StartTrace("qa")
	spA.SetTraceID("trace-a")
	spA.End()
	spB := o.StartTrace("qb")
	spB.SetTraceID("trace-b")
	spB.End()

	snaps := o.Tracer.Snapshot()
	if len(snaps) != 2 || snaps[0].TraceID != "trace-b" || snaps[1].TraceID != "trace-a" {
		t.Fatalf("trace ids in snapshot = %+v", snaps)
	}

	srv := httptest.NewServer(DebugMux(o))
	defer srv.Close()
	get := func(path string) map[string]any {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
		return m
	}

	all := get("/debug/traces")
	if n := len(all["traces"].([]any)); n != 2 {
		t.Fatalf("unfiltered traces = %d, want 2", n)
	}
	filtered := get("/debug/traces?trace=trace-a")
	list := filtered["traces"].([]any)
	if len(list) != 1 {
		t.Fatalf("filtered traces = %d, want 1", len(list))
	}
	if got := list[0].(map[string]any)["trace_id"]; got != "trace-a" {
		t.Fatalf("filtered trace id = %v, want trace-a", got)
	}
	if got := filtered["trace"]; got != "trace-a" {
		t.Fatalf("echoed filter = %v, want trace-a", got)
	}
	none := get("/debug/traces?trace=nope")
	if n := len(none["traces"].([]any)); n != 0 {
		t.Fatalf("no-match filter returned %d traces, want 0", n)
	}
}
