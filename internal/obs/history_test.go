package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fillHistory takes n manual samples of reg at 10s virtual spacing, mutating
// between samples via step(i).
func fillHistory(t *testing.T, reg *Registry, n int, step func(i int)) *History {
	t.Helper()
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: 10 * time.Second, Capacity: n + 4})
	base := time.Now().Add(-time.Duration(n) * 10 * time.Second)
	for i := 0; i < n; i++ {
		if step != nil {
			step(i)
		}
		h.sampleAt(base.Add(time.Duration(i)*10*time.Second), reg.Snapshot())
	}
	return h
}

// The acceptance contract: the sum of windowed counter deltas over the whole
// ring reconciles exactly with the cumulative counter (telescoping).
func TestHistorySeriesReconcilesWithCumulative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("query_total")
	var first uint64
	h := fillHistory(t, reg, 30, func(i int) {
		c.Add(uint64(i * 7)) // uneven increments
		if i == 0 {
			first = c.Value()
		}
	})
	s, err := h.Series("query_total", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "counter" {
		t.Fatalf("kind = %q, want counter", s.Kind)
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Delta
		if p.Rate < 0 {
			t.Fatalf("negative rate %v", p.Rate)
		}
	}
	if want := float64(c.Value() - first); sum != want {
		t.Fatalf("sum of deltas = %v, want cumulative diff %v", sum, want)
	}
	if s.Cumulative != c.Value() {
		t.Fatalf("Cumulative = %d, want %d", s.Cumulative, c.Value())
	}

	// A wider window telescopes too: stride-3 deltas sum to the same total
	// minus at most the truncated head of the ring.
	s3, err := h.Series("query_total", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s3.WindowS != 30 {
		t.Fatalf("WindowS = %v, want 30", s3.WindowS)
	}
	var sum3 float64
	for _, p := range s3.Points {
		sum3 += p.Delta
	}
	if sum3 > sum {
		t.Fatalf("strided sum %v exceeds fine-grained sum %v", sum3, sum)
	}
}

func TestHistoryHistogramWindowedPercentiles(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("query_latency_ns")
	h := fillHistory(t, reg, 3, func(i int) {
		// Sample 0: fast observations only. Before samples 1-2: slow ones.
		v := int64(1000)
		if i > 0 {
			v = 1_000_000
		}
		for j := 0; j < 100; j++ {
			hist.Observe(v)
		}
	})
	s, err := h.Series("query_latency_ns", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "histogram" {
		t.Fatalf("kind = %q", s.Kind)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.Points))
	}
	// Both windows saw only the slow observations: the windowed p99 must
	// reflect the window (~1ms), not the lifetime mix.
	for _, p := range s.Points {
		if p.Delta != 100 {
			t.Fatalf("window delta = %v, want 100", p.Delta)
		}
		if p.P99 < 512*1024 || p.P99 > 2_000_000 {
			t.Fatalf("windowed p99 = %d, want ~1e6 (slow-only window)", p.P99)
		}
	}
}

func TestHistoryRingWraps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: time.Second, Capacity: 4})
	base := time.Now()
	for i := 0; i < 10; i++ {
		c.Inc()
		h.sampleAt(base.Add(time.Duration(i)*time.Second), reg.Snapshot())
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	samples := h.samples()
	for i := 1; i < len(samples); i++ {
		if !samples[i].at.After(samples[i-1].at) {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	snap, at, ok := h.LatestSnapshot()
	if !ok || snap.Counters["n"] != 10 || !at.Equal(base.Add(9*time.Second)) {
		t.Fatalf("LatestSnapshot = %v @ %v ok=%v", snap.Counters["n"], at, ok)
	}
}

func TestHistoryStartScrapesImmediately(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: time.Hour})
	h.Start()
	defer h.Close()
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sample after Start")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Start()
	h.Close()
	h.Sample()
	if h.Len() != 0 || h.Interval() != 0 {
		t.Fatal("nil history not zero")
	}
	if _, err := h.Series("x", 0); err == nil {
		t.Fatal("nil history Series should error")
	}
	if _, ok := h.Sparkline("x", 8); ok {
		t.Fatal("nil history Sparkline should be !ok")
	}
	if _, _, ok := h.LatestSnapshot(); ok {
		t.Fatal("nil history LatestSnapshot should be !ok")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history", nil))
	if rec.Code != 404 {
		t.Fatalf("nil history handler = %d, want 404", rec.Code)
	}
}

func TestHistoryHandler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("query_total")
	reg.Gauge("generation").Set(3)
	h := fillHistory(t, reg, 5, func(i int) { c.Add(10) })

	// Index.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history", nil))
	var idx historyIndex
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Samples != 5 || idx.IntervalS != 10 {
		t.Fatalf("index = %+v", idx)
	}
	if len(idx.Counters) == 0 || idx.Counters[0] != "query_total" {
		t.Fatalf("counters = %v", idx.Counters)
	}

	// Series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history?metric=query_total&window=10s", nil))
	var s Series
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 || s.Points[0].Delta != 10 {
		t.Fatalf("series = %+v", s)
	}
	if s.Points[0].Rate != 1 { // 10 increments / 10 virtual seconds
		t.Fatalf("rate = %v, want 1", s.Points[0].Rate)
	}

	// Latest.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history?latest=1", nil))
	if !strings.Contains(rec.Body.String(), `"generation": 3`) {
		t.Fatalf("latest missing gauge: %s", rec.Body.String())
	}

	// Unknown metric.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history?metric=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown metric = %d, want 404", rec.Code)
	}

	// Bad window.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history?metric=query_total&window=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad window = %d, want 400", rec.Code)
	}
}

func TestSparkline(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("query_total")
	i := 0
	h := fillHistory(t, reg, 10, func(n int) { c.Add(uint64(n * n)); i++ })
	sp, ok := h.Sparkline("query_total", 8)
	if !ok {
		t.Fatal("no sparkline")
	}
	if len(sp.Points) != 8 || len([]rune(sp.Spark)) != 8 {
		t.Fatalf("sparkline = %+v", sp)
	}
	// Quadratic increments: the last glyph must be the tallest block.
	if r := []rune(sp.Spark); r[len(r)-1] != '█' {
		t.Fatalf("spark = %q, want rising to full block", sp.Spark)
	}
	if sp.Last != sp.Points[len(sp.Points)-1] {
		t.Fatalf("Last = %v, points = %v", sp.Last, sp.Points)
	}
}

func TestSparkStringAllZero(t *testing.T) {
	if s := SparkString([]float64{0, 0, 0}); s != "▁▁▁" {
		t.Fatalf("SparkString zeros = %q", s)
	}
}

func TestMergeHistogramSnapshotsDisjoint(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(100) // bucket [64,128)
		b.Observe(100_000)
	}
	m := MergeHistogramSnapshots(a.Snapshot(), b.Snapshot())
	if m.Count != 200 {
		t.Fatalf("count = %d", m.Count)
	}
	if m.Min != 100 || m.Max != 100_000 {
		t.Fatalf("min/max = %d/%d", m.Min, m.Max)
	}
	if m.Sum != 100*100+100*100_000 {
		t.Fatalf("sum = %d", m.Sum)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("buckets = %v", m.Buckets)
	}
	// p50 falls in the low bucket, p99 in the high one.
	if m.P50 >= 128 {
		t.Fatalf("p50 = %d, want inside low bucket", m.P50)
	}
	if m.P99 < 65536 {
		t.Fatalf("p99 = %d, want inside high bucket", m.P99)
	}
	// Merging with an empty snapshot is the identity.
	if got := MergeHistogramSnapshots(m, HistogramSnapshot{}); got.Count != 200 {
		t.Fatalf("merge with empty = %+v", got)
	}
	if got := MergeHistogramSnapshots(HistogramSnapshot{}, m); got.Count != 200 {
		t.Fatalf("merge empty-first = %+v", got)
	}
}

func TestDeltaHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(100)
	}
	earlier := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(1_000_000)
	}
	later := h.Snapshot()
	d := DeltaHistogramSnapshot(later, earlier)
	if d.Count != 50 {
		t.Fatalf("delta count = %d, want 50", d.Count)
	}
	if d.Sum != 50*1_000_000 {
		t.Fatalf("delta sum = %d", d.Sum)
	}
	// The window contained only slow observations; its p50 must say so.
	if d.P50 < 512*1024 {
		t.Fatalf("delta p50 = %d, want ~1e6", d.P50)
	}
	// Counter reset (later < earlier) yields empty, not garbage.
	if r := DeltaHistogramSnapshot(earlier, later); r.Count != 0 {
		t.Fatalf("reset delta = %+v", r)
	}
	// Identical snapshots yield empty.
	if r := DeltaHistogramSnapshot(later, later); r.Count != 0 {
		t.Fatalf("self delta = %+v", r)
	}
}
