package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("view_hits", "view", "tree")
	a := v.With("V{a}", "0")
	b := v.With("V{b}", "1")
	if a == nil || b == nil || a == b {
		t.Fatalf("children not distinct: %p %p", a, b)
	}
	if again := v.With("V{a}", "0"); again != a {
		t.Fatal("With is not get-or-create")
	}
	a.Add(3)
	b.Inc()
	s := v.Snapshot()
	if !reflect.DeepEqual(s.LabelNames, []string{"view", "tree"}) {
		t.Fatalf("label names = %v", s.LabelNames)
	}
	want := []LabeledValue{
		{Labels: []string{"V{a}", "0"}, Value: 3},
		{Labels: []string{"V{b}", "1"}, Value: 1},
	}
	if !reflect.DeepEqual(s.Values, want) {
		t.Fatalf("snapshot = %+v, want %+v", s.Values, want)
	}
}

func TestGaugeVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("run_pages", "view")
	v.With("V{a}").Set(12.5)
	v.With("V{a}").Set(13.5) // same child, last write wins
	s := v.Snapshot()
	if len(s.Values) != 1 || s.Values[0].Value != 13.5 {
		t.Fatalf("snapshot = %+v", s.Values)
	}
}

func TestVecNilAndMismatchedArity(t *testing.T) {
	var nilC *CounterVec
	var nilG *GaugeVec
	if nilC.With("x") != nil || nilG.With("x") != nil {
		t.Fatal("nil vec must return nil child")
	}
	nilC.With("x").Inc()  // must not panic
	nilG.With("x").Set(1) // must not panic
	_ = nilC.Snapshot()   // must not panic
	_ = nilG.Snapshot()   // must not panic
	r := NewRegistry()
	v := r.CounterVec("m", "a", "b")
	if v.With("only-one") != nil {
		t.Fatal("mismatched label count must return nil child")
	}
}

func TestVecZeroLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("plain")
	v.With().Add(5)
	s := v.Snapshot()
	if len(s.Values) != 1 || s.Values[0].Value != 5 || len(s.Values[0].Labels) != 0 {
		t.Fatalf("zero-label snapshot = %+v", s.Values)
	}
}

func TestRegistryVecGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.CounterVec("f", "l") != r.CounterVec("f", "l") {
		t.Fatal("CounterVec must be shared by name")
	}
	if r.GaugeVec("g", "l") != r.GaugeVec("g", "l") {
		t.Fatal("GaugeVec must be shared by name")
	}
	names := r.Names()
	if !reflect.DeepEqual(names, []string{"f", "g"}) {
		t.Fatalf("names = %v", names)
	}
	s := r.Snapshot()
	if _, ok := s.CounterVecs["f"]; !ok {
		t.Fatalf("counter family missing from snapshot: %+v", s.CounterVecs)
	}
	if _, ok := s.GaugeVecs["g"]; !ok {
		t.Fatalf("gauge family missing from snapshot: %+v", s.GaugeVecs)
	}
}

func TestFloatGauge(t *testing.T) {
	var nilG *FloatGauge
	nilG.Set(3) // no-op
	if nilG.Value() != 0 {
		t.Fatal("nil FloatGauge must read 0")
	}
	var g FloatGauge
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("value = %v", g.Value())
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits", "shard")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	labels := []string{"a", "b", "c"}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v.With(labels[(w+i)%len(labels)]).Inc()
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, lv := range v.Snapshot().Values {
		total += lv.Value
	}
	if total != workers*each {
		t.Fatalf("total = %v, want %d", total, workers*each)
	}
}
