package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	EnableRuntimeMetrics(reg)
	s := reg.Snapshot()
	if s.Gauges["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %d", s.Gauges["go_goroutines"])
	}
	if s.Gauges["go_gomaxprocs"] < 1 {
		t.Fatalf("go_gomaxprocs = %d", s.Gauges["go_gomaxprocs"])
	}
	if s.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %d", s.Gauges["go_heap_alloc_bytes"])
	}
	for _, name := range []string{
		"go_heap_sys_bytes", "go_heap_inuse_bytes", "go_heap_objects",
		"go_stack_inuse_bytes", "go_next_gc_bytes", "go_gc_cycles_total",
		"go_gc_pause_total_ns", "go_gc_pause_last_ns",
		"go_sched_latency_p50_ns", "go_sched_latency_p99_ns",
	} {
		if _, ok := s.Gauges[name]; !ok {
			t.Fatalf("missing runtime gauge %s", name)
		}
	}
	// GC accounting moves once a collection has run.
	runtime.GC()
	// The cached sampler refreshes at most once per second, so the snapshot
	// may lag; the gauge set itself is what matters here.
}

func TestRuntimeSamplerCaches(t *testing.T) {
	s := newRuntimeSampler()
	v1 := s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapAlloc) })
	at1 := s.at
	// An immediate second read must reuse the cached MemStats.
	s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapAlloc) })
	if !s.at.Equal(at1) {
		t.Fatal("second read within the interval re-sampled")
	}
	if v1 <= 0 {
		t.Fatalf("heap alloc = %d", v1)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, BuildInfo{
		GoVersion:    runtime.Version(),
		PackFormat:   "v2",
		WireProtocol: "1",
	})
	s := reg.Snapshot()
	fam, ok := s.GaugeVecs["build_info"]
	if !ok || len(fam.Values) != 1 {
		t.Fatalf("build_info family = %+v", s.GaugeVecs)
	}
	lv := fam.Values[0]
	if lv.Value != 1 {
		t.Fatalf("build_info value = %v, want 1", lv.Value)
	}
	if lv.Labels[0] != runtime.Version() || lv.Labels[1] != "v2" || lv.Labels[2] != "1" {
		t.Fatalf("build_info labels = %v", lv.Labels)
	}
	if s.Gauges["process_start_time_unix_ns"] != processStart.UnixNano() {
		t.Fatalf("start time gauge = %d", s.Gauges["process_start_time_unix_ns"])
	}
	if _, ok := s.Gauges["process_uptime_seconds"]; !ok {
		t.Fatal("missing uptime gauge")
	}

	// The family flows through Prometheus exposition with the cubetree_ prefix.
	var b strings.Builder
	WritePrometheus(&b, s)
	out := b.String()
	if !strings.Contains(out, "cubetree_build_info{") {
		t.Fatalf("prometheus output missing build_info:\n%s", out)
	}
	if !strings.Contains(out, `pack_format="v2"`) {
		t.Fatalf("prometheus output missing pack_format label:\n%s", out)
	}
	if !strings.Contains(out, "cubetree_process_start_time_unix_ns") {
		t.Fatalf("prometheus output missing start time:\n%s", out)
	}
}

func TestSnapshotTimestamp(t *testing.T) {
	reg := NewRegistry()
	s := reg.Snapshot()
	if s.TakenUnixNS <= 0 {
		t.Fatalf("TakenUnixNS = %d, want stamped", s.TakenUnixNS)
	}
	var nilReg *Registry
	if nilReg.Snapshot().TakenUnixNS != 0 {
		t.Fatal("nil registry snapshot should not be stamped")
	}
}
