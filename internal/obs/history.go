package obs

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default history geometry: one sample every 10s, 360 samples = 1 hour of
// lookback. Small enough to keep resident (a few MB for a busy registry),
// long enough to evaluate 5m/1h SLO windows.
const (
	DefaultScrapeInterval  = 10 * time.Second
	DefaultHistoryCapacity = 360
)

// HistoryOptions configures a History ring.
type HistoryOptions struct {
	// Source produces one registry snapshot per scrape. Usually
	// Registry.Snapshot; a coordinator passes a fleet-merging source instead.
	Source func() Snapshot
	// Interval between background scrapes. Default 10s.
	Interval time.Duration
	// Capacity is the ring size in samples. Default 360 (1h at 10s).
	Capacity int
}

// Static errors so the nil-History paths stay allocation-free — part of the
// "disabled monitoring costs nothing" contract pinned by
// TestNilInstrumentationAllocs.
var (
	errHistoryDisabled = errors.New("history disabled")
	errNoSamples       = errors.New("no samples yet")
)

// histSample is one ring slot: a full registry snapshot and when it was taken.
type histSample struct {
	at   time.Time
	snap Snapshot
}

// History is a fixed-size ring of registry snapshots sampled on a cadence by
// a background scraper goroutine. From consecutive samples it derives what
// cumulative metrics cannot show: per-window counter rates, windowed
// histogram percentiles, and gauge trajectories. The hot query path never
// touches a History — sampling happens on the scraper goroutine, reading the
// same lock-free metrics any /debug/metrics request reads.
//
// A nil *History is a no-op for every method, so callers thread it through
// unconditionally.
type History struct {
	source   func() Snapshot
	interval time.Duration

	mu   sync.RWMutex
	ring []histSample
	head int // next write slot
	n    int // valid samples, <= len(ring)

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHistory builds a History ring. It does NOT start the scraper — call
// Start (and Close on shutdown) explicitly, so tests and short-lived tools
// never leak goroutines by merely constructing one.
func NewHistory(opts HistoryOptions) *History {
	if opts.Source == nil {
		return nil
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultScrapeInterval
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultHistoryCapacity
	}
	return &History{
		source:   opts.Source,
		interval: opts.Interval,
		ring:     make([]histSample, opts.Capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background scraper. The first sample is taken
// immediately so /debug/history is never empty after startup. Subsequent
// calls are no-ops.
func (h *History) Start() {
	if h == nil || !h.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(h.done)
		h.Sample()
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Sample()
			case <-h.stop:
				return
			}
		}
	}()
}

// Close stops the scraper and waits for it to exit. Safe on a never-started
// or nil History.
func (h *History) Close() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	if h.started.Load() {
		<-h.done
	}
}

// Sample takes one snapshot from the source and appends it to the ring. The
// scraper calls it on its cadence; tests and CI call it directly for
// deterministic timing. Safe for concurrent use.
func (h *History) Sample() {
	if h == nil {
		return
	}
	snap := h.source()
	at := time.Now()
	if snap.TakenUnixNS > 0 {
		at = time.Unix(0, snap.TakenUnixNS)
	}
	h.sampleAt(at, snap)
}

// sampleAt appends one sample with an explicit timestamp (test seam).
func (h *History) sampleAt(at time.Time, snap Snapshot) {
	h.mu.Lock()
	h.ring[h.head] = histSample{at: at, snap: snap}
	h.head = (h.head + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.mu.Unlock()
}

// Interval returns the scrape cadence.
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// Len returns the number of samples currently held.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// samples returns the held samples ordered oldest to newest.
func (h *History) samples() []histSample {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]histSample, 0, h.n)
	start := h.head - h.n
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.n; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// LatestSnapshot returns the newest sample, if any.
func (h *History) LatestSnapshot() (Snapshot, time.Time, bool) {
	if h == nil {
		return Snapshot{}, time.Time{}, false
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.n == 0 {
		return Snapshot{}, time.Time{}, false
	}
	i := h.head - 1
	if i < 0 {
		i += len(h.ring)
	}
	return h.ring[i].snap, h.ring[i].at, true
}

// SeriesPoint is one derived sample of a metric's time series. Which fields
// are meaningful depends on the series kind: counters carry Delta/Rate,
// gauges carry Value, histograms carry Delta/Rate plus windowed percentiles.
type SeriesPoint struct {
	UnixMS int64   `json:"t_ms"`
	Value  float64 `json:"value,omitempty"`
	Delta  float64 `json:"delta,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	P50    int64   `json:"p50,omitempty"`
	P95    int64   `json:"p95,omitempty"`
	P99    int64   `json:"p99,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
}

// Series is the windowed time series of one metric, oldest point first.
type Series struct {
	Metric  string  `json:"metric"`
	Kind    string  `json:"kind"` // "counter" | "gauge" | "histogram"
	WindowS float64 `json:"window_s"`
	// Cumulative is the newest raw value for counters, so clients can
	// reconcile the sum of Deltas against the lifetime total.
	Cumulative uint64        `json:"cumulative,omitempty"`
	Points     []SeriesPoint `json:"points"`
}

// Series derives the windowed time series of one metric from the ring.
// window <= interval pairs adjacent samples (the finest resolution); larger
// windows stride over the ring, so deltas telescope: the sum of all Deltas in
// a stride-1 series equals newest cumulative minus oldest cumulative exactly.
func (h *History) Series(metric string, window time.Duration) (Series, error) {
	var out Series
	if h == nil {
		return out, errHistoryDisabled
	}
	samples := h.samples()
	if len(samples) == 0 {
		return out, errNoSamples
	}
	newest := samples[len(samples)-1].snap
	kind := ""
	switch {
	case contains(newest.Counters, metric):
		kind = "counter"
	case contains(newest.Gauges, metric):
		kind = "gauge"
	case contains(newest.Histograms, metric):
		kind = "histogram"
	default:
		return out, fmt.Errorf("unknown metric %q", metric)
	}
	stride := 1
	if h.interval > 0 && window > h.interval {
		stride = int((window + h.interval/2) / h.interval)
	}
	out.Metric = metric
	out.Kind = kind
	out.WindowS = (time.Duration(stride) * h.interval).Seconds()
	if kind == "counter" {
		out.Cumulative = newest.Counters[metric]
	}

	if kind == "gauge" {
		// Gauges are instantaneous: one point per stride-th sample.
		for i := (len(samples) - 1) % stride; i < len(samples); i += stride {
			out.Points = append(out.Points, SeriesPoint{
				UnixMS: samples[i].at.UnixMilli(),
				Value:  float64(samples[i].snap.Gauges[metric]),
			})
		}
		return out, nil
	}

	// Counters and histograms need a pair of samples per point. Anchor the
	// newest point at the newest sample and walk backwards in strides.
	var pts []SeriesPoint
	for j := len(samples) - 1; j-stride >= 0; j -= stride {
		later, earlier := samples[j], samples[j-stride]
		elapsed := later.at.Sub(earlier.at).Seconds()
		p := SeriesPoint{UnixMS: later.at.UnixMilli()}
		switch kind {
		case "counter":
			lv, ev := later.snap.Counters[metric], earlier.snap.Counters[metric]
			if lv >= ev {
				p.Delta = float64(lv - ev)
			}
			if elapsed > 0 {
				p.Rate = p.Delta / elapsed
			}
		case "histogram":
			d := DeltaHistogramSnapshot(later.snap.Histograms[metric], earlier.snap.Histograms[metric])
			p.Delta = float64(d.Count)
			if elapsed > 0 {
				p.Rate = p.Delta / elapsed
			}
			p.P50, p.P95, p.P99, p.Mean = d.P50, d.P95, d.P99, d.Mean
		}
		pts = append(pts, p)
	}
	// Reverse into oldest-first order.
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	out.Points = pts
	return out, nil
}

func contains[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}

// Sparkline is a compact recent-history summary of one metric: the last n
// derived values (counter rate, gauge value, or histogram p99) plus a unicode
// block rendering, embedded in /debug/warehouse for at-a-glance trends.
type Sparkline struct {
	Metric string    `json:"metric"`
	Kind   string    `json:"kind"`
	Last   float64   `json:"last"`
	Points []float64 `json:"points"`
	Spark  string    `json:"spark"`
}

// Sparkline summarizes the last n samples of a metric. ok is false when the
// metric is unknown or the ring has no samples.
func (h *History) Sparkline(metric string, n int) (Sparkline, bool) {
	s, err := h.Series(metric, 0)
	if err != nil {
		return Sparkline{}, false
	}
	vals := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		switch s.Kind {
		case "counter":
			vals = append(vals, p.Rate)
		case "gauge":
			vals = append(vals, p.Value)
		case "histogram":
			vals = append(vals, float64(p.P99))
		}
	}
	if len(vals) > n && n > 0 {
		vals = vals[len(vals)-n:]
	}
	if len(vals) == 0 {
		return Sparkline{}, false
	}
	return Sparkline{
		Metric: metric,
		Kind:   s.Kind,
		Last:   vals[len(vals)-1],
		Points: vals,
		Spark:  SparkString(vals),
	}, true
}

// sparkRunes maps a value's fraction of the series maximum to a block glyph.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// SparkString renders values as a unicode sparkline, scaled to the series
// maximum (an all-zero series renders as a flat baseline).
func SparkString(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// historyIndex is the /debug/history response when no metric is selected.
type historyIndex struct {
	IntervalS  float64  `json:"interval_s"`
	Samples    int      `json:"samples"`
	Capacity   int      `json:"capacity"`
	SpanS      float64  `json:"span_s"`
	Counters   []string `json:"counters,omitempty"`
	Gauges     []string `json:"gauges,omitempty"`
	Histograms []string `json:"histograms,omitempty"`
}

// ServeHTTP implements /debug/history:
//
//	GET /debug/history                     → index of known metrics + ring geometry
//	GET /debug/history?metric=M&window=30s → windowed Series for M
//	GET /debug/history?latest=1            → newest raw snapshot with timestamp
func (h *History) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h == nil {
		http.Error(w, `{"error":"history disabled"}`, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	if q.Get("latest") != "" {
		snap, at, ok := h.LatestSnapshot()
		if !ok {
			http.Error(w, `{"error":"no samples yet"}`, http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			AtUnixNS int64    `json:"at_unix_ns"`
			Snapshot Snapshot `json:"snapshot"`
		}{at.UnixNano(), snap})
		return
	}
	if metric := q.Get("metric"); metric != "" {
		window := time.Duration(0)
		if ws := q.Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":"bad window: %v"}`, err), http.StatusBadRequest)
				return
			}
			window = d
		}
		s, err := h.Series(metric, window)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusNotFound)
			return
		}
		writeJSON(w, s)
		return
	}
	samples := h.samples()
	idx := historyIndex{IntervalS: h.interval.Seconds(), Samples: len(samples), Capacity: len(h.ring)}
	if len(samples) > 0 {
		idx.SpanS = samples[len(samples)-1].at.Sub(samples[0].at).Seconds()
		newest := samples[len(samples)-1].snap
		idx.Counters = sortedKeys(newest.Counters)
		idx.Gauges = sortedKeys(newest.Gauges)
		idx.Histograms = sortedKeys(newest.Histograms)
	}
	writeJSON(w, idx)
}
