package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cubetree/internal/pager"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every value must satisfy lo <= v < hi of its own bucket.
	for _, v := range []int64{0, 1, 2, 3, 5, 100, 4096, 1<<30 + 7} {
		b := bucketOf(v)
		if lo, hi := bucketLo(b), bucketHi(b); v < lo || v >= hi {
			t.Errorf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
	}
	if bucketLo(1) != 1 || bucketHi(1) != 2 {
		t.Errorf("bucket 1 = [%d,%d), want [1,2)", bucketLo(1), bucketHi(1))
	}
	if bucketLo(11) != 1024 || bucketHi(11) != 2048 {
		t.Errorf("bucket 11 = [%d,%d), want [1024,2048)", bucketLo(11), bucketHi(11))
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1000 and one outlier of 1e9: p50/p95 must stay in
	// the 1000s bucket and p99... with 101 samples rank 99.99 is still the
	// low bucket; the outlier owns only the top rank.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000_000)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if s.Min != 1000 || s.Max != 1_000_000_000 {
		t.Fatalf("min/max = %d/%d, want 1000/1e9", s.Min, s.Max)
	}
	// 1000 lands in bucket [512, 1024): p50 and p95 must stay inside it.
	for _, q := range []struct {
		name string
		v    int64
	}{{"p50", s.P50}, {"p95", s.P95}} {
		if q.v < 512 || q.v >= 1024 {
			t.Errorf("%s = %d, want within [512,1024)", q.name, q.v)
		}
	}
	// The outlier's bucket is [2^29, 2^30); p100-ish ranks reach it only via
	// the very top of the distribution.
	if s.P99 >= 1<<29 {
		t.Errorf("p99 = %d unexpectedly reached the outlier bucket", s.P99)
	}

	// A uniform spread: percentiles must be monotone and within range.
	var u Histogram
	for i := int64(1); i <= 1000; i++ {
		u.Observe(i * 1000) // 1000..1000000
	}
	us := u.Snapshot()
	if !(us.P50 <= us.P95 && us.P95 <= us.P99) {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p99=%d", us.P50, us.P95, us.P99)
	}
	if us.P50 < 1000 || us.P99 > 1<<21 {
		t.Errorf("percentiles out of range: p50=%d p99=%d", us.P50, us.P99)
	}
	// Log-bucket interpolation is accurate to within one power of two.
	if us.P50 < 250_000 || us.P50 > 1_000_000 {
		t.Errorf("p50 = %d, want within a factor of two of the true median 500000", us.P50)
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name          string
		observe       []int64
		p50, p95, p99 int64
	}{
		// Empty: every percentile is 0, never NaN or a bucket bound.
		{name: "empty"},
		// A single sample is reported exactly for every percentile, not as
		// a bucket-boundary approximation.
		{name: "single", observe: []int64{42}, p50: 42, p95: 42, p99: 42},
		{name: "single zero", observe: []int64{0}},
		{name: "single one", observe: []int64{1}, p50: 1, p95: 1, p99: 1},
		{name: "single large", observe: []int64{1 << 40}, p50: 1 << 40, p95: 1 << 40, p99: 1 << 40},
		// Repeated identical samples collapse to that sample (min == max).
		{name: "repeated", observe: []int64{7, 7, 7, 7}, p50: 7, p95: 7, p99: 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.observe {
				h.Observe(v)
			}
			s := h.Snapshot()
			if s.Count != uint64(len(tc.observe)) {
				t.Fatalf("count = %d, want %d", s.Count, len(tc.observe))
			}
			if s.P50 != tc.p50 || s.P95 != tc.p95 || s.P99 != tc.p99 {
				t.Fatalf("p50/p95/p99 = %d/%d/%d, want %d/%d/%d",
					s.P50, s.P95, s.P99, tc.p50, tc.p95, tc.p99)
			}
			if len(tc.observe) == 0 && len(s.Buckets) != 0 {
				t.Fatalf("empty histogram has buckets: %+v", s.Buckets)
			}
		})
	}
}

func TestHistogramPercentilesWithinObservedRange(t *testing.T) {
	// Whatever the interpolation does inside a bucket, no reported
	// percentile may escape [Min, Max].
	var h Histogram
	for _, v := range []int64{100, 150, 900} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for name, p := range map[string]int64{"p50": s.P50, "p95": s.P95, "p99": s.P99} {
		if p < s.Min || p > s.Max {
			t.Fatalf("%s = %d outside observed range [%d,%d]", name, p, s.Min, s.Max)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestRegistrySharedAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("same-name counters are distinct")
	}
	c1.Add(3)
	r.Gauge("g").Set(-7)
	r.GaugeFunc("fn", func() int64 { return 99 })
	r.Histogram("h_ns").Observe(100)
	stats := &pager.Stats{}
	stats.AddSequentialReads(5)
	r.AttachStats(stats)

	s := r.Snapshot()
	if s.Counters["x_total"] != 3 {
		t.Errorf("counter = %d, want 3", s.Counters["x_total"])
	}
	if s.Gauges["g"] != -7 || s.Gauges["fn"] != 99 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.Histograms["h_ns"].Count != 1 {
		t.Errorf("histogram count = %d", s.Histograms["h_ns"].Count)
	}
	if s.IO == nil || s.IO.SeqReads != 5 {
		t.Errorf("io snapshot = %+v", s.IO)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-able: %v", err)
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(1)
	r.GaugeFunc("f", func() int64 { return 1 })
	if s := r.Snapshot(); s.Counters != nil {
		t.Error("nil registry snapshot not empty")
	}

	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	child := sp.Child("y")
	child.SetInt("k", 1)
	child.SetStr("s", "v")
	child.End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}

	var sl *SlowLog
	if sl.Admits(time.Hour) {
		t.Error("nil slow log admits")
	}
	sl.Record(SlowQuery{})
	if sl.Snapshot() != nil || sl.Total() != 0 {
		t.Error("nil slow log not empty")
	}

	var o *Observer
	o.ObservePhase("p", o.StartTrace("t"))
	if o.PhaseHistogram("p") != nil {
		t.Error("nil observer returned a histogram")
	}
}

func TestTracerRingAndSpanTree(t *testing.T) {
	tr := NewTracer(2)
	root := tr.StartRoot("refresh")
	sort := root.Child("sort")
	sort.SetInt("rows", 1000)
	sort.End()
	merge := root.Child("merge")
	merge.SetStr("view", "ps")
	merge.End()

	// While the root is open it must show as running.
	snaps := tr.Snapshot()
	if len(snaps) != 1 || !snaps[0].Running {
		t.Fatalf("active trace missing or not running: %+v", snaps)
	}
	root.End()
	root.End() // idempotent

	snaps = tr.Snapshot()
	if len(snaps) != 1 || snaps[0].Running {
		t.Fatalf("completed trace wrong: %+v", snaps)
	}
	if len(snaps[0].Children) != 2 || snaps[0].Children[0].Name != "sort" {
		t.Fatalf("children wrong: %+v", snaps[0].Children)
	}
	if snaps[0].Children[0].Attrs["rows"] != int64(1000) {
		t.Errorf("attr rows = %v", snaps[0].Children[0].Attrs["rows"])
	}

	// Ring evicts oldest: after three more roots only the last two remain.
	for i := 0; i < 3; i++ {
		tr.StartRoot("q").End()
	}
	snaps = tr.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("ring retained %d traces, want 2", len(snaps))
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 2)
	if l.Admits(5 * time.Millisecond) {
		t.Error("admitted a fast query")
	}
	if !l.Admits(10 * time.Millisecond) {
		t.Error("rejected a threshold-equal query")
	}
	for i := 0; i < 3; i++ {
		l.Record(SlowQuery{Query: strings.Repeat("q", i+1), Duration: time.Duration(i) * time.Second})
	}
	if l.Total() != 3 {
		t.Errorf("total = %d, want 3", l.Total())
	}
	got := l.Snapshot()
	if len(got) != 2 || got[0].Query != "qqq" || got[1].Query != "qq" {
		t.Fatalf("ring contents wrong: %+v", got)
	}
	l.SetThreshold(0)
	if l.Admits(time.Hour) {
		t.Error("disabled log still admits")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	o := New(Options{SlowThreshold: time.Millisecond})
	o.Queries.Add(2)
	o.QueryLatency.Observe(12345)
	sp := o.StartTrace("refresh")
	o.ObservePhase("refresh_sort", sp.Child("sort"))
	sp.End()
	o.Slow.Record(SlowQuery{Query: "Q{partkey}", View: "ps", Duration: 2 * time.Millisecond})

	srv := httptest.NewServer(DebugMux(o))
	defer srv.Close()

	get := func(path string) map[string]any {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
		return m
	}

	metrics := get("/debug/metrics")
	counters := metrics["counters"].(map[string]any)
	if counters["query_total"].(float64) != 2 {
		t.Errorf("metrics query_total = %v", counters["query_total"])
	}
	hists := metrics["histograms"].(map[string]any)
	if _, ok := hists["refresh_sort_ns"]; !ok {
		t.Errorf("metrics missing refresh_sort_ns: %v", hists)
	}

	traces := get("/debug/traces")
	if n := len(traces["traces"].([]any)); n != 1 {
		t.Errorf("traces = %d, want 1", n)
	}

	slow := get("/debug/slow")
	if n := len(slow["slow_queries"].([]any)); n != 1 {
		t.Errorf("slow queries = %d, want 1", n)
	}
}
