// Package obs is the observability layer of the Cubetree reproduction: a
// lock-free metrics registry (counters, gauges, log-bucketed latency
// histograms), lightweight tracing spans with a ring buffer of recent
// traces, a slow-query log, and HTTP debug handlers.
//
// The design goal is that instrumentation costs ~nothing when no sink is
// attached: every span method is nil-safe (a nil *Span or *Tracer is a
// no-op and allocates nothing), so instrumented code threads a possibly-nil
// span through unconditionally, and the hot metric paths are single atomic
// adds on pointers resolved once at registration time.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/pager"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. Registration (Counter, Gauge,
// Histogram, GaugeFunc) takes a mutex and is expected at setup time or at
// low frequency; the returned metric pointers are then updated lock-free on
// hot paths. All methods are safe for concurrent use and get-or-create, so
// two components naming the same metric share it.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	gaugeFns    map[string]func() int64
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
	stats       *pager.Stats
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		gaugeFns:    map[string]func() int64{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a callback evaluated at snapshot time — the natural
// shape for values owned elsewhere, like buffer-pool occupancy. Registering
// the same name again replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// AttachStats absorbs a pager.Stats into the registry: its counters appear
// in every snapshot under the "io" key, so the registry extends rather than
// duplicates the page-level accounting.
func (r *Registry) AttachStats(s *pager.Stats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = s
}

// Snapshot is a point-in-time copy of every metric, shaped for JSON.
type Snapshot struct {
	// TakenUnixNS stamps when the snapshot was captured (UnixNano). Every
	// /debug/metrics body carries it, and the history ring relies on it to
	// order samples that crossed a wire hop.
	TakenUnixNS int64                              `json:"taken_unix_ns,omitempty"`
	Counters    map[string]uint64                  `json:"counters,omitempty"`
	Gauges      map[string]int64                   `json:"gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot       `json:"histograms,omitempty"`
	CounterVecs map[string]FamilySnapshot          `json:"counter_families,omitempty"`
	GaugeVecs   map[string]FamilySnapshot          `json:"gauge_families,omitempty"`
	HistVecs    map[string]HistogramFamilySnapshot `json:"histogram_families,omitempty"`
	IO          *pager.StatsSnapshot               `json:"io,omitempty"`
}

// Snapshot captures every registered metric. Gauge callbacks run outside the
// registry lock (they may take their own locks, e.g. pool shards).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.TakenUnixNS = time.Now().UnixNano()
	r.mu.Lock()
	s.Counters = make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	cvecs := make(map[string]*CounterVec, len(r.counterVecs))
	for name, v := range r.counterVecs {
		cvecs[name] = v
	}
	gvecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for name, v := range r.gaugeVecs {
		gvecs[name] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.histVecs))
	for name, v := range r.histVecs {
		hvecs[name] = v
	}
	stats := r.stats
	r.mu.Unlock()

	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	if len(cvecs) > 0 {
		s.CounterVecs = make(map[string]FamilySnapshot, len(cvecs))
		for name, v := range cvecs {
			s.CounterVecs[name] = v.Snapshot()
		}
	}
	if len(gvecs) > 0 {
		s.GaugeVecs = make(map[string]FamilySnapshot, len(gvecs))
		for name, v := range gvecs {
			s.GaugeVecs[name] = v.Snapshot()
		}
	}
	if len(hvecs) > 0 {
		s.HistVecs = make(map[string]HistogramFamilySnapshot, len(hvecs))
		for name, v := range hvecs {
			s.HistVecs[name] = v.Snapshot()
		}
	}
	if stats != nil {
		io := stats.Snapshot()
		s.IO = &io
	}
	return s
}

// Names returns every registered metric name, sorted, for tests and docs.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.gaugeFns {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.counterVecs {
		names = append(names, n)
	}
	for n := range r.gaugeVecs {
		names = append(names, n)
	}
	for n := range r.histVecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
