package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exposed metric, following the Prometheus
// convention that a process's metrics share an application prefix.
const promPrefix = "cubetree_"

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): plain counters and gauges, labeled
// counter/gauge families, histograms with cumulative `le` buckets, and the
// attached page-I/O counters under an io_ prefix. Families are emitted in
// sorted name order and children in sorted label order, so the output is
// deterministic for a fixed snapshot.
//
// Histogram values are dimensionless int64s (nanoseconds by convention, and
// the metric names carry a _ns suffix rather than converting to the
// Prometheus-preferred seconds — the JSON endpoint and the docs use the same
// unit). Bucket bounds are the histogram's inclusive integer upper bounds, so
// cumulative counts are exact, not approximated.
func WritePrometheus(w io.Writer, s Snapshot) error {
	pw := &promWriter{w: w}

	for _, name := range sortedKeys(s.Counters) {
		pw.typeLine(name, "counter")
		pw.sample(name, nil, nil, float64(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		pw.typeLine(name, "gauge")
		pw.sample(name, nil, nil, float64(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		fam := s.CounterVecs[name]
		pw.typeLine(name, "counter")
		for _, lv := range fam.Values {
			pw.sample(name, fam.LabelNames, lv.Labels, lv.Value)
		}
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		fam := s.GaugeVecs[name]
		pw.typeLine(name, "gauge")
		for _, lv := range fam.Values {
			pw.sample(name, fam.LabelNames, lv.Labels, lv.Value)
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		pw.typeLine(name, "histogram")
		pw.histogram(name, s.Histograms[name], nil, nil)
	}
	for _, name := range sortedKeys(s.HistVecs) {
		fam := s.HistVecs[name]
		pw.typeLine(name, "histogram")
		for _, lh := range fam.Values {
			pw.histogram(name, lh.Hist, fam.LabelNames, lh.Labels)
		}
	}
	if s.IO != nil {
		io := *s.IO
		for _, c := range []struct {
			name  string
			value uint64
		}{
			{"io_seq_reads_total", io.SeqReads},
			{"io_rand_reads_total", io.RandReads},
			{"io_seq_writes_total", io.SeqWrites},
			{"io_rand_writes_total", io.RandWrites},
			{"io_pool_hits_total", io.PoolHits},
			{"io_pool_misses_total", io.PoolMisses},
			{"io_checksums_verified_total", io.ChecksumsVerified},
			{"io_checksum_failures_total", io.ChecksumFailures},
			{"io_pages_scrubbed_total", io.PagesScrubbed},
			{"io_stale_removed_total", io.StaleRemoved},
			{"io_pool_waits_total", io.PoolWaits},
			{"io_pool_wait_ns_total", io.PoolWaitNanos},
		} {
			pw.typeLine(c.name, "counter")
			pw.sample(c.name, nil, nil, float64(c.value))
		}
	}
	return pw.err
}

// promWriter accumulates the first write error so rendering code stays flat.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err == nil {
		_, pw.err = fmt.Fprintf(pw.w, format, args...)
	}
}

func (pw *promWriter) typeLine(name, kind string) {
	pw.printf("# TYPE %s%s %s\n", promPrefix, sanitizeMetricName(name), kind)
}

// sample writes one metric line; labelNames/labelValues may be nil.
func (pw *promWriter) sample(name string, labelNames, labelValues []string, v float64) {
	pw.printf("%s%s%s %s\n", promPrefix, sanitizeMetricName(name),
		renderLabels(labelNames, labelValues), formatValue(v))
}

// histogram renders one log2-bucketed histogram as a Prometheus histogram:
// cumulative bucket counts at each non-empty bucket's inclusive upper bound,
// a final +Inf bucket equal to the count, then _sum and _count. The caller
// emits the TYPE line (once per family for labeled histograms); labelNames
// and labelValues, when non-nil, are merged into every line alongside le.
func (pw *promWriter) histogram(name string, h HistogramSnapshot, labelNames, labelValues []string) {
	n := sanitizeMetricName(name)
	bucketLabels := func(le string) string {
		return renderLabels(append(append([]string(nil), labelNames...), "le"),
			append(append([]string(nil), labelValues...), le))
	}
	labels := renderLabels(labelNames, labelValues)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		// Values in the bucket are integers in [Lo, Hi), so the inclusive
		// Prometheus bound is Hi-1 and the cumulative count at it is exact.
		pw.printf("%s%s_bucket%s %d\n", promPrefix, n, bucketLabels(formatValue(float64(b.Hi-1))), cum)
	}
	pw.printf("%s%s_bucket%s %d\n", promPrefix, n, bucketLabels("+Inf"), h.Count)
	pw.printf("%s%s_sum%s %d\n", promPrefix, n, labels, h.Sum)
	pw.printf("%s%s_count%s %d\n", promPrefix, n, labels, h.Count)
}

// renderLabels formats a label set as {a="x",b="y"}, or "" when empty. A
// mismatch between names and values drops the extras rather than emitting an
// invalid exposition.
func renderLabels(names, values []string) string {
	n := len(names)
	if len(values) < n {
		n = len(values)
	}
	if n == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(names[i]))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps arbitrary registry names onto the exposition
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// sanitizeLabelName maps arbitrary label names onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitize(name, false)
}

func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(allowColon && c == ':') || (c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(name)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
