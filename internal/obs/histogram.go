package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets. Bucket 0 holds the value 0;
// bucket i (i >= 1) holds values in [2^(i-1), 2^i). 64 buckets cover the
// whole non-negative int64 range, so no observation is ever clamped.
const histBuckets = 64

// Histogram is a lock-free latency histogram with logarithmic (power-of-two)
// buckets. Observe is wait-free: one atomic add per counter touched.
// Percentiles are extracted from the bucket counts with linear interpolation
// inside the winning bucket, which bounds the relative error of any quantile
// by the bucket width (a factor of two) and in practice keeps it far lower.
//
// Values are dimensionless int64s; the conventional unit is nanoseconds
// (see ObserveDuration).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index. Negative values count as 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) int64 {
	if i == 0 {
		return 1
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // max int64, avoiding overflow
	}
	return int64(1) << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(uint64(v))
	if h.count.Add(1) == 1 {
		// First observation seeds the extremes; racing observers fix them
		// up below, so a transiently wrong seed cannot survive.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramBucket is one non-empty bucket of a snapshot: Count observations
// with Lo <= value < Hi.
type HistogramBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with extracted
// percentiles, ready for JSON.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	P50     int64             `json:"p50"`
	P95     int64             `json:"p95"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the bucket counts and extracts p50/p95/p99. Concurrent
// Observes may land between bucket loads; the snapshot is a consistent-enough
// view for monitoring, never a torn data structure.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.Count = total
	s.Sum = int64(h.sum.Load())
	if total == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(total)
	s.P50 = clamp(quantile(&counts, total, 0.50), s.Min, s.Max)
	s.P95 = clamp(quantile(&counts, total, 0.95), s.Min, s.Max)
	s.P99 = clamp(quantile(&counts, total, 0.99), s.Min, s.Max)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
		}
	}
	return s
}

// countsOf rebuilds the dense bucket-count array from a snapshot's sparse
// bucket list. Every Histogram shares the same log2 bucket boundaries, so the
// Lo bound alone identifies the bucket index.
func countsOf(s HistogramSnapshot) (counts [histBuckets]uint64, total uint64) {
	for _, b := range s.Buckets {
		i := bucketOf(b.Lo)
		counts[i] += b.Count
		total += b.Count
	}
	return counts, total
}

// snapshotFromCounts assembles a HistogramSnapshot from a dense count array,
// re-deriving percentiles with the same interpolation Observe-side snapshots
// use. min/max pin the percentile estimates to the known observed range.
func snapshotFromCounts(counts *[histBuckets]uint64, total uint64, sum, min, max int64) HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = total
	s.Sum = sum
	if total == 0 {
		return s
	}
	s.Min = min
	s.Max = max
	s.Mean = float64(sum) / float64(total)
	s.P50 = clamp(quantile(counts, total, 0.50), min, max)
	s.P95 = clamp(quantile(counts, total, 0.95), min, max)
	s.P99 = clamp(quantile(counts, total, 0.99), min, max)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
		}
	}
	return s
}

// MergeHistogramSnapshots folds b into a and returns the combined snapshot,
// as if every observation behind both had landed in one histogram. All
// histograms share the log2 bucket grid, so merging is exact at bucket
// granularity: counts add, sums add, extremes take the wider bound, and
// percentiles are re-interpolated over the summed buckets. Used to roll
// per-shard latency histograms up into a fleet view.
func MergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	ca, ta := countsOf(a)
	cb, tb := countsOf(b)
	for i := range ca {
		ca[i] += cb[i]
	}
	min := a.Min
	if b.Min < min {
		min = b.Min
	}
	max := a.Max
	if b.Max > max {
		max = b.Max
	}
	return snapshotFromCounts(&ca, ta+tb, a.Sum+b.Sum, min, max)
}

// DeltaHistogramSnapshot returns the distribution of observations that landed
// between two snapshots of the same histogram: later minus earlier, bucket by
// bucket. The true min/max of the window are unknowable from cumulative
// snapshots, so the delta's extremes are the bounds of its outermost non-empty
// buckets. A counter-reset (later < earlier, e.g. process restart) yields an
// empty snapshot rather than garbage.
func DeltaHistogramSnapshot(later, earlier HistogramSnapshot) HistogramSnapshot {
	if earlier.Count == 0 {
		return later
	}
	cl, tl := countsOf(later)
	ce, te := countsOf(earlier)
	if tl < te {
		return HistogramSnapshot{}
	}
	var total uint64
	for i := range cl {
		if cl[i] < ce[i] {
			return HistogramSnapshot{}
		}
		cl[i] -= ce[i]
		total += cl[i]
	}
	if total == 0 {
		return HistogramSnapshot{}
	}
	sum := later.Sum - earlier.Sum
	if sum < 0 {
		sum = 0
	}
	min, max := int64(0), int64(0)
	for i := range cl {
		if cl[i] > 0 {
			min = bucketLo(i)
			break
		}
	}
	for i := histBuckets - 1; i >= 0; i-- {
		if cl[i] > 0 {
			max = bucketHi(i) - 1
			break
		}
	}
	return snapshotFromCounts(&cl, total, sum, min, max)
}

// clamp pins a bucket-interpolated quantile estimate inside the observed
// value range: an empty histogram snapshots as all zeros, and a single-sample
// histogram (min == max) reports that exact sample for every percentile
// instead of a bucket-boundary approximation.
func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quantile returns the q-quantile (0 < q <= 1) of the bucketed distribution,
// interpolating linearly inside the bucket that contains the target rank.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) int64 {
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			lo, hi := bucketLo(i), bucketHi(i)
			frac := (target - cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v >= hi { // keep the estimate inside the winning bucket
				v = hi - 1
			}
			return v
		}
		cum = next
	}
	// Rounding pushed the target past the last bucket; return its bound.
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			return bucketHi(i)
		}
	}
	return 0
}
