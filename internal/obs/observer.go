package obs

import (
	"time"

	"cubetree/internal/pager"
)

// Observer bundles the sinks one process attaches to a warehouse or engine:
// a metrics registry, a tracer, and a slow-query log, with the hot-path
// metrics pre-resolved so instrumented code never does a map lookup per
// query. A nil *Observer disables all instrumentation; engines guard their
// instrumented paths with one nil check.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	Slow     *SlowLog

	// History and SLO are the self-monitoring sinks, attached explicitly via
	// StartHistory/SetSLOs before the debug mux starts serving (they are read
	// unsynchronized at request time). Both are optional and nil-safe: no
	// scraper goroutine ever starts unless asked for.
	History *History
	SLO     *SLOTracker

	// Pre-registered query-path metrics.
	Queries         *Counter   // query_total
	QueryErrors     *Counter   // query_errors_total
	PointsScanned   *Counter   // query_points_scanned_total
	SlowQueries     *Counter   // query_slow_total
	QueryLatency    *Histogram // query_latency_ns
	Inflight        *Gauge     // query_inflight
	Batches         *Counter   // query_batches_total
	ProfiledQueries *Counter   // query_profiled_total
}

// Options configures New.
type Options struct {
	// TraceCapacity bounds the completed-trace ring (default 128).
	TraceCapacity int
	// SlowCapacity bounds the slow-query ring (default 64).
	SlowCapacity int
	// SlowThreshold gates the slow-query log; 0 disables it.
	SlowThreshold time.Duration
	// Stats, when set, is absorbed into metrics snapshots under "io".
	Stats *pager.Stats
}

// New creates an Observer with every sink attached.
func New(opts Options) *Observer {
	reg := NewRegistry()
	if opts.Stats != nil {
		reg.AttachStats(opts.Stats)
	}
	o := &Observer{
		Registry: reg,
		Tracer:   NewTracer(opts.TraceCapacity),
		Slow:     NewSlowLog(opts.SlowThreshold, opts.SlowCapacity),
	}
	o.Queries = reg.Counter("query_total")
	o.QueryErrors = reg.Counter("query_errors_total")
	o.PointsScanned = reg.Counter("query_points_scanned_total")
	o.SlowQueries = reg.Counter("query_slow_total")
	o.QueryLatency = reg.Histogram("query_latency_ns")
	o.Inflight = reg.Gauge("query_inflight")
	o.Batches = reg.Counter("query_batches_total")
	o.ProfiledQueries = reg.Counter("query_profiled_total")
	return o
}

// StartHistory attaches a started History ring to the observer. A nil Source
// defaults to the observer's own registry; a coordinator passes a
// fleet-merging source instead. Call Close on the returned History at
// shutdown. Attach before the debug mux starts serving.
func (o *Observer) StartHistory(opts HistoryOptions) *History {
	if o == nil {
		return nil
	}
	if opts.Source == nil {
		opts.Source = o.Registry.Snapshot
	}
	h := NewHistory(opts)
	h.Start()
	o.History = h
	return h
}

// SetSLOs attaches an SLO tracker evaluating objectives against the
// observer's history ring (StartHistory must have been called first for the
// tracker to ever see data). Attach before the debug mux starts serving.
func (o *Observer) SetSLOs(objectives []Objective) *SLOTracker {
	if o == nil {
		return nil
	}
	t := NewSLOTracker(o.History, objectives)
	o.SLO = t
	return t
}

// PhaseHistogram returns the latency histogram for one named pipeline phase
// (e.g. "refresh_sort"). Phases run at refresh frequency, so the registry
// lookup cost is irrelevant; the histogram itself stays lock-free.
func (o *Observer) PhaseHistogram(phase string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Registry.Histogram(phase + "_ns")
}

// StartTrace begins a root span on the observer's tracer; nil-safe.
func (o *Observer) StartTrace(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.StartRoot(name)
}

// ObservePhase ends sp and records its duration in the named phase
// histogram. Safe on a nil observer or span.
func (o *Observer) ObservePhase(phase string, sp *Span) {
	sp.End()
	if o == nil {
		return
	}
	o.PhaseHistogram(phase).ObserveDuration(sp.Duration())
}
