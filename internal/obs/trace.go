package obs

import (
	"fmt"
	"sync"
	"time"
)

// Tracer collects span trees. Completed root spans land in a fixed-size ring
// buffer (oldest overwritten first); root spans still running are tracked
// separately so a live refresh is visible in /debug/traces while it is in
// flight. A nil *Tracer is a valid no-op sink: StartRoot on it returns a nil
// span, and every *Span method is nil-safe, so uninstrumented runs pay only
// a nil check.
type Tracer struct {
	mu     sync.Mutex
	ring   []*Span
	next   int
	active map[*Span]struct{}
}

// DefaultTraceCapacity is the ring size used when NewTracer gets cap <= 0.
const DefaultTraceCapacity = 128

// NewTracer creates a tracer retaining the last capacity completed traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Span, capacity), active: map[*Span]struct{}{}}
}

// StartRoot begins a new root span. The span enters the ring when End is
// called on it.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.active[s] = struct{}{}
	t.mu.Unlock()
	return s
}

// StartRootShort begins a root span for a short-lived operation (a single
// query): the span lands in the ring on End like any root, but it is not
// tracked in the active set, so starting it is one allocation with no tracer
// lock. Use StartRoot for long operations (a refresh) that should be visible
// in /debug/traces while still running.
func (t *Tracer) StartRootShort(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, name: name, start: time.Now()}
}

// record moves a finished root span from the active set into the ring.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	delete(t.active, s)
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Snapshot returns the active root spans followed by the completed ones.
// Ordering is a documented contract relied on by /debug/traces: within each
// group spans are newest first (most recent start time, respectively most
// recent completion, at index 0), active before completed. The completed walk
// starts at the slot most recently written by record and steps backwards
// through the ring, so it stays newest-first after the ring wraps; the nil
// check only terminates the walk before the first wrap, when the tail of the
// ring has never been written.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.active)+len(t.ring))
	for s := range t.active {
		roots = append(roots, s)
	}
	// Active spans in start order (map iteration is unordered).
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].start.After(roots[j-1].start); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	n := len(roots)
	for i := 0; i < len(t.ring); i++ {
		s := t.ring[(t.next-1-i+2*len(t.ring))%len(t.ring)]
		if s == nil {
			break
		}
		roots = append(roots, s)
	}
	t.mu.Unlock()

	out := make([]SpanSnapshot, 0, len(roots))
	for i, s := range roots {
		out = append(out, s.snapshot(i < n))
	}
	return out
}

// spanAttr is one key/value annotation on a span: an integer when lazy is
// nil, otherwise a fmt.Stringer rendered only when the span is snapshotted
// for /debug/traces — string formatting stays off the query hot path, and the
// struct stays small because spans inline an array of these.
type spanAttr struct {
	key  string
	i    int64
	lazy fmt.Stringer
}

// stringAttr adapts an already-rendered string to the lazy representation.
type stringAttr string

func (s stringAttr) String() string { return string(s) }

// Span is one timed operation, optionally with attributes and child spans.
// All methods are safe on a nil receiver (no-ops), which is how
// instrumentation stays free when no tracer is attached. Child creation and
// attribute setting are safe for concurrent use, so parallel workers may
// annotate a shared parent.
type Span struct {
	tracer *Tracer // non-nil on root spans only
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	traceID  string // request-scoped correlation ID, set on roots via SetTraceID
	attrs    []spanAttr
	buf      [8]spanAttr // inline storage for the first attrs: no growth allocs
	children []*Span
}

// SetTraceID tags the span with a request-scoped trace ID so /debug/traces
// can be filtered down to one request's spans across processes. Safe on a nil
// span; an empty id is ignored.
func (s *Span) SetTraceID(id string) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	s.traceID = id
	s.mu.Unlock()
}

// TraceID returns the span's trace ID ("" when untagged or s is nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceID
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// addAttr appends one attribute, using the span's inline buffer first.
// Callers hold s.mu.
func (s *Span) addAttr(a spanAttr) {
	if s.attrs == nil {
		s.attrs = s.buf[:0]
	}
	s.attrs = append(s.attrs, a)
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.addAttr(spanAttr{key: key, i: v})
	s.mu.Unlock()
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.addAttr(spanAttr{key: key, lazy: stringAttr(v)})
	s.mu.Unlock()
}

// SetStringer annotates the span with a lazily rendered attribute: v.String()
// runs only if the span is snapshotted, so hot paths annotate traces without
// paying for string formatting. v must be immutable (or at least safe to
// render later), which holds for the value types threaded here (queries,
// views).
func (s *Span) SetStringer(key string, v fmt.Stringer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.addAttr(spanAttr{key: key, lazy: v})
	s.mu.Unlock()
}

// End finishes the span. Ending a root span records its trace in the ring.
// End is idempotent; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	done := !s.end.IsZero()
	if !done {
		s.end = time.Now()
	}
	s.mu.Unlock()
	if !done && s.tracer != nil {
		s.tracer.record(s)
	}
}

// Duration returns the span's elapsed time: end-start once finished, the
// running elapsed time while open, 0 on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SpanSnapshot is a JSON-ready copy of one span subtree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	TraceID    string         `json:"trace_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Running    bool           `json:"running,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot(running bool) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		TraceID: s.traceID,
		Start:   s.start,
		Running: running || s.end.IsZero(),
	}
	if s.end.IsZero() {
		snap.DurationNS = int64(time.Since(s.start))
	} else {
		snap.DurationNS = int64(s.end.Sub(s.start))
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.lazy != nil {
				snap.Attrs[a.key] = a.lazy.String()
			} else {
				snap.Attrs[a.key] = a.i
			}
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(false))
	}
	return snap
}
