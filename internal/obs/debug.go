package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the HTTP mux for the debug endpoints of one observer:
//
//	/debug/metrics             — Registry.Snapshot as JSON (counters, gauges,
//	                             histograms with p50/p95/p99, labeled metric
//	                             families, attached page I/O)
//	/debug/metrics/prometheus  — the same snapshot in Prometheus text
//	                             exposition format, for scraping
//	/debug/traces              — recent and in-flight span trees, newest first
//	/debug/slow                — the slow-query log, newest first
//	/debug/pprof/…             — the standard runtime profiles
//
// Callers may register additional handlers (e.g. /debug/warehouse) on the
// returned mux before serving it.
func DebugMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.snapshotRegistry())
	})
	mux.HandleFunc("/debug/metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		WritePrometheus(w, o.snapshotRegistry())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		var traces []SpanSnapshot
		if o != nil {
			traces = o.Tracer.Snapshot()
		}
		writeJSON(w, map[string]any{"traces": traces})
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		var entries []SlowQuery
		var threshold int64
		if o != nil {
			entries = o.Slow.Snapshot()
			threshold = int64(o.Slow.Threshold())
		}
		writeJSON(w, map[string]any{"threshold_ns": threshold, "slow_queries": entries})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Observer) snapshotRegistry() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	return o.Registry.Snapshot()
}

// writeJSON renders v with indentation — these endpoints are read by humans
// with curl at debugging time, not scraped at volume.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
