package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"net/url"
)

// DebugMux builds the HTTP mux for the debug endpoints of one observer:
//
//	/debug/metrics             — Registry.Snapshot as JSON (counters, gauges,
//	                             histograms with p50/p95/p99, labeled metric
//	                             families, attached page I/O)
//	/debug/metrics/prometheus  — the same snapshot in Prometheus text
//	                             exposition format, for scraping
//	/debug/traces              — recent and in-flight span trees, newest first
//	                             (active spans, then completed, each group
//	                             newest first — the Tracer.Snapshot contract);
//	                             ?trace=<id> keeps only the span trees tagged
//	                             with that trace ID
//	/debug/slow                — the slow-query log, newest first; entries
//	                             tagged with a trace ID carry a trace_link
//	                             pointing at the filtered /debug/traces view
//	/debug/history             — the self-monitoring time-series ring: windowed
//	                             counter rates and histogram percentiles
//	                             (?metric=&window=), the newest raw snapshot
//	                             (?latest=1), or a metric index (404 when no
//	                             History is attached)
//	/debug/slo                 — burn rate and remaining error budget per
//	                             objective (404 when no SLO tracker attached)
//	/debug/pprof/…             — the standard runtime profiles
//
// Callers may register additional handlers (e.g. /debug/warehouse) on the
// returned mux before serving it. The History/SLO sinks are read from the
// observer at request time without synchronization, so attach them (via
// StartHistory/SetSLOs) before the mux starts serving.
func DebugMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.snapshotRegistry())
	})
	mux.HandleFunc("/debug/metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		WritePrometheus(w, o.snapshotRegistry())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		var traces []SpanSnapshot
		if o != nil {
			traces = o.Tracer.Snapshot()
		}
		resp := map[string]any{"traces": traces}
		if id := r.URL.Query().Get("trace"); id != "" {
			filtered := traces[:0]
			for _, t := range traces {
				if t.TraceID == id {
					filtered = append(filtered, t)
				}
			}
			resp["traces"] = filtered
			resp["trace"] = id
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		// slowEntry decorates a SlowQuery with a ready-made link to the
		// trace-filtered span view, so a slow entry jumps straight to its
		// spans on this process (and, pasted against another process's debug
		// port, to the same request's spans there).
		type slowEntry struct {
			SlowQuery
			TraceLink string `json:"trace_link,omitempty"`
		}
		var entries []slowEntry
		var threshold int64
		if o != nil {
			for _, sq := range o.Slow.Snapshot() {
				e := slowEntry{SlowQuery: sq}
				if sq.TraceID != "" {
					e.TraceLink = "/debug/traces?trace=" + url.QueryEscape(sq.TraceID)
				}
				entries = append(entries, e)
			}
			threshold = int64(o.Slow.Threshold())
		}
		writeJSON(w, map[string]any{"threshold_ns": threshold, "slow_queries": entries})
	})
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		var h *History
		if o != nil {
			h = o.History
		}
		h.ServeHTTP(w, r) // nil-safe: answers 404 when disabled
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		var t *SLOTracker
		if o != nil {
			t = o.SLO
		}
		t.ServeHTTP(w, r) // nil-safe: answers 404 when disabled
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Observer) snapshotRegistry() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	return o.Registry.Snapshot()
}

// writeJSON renders v with indentation — these endpoints are read by humans
// with curl at debugging time, not scraped at volume.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
