package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// processStart anchors process_start_time_unix_ns / process_uptime_seconds.
// Stamped at package init, which for a daemon is within milliseconds of exec.
var processStart = time.Now()

// ProcessStart returns when this process (strictly: the obs package) started.
func ProcessStart() time.Time { return processStart }

// runtimeSampleMinInterval bounds how often the runtime collector re-reads
// runtime state. runtime.ReadMemStats stops the world briefly, so one snapshot
// of the registry must trigger at most one read even though it evaluates a
// dozen go_* gauges — and back-to-back snapshots (e.g. the Prometheus endpoint
// scraped by two systems) reuse the cached sample.
const runtimeSampleMinInterval = time.Second

// runtimeSampler caches one coherent read of runtime.ReadMemStats plus the
// runtime/metrics scheduler-latency histogram, refreshed at most once per
// runtimeSampleMinInterval. All go_* gauges read through it, so they are
// mutually consistent within a sample.
type runtimeSampler struct {
	mu      sync.Mutex
	at      time.Time
	ms      runtime.MemStats
	samples []metrics.Sample

	schedP50NS int64
	schedP99NS int64
}

const schedLatencyMetric = "/sched/latencies:seconds"

func newRuntimeSampler() *runtimeSampler {
	return &runtimeSampler{
		samples: []metrics.Sample{{Name: schedLatencyMetric}},
	}
}

// read refreshes the cached sample if stale, then returns fn's pick from it.
// fn runs under the sampler lock, so it must only read fields.
func (s *runtimeSampler) read(fn func(*runtimeSampler) int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) >= runtimeSampleMinInterval {
		s.at = now
		runtime.ReadMemStats(&s.ms)
		metrics.Read(s.samples)
		if h := s.samples[0]; h.Value.Kind() == metrics.KindFloat64Histogram {
			s.schedP50NS = float64HistQuantileNS(h.Value.Float64Histogram(), 0.50)
			s.schedP99NS = float64HistQuantileNS(h.Value.Float64Histogram(), 0.99)
		}
	}
	return fn(s)
}

// float64HistQuantileNS extracts the q-quantile of a runtime/metrics
// Float64Histogram (seconds) and converts to nanoseconds, using each winning
// bucket's midpoint. Handles the ±Inf boundary buckets the runtime emits.
func float64HistQuantileNS(h *metrics.Float64Histogram, q float64) int64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			// Bucket i spans Buckets[i] .. Buckets[i+1]; the runtime pads the
			// boundary slice with ±Inf sentinels, which collapse to the finite
			// neighbor so the midpoint stays meaningful.
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) || lo < 0 {
				lo = 0
			}
			if math.IsInf(hi, +1) {
				hi = lo
			}
			return int64((lo + hi) / 2 * float64(time.Second))
		}
	}
	return 0
}

// EnableRuntimeMetrics registers the go_* gauge family on r: heap and stack
// footprint, GC cycle/pause accounting, goroutine and scheduler state. The
// values are evaluated lazily at snapshot time through a shared cached sampler
// (one ReadMemStats per snapshot, at most one per second), so enabling the
// collector adds zero work to query hot paths. Safe to call more than once;
// later calls re-register equivalent callbacks.
func EnableRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	s := newRuntimeSampler()
	r.GaugeFunc("go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs", func() int64 { return int64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapAlloc) })
	})
	r.GaugeFunc("go_heap_sys_bytes", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapSys) })
	})
	r.GaugeFunc("go_heap_inuse_bytes", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapInuse) })
	})
	r.GaugeFunc("go_heap_objects", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.HeapObjects) })
	})
	r.GaugeFunc("go_stack_inuse_bytes", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.StackInuse) })
	})
	r.GaugeFunc("go_next_gc_bytes", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.NextGC) })
	})
	r.GaugeFunc("go_gc_cycles_total", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.NumGC) })
	})
	r.GaugeFunc("go_gc_pause_total_ns", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return int64(s.ms.PauseTotalNs) })
	})
	r.GaugeFunc("go_gc_pause_last_ns", func() int64 {
		return s.read(func(s *runtimeSampler) int64 {
			if s.ms.NumGC == 0 {
				return 0
			}
			return int64(s.ms.PauseNs[(s.ms.NumGC+255)%256])
		})
	})
	r.GaugeFunc("go_sched_latency_p50_ns", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return s.schedP50NS })
	})
	r.GaugeFunc("go_sched_latency_p99_ns", func() int64 {
		return s.read(func(s *runtimeSampler) int64 { return s.schedP99NS })
	})
}

// BuildInfo labels the build_info gauge: Prometheus convention is a
// constant-1 gauge whose labels carry the identity of the running binary.
type BuildInfo struct {
	GoVersion    string // runtime.Version()
	PackFormat   string // default on-disk leaf format, e.g. "v2"
	WireProtocol string // dist wire protocol version, e.g. "1"
}

// RegisterBuildInfo publishes the build_info family (exposed to Prometheus as
// cubetree_build_info) plus process start-time and uptime gauges. The caller
// supplies the labels so obs does not need to import the packages that own
// them (the dist wire version would be an import cycle from here).
func RegisterBuildInfo(r *Registry, bi BuildInfo) {
	if r == nil {
		return
	}
	r.GaugeVec("build_info", "go_version", "pack_format", "wire_protocol").
		With(bi.GoVersion, bi.PackFormat, bi.WireProtocol).Set(1)
	r.Gauge("process_start_time_unix_ns").Set(processStart.UnixNano())
	r.GaugeFunc("process_uptime_seconds", func() int64 {
		return int64(time.Since(processStart).Seconds())
	})
}
