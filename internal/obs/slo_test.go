package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("p99 query_latency_ns < 50ms over 5m, query_errors_total/query_total < 0.1% over 1h")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objs = %d", len(objs))
	}
	lat := objs[0]
	if lat.Metric != "query_latency_ns" || lat.ThresholdNS != int64(50*time.Millisecond) ||
		lat.Target != 0.99 || lat.Window != 5*time.Minute {
		t.Fatalf("latency objective = %+v", lat)
	}
	ratio := objs[1]
	if ratio.BadMetric != "query_errors_total" || ratio.TotalMetric != "query_total" ||
		ratio.Window != time.Hour {
		t.Fatalf("ratio objective = %+v", ratio)
	}
	if got, want := ratio.Target, 0.999; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ratio target = %v, want %v", got, want)
	}

	// Good-ratio form: numerator counts good events.
	objs, err = ParseObjectives("query_ok_total/query_total > 99.9%")
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].GoodMetric != "query_ok_total" || objs[0].Window != 5*time.Minute {
		t.Fatalf("good-ratio objective = %+v", objs[0])
	}
	if got := objs[0].Target; got < 0.999-1e-9 || got > 0.999+1e-9 {
		t.Fatalf("good-ratio target = %v", got)
	}

	// Fractional percentile and bare-fraction target.
	objs, err = ParseObjectives("p99.9 query_latency_ns < 1s; query_errors_total/query_total < 0.001")
	if err != nil {
		t.Fatal(err)
	}
	if got := objs[0].Target; got < 0.999-1e-9 || got > 0.999+1e-9 {
		t.Fatalf("p99.9 target = %v", got)
	}

	for _, bad := range []string{
		"",
		"p99 query_latency_ns",
		"p99 query_latency_ns > 50ms",
		"pzz query_latency_ns < 50ms",
		"p99 query_latency_ns < fifty",
		"a/b = 5%",
		"a/b < 150%",
		"p99 m < 50ms over soon",
		"just words here now",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Fatalf("ParseObjectives(%q) should fail", bad)
		}
	}
}

// burnHistory builds a two-sample history where the window between samples
// carries n observations of latency v into query_latency_ns, errs of
// query_errors_total, and n of query_total.
func burnHistory(t *testing.T, n int, v int64, errs uint64) *History {
	t.Helper()
	reg := NewRegistry()
	hist := reg.Histogram("query_latency_ns")
	total := reg.Counter("query_total")
	bad := reg.Counter("query_errors_total")
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: 10 * time.Second, Capacity: 8})
	base := time.Now().Add(-time.Minute)
	h.sampleAt(base, reg.Snapshot())
	for i := 0; i < n; i++ {
		hist.Observe(v)
		total.Inc()
	}
	bad.Add(errs)
	h.sampleAt(base.Add(10*time.Second), reg.Snapshot())
	return h
}

func TestSLOHealthyAndBurning(t *testing.T) {
	// Healthy: all observations at 1ms, no errors.
	tr := NewSLOTracker(burnHistory(t, 1000, int64(time.Millisecond), 0), nil)
	rep := tr.Evaluate()
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2 defaults", len(rep.Objectives))
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("healthy report has violations: %v", rep.Violations)
	}
	for _, st := range rep.Objectives {
		if st.Burning || st.Short.BurnRate > 1 {
			t.Fatalf("healthy objective burning: %+v", st)
		}
		if st.Short.NoData {
			t.Fatalf("healthy objective reports no_data: %+v", st)
		}
		if st.Short.BudgetRemaining <= 0 {
			t.Fatalf("healthy budget = %v", st.Short.BudgetRemaining)
		}
	}

	// Burning: every observation at 200ms (over the 50ms p99 objective) and
	// half the queries erroring.
	tr = NewSLOTracker(burnHistory(t, 1000, int64(200*time.Millisecond), 500), nil)
	rep = tr.Evaluate()
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %v, want both defaults burning", rep.Violations)
	}
	for _, st := range rep.Objectives {
		if !st.Burning || st.Short.BurnRate <= 1 {
			t.Fatalf("objective should burn: %+v", st)
		}
		if st.Short.BudgetRemaining >= 0 {
			t.Fatalf("burning budget remaining = %v, want negative", st.Short.BudgetRemaining)
		}
	}
	if v := tr.Violations(); len(v) != 2 {
		t.Fatalf("Violations() = %v", v)
	}
}

func TestSLONoData(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: time.Second, Capacity: 4})
	tr := NewSLOTracker(h, nil)
	rep := tr.Evaluate()
	for _, st := range rep.Objectives {
		if !st.Short.NoData || st.Burning {
			t.Fatalf("empty history should be no_data, got %+v", st)
		}
		if st.Short.BudgetRemaining != 1 {
			t.Fatalf("no-data budget = %v, want 1", st.Short.BudgetRemaining)
		}
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("no-data violations = %v", rep.Violations)
	}

	// Samples but zero traffic in the window: still no_data, not burning.
	h.sampleAt(time.Now().Add(-10*time.Second), reg.Snapshot())
	h.sampleAt(time.Now(), reg.Snapshot())
	for _, st := range tr.Evaluate().Objectives {
		if !st.Short.NoData || st.Burning {
			t.Fatalf("zero-traffic window should be no_data, got %+v", st)
		}
	}
}

func TestSLOGoodRatioObjective(t *testing.T) {
	reg := NewRegistry()
	good := reg.Counter("ok_total")
	total := reg.Counter("req_total")
	h := NewHistory(HistoryOptions{Source: reg.Snapshot, Interval: time.Second, Capacity: 4})
	base := time.Now().Add(-time.Minute)
	h.sampleAt(base, reg.Snapshot())
	total.Add(1000)
	good.Add(900) // 90% good against a 99.9% objective: burning hard
	h.sampleAt(base.Add(time.Second), reg.Snapshot())

	objs, err := ParseObjectives("ok_total/req_total > 99.9% over 5m")
	if err != nil {
		t.Fatal(err)
	}
	rep := NewSLOTracker(h, objs).Evaluate()
	st := rep.Objectives[0]
	if st.Short.Bad != 100 || st.Short.Total != 1000 {
		t.Fatalf("good-ratio window = %+v", st.Short)
	}
	if !st.Burning {
		t.Fatalf("90%% good vs 99.9%% target should burn: %+v", st)
	}
}

func TestSLONilSafe(t *testing.T) {
	var tr *SLOTracker
	if v := tr.Violations(); v != nil {
		t.Fatalf("nil tracker violations = %v", v)
	}
	if rep := tr.Evaluate(); len(rep.Objectives) != 0 {
		t.Fatal("nil tracker evaluated objectives")
	}
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 404 {
		t.Fatalf("nil tracker handler = %d, want 404", rec.Code)
	}
}

func TestSLOHandler(t *testing.T) {
	tr := NewSLOTracker(burnHistory(t, 100, int64(time.Millisecond), 0), nil)
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 2 {
		t.Fatalf("handler objectives = %d", len(rep.Objectives))
	}
	for _, st := range rep.Objectives {
		if st.Name == "" || st.WindowS == 0 {
			t.Fatalf("objective missing identity: %+v", st)
		}
	}
}

func TestCountAbove(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64,128)
	}
	s := h.Snapshot()
	if got := countAbove(s, 128); got != 0 {
		t.Fatalf("countAbove(128) = %v, want 0", got)
	}
	if got := countAbove(s, 64); got != 100 {
		t.Fatalf("countAbove(64) = %v, want 100", got)
	}
	// Threshold mid-bucket: linear interpolation gives half.
	if got := countAbove(s, 96); got != 50 {
		t.Fatalf("countAbove(96) = %v, want 50", got)
	}
}
