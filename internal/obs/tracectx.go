package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
)

// traceKey is the context key under which a request's trace ID travels.
// Unexported so only WithTraceID/TraceIDFrom can touch it.
type traceKey struct{}

// NewTraceID returns a fresh 128-bit trace identifier rendered as 32 lowercase
// hex characters. IDs are random, not sequential: the coordinator and every
// worker log the same ID for one request, and collisions across restarts or
// processes must stay improbable without coordination.
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// WithTraceID returns a context carrying id. An empty id returns ctx unchanged
// so callers can thread optional IDs without branching — and so the
// tracing-off path (no inbound X-Trace-Id, no observer) allocates nothing.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom extracts the trace ID from ctx, or "" when none was attached.
// A plain context lookup: no allocation either way.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
