package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Objective is one service-level objective evaluated over the history ring.
// Two kinds exist, distinguished by which fields are set:
//
//   - Latency: a Target fraction (e.g. 0.99) of Metric's observations must
//     complete within ThresholdNS, over Window. Metric names a histogram.
//   - Ratio: the good fraction of TotalMetric must stay >= Target, where
//     BadMetric counts the bad events. Both name counters.
//
// The error budget of either kind is 1 - Target: the fraction of events
// allowed to be bad before the objective is violated.
type Objective struct {
	Name        string        `json:"name"`
	Metric      string        `json:"metric,omitempty"`
	ThresholdNS int64         `json:"threshold_ns,omitempty"`
	BadMetric   string        `json:"bad_metric,omitempty"`
	GoodMetric  string        `json:"good_metric,omitempty"` // bad = total - good
	TotalMetric string        `json:"total_metric,omitempty"`
	Target      float64       `json:"target"`
	Window      time.Duration `json:"-"`
	WindowS     float64       `json:"window_s"` // Window in seconds, for JSON
}

// DefaultObjectives returns the out-of-the-box SLOs cubetreed evaluates when
// -slo is not given: query p99 under 50ms and query error ratio under 0.1%,
// both over 5 minutes.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "query-p99-latency",
			Metric:      "query_latency_ns",
			ThresholdNS: int64(50 * time.Millisecond),
			Target:      0.99,
			Window:      5 * time.Minute,
		},
		{
			Name:        "query-error-ratio",
			BadMetric:   "query_errors_total",
			TotalMetric: "query_total",
			Target:      0.999,
			Window:      5 * time.Minute,
		},
	}
}

// ParseObjectives parses the -slo flag syntax: a comma- or semicolon-
// separated list of clauses, each either
//
//	p99 query_latency_ns < 50ms over 5m          (latency objective)
//	query_errors_total/query_total < 0.1% over 5m (bad-ratio objective)
//	query_ok_total/query_total > 99.9% over 5m    (good-ratio objective)
//
// The percentile (p50..p99.9) sets the latency Target; ratio targets may be
// written as percentages or fractions. "over <window>" is optional and
// defaults to 5m.
func ParseObjectives(spec string) ([]Objective, error) {
	var objs []Objective
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		obj, err := parseObjective(clause)
		if err != nil {
			return nil, fmt.Errorf("slo clause %q: %w", clause, err)
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("empty slo spec")
	}
	return objs, nil
}

func parseObjective(clause string) (Objective, error) {
	var o Objective
	o.Window = 5 * time.Minute

	fields := strings.Fields(clause)
	// Peel a trailing "over <window>".
	if n := len(fields); n >= 2 && fields[n-2] == "over" {
		d, err := time.ParseDuration(fields[n-1])
		if err != nil {
			return o, fmt.Errorf("bad window: %w", err)
		}
		o.Window = d
		fields = fields[:n-2]
	}

	if len(fields) == 4 && strings.HasPrefix(fields[0], "p") {
		// Latency: p<q> <histogram> < <duration>
		q, err := strconv.ParseFloat(fields[0][1:], 64)
		if err != nil || q <= 0 || q >= 100 {
			return o, fmt.Errorf("bad percentile %q", fields[0])
		}
		if fields[2] != "<" && fields[2] != "<=" {
			return o, fmt.Errorf("latency objective needs '<', got %q", fields[2])
		}
		d, err := time.ParseDuration(fields[3])
		if err != nil {
			return o, fmt.Errorf("bad threshold: %w", err)
		}
		o.Metric = fields[1]
		o.Target = q / 100
		o.ThresholdNS = int64(d)
		o.Name = fmt.Sprintf("%s-%s-%s", fields[0], fields[1], fields[3])
		return o, nil
	}

	if len(fields) == 3 && strings.Contains(fields[0], "/") {
		// Ratio: <bad>/<total> < x%   or   <good>/<total> > y%
		num, total, _ := strings.Cut(fields[0], "/")
		if num == "" || total == "" {
			return o, fmt.Errorf("ratio objective needs numerator/total counters")
		}
		frac, err := parseFraction(fields[2])
		if err != nil {
			return o, err
		}
		switch fields[1] {
		case "<", "<=":
			// Numerator counts bad events, bounded above: budget is the bound.
			o.BadMetric = num
			o.Target = 1 - frac
		case ">", ">=":
			// Numerator counts good events, bounded below (the "non-5xx
			// ratio > 99.9%" shape): bad = total - good at evaluation time.
			o.GoodMetric = num
			o.Target = frac
		default:
			return o, fmt.Errorf("ratio objective needs '<' or '>', got %q", fields[1])
		}
		o.TotalMetric = total
		o.Name = fmt.Sprintf("%s-ratio", num)
		return o, nil
	}

	return o, fmt.Errorf("unrecognized objective shape")
}

// parseFraction accepts "0.1%", "99.9%", or a bare fraction like "0.001".
func parseFraction(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad ratio %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("ratio %q out of [0,1]", s)
	}
	return v, nil
}

// SLOWindow is the evaluation of one objective over one time window.
type SLOWindow struct {
	WindowS float64 `json:"window_s"` // actual span evaluated, may be shorter than asked
	Samples int     `json:"samples"`
	Total   float64 `json:"events"`
	Bad     float64 `json:"bad_events"`
	// BadRatio is Bad/Total; BurnRate is BadRatio divided by the error
	// budget (1-Target): burn 1.0 consumes the budget exactly at the
	// sustainable pace, >1 means the objective is burning.
	BadRatio        float64 `json:"bad_ratio"`
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"` // 1 - consumed fraction; negative when overspent
	NoData          bool    `json:"no_data,omitempty"`
}

// SLOStatus is one objective's current evaluation over its own window (Short)
// and the long window (Long, the full ring span capped at 1h-equivalent).
type SLOStatus struct {
	Objective
	Short   SLOWindow `json:"short"`
	Long    SLOWindow `json:"long"`
	Burning bool      `json:"burning"`
}

// SLOReport is the /debug/slo body.
type SLOReport struct {
	TakenUnixMS int64       `json:"taken_unix_ms"`
	Objectives  []SLOStatus `json:"objectives"`
	Violations  []string    `json:"violations,omitempty"`
}

// SLOTracker evaluates objectives against a history ring on demand. It holds
// no state of its own beyond configuration, so evaluation is always
// consistent with what /debug/history shows. Nil-safe.
type SLOTracker struct {
	history    *History
	objectives []Objective
	longWindow time.Duration
}

// NewSLOTracker builds a tracker over h. Empty objectives default to
// DefaultObjectives.
func NewSLOTracker(h *History, objectives []Objective) *SLOTracker {
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	for i := range objectives {
		objectives[i].WindowS = objectives[i].Window.Seconds()
	}
	return &SLOTracker{history: h, objectives: objectives, longWindow: time.Hour}
}

// Objectives returns the configured objectives.
func (t *SLOTracker) Objectives() []Objective {
	if t == nil {
		return nil
	}
	return t.objectives
}

// Evaluate computes burn rate and remaining budget for every objective.
func (t *SLOTracker) Evaluate() SLOReport {
	var rep SLOReport
	if t == nil {
		return rep
	}
	samples := t.history.samples()
	if len(samples) > 0 {
		rep.TakenUnixMS = samples[len(samples)-1].at.UnixMilli()
	}
	for _, obj := range t.objectives {
		st := SLOStatus{Objective: obj}
		st.Short = evalWindow(obj, samples, obj.Window)
		st.Long = evalWindow(obj, samples, t.longWindow)
		st.Burning = !st.Short.NoData && st.Short.BurnRate > 1
		if st.Burning {
			rep.Violations = append(rep.Violations, obj.Name)
		}
		rep.Objectives = append(rep.Objectives, st)
	}
	return rep
}

// Violations returns the names of currently-burning objectives, for /healthz.
func (t *SLOTracker) Violations() []string {
	if t == nil {
		return nil
	}
	return t.Evaluate().Violations
}

// evalWindow evaluates one objective over the trailing window: it pairs the
// newest sample with the oldest sample no older than the window (or the
// oldest held, when the ring is younger than the window) and computes bad vs
// total events from the cumulative deltas between them.
func evalWindow(obj Objective, samples []histSample, window time.Duration) SLOWindow {
	var w SLOWindow
	if len(samples) < 2 {
		w.NoData = true
		w.BudgetRemaining = 1
		return w
	}
	newest := samples[len(samples)-1]
	// Find the oldest sample within the window of the newest; tolerate half a
	// scrape interval of slack so a ring that exactly spans the window keeps
	// its oldest sample.
	cutoff := newest.at.Add(-window)
	earliest := samples[0]
	for _, s := range samples {
		if !s.at.Before(cutoff) {
			earliest = s
			break
		}
		earliest = s
	}
	if earliest.at.Equal(newest.at) && len(samples) >= 2 {
		earliest = samples[len(samples)-2]
	}
	w.WindowS = newest.at.Sub(earliest.at).Seconds()
	for _, s := range samples {
		if !s.at.Before(earliest.at) && !s.at.After(newest.at) {
			w.Samples++
		}
	}

	var total, bad float64
	if obj.ThresholdNS > 0 {
		d := DeltaHistogramSnapshot(newest.snap.Histograms[obj.Metric], earliest.snap.Histograms[obj.Metric])
		total = float64(d.Count)
		bad = countAbove(d, obj.ThresholdNS)
	} else {
		tl, te := newest.snap.Counters[obj.TotalMetric], earliest.snap.Counters[obj.TotalMetric]
		if tl >= te {
			total = float64(tl - te)
		}
		if obj.GoodMetric != "" {
			gl, ge := newest.snap.Counters[obj.GoodMetric], earliest.snap.Counters[obj.GoodMetric]
			var good float64
			if gl >= ge {
				good = float64(gl - ge)
			}
			if bad = total - good; bad < 0 {
				bad = 0
			}
		} else {
			bl, be := newest.snap.Counters[obj.BadMetric], earliest.snap.Counters[obj.BadMetric]
			if bl >= be {
				bad = float64(bl - be)
			}
		}
	}
	w.Total, w.Bad = total, bad
	if total == 0 {
		// No traffic in the window: nothing burned, full budget intact.
		w.NoData = true
		w.BudgetRemaining = 1
		return w
	}
	w.BadRatio = bad / total
	budget := 1 - obj.Target
	if budget <= 0 {
		budget = 1e-9 // a 100% target has no budget; any bad event burns hard
	}
	w.BurnRate = w.BadRatio / budget
	w.BudgetRemaining = 1 - w.BurnRate
	return w
}

// countAbove estimates how many observations in a (delta) histogram snapshot
// exceeded the threshold, interpolating linearly within the bucket the
// threshold falls into — the same approximation the quantile extraction uses,
// so SLO verdicts and reported percentiles agree.
func countAbove(d HistogramSnapshot, threshold int64) float64 {
	var above float64
	for _, b := range d.Buckets {
		switch {
		case b.Lo >= threshold:
			above += float64(b.Count)
		case b.Hi <= threshold:
			// entirely below
		default:
			frac := float64(b.Hi-threshold) / float64(b.Hi-b.Lo)
			above += frac * float64(b.Count)
		}
	}
	return above
}

// ServeHTTP implements /debug/slo.
func (t *SLOTracker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if t == nil {
		http.Error(w, `{"error":"slo tracking disabled"}`, http.StatusNotFound)
		return
	}
	writeJSON(w, t.Evaluate())
}
