package obs

import (
	"context"
	"testing"
	"time"
)

// TestNilInstrumentationAllocs pins the tentpole requirement that
// instrumentation is free when no sink is attached: the nil-span and
// nil-observer paths must not allocate at all.
func TestNilInstrumentationAllocs(t *testing.T) {
	var (
		o    *Observer
		tr   *Tracer
		h    *Histogram
		c    *Counter
		fg   *FloatGauge
		cv   *CounterVec
		gv   *GaugeVec
		slow *SlowLog
		hist *History
		slo  *SLOTracker
	)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := o.StartTrace("query")
		sp = tr.StartRoot("query")
		sp.SetTraceID("deadbeef") // nil span: no-op
		_ = sp.TraceID()
		child := sp.Child("search")
		child.SetInt("rows", 7)
		child.End()
		h.ObserveDuration(time.Microsecond)
		c.Inc()
		fg.Set(1.5)
		cv.With("v", "0", "1").Inc()
		gv.With("v", "0", "1").Set(2.5)
		if slow.Admits(time.Microsecond) {
			slow.Record(SlowQuery{})
		}
		sp.End()
		// The tracing-off context path: an empty trace ID must not wrap the
		// context, and reading an untagged context must not allocate.
		if WithTraceID(ctx, "") != ctx {
			t.Fatal("empty trace id wrapped the context")
		}
		_ = TraceIDFrom(ctx)
		// Self-monitoring off: a nil history ring and SLO tracker must be
		// inert. These are the exact calls cubetreed threads through when
		// -scrape-interval is 0.
		hist.Start()
		hist.Sample()
		if _, _, ok := hist.LatestSnapshot(); ok {
			t.Fatal("nil history produced a snapshot")
		}
		if _, err := hist.Series("query_total", 0); err != errHistoryDisabled {
			t.Fatal("nil history Series should fail with the static error")
		}
		if _, ok := hist.Sparkline("query_total", 8); ok {
			t.Fatal("nil history produced a sparkline")
		}
		if v := slo.Violations(); v != nil {
			t.Fatal("nil slo tracker reported violations")
		}
		_ = slo.Objectives()
		hist.Close()
	})
	if allocs != 0 {
		t.Fatalf("nil-sink instrumentation allocates %v per op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v += 977
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanTree(b *testing.B) {
	tr := NewTracer(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("query")
		c := sp.Child("search")
		c.SetInt("rows", int64(i))
		c.End()
		sp.End()
	}
}

func BenchmarkNilSpanTree(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("query")
		c := sp.Child("search")
		c.SetInt("rows", int64(i))
		c.End()
		sp.End()
	}
}
