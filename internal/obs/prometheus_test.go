package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"cubetree/internal/pager"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a strict parser for the subset of the text exposition
// format 0.0.4 the writer emits. It fails the test on any grammar violation:
// malformed names, unquoted or badly escaped label values, samples without a
// preceding # TYPE declaration, or unparsable values — so the test is a
// round-trip check, not a string comparison.
func parsePrometheus(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	validName := func(name string, label bool) bool {
		if name == "" {
			return false
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(!label && c == ':') || (c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: bad comment %q", ln+1, line)
			}
			if !validName(parts[2], false) {
				t.Fatalf("line %d: bad metric name %q", ln+1, parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: bad type %q", ln+1, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexAny(rest, "{ "); i < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		} else {
			s.name = rest[:i]
			rest = rest[i:]
		}
		if !validName(s.name, false) {
			t.Fatalf("line %d: bad metric name %q", ln+1, s.name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label block in %q", ln+1, line)
			}
			body, tail := rest[1:end], rest[end+1:]
			for body != "" {
				eq := strings.Index(body, "=")
				if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
					t.Fatalf("line %d: bad label pair in %q", ln+1, line)
				}
				lname := body[:eq]
				if !validName(lname, true) {
					t.Fatalf("line %d: bad label name %q", ln+1, lname)
				}
				// Scan the quoted value honoring backslash escapes.
				var val strings.Builder
				i, closed := eq+2, false
				for ; i < len(body); i++ {
					c := body[i]
					if c == '\\' {
						if i+1 >= len(body) {
							t.Fatalf("line %d: dangling escape in %q", ln+1, line)
						}
						i++
						switch body[i] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("line %d: bad escape \\%c", ln+1, body[i])
						}
						continue
					}
					if c == '"' {
						closed = true
						break
					}
					val.WriteByte(c)
				}
				if !closed {
					t.Fatalf("line %d: unterminated label value in %q", ln+1, line)
				}
				s.labels[lname] = val.String()
				body = body[i+1:]
				body = strings.TrimPrefix(body, ",")
			}
			rest = tail
		}
		rest = strings.TrimSpace(rest)
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil && rest != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, rest, err)
		}
		s.value = v
		// Histogram series carry suffixes; resolve to the declared family.
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bt, ok := types[strings.TrimSuffix(s.name, suf)]; ok && bt == "histogram" {
				base = strings.TrimSuffix(s.name, suf)
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, s.name)
		}
		samples = append(samples, s)
	}
	return types, samples
}

func findSample(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return promSample{}, false
}

func TestPrometheusRoundTrip(t *testing.T) {
	o := New(Options{Stats: &pager.Stats{}})
	reg := o.Registry
	reg.Counter("queries_total").Add(7)
	reg.Gauge("generation").Set(3)
	hits := reg.CounterVec("view_query_hits_total", "view", "tree", "arity")
	hits.With(`V{partkey,suppkey}`, "0", "2").Add(11)
	hits.With("weird\"view\\name\nx", "1", "1").Add(2)
	pages := reg.GaugeVec("view_run_leaf_pages", "view", "tree", "arity")
	pages.With(`V{partkey,suppkey}`, "0", "2").Set(128)
	for _, v := range []int64{1, 5, 9, 100, 1023, 5000} {
		reg.Histogram("query_latency_ns").Observe(v)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePrometheus(t, sb.String())

	if types["cubetree_queries_total"] != "counter" {
		t.Fatalf("queries_total type = %q", types["cubetree_queries_total"])
	}
	if types["cubetree_view_query_hits_total"] != "counter" {
		t.Fatal("per-view counter family not declared")
	}
	if types["cubetree_view_run_leaf_pages"] != "gauge" {
		t.Fatal("per-view gauge family not declared")
	}
	if types["cubetree_query_latency_ns"] != "histogram" {
		t.Fatal("histogram not declared")
	}

	s, ok := findSample(samples, "cubetree_view_query_hits_total",
		map[string]string{"view": "V{partkey,suppkey}", "tree": "0", "arity": "2"})
	if !ok || s.value != 11 {
		t.Fatalf("labeled counter sample = %+v ok=%v", s, ok)
	}
	// Escaped label values round-trip back to the original string.
	if _, ok := findSample(samples, "cubetree_view_query_hits_total",
		map[string]string{"view": "weird\"view\\name\nx"}); !ok {
		t.Fatal("escaped label value did not round-trip")
	}
	if s, ok = findSample(samples, "cubetree_view_run_leaf_pages",
		map[string]string{"view": "V{partkey,suppkey}"}); !ok || s.value != 128 {
		t.Fatalf("labeled gauge sample = %+v ok=%v", s, ok)
	}

	// Histogram: buckets cumulative and non-decreasing, +Inf equals _count,
	// _sum equals the observed total.
	var buckets []promSample
	var sum, count float64
	haveInf := false
	for _, s := range samples {
		switch s.name {
		case "cubetree_query_latency_ns_bucket":
			if s.labels["le"] == "+Inf" {
				haveInf = true
				count = s.value
			} else {
				buckets = append(buckets, s)
			}
		case "cubetree_query_latency_ns_sum":
			sum = s.value
		}
	}
	if !haveInf {
		t.Fatal("histogram missing +Inf bucket")
	}
	if count != 6 {
		t.Fatalf("+Inf bucket = %v, want 6", count)
	}
	if sum != 1+5+9+100+1023+5000 {
		t.Fatalf("sum = %v", sum)
	}
	prev := -1.0
	var prevCum float64
	for _, b := range buckets {
		le, err := strconv.ParseFloat(b.labels["le"], 64)
		if err != nil {
			t.Fatalf("bad le %q", b.labels["le"])
		}
		if le <= prev {
			t.Fatalf("le bounds not increasing: %v after %v", le, prev)
		}
		if b.value < prevCum {
			t.Fatalf("bucket counts not cumulative: %v after %v", b.value, prevCum)
		}
		prev, prevCum = le, b.value
	}
	if prevCum != count {
		t.Fatalf("last bucket %v != count %v", prevCum, count)
	}

	// The attached pager stats surface as io_ counters.
	if _, ok := types["cubetree_io_seq_reads_total"]; !ok {
		t.Fatal("io counters not exposed")
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	cases := map[string]string{
		"ok_name":     "ok_name",
		"bad-name.9":  "bad_name_9",
		"9leading":    "_leading",
		"":            "_",
		"with:colons": "with:colons",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeLabelName("with:colons"); got != "with_colons" {
		t.Errorf("label colons must be replaced, got %q", got)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("f", "l")
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprintf("c%d", i)).Add(uint64(i))
	}
	snap := reg.Snapshot()
	var a, b strings.Builder
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("output not deterministic for a fixed snapshot")
	}
}

func TestPrometheusHistogramVec(t *testing.T) {
	reg := NewRegistry()
	lat := reg.HistogramVec("dist_shard_latency_ns", "shard")
	for _, v := range []int64{10, 20, 3000} {
		lat.With("127.0.0.1:9001").Observe(v)
	}
	lat.With("127.0.0.1:9002").Observe(500)

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePrometheus(t, sb.String())
	if types["cubetree_dist_shard_latency_ns"] != "histogram" {
		t.Fatalf("histogram family not declared: %v", types)
	}
	// Each child renders its own bucket/sum/count series carrying the shard
	// label; +Inf bucket equals the child's count.
	for _, want := range []struct {
		shard string
		count float64
		sum   float64
	}{
		{"127.0.0.1:9001", 3, 3030},
		{"127.0.0.1:9002", 1, 500},
	} {
		s, ok := findSample(samples, "cubetree_dist_shard_latency_ns_count",
			map[string]string{"shard": want.shard})
		if !ok || s.value != want.count {
			t.Fatalf("shard %s _count = %+v ok=%v", want.shard, s, ok)
		}
		if s, ok = findSample(samples, "cubetree_dist_shard_latency_ns_sum",
			map[string]string{"shard": want.shard}); !ok || s.value != want.sum {
			t.Fatalf("shard %s _sum = %+v ok=%v", want.shard, s, ok)
		}
		inf := 0.0
		for _, b := range samples {
			if b.name == "cubetree_dist_shard_latency_ns_bucket" &&
				b.labels["shard"] == want.shard && b.labels["le"] == "+Inf" {
				inf = b.value
			}
		}
		if inf != want.count {
			t.Fatalf("shard %s +Inf bucket = %v, want %v", want.shard, inf, want.count)
		}
	}
	// The snapshot carries the family for the JSON debug endpoint too.
	snap := reg.Snapshot()
	fam, ok := snap.HistVecs["dist_shard_latency_ns"]
	if !ok || len(fam.Values) != 2 || fam.Values[0].Hist.Count != 3 {
		t.Fatalf("snapshot histogram family = %+v ok=%v", fam, ok)
	}
}
