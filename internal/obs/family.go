package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// labelSep joins label values into a child key. It cannot appear in label
// values coming from this codebase (view names, tree indexes, arities), and a
// collision would only merge two children's counts, never corrupt state.
const labelSep = "\x00"

// FloatGauge is a lock-free instantaneous float64 value, the child type of
// GaugeVec: labeled gauges here carry physical measurements (pages, points,
// compression ratios) where float is the natural Prometheus-facing type.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// CounterVec is a labeled family of counters: one Counter child per distinct
// label-value tuple. With is get-or-create under a mutex and is expected at
// setup time; hot paths hold on to the returned *Counter and update it
// lock-free. All methods are safe for concurrent use and nil-safe.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per label
// name, in declaration order). A nil vec or a mismatched value count returns
// nil, which is a valid no-op Counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[key]
	if c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a labeled family of float gauges; see CounterVec for the
// concurrency contract.
type GaugeVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*FloatGauge
}

// With returns the child gauge for the given label values. A nil vec or a
// mismatched value count returns nil, a valid no-op FloatGauge.
func (v *GaugeVec) With(values ...string) *FloatGauge {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.children[key]
	if g == nil {
		g = &FloatGauge{}
		v.children[key] = g
	}
	return g
}

// LabeledValue is one child of a family snapshot: its label values (parallel
// to the family's label names) and its current value.
type LabeledValue struct {
	Labels []string `json:"labels"`
	Value  float64  `json:"value"`
}

// FamilySnapshot is a point-in-time copy of one labeled family, children
// sorted by label values for deterministic output.
type FamilySnapshot struct {
	LabelNames []string       `json:"label_names"`
	Values     []LabeledValue `json:"values"`
}

func snapshotFamily[T any](labels []string, children map[string]T, value func(T) float64) FamilySnapshot {
	s := FamilySnapshot{LabelNames: append([]string(nil), labels...)}
	keys := make([]string, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var vals []string
		if k != "" || len(labels) > 0 {
			vals = strings.Split(k, labelSep)
		}
		s.Values = append(s.Values, LabeledValue{Labels: vals, Value: value(children[k])})
	}
	return s
}

// Snapshot copies the family's children.
func (v *CounterVec) Snapshot() FamilySnapshot {
	if v == nil {
		return FamilySnapshot{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return snapshotFamily(v.labels, v.children, func(c *Counter) float64 { return float64(c.Value()) })
}

// Snapshot copies the family's children.
func (v *GaugeVec) Snapshot() FamilySnapshot {
	if v == nil {
		return FamilySnapshot{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return snapshotFamily(v.labels, v.children, (*FloatGauge).Value)
}

// HistogramVec is a labeled family of histograms: one Histogram child per
// distinct label-value tuple, e.g. per-shard latency distributions keyed by
// shard address. With is get-or-create under a mutex; hot paths hold on to
// the returned *Histogram and observe lock-free. All methods are safe for
// concurrent use and nil-safe.
type HistogramVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values. A nil vec or
// a mismatched value count returns nil, a valid no-op Histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[key]
	if h == nil {
		h = &Histogram{}
		v.children[key] = h
	}
	return h
}

// LabeledHistogram is one child of a histogram family snapshot.
type LabeledHistogram struct {
	Labels []string          `json:"labels"`
	Hist   HistogramSnapshot `json:"hist"`
}

// HistogramFamilySnapshot is a point-in-time copy of one labeled histogram
// family, children sorted by label values for deterministic output.
type HistogramFamilySnapshot struct {
	LabelNames []string           `json:"label_names"`
	Values     []LabeledHistogram `json:"values"`
}

// Snapshot copies the family's children.
func (v *HistogramVec) Snapshot() HistogramFamilySnapshot {
	if v == nil {
		return HistogramFamilySnapshot{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	s := HistogramFamilySnapshot{LabelNames: append([]string(nil), v.labels...)}
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var vals []string
		if k != "" || len(v.labels) > 0 {
			vals = strings.Split(k, labelSep)
		}
		s.Values = append(s.Values, LabeledHistogram{Labels: vals, Hist: v.children[k].Snapshot()})
	}
	return s
}

// CounterVec returns the named counter family, creating it if needed. The
// label names are fixed at first registration; re-registering with different
// labels returns the existing family (whose With will then reject mismatched
// value counts by returning nil).
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counterVecs[name]
	if v == nil {
		v = &CounterVec{name: name, labels: append([]string(nil), labels...),
			children: map[string]*Counter{}}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it if needed; see
// CounterVec for the label contract.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gaugeVecs[name]
	if v == nil {
		v = &GaugeVec{name: name, labels: append([]string(nil), labels...),
			children: map[string]*FloatGauge{}}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family, creating it if needed;
// see CounterVec for the label contract.
func (r *Registry) HistogramVec(name string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.histVecs[name]
	if v == nil {
		v = &HistogramVec{name: name, labels: append([]string(nil), labels...),
			children: map[string]*Histogram{}}
		r.histVecs[name] = v
	}
	return v
}
