package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"cubetree/internal/pager"
)

// SlowQuery is one slow-query log entry: the query, the view the planner
// chose, the latency, the points scanned, and the page I/O the query itself
// performed (a before/after delta of the engine's Stats — under concurrency
// the delta may include pages of overlapping queries, which is stated in
// docs/OBSERVABILITY.md).
type SlowQuery struct {
	Time     time.Time           `json:"time"`
	TraceID  string              `json:"trace_id,omitempty"`
	Query    string              `json:"query"`
	View     string              `json:"view"`
	Duration time.Duration       `json:"duration_ns"`
	Scanned  int64               `json:"points_scanned"`
	Rows     int                 `json:"result_rows"`
	IO       pager.StatsSnapshot `json:"io"`
}

// SlowLog retains the most recent queries slower than a configurable
// threshold in a fixed-size ring. The threshold check is one atomic load, so
// the fast path of a fast query costs ~nothing; only queries that cross the
// threshold take the ring mutex. A nil *SlowLog never admits anything.
type SlowLog struct {
	threshold atomic.Int64 // ns; <= 0 disables the log
	total     atomic.Uint64

	mu   sync.Mutex
	ring []SlowQuery
	next int
	n    int
}

// DefaultSlowLogCapacity is the ring size used when NewSlowLog gets cap <= 0.
const DefaultSlowLogCapacity = 64

// NewSlowLog creates a slow-query log admitting queries at or above
// threshold. A zero threshold disables the log until SetThreshold raises it.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	l := &SlowLog{ring: make([]SlowQuery, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Admits reports whether a query of duration d belongs in the log.
func (l *SlowLog) Admits(d time.Duration) bool {
	if l == nil {
		return false
	}
	t := l.threshold.Load()
	return t > 0 && int64(d) >= t
}

// Threshold returns the current admission threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetThreshold changes the admission threshold (0 disables).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l != nil {
		l.threshold.Store(int64(d))
	}
}

// Record appends one entry, evicting the oldest when full. Callers normally
// gate on Admits first.
func (l *SlowLog) Record(sq SlowQuery) {
	if l == nil {
		return
	}
	l.total.Add(1)
	l.mu.Lock()
	l.ring[l.next] = sq
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Total returns how many queries have crossed the threshold since creation,
// including entries already evicted from the ring.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.next-1-i+2*len(l.ring))%len(l.ring)])
	}
	return out
}
