package extsort

import (
	"io"
	"runtime"
	"sync"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

// Parallel merge: when a sort spilled enough runs and the machine has spare
// cores, the final k-way merge runs as a two-level tree. The runs are
// partitioned into G groups; a worker per group merges its runs with the
// ordinary heap mergeIterator and streams record blocks over a channel, and
// the consumer heap-merges the G sorted streams record-at-a-time. The output
// order is the same total order a single k-way merge produces (ties between
// equal keys are unspecified in both), and the counted sequential-transfer
// total is identical: the consumer charges exactly the bytes it emitted, and
// the group iterators charge nothing.

const (
	// parallelMergeMinGroups is the smallest worthwhile merge-tree fan-in.
	parallelMergeMinGroups = 2
	// mergeBlockRecords is how many records a group worker batches per
	// channel send; large enough to amortize channel overhead, small enough
	// to keep the pipeline's memory footprint trivial.
	mergeBlockRecords = 512
)

// newRunMerger merges spilled runs, splitting the merge across workers when
// there are enough runs and cores for the tree to pay off.
func newRunMerger(runs []string, width int, less enc.Less, stats *pager.Stats) (Iterator, error) {
	g := mergeGroups(len(runs))
	if g < parallelMergeMinGroups {
		return newMergeIterator(runs, width, less, stats)
	}
	return newParallelMerge(runs, width, less, stats, g)
}

// mergeGroups picks the merge-tree fan-in: one group per core up to 8, and
// never fewer than two runs per group (below that the tree is pure overhead).
func mergeGroups(nruns int) int {
	g := runtime.GOMAXPROCS(0)
	if g > 8 {
		g = 8
	}
	if g > nruns/2 {
		g = nruns / 2
	}
	return g
}

// mergeBlock is one batch of records from a group worker, or its error.
type mergeBlock struct {
	data []byte
	err  error
}

// groupStream is the consumer's view of one group worker's sorted output.
type groupStream struct {
	ch      chan mergeBlock
	recycle chan []byte // consumed blocks back to the worker
	cur     []byte      // current block; nil before the first receive
	off     int         // offset of the current record in cur
}

// parallelMergeIterator heap-merges the sorted streams of G group workers.
// It is single-consumer, like every Iterator in this package.
type parallelMergeIterator struct {
	streams []*groupStream // min-heap on each stream's current record
	width   int
	less    enc.Less
	stats   *pager.Stats
	bytes   int64
	out     []byte
	cancel  chan struct{}
	wg      sync.WaitGroup
	err     error
	closed  bool
}

func newParallelMerge(runs []string, width int, less enc.Less, stats *pager.Stats, g int) (Iterator, error) {
	pm := &parallelMergeIterator{
		width:  width,
		less:   less,
		stats:  stats,
		out:    make([]byte, width),
		cancel: make(chan struct{}),
	}
	for i := 0; i < g; i++ {
		var sub []string
		for j := i; j < len(runs); j += g {
			sub = append(sub, runs[j])
		}
		// The group iterator gets a throwaway Stats: the consumer charges
		// the real one for exactly the bytes it emits, which keeps the
		// counted total byte-for-byte identical to a serial merge.
		m, err := newMergeIterator(sub, width, less, &pager.Stats{})
		if err != nil {
			pm.Close()
			return nil, err
		}
		st := &groupStream{ch: make(chan mergeBlock, 1), recycle: make(chan []byte, 2)}
		pm.streams = append(pm.streams, st)
		pm.wg.Add(1)
		go pm.feed(m, st)
	}
	// Prime every stream, dropping those that are empty, then heapify.
	streams := pm.streams
	pm.streams = pm.streams[:0]
	for _, st := range streams {
		ok, err := pm.advanceStream(st)
		if err != nil {
			pm.Close()
			return nil, err
		}
		if ok {
			pm.streams = append(pm.streams, st)
		}
	}
	for i := len(pm.streams)/2 - 1; i >= 0; i-- {
		pm.siftDown(i)
	}
	return pm, nil
}

// feed merges one group of runs and streams the records to the consumer in
// blocks. It owns m and closes it (run files are removed) on the way out.
func (pm *parallelMergeIterator) feed(m *mergeIterator, st *groupStream) {
	defer pm.wg.Done()
	defer m.Close()
	defer close(st.ch)
	for {
		var blk []byte
		select {
		case b := <-st.recycle:
			blk = b[:0]
		default:
			blk = make([]byte, 0, mergeBlockRecords*pm.width)
		}
		for len(blk) < mergeBlockRecords*pm.width {
			rec, err := m.Next()
			if err == io.EOF {
				if len(blk) > 0 {
					select {
					case st.ch <- mergeBlock{data: blk}:
					case <-pm.cancel:
					}
				}
				return
			}
			if err != nil {
				select {
				case st.ch <- mergeBlock{err: err}:
				case <-pm.cancel:
				}
				return
			}
			blk = append(blk, rec...)
		}
		select {
		case st.ch <- mergeBlock{data: blk}:
		case <-pm.cancel:
			return
		}
	}
}

// advanceStream steps st to its next record, receiving the next block when
// the current one is drained. It reports false when the stream is finished.
func (pm *parallelMergeIterator) advanceStream(st *groupStream) (bool, error) {
	if st.cur != nil {
		st.off += pm.width
		if st.off < len(st.cur) {
			return true, nil
		}
		select {
		case st.recycle <- st.cur:
		default:
		}
		st.cur = nil
	}
	blk, ok := <-st.ch
	if !ok {
		return false, nil
	}
	if blk.err != nil {
		return false, blk.err
	}
	st.cur = blk.data
	st.off = 0
	return true, nil
}

func (pm *parallelMergeIterator) rec(st *groupStream) []byte {
	return st.cur[st.off : st.off+pm.width]
}

func (pm *parallelMergeIterator) Next() ([]byte, error) {
	if pm.err != nil {
		return nil, pm.err
	}
	if len(pm.streams) == 0 {
		return nil, io.EOF
	}
	top := pm.streams[0]
	copy(pm.out, pm.rec(top))
	pm.bytes += int64(pm.width)
	ok, err := pm.advanceStream(top)
	if err != nil {
		pm.err = err
		return nil, err
	}
	if !ok {
		n := len(pm.streams) - 1
		pm.streams[0] = pm.streams[n]
		pm.streams = pm.streams[:n]
	}
	if len(pm.streams) > 0 {
		pm.siftDown(0)
	}
	return pm.out, nil
}

func (pm *parallelMergeIterator) siftDown(i int) {
	s := pm.streams
	for {
		min := i
		if l := 2*i + 1; l < len(s) && pm.less(pm.rec(s[l]), pm.rec(s[min])) {
			min = l
		}
		if r := 2*i + 2; r < len(s) && pm.less(pm.rec(s[r]), pm.rec(s[min])) {
			min = r
		}
		if min == i {
			return
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// Close stops the group workers, waits for them to release their run files,
// and charges the records actually delivered as sequential page reads.
func (pm *parallelMergeIterator) Close() error {
	if pm.closed {
		return nil
	}
	pm.closed = true
	close(pm.cancel)
	pm.wg.Wait()
	pm.streams = nil
	pm.stats.AddSequentialReads(uint64((pm.bytes + pager.PageSize - 1) / pager.PageSize))
	return nil
}
