package extsort

import (
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

func drain(t *testing.T, it Iterator, fields int) [][]int64 {
	t.Helper()
	var out [][]int64
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, enc.Tuple(rec, fields))
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func TestSortInMemory(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 1<<20, nil)
	for _, v := range []int64{5, 3, 9, 1, 7} {
		if err := s.AddTuple([]int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it, 1)
	want := []int64{1, 3, 5, 7, 9}
	for i, w := range want {
		if got[i][0] != w {
			t.Fatalf("got[%d] = %d, want %d", i, got[i][0], w)
		}
	}
}

func TestSortSpillsRuns(t *testing.T) {
	// memLimit of 64 bytes = 8 records per run; 1000 records forces many
	// runs and a real k-way merge.
	stats := &pager.Stats{}
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 64, stats)
	r := rand.New(rand.NewSource(7))
	var want []int64
	for i := 0; i < 1000; i++ {
		v := r.Int63n(500)
		want = append(want, v)
		if err := s.AddTuple([]int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it, 1)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i] {
			t.Fatalf("record %d = %d, want %d", i, got[i][0], want[i])
		}
	}
	if stats.SeqWrites() == 0 || stats.SeqReads() == 0 {
		t.Error("spill I/O was not charged to stats")
	}
}

func TestSortEmpty(t *testing.T) {
	s := NewSorter(t.TempDir(), 16, enc.LessByFields([]int{0, 1}), 0, nil)
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it, 2); len(got) != 0 {
		t.Fatalf("empty sort yielded %d records", len(got))
	}
}

func TestSortStability_DuplicatesSurvive(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 32, nil)
	for i := 0; i < 100; i++ {
		s.AddTuple([]int64{int64(i % 5)})
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it, 1)
	if len(got) != 100 {
		t.Fatalf("duplicates lost: %d of 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][0] > got[i][0] {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestAddWrongWidth(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 0, nil)
	if err := s.Add(make([]byte, 16)); err == nil {
		t.Fatal("expected width error")
	}
	if err := s.AddTuple([]int64{1, 2}); err == nil {
		t.Fatal("expected tuple width error")
	}
}

func TestAddAfterSort(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 0, nil)
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTuple([]int64{1}); err == nil {
		t.Fatal("expected error adding after Sort")
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("expected error sorting twice")
	}
}

func TestSortMultiFieldOrderQuick(t *testing.T) {
	less := enc.LessByFields([]int{1, 0}) // pack order of 2-field tuples
	f := func(raw []uint16) bool {
		dir := t.TempDir()
		s := NewSorter(dir, 16, less, 48, nil) // force spills for len > 3
		var want [][]int64
		for i, v := range raw {
			tup := []int64{int64(v), int64(i % 7)}
			want = append(want, tup)
			if err := s.AddTuple(tup); err != nil {
				return false
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			a := enc.AppendTuple(nil, want[i])
			b := enc.AppendTuple(nil, want[j])
			return less(a, b)
		})
		it, err := s.Sort()
		if err != nil {
			return false
		}
		var got [][]int64
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, enc.Tuple(rec, 2))
		}
		it.Close()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCount(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 0, nil)
	for i := 0; i < 42; i++ {
		s.AddTuple([]int64{int64(i)})
	}
	if s.Count() != 42 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestDiscard(t *testing.T) {
	s := NewSorter(t.TempDir(), 8, enc.LessByFields([]int{0}), 0, nil)
	for i := 0; i < 10; i++ {
		s.AddTuple([]int64{int64(i)})
	}
	it, _ := s.Sort()
	n, err := Discard(it)
	if err != nil || n != 10 {
		t.Fatalf("Discard = %d, %v", n, err)
	}
}
