// Package extsort implements external merge sort over fixed-width records.
//
// The Cubetree organization depends on sorting everywhere: views are
// computed by sort-based aggregation, Cubetrees are packed from sorted
// runs, and bulk incremental updates merge a sorted delta with the sorted
// leaves. This sorter spills sorted runs to temporary files and k-way
// merges them, charging its file traffic to a pager.Stats as sequential
// page transfers, which is exactly what the paper's sort phase costs.
//
// The sorter is pipelined: a full buffer is handed to a background worker
// that sorts and spills run i while run i+1 fills, and a sort with many
// spilled runs merges them through a two-level tree whose first level runs
// on parallel workers. Neither changes the output order or the counted
// sequential-transfer totals — only when the work happens.
package extsort

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"cubetree/internal/enc"
	"cubetree/internal/obs"
	"cubetree/internal/pager"
)

// DefaultMemLimit is the default in-memory buffer size before a run spills.
const DefaultMemLimit = 16 << 20

// Iterator yields encoded records in sorted order. Implementations return
// io.EOF from Next after the last record.
type Iterator interface {
	// Next returns the next record. The returned slice is valid until the
	// following call to Next.
	Next() ([]byte, error)
	// Close releases resources held by the iterator.
	Close() error
}

// Sorter accumulates fixed-width records and produces them in sorted order.
// The zero value is not usable; call NewSorter.
//
// A Sorter is single-producer: Add/AddTuple/Sort must be called from one
// goroutine. Internally it overlaps run generation with input: the full
// buffer is handed to a spill worker (sort + sequential write) while a
// recycled second buffer keeps filling, so in-memory sorting and disk
// writes hide behind the producer. Exactly two buffers ever exist, so peak
// memory is 2×memLimit once the input spills.
type Sorter struct {
	dir      string
	width    int
	less     enc.Less
	memLimit int
	stats    *pager.Stats
	span     *obs.Span

	buf   []byte
	count int64
	runs  []string // owned by the spill worker once it starts
	done  bool

	spillCh chan []byte // full buffers to the worker; unbuffered = depth-1 pipeline
	recycle chan []byte // emptied buffers back to the producer
	spillWG sync.WaitGroup

	errMu    sync.Mutex
	spillErr error
}

// NewSorter creates a sorter for records of the given width (bytes) ordered
// by less. Spill files are created inside dir. memLimit bounds the
// in-memory buffer in bytes; values < width are raised to DefaultMemLimit.
// stats may be nil.
func NewSorter(dir string, width int, less enc.Less, memLimit int, stats *pager.Stats) *Sorter {
	if memLimit < width {
		memLimit = DefaultMemLimit
	}
	if stats == nil {
		stats = &pager.Stats{}
	}
	return &Sorter{dir: dir, width: width, less: less, memLimit: memLimit, stats: stats}
}

// SetSpan attaches a tracing span under which the sorter records its spilled
// runs and final merge as child spans. A nil span (the default) disables
// tracing at no cost; set it before the first Add.
func (s *Sorter) SetSpan(sp *obs.Span) { s.span = sp }

// Add appends one record (exactly the sorter's width) to the input.
func (s *Sorter) Add(rec []byte) error {
	if s.done {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if len(rec) != s.width {
		return fmt.Errorf("extsort: record width %d, want %d", len(rec), s.width)
	}
	if len(s.buf)+s.width > s.memLimit && len(s.buf) > 0 {
		if err := s.handOff(); err != nil {
			return err
		}
	}
	s.buf = append(s.buf, rec...)
	s.count++
	return nil
}

// AddTuple encodes vals and appends the record.
func (s *Sorter) AddTuple(vals []int64) error {
	if enc.TupleSize(len(vals)) != s.width {
		return fmt.Errorf("extsort: tuple of %d fields, want width %d", len(vals), s.width)
	}
	if s.done {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if len(s.buf)+s.width > s.memLimit && len(s.buf) > 0 {
		if err := s.handOff(); err != nil {
			return err
		}
	}
	s.buf = enc.AppendTuple(s.buf, vals)
	s.count++
	return nil
}

// Count returns the number of records added so far.
func (s *Sorter) Count() int64 { return s.count }

func (s *Sorter) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.spillErr
}

func (s *Sorter) setErr(err error) {
	s.errMu.Lock()
	if s.spillErr == nil {
		s.spillErr = err
	}
	s.errMu.Unlock()
}

// handOff gives the full buffer to the spill worker and continues filling a
// recycled (or, once only, fresh) buffer. The first call starts the worker.
func (s *Sorter) handOff() error {
	if err := s.err(); err != nil {
		return err
	}
	if s.spillCh == nil {
		s.spillCh = make(chan []byte)
		s.recycle = make(chan []byte, 1)
		s.spillWG.Add(1)
		go s.spillWorker()
	}
	s.spillCh <- s.buf
	select {
	case b := <-s.recycle:
		s.buf = b[:0]
	default:
		// The worker is still busy with the previous buffer; fill a second
		// one. This branch runs at most once: from then on the two buffers
		// ping-pong through recycle.
		s.buf = make([]byte, 0, len(s.buf))
	}
	return nil
}

// spillWorker sorts and writes each handed-off buffer as one run, reusing a
// single bufio.Writer (and sort scratch) across runs. Runs are recorded in
// hand-off order, so the run list is identical to a serial sorter's.
func (s *Sorter) spillWorker() {
	defer s.spillWG.Done()
	w := bufio.NewWriterSize(io.Discard, 1<<20)
	tmp := make([]byte, s.width)
	for buf := range s.spillCh {
		if s.err() == nil {
			if path, err := s.writeRun(buf, w, tmp); err != nil {
				s.setErr(err)
			} else {
				s.runs = append(s.runs, path)
			}
		}
		select {
		case s.recycle <- buf:
		default:
		}
	}
}

// writeRun sorts buf and spills it to a fresh temp file through the reused
// writer.
func (s *Sorter) writeRun(buf []byte, w *bufio.Writer, tmp []byte) (string, error) {
	sp := s.span.Child("spill-run")
	sp.SetInt("bytes", int64(len(buf)))
	sp.SetInt("records", int64(len(buf)/s.width))
	defer sp.End()
	sortBuf(buf, s.width, s.less, tmp)
	f, err := os.CreateTemp(s.dir, "run-*.sort")
	if err != nil {
		return "", fmt.Errorf("extsort: spill: %w", err)
	}
	w.Reset(f)
	if _, err := w.Write(buf); err != nil {
		f.Close()
		return "", fmt.Errorf("extsort: spill write: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return "", fmt.Errorf("extsort: spill flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("extsort: spill close: %w", err)
	}
	s.stats.AddSequentialWrites(uint64((len(buf) + pager.PageSize - 1) / pager.PageSize))
	return f.Name(), nil
}

// Sort finishes input and returns an iterator over all records in order.
// The sorter cannot be reused afterwards.
func (s *Sorter) Sort() (Iterator, error) {
	if s.done {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.done = true
	if s.spillCh == nil {
		sp := s.span.Child("sort-mem")
		sp.SetInt("records", s.count)
		sortBuf(s.buf, s.width, s.less, make([]byte, s.width))
		sp.End()
		return &memIterator{buf: s.buf, width: s.width}, nil
	}
	if len(s.buf) > 0 {
		s.spillCh <- s.buf
		s.buf = nil
	}
	close(s.spillCh)
	s.spillWG.Wait()
	if err := s.err(); err != nil {
		return nil, err
	}
	it, err := newRunMerger(s.runs, s.width, s.less, s.stats)
	if err != nil || s.span == nil {
		return it, err
	}
	// The merge is consumed lazily through the iterator, so its span stays
	// open until the caller closes the iterator.
	sp := s.span.Child("merge")
	sp.SetInt("runs", int64(len(s.runs)))
	return &spanIterator{it: it, span: sp}, nil
}

// spanIterator wraps the merge iterator of a traced sort, counting delivered
// records and ending the merge span when the caller closes it.
type spanIterator struct {
	it   Iterator
	span *obs.Span
	recs int64
}

func (si *spanIterator) Next() ([]byte, error) {
	rec, err := si.it.Next()
	if err == nil {
		si.recs++
	}
	return rec, err
}

func (si *spanIterator) Close() error {
	err := si.it.Close()
	si.span.SetInt("records", si.recs)
	si.span.End()
	return err
}

// sortBuf sorts a packed record buffer in place. tmp is width-byte scratch.
func sortBuf(buf []byte, width int, less enc.Less, tmp []byte) {
	n := len(buf) / width
	sort.Sort(&recordSlice{buf: buf, width: width, n: n, less: less, tmp: tmp})
}

// recordSlice adapts a packed record buffer to sort.Interface.
type recordSlice struct {
	buf   []byte
	width int
	n     int
	less  enc.Less
	tmp   []byte
}

func (r *recordSlice) Len() int { return r.n }
func (r *recordSlice) Less(i, j int) bool {
	return r.less(r.buf[i*r.width:(i+1)*r.width], r.buf[j*r.width:(j+1)*r.width])
}
func (r *recordSlice) Swap(i, j int) {
	a := r.buf[i*r.width : (i+1)*r.width]
	b := r.buf[j*r.width : (j+1)*r.width]
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}

// memIterator iterates over an in-memory sorted buffer.
type memIterator struct {
	buf   []byte
	width int
	off   int
}

func (it *memIterator) Next() ([]byte, error) {
	if it.off >= len(it.buf) {
		return nil, io.EOF
	}
	rec := it.buf[it.off : it.off+it.width]
	it.off += it.width
	return rec, nil
}

func (it *memIterator) Close() error { return nil }

// runReader streams one spilled run.
type runReader struct {
	f    *os.File
	r    *bufio.Reader
	rec  []byte
	path string
}

func openRun(path string, width int) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &runReader{f: f, r: bufio.NewReaderSize(f, 1<<20), rec: make([]byte, width), path: path}, nil
}

// next loads the next record into rr.rec; io.EOF at end.
func (rr *runReader) next() error {
	_, err := io.ReadFull(rr.r, rr.rec)
	if err == io.ErrUnexpectedEOF {
		return io.EOF
	}
	return err
}

func (rr *runReader) close() error {
	err := rr.f.Close()
	os.Remove(rr.path)
	return err
}

// mergeIterator k-way merges spilled runs with a heap.
type mergeIterator struct {
	h     runHeap
	less  enc.Less
	stats *pager.Stats
	bytes int64
	out   []byte
}

func newMergeIterator(runs []string, width int, less enc.Less, stats *pager.Stats) (*mergeIterator, error) {
	m := &mergeIterator{less: less, stats: stats, out: make([]byte, width)}
	m.h.less = less
	for _, path := range runs {
		rr, err := openRun(path, width)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		if err := rr.next(); err == io.EOF {
			rr.close()
			continue
		} else if err != nil {
			rr.close()
			m.Close()
			return nil, fmt.Errorf("extsort: read run: %w", err)
		}
		m.h.readers = append(m.h.readers, rr)
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeIterator) Next() ([]byte, error) {
	if len(m.h.readers) == 0 {
		return nil, io.EOF
	}
	top := m.h.readers[0]
	copy(m.out, top.rec)
	m.bytes += int64(len(m.out))
	switch err := top.next(); err {
	case nil:
		heap.Fix(&m.h, 0)
	case io.EOF:
		heap.Pop(&m.h).(*runReader).close()
	default:
		return nil, fmt.Errorf("extsort: merge read: %w", err)
	}
	return m.out, nil
}

func (m *mergeIterator) Close() error {
	for _, rr := range m.h.readers {
		rr.close()
	}
	m.h.readers = nil
	m.stats.AddSequentialReads(uint64((m.bytes + pager.PageSize - 1) / pager.PageSize))
	return nil
}

type runHeap struct {
	readers []*runReader
	less    enc.Less
}

func (h *runHeap) Len() int           { return len(h.readers) }
func (h *runHeap) Less(i, j int) bool { return h.less(h.readers[i].rec, h.readers[j].rec) }
func (h *runHeap) Swap(i, j int)      { h.readers[i], h.readers[j] = h.readers[j], h.readers[i] }
func (h *runHeap) Push(x interface{}) { h.readers = append(h.readers, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	last := h.readers[len(h.readers)-1]
	h.readers = h.readers[:len(h.readers)-1]
	return last
}

// TempDir creates a fresh scratch directory for sorter spills below base
// (or the OS temp dir when base is empty).
func TempDir(base string) (string, error) {
	if base == "" {
		base = os.TempDir()
	}
	return os.MkdirTemp(base, "extsort-")
}

// Discard drains and closes it, returning the record count. Useful in tests
// and benchmarks.
func Discard(it Iterator) (int64, error) {
	defer it.Close()
	var n int64
	for {
		_, err := it.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
