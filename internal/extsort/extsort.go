// Package extsort implements external merge sort over fixed-width records.
//
// The Cubetree organization depends on sorting everywhere: views are
// computed by sort-based aggregation, Cubetrees are packed from sorted
// runs, and bulk incremental updates merge a sorted delta with the sorted
// leaves. This sorter spills sorted runs to temporary files and k-way
// merges them, charging its file traffic to a pager.Stats as sequential
// page transfers, which is exactly what the paper's sort phase costs.
package extsort

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"

	"cubetree/internal/enc"
	"cubetree/internal/pager"
)

// DefaultMemLimit is the default in-memory buffer size before a run spills.
const DefaultMemLimit = 16 << 20

// Iterator yields encoded records in sorted order. Implementations return
// io.EOF from Next after the last record.
type Iterator interface {
	// Next returns the next record. The returned slice is valid until the
	// following call to Next.
	Next() ([]byte, error)
	// Close releases resources held by the iterator.
	Close() error
}

// Sorter accumulates fixed-width records and produces them in sorted order.
// The zero value is not usable; call NewSorter.
type Sorter struct {
	dir      string
	width    int
	less     enc.Less
	memLimit int
	stats    *pager.Stats

	buf   []byte
	count int64
	runs  []string
	done  bool
}

// NewSorter creates a sorter for records of the given width (bytes) ordered
// by less. Spill files are created inside dir. memLimit bounds the
// in-memory buffer in bytes; values < width are raised to DefaultMemLimit.
// stats may be nil.
func NewSorter(dir string, width int, less enc.Less, memLimit int, stats *pager.Stats) *Sorter {
	if memLimit < width {
		memLimit = DefaultMemLimit
	}
	if stats == nil {
		stats = &pager.Stats{}
	}
	return &Sorter{dir: dir, width: width, less: less, memLimit: memLimit, stats: stats}
}

// Add appends one record (exactly the sorter's width) to the input.
func (s *Sorter) Add(rec []byte) error {
	if s.done {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if len(rec) != s.width {
		return fmt.Errorf("extsort: record width %d, want %d", len(rec), s.width)
	}
	if len(s.buf)+s.width > s.memLimit && len(s.buf) > 0 {
		if err := s.spill(); err != nil {
			return err
		}
	}
	s.buf = append(s.buf, rec...)
	s.count++
	return nil
}

// AddTuple encodes vals and appends the record.
func (s *Sorter) AddTuple(vals []int64) error {
	if enc.TupleSize(len(vals)) != s.width {
		return fmt.Errorf("extsort: tuple of %d fields, want width %d", len(vals), s.width)
	}
	if s.done {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if len(s.buf)+s.width > s.memLimit && len(s.buf) > 0 {
		if err := s.spill(); err != nil {
			return err
		}
	}
	s.buf = enc.AppendTuple(s.buf, vals)
	s.count++
	return nil
}

// Count returns the number of records added so far.
func (s *Sorter) Count() int64 { return s.count }

func (s *Sorter) sortBuf() {
	n := len(s.buf) / s.width
	sort.Sort(&recordSlice{buf: s.buf, width: s.width, n: n, less: s.less,
		tmp: make([]byte, s.width)})
}

func (s *Sorter) spill() error {
	s.sortBuf()
	f, err := os.CreateTemp(s.dir, "run-*.sort")
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(s.buf); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill write: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: spill close: %w", err)
	}
	s.stats.AddSequentialWrites(uint64((len(s.buf) + pager.PageSize - 1) / pager.PageSize))
	s.runs = append(s.runs, f.Name())
	s.buf = s.buf[:0]
	return nil
}

// Sort finishes input and returns an iterator over all records in order.
// The sorter cannot be reused afterwards.
func (s *Sorter) Sort() (Iterator, error) {
	if s.done {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.done = true
	if len(s.runs) == 0 {
		s.sortBuf()
		return &memIterator{buf: s.buf, width: s.width}, nil
	}
	if len(s.buf) > 0 {
		if err := s.spill(); err != nil {
			return nil, err
		}
	}
	return newMergeIterator(s.runs, s.width, s.less, s.stats)
}

// recordSlice adapts a packed record buffer to sort.Interface.
type recordSlice struct {
	buf   []byte
	width int
	n     int
	less  enc.Less
	tmp   []byte
}

func (r *recordSlice) Len() int { return r.n }
func (r *recordSlice) Less(i, j int) bool {
	return r.less(r.buf[i*r.width:(i+1)*r.width], r.buf[j*r.width:(j+1)*r.width])
}
func (r *recordSlice) Swap(i, j int) {
	a := r.buf[i*r.width : (i+1)*r.width]
	b := r.buf[j*r.width : (j+1)*r.width]
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}

// memIterator iterates over an in-memory sorted buffer.
type memIterator struct {
	buf   []byte
	width int
	off   int
}

func (it *memIterator) Next() ([]byte, error) {
	if it.off >= len(it.buf) {
		return nil, io.EOF
	}
	rec := it.buf[it.off : it.off+it.width]
	it.off += it.width
	return rec, nil
}

func (it *memIterator) Close() error { return nil }

// runReader streams one spilled run.
type runReader struct {
	f    *os.File
	r    *bufio.Reader
	rec  []byte
	path string
}

func openRun(path string, width int) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &runReader{f: f, r: bufio.NewReaderSize(f, 1<<20), rec: make([]byte, width), path: path}, nil
}

// next loads the next record into rr.rec; io.EOF at end.
func (rr *runReader) next() error {
	_, err := io.ReadFull(rr.r, rr.rec)
	if err == io.ErrUnexpectedEOF {
		return io.EOF
	}
	return err
}

func (rr *runReader) close() error {
	err := rr.f.Close()
	os.Remove(rr.path)
	return err
}

// mergeIterator k-way merges spilled runs with a heap.
type mergeIterator struct {
	h     runHeap
	less  enc.Less
	stats *pager.Stats
	bytes int64
	out   []byte
}

func newMergeIterator(runs []string, width int, less enc.Less, stats *pager.Stats) (*mergeIterator, error) {
	m := &mergeIterator{less: less, stats: stats, out: make([]byte, width)}
	m.h.less = less
	for _, path := range runs {
		rr, err := openRun(path, width)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		if err := rr.next(); err == io.EOF {
			rr.close()
			continue
		} else if err != nil {
			rr.close()
			m.Close()
			return nil, fmt.Errorf("extsort: read run: %w", err)
		}
		m.h.readers = append(m.h.readers, rr)
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeIterator) Next() ([]byte, error) {
	if len(m.h.readers) == 0 {
		return nil, io.EOF
	}
	top := m.h.readers[0]
	copy(m.out, top.rec)
	m.bytes += int64(len(m.out))
	switch err := top.next(); err {
	case nil:
		heap.Fix(&m.h, 0)
	case io.EOF:
		heap.Pop(&m.h).(*runReader).close()
	default:
		return nil, fmt.Errorf("extsort: merge read: %w", err)
	}
	return m.out, nil
}

func (m *mergeIterator) Close() error {
	for _, rr := range m.h.readers {
		rr.close()
	}
	m.h.readers = nil
	m.stats.AddSequentialReads(uint64((m.bytes + pager.PageSize - 1) / pager.PageSize))
	return nil
}

type runHeap struct {
	readers []*runReader
	less    enc.Less
}

func (h *runHeap) Len() int           { return len(h.readers) }
func (h *runHeap) Less(i, j int) bool { return h.less(h.readers[i].rec, h.readers[j].rec) }
func (h *runHeap) Swap(i, j int)      { h.readers[i], h.readers[j] = h.readers[j], h.readers[i] }
func (h *runHeap) Push(x interface{}) { h.readers = append(h.readers, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	last := h.readers[len(h.readers)-1]
	h.readers = h.readers[:len(h.readers)-1]
	return last
}

// TempDir creates a fresh scratch directory for sorter spills below base
// (or the OS temp dir when base is empty).
func TempDir(base string) (string, error) {
	if base == "" {
		base = os.TempDir()
	}
	return os.MkdirTemp(base, "extsort-")
}

// Discard drains and closes it, returning the record count. Useful in tests
// and benchmarks.
func Discard(it Iterator) (int64, error) {
	defer it.Close()
	var n int64
	for {
		_, err := it.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
