package extsort

import (
	"io"
	"math/rand"
	"testing"

	"cubetree/internal/enc"
)

func benchSort(b *testing.B, records int, memLimit int) {
	b.Helper()
	less := enc.LessByFields([]int{2, 1, 0}) // pack order
	r := rand.New(rand.NewSource(1))
	tuples := make([][]int64, records)
	for i := range tuples {
		tuples[i] = []int64{r.Int63n(1 << 20), r.Int63n(1 << 20), r.Int63n(1 << 20), 1}
	}
	b.SetBytes(int64(records) * 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter(b.TempDir(), 32, less, memLimit, nil)
		for _, t := range tuples {
			if err := s.AddTuple(t); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		it.Close()
		if n != records {
			b.Fatalf("sorted %d of %d", n, records)
		}
	}
}

// BenchmarkSortInMemory sorts entirely in RAM.
func BenchmarkSortInMemory(b *testing.B) { benchSort(b, 100000, 8<<20) }

// BenchmarkSortSpilled forces multi-run spills and a k-way merge.
func BenchmarkSortSpilled(b *testing.B) { benchSort(b, 100000, 256<<10) }
