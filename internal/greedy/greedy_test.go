package greedy

import (
	"testing"

	"cubetree/internal/lattice"
	"cubetree/internal/tpcd"
)

// paperLattice reproduces the TPC-D 1 GB setting: 6M facts over
// partkey/suppkey/custkey with DBGEN's part-supplier correlation making
// |{partkey,suppkey}| ~ 800k.
func paperLattice(t *testing.T) (*lattice.Lattice, int64, map[string]int64) {
	t.Helper()
	dims := []lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer}
	domains := map[lattice.Attr]int64{
		tpcd.AttrPart: 200000, tpcd.AttrSupplier: 10000, tpcd.AttrCustomer: 150000,
	}
	lat, err := lattice.New(dims, domains)
	if err != nil {
		t.Fatal(err)
	}
	factSize := int64(6001215)
	sizes := map[string]int64{
		// The PARTSUPP correlation compresses every node containing both
		// part and supp; the uncorrelated pairs stay near |F|.
		lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer}): 5000000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier}):                    800000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrCustomer}):                    5950000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrSupplier, tpcd.AttrCustomer}):                5980000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrPart}):                                       200000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrSupplier}):                                   10000,
		lattice.CanonKey([]lattice.Attr{tpcd.AttrCustomer}):                                   150000,
		"none": 1,
	}
	return lat, factSize, sizes
}

func TestSelectReproducesPaperViews(t *testing.T) {
	lat, factSize, sizes := paperLattice(t)
	sel := Select(lat, factSize, sizes, 9)

	// The paper's V: top view, {p,s}, {c}, {s}, {p}, none — and NOT the
	// uncorrelated pairs {p,c}, {s,c}.
	wantViews := [][]lattice.Attr{
		{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer},
		{tpcd.AttrPart, tpcd.AttrSupplier},
		{tpcd.AttrCustomer},
		{tpcd.AttrSupplier},
		{tpcd.AttrPart},
		{},
	}
	for _, wv := range wantViews {
		if !sel.HasView(wv) {
			t.Errorf("selection missing view %v; trace: %v", wv, traceStrings(sel))
		}
	}
	if sel.HasView([]lattice.Attr{tpcd.AttrPart, tpcd.AttrCustomer}) {
		t.Errorf("selection includes {part,cust}; trace: %v", traceStrings(sel))
	}
	if sel.HasView([]lattice.Attr{tpcd.AttrSupplier, tpcd.AttrCustomer}) {
		t.Errorf("selection includes {supp,cust}; trace: %v", traceStrings(sel))
	}
}

func TestSelectIndexesOnTopView(t *testing.T) {
	lat, factSize, sizes := paperLattice(t)
	sel := Select(lat, factSize, sizes, 9)
	if len(sel.Indexes) != 3 {
		t.Fatalf("selected %d indexes, want 3; trace: %v", len(sel.Indexes), traceStrings(sel))
	}
	topKey := lattice.CanonKey([]lattice.Attr{tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer})
	leading := map[lattice.Attr]bool{}
	for _, order := range sel.Indexes {
		if lattice.CanonKey(order) != topKey {
			t.Errorf("index %v is not on the top view", order)
		}
		leading[order[0]] = true
	}
	// As in the paper, the three indexes start with three distinct
	// attributes, so every single-attribute predicate has a fast path.
	if len(leading) != 3 {
		t.Errorf("index leading attributes not distinct: %v", sel.Indexes)
	}
}

func TestTraceRecordsMetrics(t *testing.T) {
	lat, factSize, sizes := paperLattice(t)
	sel := Select(lat, factSize, sizes, 9)
	for i, s := range sel.Trace {
		if s.Benefit <= 0 || s.PerSpace <= 0 {
			t.Errorf("step %d has non-positive metrics: %+v", i, s)
		}
	}
}

func TestSelectStopsAtZeroBenefit(t *testing.T) {
	lat, factSize, sizes := paperLattice(t)
	sel := Select(lat, factSize, sizes, 0) // unlimited steps
	if len(sel.Trace) == 0 {
		t.Fatal("no picks")
	}
	for _, s := range sel.Trace {
		if s.Benefit <= 0 {
			t.Errorf("picked %v with non-positive benefit %f", s.Pick, s.Benefit)
		}
	}
}

func TestSelectFirstPickIsTopOrSmallViews(t *testing.T) {
	lat, factSize, sizes := paperLattice(t)
	sel := Select(lat, factSize, sizes, 1)
	if len(sel.Trace) != 1 {
		t.Fatalf("trace = %d", len(sel.Trace))
	}
	if sel.Trace[0].Pick.IsIndex {
		t.Fatal("first pick cannot be an index (no views materialized)")
	}
}

func TestPaperSelection(t *testing.T) {
	sel := PaperSelection(tpcd.AttrPart, tpcd.AttrSupplier, tpcd.AttrCustomer)
	if len(sel.Views) != 6 || len(sel.Indexes) != 3 {
		t.Fatalf("views=%d indexes=%d", len(sel.Views), len(sel.Indexes))
	}
	if sel.Views[0].Arity() != 3 || sel.Views[5].Arity() != 0 {
		t.Fatal("paper selection order wrong")
	}
	if sel.Indexes[0][0] != tpcd.AttrCustomer {
		t.Fatalf("first index = %v", sel.Indexes[0])
	}
}

func TestSelectTwoDims(t *testing.T) {
	// A 2-dim lattice: greedy must still terminate, pick positive-benefit
	// structures only, and put indexes only on materialized views.
	lat, err := lattice.New([]lattice.Attr{"a", "b"},
		map[lattice.Attr]int64{"a": 10000, "b": 500})
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(lat, 1000000, map[string]int64{"a,b": 900000}, 0)
	if len(sel.Views) == 0 {
		t.Fatal("no views selected")
	}
	selected := map[string]bool{}
	for _, v := range sel.Views {
		selected[v.Key()] = true
	}
	for _, order := range sel.Indexes {
		if !selected[lattice.CanonKey(order)] {
			t.Fatalf("index %v on unmaterialized view", order)
		}
	}
	// The tiny single-attribute views are obvious wins.
	if !sel.HasView([]lattice.Attr{"b"}) || !sel.HasView(nil) {
		t.Fatalf("expected small views selected; trace %v", traceStrings(sel))
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Node: []lattice.Attr{"a", "b"}}
	if c.String() != "V{a,b}" {
		t.Fatalf("view string = %s", c)
	}
	i := Candidate{IsIndex: true, Node: []lattice.Attr{"a", "b"}, Order: []lattice.Attr{"b", "a"}}
	if i.String() != "I{b,a}" {
		t.Fatalf("index string = %s", i)
	}
	n := Candidate{}
	if n.String() != "V{none}" {
		t.Fatalf("none string = %s", n)
	}
}

func traceStrings(sel Selection) []string {
	var out []string
	for _, s := range sel.Trace {
		out = append(out, s.Pick.String())
	}
	return out
}
