// Package greedy implements the 1-greedy view-and-index selection algorithm
// of Gupta, Harinarayan, Rajaraman & Ullman (ICDE 1997), which the paper
// uses to decide what to materialize: at every step the structure (an
// aggregate view, or a "fat" B-tree index over an already-selected view)
// with the greatest total benefit is added, where the cost of a query is
// the number of tuples that must be accessed to answer it.
package greedy

import (
	"sort"
	"strings"

	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

// Candidate is one selectable structure.
type Candidate struct {
	// IsIndex distinguishes indexes from views.
	IsIndex bool
	// Node is the view's attribute set (for views) or the indexed view's
	// attribute set (for indexes).
	Node []lattice.Attr
	// Order is the index key order (indexes only; a permutation of Node).
	Order []lattice.Attr
}

// String renders the candidate in the paper's V{...} / I{a,b,c} notation.
func (c Candidate) String() string {
	if !c.IsIndex {
		return "V{" + joinAttrs(c.Node) + "}"
	}
	return "I{" + joinAttrs(c.Order) + "}"
}

func joinAttrs(attrs []lattice.Attr) string {
	if len(attrs) == 0 {
		return "none"
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}

// Step records one greedy pick: its total benefit (tuples saved over the
// query set) and the benefit per unit space that drove the choice.
type Step struct {
	Pick    Candidate
	Benefit float64
	// PerSpace is Benefit divided by the candidate's size in tuples, the
	// metric the greedy maximizes (GHRU's benefit per unit space).
	PerSpace float64
}

// Selection is the algorithm's result.
type Selection struct {
	// Views are the selected views in pick order.
	Views []lattice.View
	// Indexes are the selected index orders in pick order; each indexes
	// the view with the same attribute set.
	Indexes [][]lattice.Attr
	// Trace records every pick in order with its benefit.
	Trace []Step
}

// HasView reports whether the selection materializes the given node.
func (s Selection) HasView(node []lattice.Attr) bool {
	key := lattice.CanonKey(node)
	for _, v := range s.Views {
		if v.Key() == key {
			return true
		}
	}
	return false
}

// Select runs 1-greedy over the full lattice of lat for maxSteps steps (or
// until no candidate has positive benefit). sizes maps lattice.CanonKey of
// each node to its (estimated or exact) view size; missing entries fall
// back to lat.EstimateSize. factSize is the fact table cardinality.
//
// The query set is the paper's: every slice query type of every lattice
// node, uniformly weighted.
func Select(lat *lattice.Lattice, factSize int64, sizes map[string]int64, maxSteps int) Selection {
	nodes := lat.Nodes()
	size := func(node []lattice.Attr) float64 {
		if s, ok := sizes[lattice.CanonKey(node)]; ok {
			return float64(s)
		}
		return float64(lat.EstimateSize(node, factSize))
	}

	// Enumerate the query set: (node, fixed-subset) pairs.
	type query struct {
		node  []lattice.Attr
		fixed []lattice.Attr
	}
	var queries []query
	for _, node := range nodes {
		for _, fixed := range workload.QueryTypes(node) {
			queries = append(queries, query{node: node, fixed: fixed})
		}
	}

	// cost of answering q with structure set S.
	type state struct {
		views   map[string]bool     // canonical node keys materialized
		indexes map[string][]string // view key -> index orders (OrderKey strings)
	}
	st := state{views: map[string]bool{}, indexes: map[string][]string{}}

	indexCost := func(vnode []lattice.Attr, order []lattice.Attr, q query) float64 {
		// Maximal prefix of order fixed by q.
		sel := 1.0
		prefix := 0
		for _, a := range order {
			if !contains(q.fixed, a) {
				break
			}
			prefix++
			if d := float64(lat.Domain(a)); d > 1 {
				sel /= d
			}
		}
		if prefix == 0 {
			return size(vnode)
		}
		c := size(vnode) * sel
		if c < 1 {
			c = 1
		}
		return c
	}

	parseOrder := func(s string) []lattice.Attr {
		parts := strings.Split(s, ",")
		out := make([]lattice.Attr, len(parts))
		for i, p := range parts {
			out[i] = lattice.Attr(p)
		}
		return out
	}

	cost := func(q query, extra *Candidate) float64 {
		best := float64(factSize) // fact table scan is always possible
		consider := func(vnode []lattice.Attr) {
			if !lattice.Subset(q.node, vnode) {
				return
			}
			if c := size(vnode); c < best {
				best = c
			}
			for _, os := range st.indexes[lattice.CanonKey(vnode)] {
				if c := indexCost(vnode, parseOrder(os), q); c < best {
					best = c
				}
			}
			if extra != nil && extra.IsIndex && lattice.CanonKey(extra.Node) == lattice.CanonKey(vnode) {
				if c := indexCost(vnode, extra.Order, q); c < best {
					best = c
				}
			}
		}
		for vk := range st.views {
			consider(parseNode(vk))
		}
		if extra != nil && !extra.IsIndex && lattice.Subset(q.node, extra.Node) {
			if c := size(extra.Node); c < best {
				best = c
			}
		}
		return best
	}

	var sel Selection
	for step := 0; maxSteps <= 0 || step < maxSteps; step++ {
		// Candidate views: unmaterialized nodes.
		var candidates []Candidate
		for _, node := range nodes {
			if !st.views[lattice.CanonKey(node)] {
				candidates = append(candidates, Candidate{Node: node})
			}
		}
		// Candidate indexes: permutations of materialized views' attrs not
		// yet built.
		for vk := range st.views {
			node := parseNode(vk)
			if len(node) == 0 {
				continue
			}
			for _, perm := range permutations(node) {
				ok := joinAttrs(perm)
				dup := false
				for _, existing := range st.indexes[vk] {
					if existing == ok {
						dup = true
						break
					}
				}
				if !dup {
					candidates = append(candidates, Candidate{IsIndex: true, Node: node, Order: perm})
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		baseline := make([]float64, len(queries))
		for i, q := range queries {
			baseline[i] = cost(q, nil)
		}
		bestIdx := -1
		bestBenefit := 0.0
		bestPerSpace := 0.0
		for ci := range candidates {
			c := candidates[ci]
			benefit := 0.0
			for i, q := range queries {
				nc := cost(q, &c)
				if nc < baseline[i] {
					benefit += baseline[i] - nc
				}
			}
			if benefit <= 0 {
				continue
			}
			// GHRU's greedy under a space budget maximizes benefit per
			// unit space; an index occupies roughly as many entries as the
			// view it indexes.
			space := size(c.Node)
			if space < 1 {
				space = 1
			}
			perSpace := benefit / space
			if perSpace > bestPerSpace {
				bestPerSpace = perSpace
				bestBenefit = benefit
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			break
		}
		pick := candidates[bestIdx]
		sel.Trace = append(sel.Trace, Step{Pick: pick, Benefit: bestBenefit, PerSpace: bestPerSpace})
		if pick.IsIndex {
			vk := lattice.CanonKey(pick.Node)
			st.indexes[vk] = append(st.indexes[vk], joinAttrs(pick.Order))
			sel.Indexes = append(sel.Indexes, pick.Order)
		} else {
			st.views[lattice.CanonKey(pick.Node)] = true
			sel.Views = append(sel.Views, lattice.View{Attrs: append([]lattice.Attr(nil), pick.Node...)})
		}
	}
	return sel
}

func contains(set []lattice.Attr, a lattice.Attr) bool {
	for _, x := range set {
		if x == a {
			return true
		}
	}
	return false
}

// parseNode inverts lattice.CanonKey.
func parseNode(key string) []lattice.Attr {
	if key == "none" {
		return nil
	}
	parts := strings.Split(key, ",")
	out := make([]lattice.Attr, len(parts))
	for i, p := range parts {
		out[i] = lattice.Attr(p)
	}
	return out
}

// permutations enumerates every ordering of attrs, deterministically
// (lexicographic in the input order's indexes).
func permutations(attrs []lattice.Attr) [][]lattice.Attr {
	n := len(attrs)
	var out [][]lattice.Attr
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			perm := make([]lattice.Attr, n)
			for i, j := range idx {
				perm[i] = attrs[j]
			}
			out = append(out, perm)
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	sort.Slice(out, func(a, b int) bool {
		for i := 0; i < n; i++ {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}

// PaperSelection returns the exact selection the paper reports for the
// TPC-D lattice (Section 3): the six views
// {partkey,suppkey,custkey}, {partkey,suppkey}, {custkey}, {suppkey},
// {partkey}, none, and the three indexes I{custkey,suppkey,partkey},
// I{partkey,custkey,suppkey}, I{suppkey,partkey,custkey} on the top view.
// Experiments use it to mirror the paper's configuration exactly; the
// greedy implementation above is validated against it qualitatively in
// tests (tie-breaking among equal-benefit index permutations may differ).
func PaperSelection(part, supp, cust lattice.Attr) Selection {
	mk := func(attrs ...lattice.Attr) lattice.View { return lattice.View{Attrs: attrs} }
	return Selection{
		Views: []lattice.View{
			mk(part, supp, cust),
			mk(part, supp),
			mk(cust),
			mk(supp),
			mk(part),
			mk(),
		},
		Indexes: [][]lattice.Attr{
			{cust, supp, part},
			{part, cust, supp},
			{supp, part, cust},
		},
	}
}
