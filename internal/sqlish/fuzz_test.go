package sqlish

import "testing"

// FuzzParse hammers the parser with arbitrary inputs: it must never panic,
// and successful parses must produce queries that validate.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT partkey, sum(quantity) FROM sales GROUP BY partkey",
		"select sum(q) from f where a = 1 and b between 2 and 9",
		"SELECT count(*), avg(q), min(q), max(q) FROM t",
		"SELECT",
		"SELECT sum(q) FROM",
		"select a, b, sum(q) from t group by a, b",
		"select sum(q) from t where a = -5",
		"((((",
		"SELECT sum(q) FROM t WHERE a = 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if err := st.Query.Validate(); err != nil {
			t.Fatalf("parsed statement fails validation: %v (input %q)", err, input)
		}
		if len(st.Columns) == 0 {
			t.Fatalf("parsed statement has no columns (input %q)", input)
		}
	})
}
