// Package sqlish translates a restricted SQL dialect into slice queries,
// mirroring the paper's Cubetree Datablade, which exposed the forest to
// Informix users through "a clean and transparent SQL interface". The
// grammar covers exactly the paper's query model:
//
//	SELECT <attr | agg(measure)> [, ...]
//	FROM <anything>
//	[WHERE attr = N [AND attr BETWEEN lo AND hi] ...]
//	[GROUP BY attr [, ...]]
//
// with aggregates SUM, COUNT, AVG, MIN and MAX. The translation produces a
// workload.Query plus the projection needed to format results.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokEq
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits the input into tokens. Keywords are returned as tokIdent and
// matched case-insensitively by the parser.
type lexer struct {
	input string
	pos   int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("sqlish: %s at offset %d", fmt.Sprintf(format, args...), pos)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == start+1 && c == '-' {
			return token{}, l.errf(start, "dangling '-'")
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

// isKeyword matches tok against a keyword, case-insensitively.
func isKeyword(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
