package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

// OutputCol is one projected result column.
type OutputCol struct {
	// Attr is set for plain attribute columns.
	Attr lattice.Attr
	// Agg is set for aggregate columns (with IsAvg for AVG, which is
	// derived from SUM and COUNT).
	Agg   lattice.Agg
	IsAvg bool
	// Label is the column header (the SQL text that produced it).
	Label string
}

// Statement is a parsed SELECT.
type Statement struct {
	// Columns lists the projection in SELECT order.
	Columns []OutputCol
	// Table is the FROM target (informational; the warehouse has exactly
	// one fact space).
	Table string
	// Query is the slice query the statement maps to: GROUP BY attributes
	// plus WHERE/HAVING predicates.
	Query workload.Query
	// Limit caps the result rows when HasLimit is set.
	Limit    int
	HasLimit bool
}

// Parse translates one SELECT statement.
//
// Rules, matching the paper's query model: every plain attribute in the
// SELECT list must appear in GROUP BY (or, with no GROUP BY, the statement
// must be pure aggregates over the whole space); WHERE is a conjunction of
// equality and BETWEEN predicates; predicate attributes are added to the
// query node implicitly when absent from GROUP BY, so "total per part for
// customer 5" can be written either way.
func Parse(input string) (*Statement, error) {
	p := &parser{lex: lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("sqlish: trailing input %q", p.tok.text)
	}
	if err := st.Query.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !isKeyword(p.tok, kw) {
		return fmt.Errorf("sqlish: expected %s, got %q", strings.ToUpper(kw), p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &Statement{}
	for {
		col, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("sqlish: expected table name, got %q", p.tok.text)
	}
	st.Table = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}

	if isKeyword(p.tok, "where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.parseWhere(st); err != nil {
			return nil, err
		}
	}
	if isKeyword(p.tok, "group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			if p.tok.kind != tokIdent {
				return nil, fmt.Errorf("sqlish: expected GROUP BY attribute, got %q", p.tok.text)
			}
			st.Query.Node = append(st.Query.Node, lattice.Attr(strings.ToLower(p.tok.text)))
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	// HAVING with predicates on grouping attributes is equivalent to WHERE
	// in the slice-query model; the paper's own Section 3.3 example writes
	// "group by partkey,suppkey having partkey = P". Accept it as such.
	if isKeyword(p.tok, "having") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.parseWhere(st); err != nil {
			return nil, err
		}
	}
	if isKeyword(p.tok, "limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("sqlish: negative LIMIT %d", n)
		}
		st.Limit = int(n)
		st.HasLimit = true
	}
	return st, p.finish(st)
}

// parseColumn parses one SELECT-list item: attr or AGG(measure|*).
func (p *parser) parseColumn() (OutputCol, error) {
	if p.tok.kind != tokIdent {
		return OutputCol{}, fmt.Errorf("sqlish: expected column, got %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return OutputCol{}, err
	}
	if p.tok.kind != tokLParen {
		return OutputCol{Attr: lattice.Attr(strings.ToLower(name)), Label: strings.ToLower(name)}, nil
	}
	// Aggregate call.
	if err := p.advance(); err != nil {
		return OutputCol{}, err
	}
	var arg string
	switch p.tok.kind {
	case tokStar:
		arg = "*"
	case tokIdent:
		arg = strings.ToLower(p.tok.text)
	default:
		return OutputCol{}, fmt.Errorf("sqlish: expected aggregate argument, got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return OutputCol{}, err
	}
	if p.tok.kind != tokRParen {
		return OutputCol{}, fmt.Errorf("sqlish: expected ')', got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return OutputCol{}, err
	}
	label := strings.ToLower(name) + "(" + arg + ")"
	switch strings.ToLower(name) {
	case "sum":
		return OutputCol{Agg: lattice.AggSum, Label: label}, nil
	case "count":
		return OutputCol{Agg: lattice.AggCount, Label: label}, nil
	case "avg":
		return OutputCol{IsAvg: true, Label: label}, nil
	case "min":
		return OutputCol{Agg: lattice.AggMin, Label: label}, nil
	case "max":
		return OutputCol{Agg: lattice.AggMax, Label: label}, nil
	default:
		return OutputCol{}, fmt.Errorf("sqlish: unknown aggregate %q", name)
	}
}

// parseWhere parses a conjunction of "attr = N" and "attr BETWEEN a AND b".
func (p *parser) parseWhere(st *Statement) error {
	for {
		if p.tok.kind != tokIdent {
			return fmt.Errorf("sqlish: expected predicate attribute, got %q", p.tok.text)
		}
		attr := lattice.Attr(strings.ToLower(p.tok.text))
		if err := p.advance(); err != nil {
			return err
		}
		switch {
		case p.tok.kind == tokEq:
			if err := p.advance(); err != nil {
				return err
			}
			v, err := p.parseNumber()
			if err != nil {
				return err
			}
			st.Query.Fixed = append(st.Query.Fixed, workload.Pred{Attr: attr, Value: v})
		case isKeyword(p.tok, "between"):
			if err := p.advance(); err != nil {
				return err
			}
			lo, err := p.parseNumber()
			if err != nil {
				return err
			}
			if err := p.expectKeyword("and"); err != nil {
				return err
			}
			hi, err := p.parseNumber()
			if err != nil {
				return err
			}
			st.Query.Ranges = append(st.Query.Ranges, workload.Range{Attr: attr, Lo: lo, Hi: hi})
		default:
			return fmt.Errorf("sqlish: expected '=' or BETWEEN after %q, got %q", attr, p.tok.text)
		}
		if !isKeyword(p.tok, "and") {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) parseNumber() (int64, error) {
	if p.tok.kind != tokNumber {
		return 0, fmt.Errorf("sqlish: expected number, got %q", p.tok.text)
	}
	v, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlish: bad number %q: %v", p.tok.text, err)
	}
	return v, p.advance()
}

// finish validates the projection against the group-by node and widens the
// node with predicate attributes not already present (standard SQL allows
// WHERE on non-grouped attributes; the slice-query model folds them into
// the node, where they surface as the constant predicate value).
func (p *parser) finish(st *Statement) error {
	inNode := func(a lattice.Attr) bool {
		for _, n := range st.Query.Node {
			if n == a {
				return true
			}
		}
		return false
	}
	for _, c := range st.Columns {
		if c.Attr == "" {
			continue
		}
		if !inNode(c.Attr) {
			return fmt.Errorf("sqlish: column %q must appear in GROUP BY", c.Attr)
		}
	}
	for _, pr := range st.Query.Fixed {
		if !inNode(pr.Attr) {
			st.Query.Node = append(st.Query.Node, pr.Attr)
		}
	}
	for _, r := range st.Query.Ranges {
		if !inNode(r.Attr) {
			st.Query.Node = append(st.Query.Node, r.Attr)
		}
	}
	if len(st.Columns) == 0 {
		return fmt.Errorf("sqlish: empty select list")
	}
	hasAgg := false
	for _, c := range st.Columns {
		if c.Attr == "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		return fmt.Errorf("sqlish: select list needs at least one aggregate (sum/count/avg/min/max)")
	}
	return nil
}

// Format renders result rows under the statement's projection. schema is
// the engine's measure schema (for locating MIN/MAX extras).
func (st *Statement) Format(rows []workload.Row, schema lattice.Schema) ([]string, [][]string, error) {
	headers := make([]string, len(st.Columns))
	for i, c := range st.Columns {
		headers[i] = c.Label
	}
	attrPos := map[lattice.Attr]int{}
	for i, a := range st.Query.Node {
		attrPos[a] = i
	}
	extraPos := map[lattice.Agg]int{}
	for i, a := range schema.Extras() {
		extraPos[a] = i
	}
	if st.HasLimit && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	var out [][]string
	for _, r := range rows {
		cells := make([]string, len(st.Columns))
		for i, c := range st.Columns {
			switch {
			case c.Attr != "":
				pos, ok := attrPos[c.Attr]
				if !ok {
					return nil, nil, fmt.Errorf("sqlish: column %q not in result", c.Attr)
				}
				cells[i] = strconv.FormatInt(r.Group[pos], 10)
			case c.IsAvg:
				cells[i] = strconv.FormatFloat(r.Avg(), 'f', 2, 64)
			case c.Agg == lattice.AggSum:
				cells[i] = strconv.FormatInt(r.Sum, 10)
			case c.Agg == lattice.AggCount:
				cells[i] = strconv.FormatInt(r.Count, 10)
			default:
				pos, ok := extraPos[c.Agg]
				if !ok || pos >= len(r.Extra) {
					return nil, nil, fmt.Errorf("sqlish: %s not stored in this warehouse (add it via ExtraMeasures)", c.Label)
				}
				cells[i] = strconv.FormatInt(r.Extra[pos], 10)
			}
		}
		out = append(out, cells)
	}
	return headers, out, nil
}
