package sqlish

import (
	"strings"
	"testing"

	"cubetree/internal/lattice"
	"cubetree/internal/workload"
)

func mustParse(t *testing.T, sql string) *Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseBasicGroupBy(t *testing.T) {
	st := mustParse(t, "SELECT partkey, sum(quantity) FROM sales GROUP BY partkey")
	if st.Table != "sales" {
		t.Fatalf("table = %q", st.Table)
	}
	if len(st.Query.Node) != 1 || st.Query.Node[0] != "partkey" {
		t.Fatalf("node = %v", st.Query.Node)
	}
	if len(st.Columns) != 2 || st.Columns[0].Attr != "partkey" || st.Columns[1].Agg != lattice.AggSum {
		t.Fatalf("columns = %+v", st.Columns)
	}
}

func TestParseWhereEquality(t *testing.T) {
	st := mustParse(t, "select suppkey, sum(quantity) from f where partkey = 17 group by suppkey")
	// partkey joins the node implicitly.
	if len(st.Query.Node) != 2 {
		t.Fatalf("node = %v", st.Query.Node)
	}
	v, ok := st.Query.FixedValue("partkey")
	if !ok || v != 17 {
		t.Fatalf("fixed = %v", st.Query.Fixed)
	}
}

func TestParseBetween(t *testing.T) {
	st := mustParse(t, "SELECT sum(quantity) FROM f WHERE partkey BETWEEN 10 AND 20 AND suppkey = 3")
	r, ok := st.Query.RangeFor("partkey")
	if !ok || r.Lo != 10 || r.Hi != 20 {
		t.Fatalf("range = %+v", st.Query.Ranges)
	}
	if _, ok := st.Query.FixedValue("suppkey"); !ok {
		t.Fatalf("fixed = %+v", st.Query.Fixed)
	}
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, "SELECT count(*), avg(quantity), min(quantity), max(quantity), sum(quantity) FROM f")
	kinds := []struct {
		isAvg bool
		agg   lattice.Agg
	}{
		{false, lattice.AggCount}, {true, 0}, {false, lattice.AggMin},
		{false, lattice.AggMax}, {false, lattice.AggSum},
	}
	for i, k := range kinds {
		c := st.Columns[i]
		if c.IsAvg != k.isAvg || (!k.isAvg && c.Agg != k.agg) {
			t.Fatalf("column %d = %+v", i, c)
		}
	}
	if len(st.Query.Node) != 0 {
		t.Fatalf("super-aggregate node = %v", st.Query.Node)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "SeLeCt SUM(q) FrOm t WhErE a = 1 GrOuP bY a")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t",
		"SELECT sum(q) t",
		"SELECT partkey FROM t",                  // non-aggregated without agg column
		"SELECT partkey, sum(q) FROM t",          // partkey not grouped
		"SELECT median(q) FROM t",                // unknown aggregate
		"SELECT sum(q) FROM t WHERE a 5",         // missing operator
		"SELECT sum(q) FROM t WHERE a BETWEEN 5", // incomplete between
		"SELECT sum(q) FROM t WHERE a BETWEEN 9 AND 1",           // empty range
		"SELECT sum(q) FROM t WHERE a = 1 AND a BETWEEN 1 AND 2", // eq+range same attr
		"SELECT sum(q) FROM t GROUP BY",                          // missing attr
		"SELECT sum(q) FROM t extra",                             // trailing tokens
		"SELECT sum(q FROM t",                                    // missing paren
		"SELECT sum(q) FROM t WHERE a = $",                       // bad token
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestFormat(t *testing.T) {
	st := mustParse(t, "SELECT partkey, sum(quantity), avg(quantity) FROM f GROUP BY partkey")
	rows := []workload.Row{
		{Group: []int64{1}, Sum: 10, Count: 4},
		{Group: []int64{2}, Sum: 9, Count: 3},
	}
	headers, cells, err := st.Format(rows, lattice.DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(headers, "|") != "partkey|sum(quantity)|avg(quantity)" {
		t.Fatalf("headers = %v", headers)
	}
	if cells[0][0] != "1" || cells[0][1] != "10" || cells[0][2] != "2.50" {
		t.Fatalf("row 0 = %v", cells[0])
	}
}

func TestFormatExtras(t *testing.T) {
	st := mustParse(t, "SELECT min(q), max(q) FROM f")
	schema, _ := lattice.NewSchema(lattice.AggMin, lattice.AggMax)
	rows := []workload.Row{{Group: nil, Sum: 5, Count: 2, Extra: []int64{1, 4}}}
	_, cells, err := st.Format(rows, schema)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0][0] != "1" || cells[0][1] != "4" {
		t.Fatalf("cells = %v", cells)
	}
	// Without the extras stored, formatting MIN must fail with a clear
	// error.
	if _, _, err := st.Format(rows, lattice.DefaultSchema()); err == nil {
		t.Fatal("min over default schema accepted")
	}
}

func TestParseHaving(t *testing.T) {
	// The paper's Section 3.3 example: answering Q1 through the top view
	// with a HAVING predicate.
	st := mustParse(t,
		"select suppkey, sum(sum_quantity) from v_partkey_suppkey_custkey group by partkey, suppkey having partkey = 7")
	v, ok := st.Query.FixedValue("partkey")
	if !ok || v != 7 {
		t.Fatalf("having predicate missing: %+v", st.Query)
	}
	if len(st.Query.Node) != 2 {
		t.Fatalf("node = %v", st.Query.Node)
	}
	// WHERE and HAVING can combine.
	st = mustParse(t, "select sum(q) from f where a = 1 group by a having b between 1 and 3")
	if _, ok := st.Query.RangeFor("b"); !ok {
		t.Fatalf("having range missing: %+v", st.Query)
	}
}

func TestParseLimit(t *testing.T) {
	st := mustParse(t, "select a, sum(q) from f group by a limit 2")
	if !st.HasLimit || st.Limit != 2 {
		t.Fatalf("limit = %+v", st)
	}
	rows := []workload.Row{
		{Group: []int64{1}, Sum: 1, Count: 1},
		{Group: []int64{2}, Sum: 2, Count: 1},
		{Group: []int64{3}, Sum: 3, Count: 1},
	}
	_, cells, err := st.Format(rows, lattice.DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("limit not applied: %d rows", len(cells))
	}
	if _, err := Parse("select sum(q) from f limit -1"); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, err := Parse("select sum(q) from f limit"); err == nil {
		t.Fatal("missing limit value accepted")
	}
}

func TestParsedQueryExecutesShape(t *testing.T) {
	// The produced query validates and carries the right node order:
	// grouped attrs first, then implicit predicate attrs.
	st := mustParse(t, "SELECT custkey, sum(q) FROM f WHERE partkey = 2 GROUP BY custkey")
	if err := st.Query.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Query.Node[0] != "custkey" || st.Query.Node[1] != "partkey" {
		t.Fatalf("node order = %v", st.Query.Node)
	}
}
