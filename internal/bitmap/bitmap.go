// Package bitmap implements bitmapped (join) indices in the style of
// O'Neil & Graefe (SIGMOD Record 1995) and O'Neil & Quass (SIGMOD 1997),
// the "special purpose indices" the paper's Section 2.2 discusses as the
// alternative to materializing hierarchy views: a per-value bitmap over
// fact-table row ordinals lets a join-grouped predicate (part.brand = B)
// preselect fact rows without a join. The paper argues — and the
// BenchmarkAblationBitmapJoin target measures — that a materialized view
// still beats this, because the bitmap only filters: every qualifying row
// must still be fetched and aggregated.
package bitmap

import (
	"fmt"
	"math/bits"
)

// Bitmap is a dense bitset over row ordinals [0, N).
type Bitmap struct {
	words []uint64
	n     int
}

// New creates an empty bitmap over n rows.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the row universe size.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// Get reports whether row i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set rows.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// And intersects o into b (b &= o). Universes must match.
func (b *Bitmap) And(o *Bitmap) error {
	if b.n != o.n {
		return fmt.Errorf("bitmap: universe mismatch %d vs %d", b.n, o.n)
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return nil
}

// Or unions o into b (b |= o). Universes must match.
func (b *Bitmap) Or(o *Bitmap) error {
	if b.n != o.n {
		return fmt.Errorf("bitmap: universe mismatch %d vs %d", b.n, o.n)
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return nil
}

// AndNot removes o's rows from b (b &^= o).
func (b *Bitmap) AndNot(o *Bitmap) error {
	if b.n != o.n {
		return fmt.Errorf("bitmap: universe mismatch %d vs %d", b.n, o.n)
	}
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
	return nil
}

// Clone copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// Iterate calls fn with every set row ordinal in ascending order.
func (b *Bitmap) Iterate(fn func(i int) error) error {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if err := fn(wi*64 + bit); err != nil {
				return err
			}
			w &= w - 1
		}
	}
	return nil
}

// Bytes returns the in-memory footprint of the bitmap.
func (b *Bitmap) Bytes() int64 { return int64(len(b.words)) * 8 }

// Index is a bitmapped index over one attribute of a row sequence: one
// bitmap per distinct value.
type Index struct {
	rows int
	vals map[int64]*Bitmap
}

// Builder accumulates rows for an Index.
type Builder struct {
	idx *Index
	i   int
}

// NewBuilder creates a builder for an index over n rows.
func NewBuilder(n int) *Builder {
	return &Builder{idx: &Index{rows: n, vals: make(map[int64]*Bitmap)}}
}

// Add appends the attribute value of the next row.
func (b *Builder) Add(value int64) error {
	if b.i >= b.idx.rows {
		return fmt.Errorf("bitmap: more rows than declared (%d)", b.idx.rows)
	}
	bm, ok := b.idx.vals[value]
	if !ok {
		bm = New(b.idx.rows)
		b.idx.vals[value] = bm
	}
	bm.Set(b.i)
	b.i++
	return nil
}

// Finish returns the index. Missing trailing rows are allowed (they simply
// set no bits).
func (b *Builder) Finish() *Index { return b.idx }

// Rows returns the row universe size.
func (ix *Index) Rows() int { return ix.rows }

// Values returns the number of distinct indexed values.
func (ix *Index) Values() int { return len(ix.vals) }

// Lookup returns the bitmap of rows whose attribute equals v, or an empty
// bitmap.
func (ix *Index) Lookup(v int64) *Bitmap {
	if bm, ok := ix.vals[v]; ok {
		return bm
	}
	return New(ix.rows)
}

// LookupRange returns the union of bitmaps for values in [lo, hi].
func (ix *Index) LookupRange(lo, hi int64) *Bitmap {
	out := New(ix.rows)
	for v, bm := range ix.vals {
		if v >= lo && v <= hi {
			out.Or(bm)
		}
	}
	return out
}

// Bytes returns the total in-memory footprint of the index.
func (ix *Index) Bytes() int64 {
	var total int64
	for _, bm := range ix.vals {
		total += bm.Bytes()
	}
	return total
}
