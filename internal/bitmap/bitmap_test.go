package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetCount(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		b.Set(i)
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d", b.Count())
	}
	if !b.Get(64) || b.Get(66) {
		t.Fatal("Get broken across word boundary")
	}
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if and.Count() != 17 { // multiples of 6 in [0,100): 0,6,...,96
		t.Fatalf("And count = %d", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 50+34-17 {
		t.Fatalf("Or count = %d", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 50-17 {
		t.Fatalf("AndNot count = %d", diff.Count())
	}
	short := New(10)
	if err := a.And(short); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func TestIterateOrder(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Iterate(func(i int) error { got = append(got, i); return nil })
	if len(got) != len(want) {
		t.Fatalf("iterated %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestIndexLookup(t *testing.T) {
	bld := NewBuilder(6)
	for _, v := range []int64{7, 8, 7, 9, 8, 7} {
		if err := bld.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	ix := bld.Finish()
	if ix.Values() != 3 {
		t.Fatalf("Values = %d", ix.Values())
	}
	if got := ix.Lookup(7).Count(); got != 3 {
		t.Fatalf("Lookup(7) = %d rows", got)
	}
	if got := ix.Lookup(42).Count(); got != 0 {
		t.Fatalf("Lookup(42) = %d rows", got)
	}
	if got := ix.LookupRange(7, 8).Count(); got != 5 {
		t.Fatalf("LookupRange(7,8) = %d rows", got)
	}
	if err := bld.Add(1); err == nil {
		t.Fatal("overflow add accepted")
	}
}

func TestIndexMatchesMapQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		bld := NewBuilder(len(raw))
		want := map[int64][]int{}
		for i, r := range raw {
			v := int64(r % 11)
			bld.Add(v)
			want[v] = append(want[v], i)
		}
		ix := bld.Finish()
		for v, rows := range want {
			bm := ix.Lookup(v)
			if bm.Count() != len(rows) {
				return false
			}
			j := 0
			ok := true
			bm.Iterate(func(i int) error {
				if j >= len(rows) || rows[j] != i {
					ok = false
				}
				j++
				return nil
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
