package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cubetree/internal/pager"
	"cubetree/internal/rtree"
	"cubetree/internal/workload"
)

func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }
func jsonMarshal(v interface{}) ([]byte, error)   { return json.Marshal(v) }

// Failure-injection tests: corrupted or inconsistent on-disk state must
// surface as errors, never as wrong answers or panics.

func TestOpenMissingCatalog(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Fatal("open of empty directory succeeded")
	}
}

func TestOpenCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}

func TestOpenCatalogReferencesMissingTree(t *testing.T) {
	dir := t.TempDir()
	cat := `{"trees":["tree0.ct"],"placements":[],"domains":{},"pool_pages":8}`
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("missing tree file accepted")
	}
}

func TestOpenCatalogBadTreeIndex(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cat := `{"trees":["tree0.ct"],"placements":[{"attrs":["partkey"],"tree":5,"run":0}],"domains":{},"pool_pages":8}`
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("out-of-range tree index accepted")
	}
	cat = `{"trees":["tree0.ct"],"placements":[{"attrs":["partkey"],"tree":0,"run":99}],"domains":{},"pool_pages":8}`
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("out-of-range run index accepted")
	}
}

func TestOpenCorruptTreeMagic(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash the first tree's meta page.
	path := filepath.Join(dir, "tree0.ct")
	fh, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 0); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("corrupt tree magic accepted")
	}
}

func TestOpenCorruptSchema(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cat := `{"trees":[],"placements":[],"domains":{},"schema":["count","sum"],"pool_pages":8}`
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), []byte(cat), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("invalid schema order accepted")
	}
}

func TestOpenLegacyCatalogWithoutSchema(t *testing.T) {
	// Catalogs written before the measure-schema field default to
	// SUM/COUNT on open.
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "forest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cat map[string]interface{}
	if err := jsonUnmarshal(raw, &cat); err != nil {
		t.Fatal(err)
	}
	delete(cat, "schema")
	raw2, err := jsonMarshal(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "forest.json"), raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Schema().Len() != 2 {
		t.Fatalf("legacy schema = %v", g.Schema())
	}
}

func TestLeafCorruptionSurfacesChecksumError(t *testing.T) {
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the first leaf page (page 1; the
	// builder packs leaves before inner nodes and the root).
	path := filepath.Join(dir, "tree0.ct")
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(pager.PageSize) + 100
	var b [1]byte
	if _, err := fh.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := fh.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	stats := &pager.Stats{}
	g, err := Open(dir, stats)
	if err != nil {
		// Acceptable: the damaged page was needed at open time.
		return
	}
	defer g.Close()
	// The damage must surface as an error, never as wrong rows.
	if err := g.Validate(); !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("validate of corrupted forest = %v, want ErrChecksum", err)
	}
	if stats.ChecksumFailures() == 0 {
		t.Fatal("checksum failure not recorded in stats")
	}
}

func TestLegacyForestWithoutChecksumsStillQueries(t *testing.T) {
	// Tree files written before the checksum trailer existed have no
	// per-page trailer magic. Zeroing the trailer of every page of a
	// fresh file produces exactly that format (detection is magic-based
	// and the payload layout is unchanged); the forest must reopen and
	// answer queries correctly, just without verification.
	f, _ := buildTestForest(t, 0)
	dir := f.Dir()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.ct"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("tree files: %v, %v", matches, err)
	}
	zero := make([]byte, pager.TrailerSize)
	for _, path := range matches {
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := fh.Stat()
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(pager.PayloadSize); off < st.Size(); off += pager.PageSize {
			if _, err := fh.WriteAt(zero, off); err != nil {
				t.Fatal(err)
			}
		}
		fh.Close()
	}

	stats := &pager.Stats{}
	g, err := Open(dir, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, err := g.Execute(workload.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Sum != 55 || rows[0].Count != 10 {
		t.Fatalf("legacy forest totals = %+v", rows)
	}
	if stats.ChecksumsVerified() != 0 {
		t.Fatalf("legacy forest verified %d checksums", stats.ChecksumsVerified())
	}
}

func TestRTreeOpenOnTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ct")
	// A file that is one valid-size page of zeroes: wrong magic.
	if err := os.WriteFile(path, make([]byte, pager.PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := pager.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := pager.NewPool(pf, 4)
	defer pool.Close()
	if _, err := rtree.Open(pool); err == nil {
		t.Fatal("zeroed tree file accepted")
	}
}

func TestPagerOpenBadSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "odd.pg")
	if err := os.WriteFile(path, make([]byte, pager.PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pager.Open(path, nil); err == nil {
		t.Fatal("non-page-multiple file accepted")
	}
}
